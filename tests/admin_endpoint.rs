//! Integration tests for the read-only admin plane: a second listener
//! (`DAISY_SERVE_ADMIN`) that answers `/healthz`, `/metrics`
//! (Prometheus-style exposition), and `/profile` without ever touching
//! the serving data path — no slot is consumed, no response byte
//! changes, and scraping works before, during, and after traffic.

use daisy::prelude::*;
use daisy::serve::{fetch, fetch_admin, post_admin};
use daisy::telemetry::expose;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Trains one small conditional model and saves it once for the whole
/// test binary (same fixture shape as `serve_stream.rs`).
fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let spec = daisy::datasets::by_name("Adult").unwrap();
        let table = spec.generate(500, 3);
        let mut tc = TrainConfig::ctrain(60);
        tc.batch_size = 32;
        tc.epochs = 1;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![16];
        cfg.d_hidden = vec![16];
        let fitted = Synthesizer::fit(&table, &cfg);
        let path = std::env::temp_dir().join("daisy-admin-endpoint-model.bin");
        fitted.save(&path).expect("test model saves");
        path
    })
}

#[test]
fn admin_endpoint_answers_healthz_metrics_and_profile() {
    let cfg = ServeConfig {
        admin_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    };
    let server = Server::bind(model_path(), "127.0.0.1:0", cfg).expect("server binds");
    let addr = server.local_addr().expect("server has an address");
    let admin = server.admin_addr().expect("admin listener is on").to_string();
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });

    // The admin plane answers before any client traffic arrives.
    let health = fetch_admin(&admin, "/healthz").expect("healthz answers");
    assert!(health.starts_with("ok\n"), "{health}");
    assert!(health.contains("fingerprint 0x"), "{health}");
    assert!(health.contains("active_conns"), "{health}");

    // Serve one real request; the scrape must reflect it.
    let response = fetch(addr, &Request::new(5, 64)).expect("rows stream");
    assert_eq!(response.rows.len(), 64);

    let text = fetch_admin(&admin, "/metrics").expect("metrics answers");
    let samples = expose::parse(&text).expect("exposition parses");
    let requests =
        expose::sample_value(&samples, "daisy_serve_requests").expect("serve.requests exposed");
    assert!(requests >= 1.0, "at least the request above:\n{text}");
    let rows = expose::sample_value(&samples, "daisy_serve_rows").expect("serve.rows exposed");
    assert!(rows >= 64.0, "{text}");
    assert!(
        samples
            .iter()
            .any(|s| s.name == "daisy_serve_request_us_bucket"),
        "request latency histogram exposed:\n{text}"
    );

    let profile = fetch_admin(&admin, "/profile").expect("profile answers");
    assert!(profile.contains("phase"), "{profile}");

    // Unknown paths are a typed rejection, not a panic or a hang.
    assert!(fetch_admin(&admin, "/nope").is_err());
}

#[test]
fn admin_reports_reload_and_drain_transitions() {
    // A private model copy: this test overwrites and corrupts the file.
    let dir = std::env::temp_dir().join("daisy-admin-reload-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let model = dir.join("model.bin");
    std::fs::copy(model_path(), &model).expect("model copies");

    let cfg = ServeConfig {
        admin_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    };
    let server = Server::bind(&model, "127.0.0.1:0", cfg).expect("server binds");
    let addr = server.local_addr().expect("server has an address");
    let admin = server.admin_addr().expect("admin listener is on").to_string();
    let drain = server.drain_handle();
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let health = fetch_admin(&admin, "/healthz").expect("healthz answers");
    assert!(health.contains("generation 0"), "{health}");
    assert!(health.contains("draining false"), "{health}");
    let old_fingerprint = fingerprint_line(&health);

    // Retrain different weights, land them at the model path, reload
    // through the admin plane: the fingerprint and generation move.
    std::fs::write(&model, alt_model_bytes()).expect("new weights land");
    let body = post_admin(&admin, "/reload").expect("reload succeeds");
    assert!(body.starts_with("reloaded\n"), "{body}");
    assert!(body.contains("generation 1"), "{body}");
    let health = fetch_admin(&admin, "/healthz").expect("healthz answers");
    assert!(health.contains("generation 1"), "{health}");
    assert_ne!(fingerprint_line(&health), old_fingerprint, "{health}");
    let new_fingerprint = fingerprint_line(&health);

    // Reload is not idempotent-blind: same bytes, new generation.
    let body = post_admin(&admin, "/reload").expect("second reload succeeds");
    assert!(body.contains("generation 2"), "{body}");

    // A corrupt replacement: typed 500, old fingerprint still serving,
    // and the garbage quarantined off the path.
    std::fs::write(&model, b"junk").expect("garbage lands");
    let err = post_admin(&admin, "/reload").expect_err("corrupt reload is refused");
    let msg = format!("{err}");
    assert!(msg.contains("500"), "{msg}");
    assert!(msg.contains("old model still serving"), "{msg}");
    let health = fetch_admin(&admin, "/healthz").expect("healthz answers");
    assert_eq!(fingerprint_line(&health), new_fingerprint, "{health}");
    assert!(health.contains("generation 2"), "{health}");
    assert!(!model.exists(), "garbage was quarantined off the path");

    // GET cannot mutate: /reload over GET is method-not-allowed.
    let err = fetch_admin(&admin, "/reload").expect_err("GET /reload is refused");
    assert!(format!("{err}").contains("405"), "{err}");

    // The data plane kept serving across all of the above.
    let response = fetch(addr, &Request::new(5, 32)).expect("rows stream");
    assert_eq!(response.rows.len(), 32);

    // Drain: health flips to draining, and /metrics stays well-formed
    // exposition all the way through.
    drain.begin_drain();
    let health = poll_for(&admin, "/healthz", "draining true");
    assert!(health.contains("draining true"), "{health}");
    let text = fetch_admin(&admin, "/metrics").expect("metrics answers during drain");
    let samples = expose::parse(&text).expect("exposition parses during drain");
    assert!(
        expose::sample_value(&samples, "daisy_serve_reloads").unwrap_or(0.0) >= 2.0,
        "both successful reloads are counted:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Second set of weights (different training seed) for reload tests.
fn alt_model_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let spec = daisy::datasets::by_name("Adult").unwrap();
        let table = spec.generate(500, 3);
        let mut tc = TrainConfig::ctrain(60);
        tc.batch_size = 32;
        tc.epochs = 1;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![16];
        cfg.d_hidden = vec![16];
        cfg.seed = 99;
        let fitted = Synthesizer::fit(&table, &cfg);
        let path = std::env::temp_dir().join("daisy-admin-alt-model.bin");
        fitted.save(&path).expect("alt model saves");
        std::fs::read(&path).expect("alt model bytes")
    })
}

/// Extracts the `fingerprint 0x…` line from a healthz body.
fn fingerprint_line(health: &str) -> String {
    health
        .lines()
        .find(|l| l.starts_with("fingerprint "))
        .expect("healthz carries a fingerprint line")
        .to_string()
}

/// Polls an admin path until its body contains `needle` (the drain
/// flag propagates through an atomic, not synchronously with the
/// caller), panicking after ~2s.
fn poll_for(admin: &str, path: &str, needle: &str) -> String {
    let mut last = String::new();
    for _ in 0..400 {
        last = fetch_admin(admin, path).expect("admin answers");
        if last.contains(needle) {
            return last;
        }
        daisy_telemetry::sleep_ms(5);
    }
    panic!("admin {path} never showed {needle:?}; last body:\n{last}");
}

#[test]
fn admin_listener_is_off_by_default() {
    let server = Server::bind(model_path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server binds");
    assert!(server.admin_addr().is_none());
}
