//! Integration tests for the read-only admin plane: a second listener
//! (`DAISY_SERVE_ADMIN`) that answers `/healthz`, `/metrics`
//! (Prometheus-style exposition), and `/profile` without ever touching
//! the serving data path — no slot is consumed, no response byte
//! changes, and scraping works before, during, and after traffic.

use daisy::prelude::*;
use daisy::serve::{fetch, fetch_admin};
use daisy::telemetry::expose;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Trains one small conditional model and saves it once for the whole
/// test binary (same fixture shape as `serve_stream.rs`).
fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let spec = daisy::datasets::by_name("Adult").unwrap();
        let table = spec.generate(500, 3);
        let mut tc = TrainConfig::ctrain(60);
        tc.batch_size = 32;
        tc.epochs = 1;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![16];
        cfg.d_hidden = vec![16];
        let fitted = Synthesizer::fit(&table, &cfg);
        let path = std::env::temp_dir().join("daisy-admin-endpoint-model.bin");
        fitted.save(&path).expect("test model saves");
        path
    })
}

#[test]
fn admin_endpoint_answers_healthz_metrics_and_profile() {
    let cfg = ServeConfig {
        admin_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    };
    let server = Server::bind(model_path(), "127.0.0.1:0", cfg).expect("server binds");
    let addr = server.local_addr().expect("server has an address");
    let admin = server.admin_addr().expect("admin listener is on").to_string();
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });

    // The admin plane answers before any client traffic arrives.
    let health = fetch_admin(&admin, "/healthz").expect("healthz answers");
    assert!(health.starts_with("ok\n"), "{health}");
    assert!(health.contains("fingerprint 0x"), "{health}");
    assert!(health.contains("active_conns"), "{health}");

    // Serve one real request; the scrape must reflect it.
    let response = fetch(addr, &Request::new(5, 64)).expect("rows stream");
    assert_eq!(response.rows.len(), 64);

    let text = fetch_admin(&admin, "/metrics").expect("metrics answers");
    let samples = expose::parse(&text).expect("exposition parses");
    let requests =
        expose::sample_value(&samples, "daisy_serve_requests").expect("serve.requests exposed");
    assert!(requests >= 1.0, "at least the request above:\n{text}");
    let rows = expose::sample_value(&samples, "daisy_serve_rows").expect("serve.rows exposed");
    assert!(rows >= 64.0, "{text}");
    assert!(
        samples
            .iter()
            .any(|s| s.name == "daisy_serve_request_us_bucket"),
        "request latency histogram exposed:\n{text}"
    );

    let profile = fetch_admin(&admin, "/profile").expect("profile answers");
    assert!(profile.contains("phase"), "{profile}");

    // Unknown paths are a typed rejection, not a panic or a hang.
    assert!(fetch_admin(&admin, "/nope").is_err());
}

#[test]
fn admin_listener_is_off_by_default() {
    let server = Server::bind(model_path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server binds");
    assert!(server.admin_addr().is_none());
}
