//! The pool's determinism contract, end to end: a fixed seed must
//! produce bit-identical synthetic data for 1 thread and for N threads.
//!
//! This is what keeps the resilience layer's recovery traces (PR 1) and
//! the persisted-model "bit-for-bit generation" guarantee alive on
//! multi-core machines: parallelism is a performance knob, never an
//! input to the computation.

use daisy::prelude::*;
use daisy::tensor::pool;

fn quick_config(network: NetworkKind) -> SynthesizerConfig {
    let mut tc = TrainConfig::vtrain(120);
    tc.batch_size = 32;
    tc.epochs = 2;
    let mut cfg = SynthesizerConfig::new(network, tc);
    cfg.g_hidden = vec![40];
    cfg.d_hidden = vec![40];
    cfg.noise_dim = 10;
    cfg.cnn_channels = 4;
    cfg
}

fn fit_and_generate(table: &daisy::data::Table, network: NetworkKind) -> daisy::data::Table {
    let mut rng = Rng::seed_from_u64(77);
    let (train, _valid, _test) = table.clone().split_train_valid_test(&mut rng);
    let fitted = Synthesizer::fit(&train, &quick_config(network));
    fitted.generate(200, &mut rng)
}

/// Fits under a scoped in-memory recorder and returns the trace's
/// deterministic view (non-deterministic events dropped, wall-clock
/// fields stripped).
fn trace_fit(table: &daisy::data::Table, threads: usize) -> String {
    use std::sync::Arc;
    pool::set_threads(threads);
    let rec = Arc::new(daisy::telemetry::MemoryRecorder::new());
    daisy::telemetry::with_recorder(rec.clone(), || {
        let mut rng = Rng::seed_from_u64(77);
        let (train, _valid, _test) = table.clone().split_train_valid_test(&mut rng);
        Synthesizer::try_fit(&train, &quick_config(NetworkKind::Mlp))
            .expect("fixture table trains");
    });
    pool::set_threads(1);
    daisy::telemetry::trace::deterministic_view(&rec.to_jsonl())
        .expect("recorded trace validates")
}

/// Like [`trace_fit`], but also returns the raw (unstripped) trace so
/// profiling tests can assert what the nd plane carries.
fn trace_fit_raw(table: &daisy::data::Table, threads: usize) -> (String, String) {
    use std::sync::Arc;
    pool::set_threads(threads);
    let rec = Arc::new(daisy::telemetry::MemoryRecorder::new());
    daisy::telemetry::with_recorder(rec.clone(), || {
        let mut rng = Rng::seed_from_u64(77);
        let (train, _valid, _test) = table.clone().split_train_valid_test(&mut rng);
        Synthesizer::try_fit(&train, &quick_config(NetworkKind::Mlp))
            .expect("fixture table trains");
    });
    pool::set_threads(1);
    let raw = rec.to_jsonl();
    let view = daisy::telemetry::trace::deterministic_view(&raw)
        .expect("recorded trace validates");
    (raw, view)
}

/// The golden-trace extension of the determinism contract: not only the
/// synthetic data but the *telemetry stream itself* must be
/// byte-identical across runs and thread counts, once the explicitly
/// non-deterministic parts (metrics snapshots, wall-clock fields) are
/// stripped.
#[test]
fn fit_trace_deterministic_view_is_byte_identical_across_runs_and_threads() {
    let table = daisy::datasets::SDataNum {
        correlation: 0.4,
        skew: daisy::datasets::Skew::Balanced,
    }
    .generate(400, 3);
    let first = trace_fit(&table, 1);
    let repeat = trace_fit(&table, 1);
    let parallel = trace_fit(&table, 6);
    assert!(!first.is_empty());
    for name in ["fit_start", "train_start", "epoch", "snapshot", "fit_end"] {
        assert!(
            first.contains(&format!("\"event\":\"{name}\"")),
            "trace is missing {name}:\n{first}"
        );
    }
    assert_eq!(first, repeat, "trace changed between identical runs");
    assert_eq!(first, parallel, "trace changed with the thread count");
}

/// The observability plane's determinism contract: enabling the phase
/// profiler must not perturb the deterministic trace view. Profile
/// snapshots carry wall time, so they ride the nd plane — present in
/// the raw trace, stripped from the deterministic view — and the view
/// stays byte-identical across thread counts and against an unprofiled
/// run.
#[test]
fn deterministic_view_is_byte_identical_with_profiling_enabled() {
    use daisy::telemetry::profile;
    let table = daisy::datasets::SDataNum {
        correlation: 0.4,
        skew: daisy::datasets::Skew::Balanced,
    }
    .generate(400, 3);
    let unprofiled = trace_fit(&table, 1);

    profile::set_enabled(true);
    let (raw_1, view_1) = trace_fit_raw(&table, 1);
    let (_raw_4, view_4) = trace_fit_raw(&table, 4);
    profile::set_enabled(false);

    assert!(
        raw_1.contains("\"event\":\"profile\""),
        "profiled run should emit a profile snapshot:\n{raw_1}"
    );
    assert!(
        raw_1.contains("fit/epoch"),
        "profile paths should nest under fit/epoch:\n{raw_1}"
    );
    assert!(
        !view_1.contains("\"event\":\"profile\""),
        "the deterministic view must drop the (nd) profile snapshot"
    );
    assert_eq!(unprofiled, view_1, "profiling changed the deterministic view");
    assert_eq!(view_1, view_4, "profiled view changed with the thread count");
}

/// Runs a backward pass through a graph that exercises every
/// accumulation path the autodiff engine has — shared subexpressions
/// (diamond fan-in), matmul on both operands, conv, row broadcasts —
/// and returns every parameter gradient as raw bits.
///
/// Gradient accumulation is keyed by node id; this pins down that the
/// traversal is a pure function of the graph (ordered collections, not
/// hash-seed-ordered maps) and that the parallel kernels inside each
/// backward closure stay bit-exact at any thread count.
fn backward_grad_bits(threads: usize) -> Vec<Vec<u32>> {
    use daisy::tensor::{Param, Tensor, Var};
    pool::set_threads(threads);
    let mut rng = Rng::seed_from_u64(42);
    let w1 = Param::new(Tensor::randn(&[8, 16], &mut rng));
    let b1 = Param::new(Tensor::randn(&[16], &mut rng));
    let w2 = Param::new(Tensor::randn(&[16, 4], &mut rng));
    let k = Param::new(Tensor::randn(&[2, 1, 3, 3], &mut rng).mul_scalar(0.5));
    let x = Var::constant(Tensor::randn(&[6, 8], &mut rng));
    let img = Var::constant(Tensor::randn(&[2, 1, 6, 6], &mut rng));

    // Diamond: `h` feeds both branches, so its gradient accumulates
    // from two parents; before PR 5 this walked a HashMap.
    let h = x.matmul(&w1.var()).add_row(&b1.var()).tanh();
    let branch_a = h.matmul(&w2.var()).sigmoid().sum();
    let branch_b = h.sqr().mean();
    let conv_loss = img.conv2d(&k.var(), 1, 1).sqr().mean();
    branch_a.add(&branch_b).add(&conv_loss).backward();

    let grads = [w1, b1, w2, k]
        .iter()
        .map(|p| p.grad().data().iter().map(|v| v.to_bits()).collect())
        .collect();
    pool::set_threads(1);
    grads
}

/// Golden assertion for the backward pass: gradients are byte-identical
/// across repeated runs and across thread counts.
#[test]
fn backward_pass_gradients_are_bit_identical_across_runs_and_threads() {
    let serial = backward_grad_bits(1);
    let repeat = backward_grad_bits(1);
    let parallel = backward_grad_bits(6);
    assert!(serial.iter().map(|g| g.len()).sum::<usize>() > 0);
    assert_eq!(serial, repeat, "backward pass changed between identical runs");
    assert_eq!(serial, parallel, "backward pass changed with the thread count");
}

#[test]
fn synthesizer_output_is_identical_for_1_and_n_threads() {
    let table = daisy::datasets::SDataNum {
        correlation: 0.4,
        skew: daisy::datasets::Skew::Balanced,
    }
    .generate(500, 3);
    for network in [NetworkKind::Mlp, NetworkKind::Cnn] {
        pool::set_threads(1);
        let serial = fit_and_generate(&table, network);
        pool::set_threads(6);
        let parallel = fit_and_generate(&table, network);
        pool::set_threads(1);
        assert_eq!(
            serial, parallel,
            "{network:?}: synthetic output changed with the thread count"
        );
    }
}

/// The out-of-core data plane meets the determinism contract: a GAN
/// trained against an on-disk chunk store (built by a real streaming
/// ingest) must produce bit-identical weights to one trained against
/// the fully-resident table — at 1 thread and at N threads. Storage
/// layout and parallelism are both performance knobs, never inputs to
/// the computation.
#[test]
fn chunk_store_training_is_bit_identical_to_resident_across_threads() {
    use daisy::core::output_head::softmax_spans;
    use daisy::core::{
        train_gan, BatchSource, ChunkedTrainingData, MlpDiscriminator, MlpGenerator, TrainConfig,
        TrainingData,
    };
    use daisy::data::{ingest_csv, ChunkStore, IngestConfig, RecordCodec, TransformConfig};

    let base = std::env::temp_dir()
        .join("daisy-itest-store")
        .join(format!("threads-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let table = daisy::datasets::by_name("Adult").unwrap().generate(400, 23);
    let csv = base.join("input.csv");
    daisy::data::csv::write_csv(&table, std::io::BufWriter::new(std::fs::File::create(&csv).unwrap()))
        .unwrap();
    let store_dir = base.join("store");
    let ingest_cfg = IngestConfig {
        chunk_rows: 96,
        label: Some("label".to_string()),
        ..IngestConfig::default()
    };
    ingest_csv(&csv, &store_dir, &ingest_cfg).unwrap();
    let store = ChunkStore::open(&store_dir).unwrap();
    let codec = RecordCodec::fit_chunks(&store, &TransformConfig::sn_ht()).unwrap();
    let streamed = ChunkedTrainingData::new(&store, &codec).unwrap();
    // The resident reference samples from the store's own row order so
    // the two sources draw identical rows for identical rng streams.
    let resident_table = store.to_table().unwrap();
    let resident = TrainingData::from_table(&resident_table, &codec);

    let cfg = TrainConfig {
        iterations: 8,
        batch_size: 32,
        epochs: 2,
        ..TrainConfig::vtrain(8)
    };
    let weights = |data: &dyn BatchSource, threads: usize| {
        pool::set_threads(threads);
        let mut rng = Rng::seed_from_u64(19);
        let g = MlpGenerator::new(8, 0, &[24], codec.output_blocks(), &mut rng);
        let d = MlpDiscriminator::new(codec.width(), 0, &[24], &mut rng);
        let run = train_gan(&g, &d, data, &softmax_spans(&codec.output_blocks()), &cfg, &mut rng)
            .unwrap();
        pool::set_threads(1);
        run.snapshots
            .last()
            .unwrap()
            .iter()
            .flat_map(|t| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>())
            .collect::<Vec<u32>>()
    };

    let resident_serial = weights(&resident, 1);
    let streamed_serial = weights(&streamed, 1);
    let streamed_parallel = weights(&streamed, 6);
    assert!(!resident_serial.is_empty());
    assert_eq!(
        resident_serial, streamed_serial,
        "weights changed when training moved out of core"
    );
    assert_eq!(
        streamed_serial, streamed_parallel,
        "store-backed weights changed with the thread count"
    );
    std::fs::remove_dir_all(&base).ok();
}
