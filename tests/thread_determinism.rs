//! The pool's determinism contract, end to end: a fixed seed must
//! produce bit-identical synthetic data for 1 thread and for N threads.
//!
//! This is what keeps the resilience layer's recovery traces (PR 1) and
//! the persisted-model "bit-for-bit generation" guarantee alive on
//! multi-core machines: parallelism is a performance knob, never an
//! input to the computation.

use daisy::prelude::*;
use daisy::tensor::pool;

fn quick_config(network: NetworkKind) -> SynthesizerConfig {
    let mut tc = TrainConfig::vtrain(120);
    tc.batch_size = 32;
    tc.epochs = 2;
    let mut cfg = SynthesizerConfig::new(network, tc);
    cfg.g_hidden = vec![40];
    cfg.d_hidden = vec![40];
    cfg.noise_dim = 10;
    cfg.cnn_channels = 4;
    cfg
}

fn fit_and_generate(table: &daisy::data::Table, network: NetworkKind) -> daisy::data::Table {
    let mut rng = Rng::seed_from_u64(77);
    let (train, _valid, _test) = table.clone().split_train_valid_test(&mut rng);
    let fitted = Synthesizer::fit(&train, &quick_config(network));
    fitted.generate(200, &mut rng)
}

#[test]
fn synthesizer_output_is_identical_for_1_and_n_threads() {
    let table = daisy::datasets::SDataNum {
        correlation: 0.4,
        skew: daisy::datasets::Skew::Balanced,
    }
    .generate(500, 3);
    for network in [NetworkKind::Mlp, NetworkKind::Cnn] {
        pool::set_threads(1);
        let serial = fit_and_generate(&table, network);
        pool::set_threads(6);
        let parallel = fit_and_generate(&table, network);
        pool::set_threads(1);
        assert_eq!(
            serial, parallel,
            "{network:?}: synthetic output changed with the thread count"
        );
    }
}
