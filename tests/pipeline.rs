//! End-to-end integration tests across crates: dataset generation →
//! transformation → GAN training → synthesis → evaluation.

use daisy::prelude::*;

fn quick_config(network: NetworkKind, conditional: bool) -> SynthesizerConfig {
    let mut tc = if conditional {
        TrainConfig::ctrain(150)
    } else {
        TrainConfig::vtrain(150)
    };
    tc.batch_size = 32;
    tc.epochs = 3;
    let mut cfg = SynthesizerConfig::new(network, tc);
    cfg.g_hidden = vec![48];
    cfg.d_hidden = vec![48];
    cfg.noise_dim = 12;
    cfg.cnn_channels = 4;
    cfg
}

#[test]
fn full_pipeline_every_network_on_mixed_data() {
    let spec = daisy::datasets::by_name("Adult").unwrap();
    let table = spec.generate(900, 1);
    let mut rng = Rng::seed_from_u64(2);
    let (train, _valid, test) = table.split_train_valid_test(&mut rng);
    for network in [NetworkKind::Mlp, NetworkKind::Lstm, NetworkKind::Cnn] {
        let fitted = Synthesizer::fit(&train, &quick_config(network, false));
        let synthetic = fitted.generate(train.n_rows(), &mut rng);
        assert_eq!(synthetic.schema(), train.schema(), "{network:?}");
        assert_eq!(synthetic.n_rows(), train.n_rows());
        // Utility evaluation runs and produces finite numbers.
        let report = classification_utility(
            &train,
            &synthetic,
            &test,
            || Box::new(daisy::eval::DecisionTree::new(10)),
            &mut rng,
        );
        assert!(report.f1_diff.is_finite());
        assert!((0.0..=1.0).contains(&report.f1_diff));
        // Privacy metrics run on the pair.
        let hr = daisy::eval::hitting_rate(&train, &synthetic, 100, &mut rng);
        assert!((0.0..=100.0).contains(&hr));
        let d = daisy::eval::dcr(&train, &synthetic, 50, &mut rng);
        assert!(d >= 0.0);
    }
}

#[test]
fn gan_learns_a_strongly_separated_blob_dataset() {
    // Binary blobs far apart: after training, a classifier trained on
    // synthetic data must recover most of the real classifier's F1.
    use daisy::data::{Attribute, Column, Schema, Table};
    let n = 1200;
    let mut rng = Rng::seed_from_u64(3);
    let mut xs = Vec::with_capacity(n);
    let mut zs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let y = rng.bool(0.5) as u32;
        let c = if y == 1 { 5.0 } else { -5.0 };
        xs.push(rng.normal_ms(c, 1.0));
        zs.push(rng.normal_ms(c, 1.0));
        ys.push(y);
    }
    let table = Table::new(
        Schema::with_label(
            vec![
                Attribute::numerical("x"),
                Attribute::numerical("z"),
                Attribute::categorical("y"),
            ],
            2,
        ),
        vec![
            Column::Num(xs),
            Column::Num(zs),
            Column::cat_with_domain(ys, 2),
        ],
    );
    let (train, _valid, test) = table.split_train_valid_test(&mut rng);
    let mut cfg = quick_config(NetworkKind::Mlp, true);
    cfg.train.iterations = 400;
    let fitted = Synthesizer::fit(&train, &cfg);
    let synthetic = fitted.generate(train.n_rows(), &mut rng);
    let report = classification_utility(
        &train,
        &synthetic,
        &test,
        || Box::new(daisy::eval::DecisionTree::new(10)),
        &mut rng,
    );
    assert!(report.f1_real > 0.95, "real baseline {}", report.f1_real);
    assert!(
        report.f1_synthetic > 0.6,
        "synthetic-trained classifier too weak: {}",
        report.f1_synthetic
    );
}

#[test]
fn conditional_gan_respects_minority_label() {
    let table = daisy::datasets::SDataNum {
        correlation: 0.5,
        skew: daisy::datasets::Skew::Skewed,
    }
    .generate(1200, 4);
    let mut rng = Rng::seed_from_u64(5);
    let (train, _valid, _test) = table.split_train_valid_test(&mut rng);
    let fitted = Synthesizer::fit(&train, &quick_config(NetworkKind::Mlp, true));
    let synthetic = fitted.generate(2000, &mut rng);
    let p1 = synthetic.labels().iter().filter(|&&y| y == 1).count() as f64 / 2000.0;
    let real_p1 =
        train.labels().iter().filter(|&&y| y == 1).count() as f64 / train.n_rows() as f64;
    assert!(
        (p1 - real_p1).abs() < 0.07,
        "label distribution drifted: {p1} vs {real_p1}"
    );
}

#[test]
fn snapshot_model_selection_uses_validation() {
    let spec = daisy::datasets::by_name("HTRU2").unwrap();
    let table = spec.generate(800, 6);
    let mut rng = Rng::seed_from_u64(7);
    let (train, valid, _test) = table.split_train_valid_test(&mut rng);
    // Paper protocol: pick the epoch snapshot whose synthetic data
    // trains the best validation classifier.
    let fitted = Synthesizer::fit_selected(&train, &quick_config(NetworkKind::Mlp, false), |syn| {
        let mut rng = Rng::seed_from_u64(8);
        daisy::eval::f1_on_test(
            syn,
            &valid,
            &train,
            || Box::new(daisy::eval::DecisionTree::new(10)),
            &mut rng,
        )
    });
    assert!(fitted.selected_epoch() < fitted.n_snapshots());
}

#[test]
fn csv_roundtrip_of_synthetic_table() {
    let spec = daisy::datasets::by_name("Adult").unwrap();
    let table = spec.generate(300, 9);
    let fitted = Synthesizer::fit(&table, &quick_config(NetworkKind::Mlp, false));
    let mut rng = Rng::seed_from_u64(10);
    let synthetic = fitted.generate(100, &mut rng);
    let mut buf = Vec::new();
    daisy::data::csv::write_csv(&synthetic, &mut buf).unwrap();
    let back = daisy::data::csv::read_csv(&buf[..], Some("label")).unwrap();
    assert_eq!(back.n_rows(), 100);
    assert_eq!(back.n_attrs(), synthetic.n_attrs());
}
