//! Slot-accounting regression tests: every way a connection can end —
//! clean, vanished, garbage, stalled past its deadline, or shed — must
//! return its slot, and the `serve.active_conns` gauge must read zero
//! once the dust settles. A single leaked slot is a slow death for a
//! `max_conn`-bounded server, so this file throws every failure shape
//! at once and then proves the server still serves.
//!
//! Lives in its own test binary: the gauge is process-global, and this
//! file wants to assert its final value without other serve tests
//! racing it.

use daisy::prelude::*;
use daisy::serve::{fetch, write_frame};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes the two tests: both servers write the same process-global
/// `serve.active_conns` gauge, so they must not overlap.
fn gauge_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let spec = daisy::datasets::by_name("Adult").unwrap();
        let table = spec.generate(500, 3);
        let mut tc = TrainConfig::ctrain(60);
        tc.batch_size = 32;
        tc.epochs = 1;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![16];
        cfg.d_hidden = vec![16];
        let fitted = Synthesizer::fit(&table, &cfg);
        let path = std::env::temp_dir().join("daisy-serve-slots-model.bin");
        fitted.save(&path).expect("test model saves");
        path
    })
}

fn spawn_server(cfg: ServeConfig) -> (Arc<Server>, std::net::SocketAddr) {
    let server = Arc::new(Server::bind(model_path(), "127.0.0.1:0", cfg).expect("server binds"));
    let addr = server.local_addr().expect("server has an address");
    let handle = Arc::clone(&server);
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = handle.run();
    });
    (server, addr)
}

/// Polls until the server's live-connection count reaches `want` (or
/// panics after ~5s — a leak would otherwise hang the whole test).
fn wait_for_active(server: &Server, want: usize) {
    for _ in 0..1000 {
        if server.active_connections() == want {
            return;
        }
        daisy_telemetry::sleep_ms(5);
    }
    panic!(
        "active connections stuck at {} (wanted {want}) — a slot leaked",
        server.active_connections()
    );
}

#[test]
fn every_failed_connection_shape_returns_its_slot() {
    let _serial = gauge_lock();
    let cfg = ServeConfig {
        max_conn: 2,
        timeout_ms: 300,
        ..ServeConfig::default()
    };
    let (server, addr) = spawn_server(cfg);

    // Shape 1: connect and vanish without sending a byte.
    for _ in 0..3 {
        let stream = TcpStream::connect(addr).expect("connects");
        drop(stream);
    }

    // Shape 2: a frame that is not a request at all.
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connects");
        write_frame(&mut stream, b"certainly not a request").expect("garbage sends");
        let _ = stream.shutdown(Shutdown::Write);
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink); // server closes on protocol error
    }

    // Shape 3: a torn request — four bytes of a length prefix, then
    // silence with the socket held open. Only the read deadline can
    // reclaim this slot.
    let mut stalled = TcpStream::connect(addr).expect("connects");
    stalled.write_all(&[1, 2, 3, 4]).expect("partial prefix sends");
    let timeouts_before = daisy::telemetry::metrics::counter("serve.timeouts").get();
    daisy_telemetry::sleep_ms(600); // past the 300ms deadline
    drop(stalled);

    // Shape 4: a rejected request (over the row cap) on an otherwise
    // healthy connection that then hangs up.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        write_frame(&mut stream, &Request::new(1, u64::MAX).encode()).expect("request sends");
        let mut first = [0u8; 16];
        let _ = stream.read_exact(&mut first); // rejection header arrives
    }

    // All four shapes reclaimed: counter at zero, gauge at zero, and a
    // real request still gets a slot immediately.
    wait_for_active(&server, 0);
    assert!(
        daisy::telemetry::metrics::counter("serve.timeouts").get() > timeouts_before,
        "the stalled connection must be evicted by the deadline, not by luck"
    );
    assert_eq!(
        daisy::telemetry::metrics::gauge("serve.active_conns").get(),
        0.0,
        "the exported gauge must agree that every slot came back"
    );
    let response = fetch(addr, &Request::new(7, 25)).expect("slots were all released");
    assert_eq!(response.rows.len(), 25);
    assert_eq!(
        daisy::telemetry::metrics::gauge("serve.active_conns").get(),
        0.0,
        "the clean fetch returned its slot too"
    );
}

#[test]
fn shed_mode_rejects_excess_clients_with_a_typed_overloaded_header() {
    let _serial = gauge_lock();
    let cfg = ServeConfig {
        max_conn: 1,
        shed: true,
        timeout_ms: 5_000,
        ..ServeConfig::default()
    };
    let (server, addr) = spawn_server(cfg);

    // Occupy the only slot: connect and send nothing; the connection
    // thread parks in its request read until we hang up.
    let holder = TcpStream::connect(addr).expect("holder connects");
    wait_for_active(&server, 1);

    // The next client is answered immediately — typed rejection, not a
    // queue — and the shed is counted.
    let shed_before = daisy::telemetry::metrics::counter("serve.shed_requests").get();
    let Err(ServeError::Rejected(reason)) = fetch(addr, &Request::new(3, 10)) else {
        panic!("an over-capacity client under shed mode must be rejected");
    };
    assert!(
        reason.starts_with("overloaded"),
        "the rejection names the condition: {reason}"
    );
    assert!(
        reason.contains("retry"),
        "the rejection tells the client what to do: {reason}"
    );
    assert!(daisy::telemetry::metrics::counter("serve.shed_requests").get() > shed_before);

    // Rejected clients never held a slot, so the holder's slot is the
    // only one live; release it and the very next fetch is served.
    drop(holder);
    wait_for_active(&server, 0);
    let response = fetch(addr, &Request::new(3, 10)).expect("capacity is back");
    assert_eq!(response.rows.len(), 10);
}
