//! Integration test: ship a trained model (not data) across a process
//! boundary — the workflow where a data owner trains in-house and
//! hands the consumer only the model file.

use daisy::prelude::*;

#[test]
fn train_save_reload_generate_and_audit() {
    let spec = daisy::datasets::by_name("Adult").unwrap();
    let table = spec.generate(600, 3);
    let mut tc = TrainConfig::ctrain(80);
    tc.batch_size = 32;
    tc.epochs = 2;
    let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    cfg.g_hidden = vec![32];
    cfg.d_hidden = vec![32];
    let fitted = Synthesizer::fit(&table, &cfg);

    let path = std::env::temp_dir().join("daisy-integration-model.bin");
    fitted.save(&path).unwrap();
    let loaded = FittedSynthesizer::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Same seed -> identical tables from saved vs loaded models.
    let a = fitted.generate(120, &mut Rng::seed_from_u64(5));
    let b = loaded.generate(120, &mut Rng::seed_from_u64(5));
    assert_eq!(a, b);

    // The consumer can run the full evaluation stack on the regenerated
    // data without ever touching the training rows.
    let mut rng = Rng::seed_from_u64(6);
    let fidelity = daisy::eval::attribute_fidelity(&table, &b);
    assert_eq!(fidelity.len(), table.n_attrs());
    let hr = daisy::eval::hitting_rate(&table, &b, 100, &mut rng);
    assert!((0.0..=100.0).contains(&hr));
}

#[test]
fn recovered_model_round_trips_bit_identically() {
    // A run that tripped the resilience layer (injected NaN gradient,
    // rollback to the last healthy epoch) must persist like any other:
    // save after recovery, reload, and generate the identical table.
    let spec = daisy::datasets::by_name("HTRU2").unwrap();
    let table = spec.generate(400, 9);
    let mut tc = TrainConfig::vtrain(12);
    tc.batch_size = 32;
    tc.epochs = 3;
    let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    cfg.g_hidden = vec![16];
    cfg.d_hidden = vec![16];
    cfg.seed = 11;
    let guard = GuardConfig {
        check_weights_every: 1,
        probe_every: 0,
        warmup_steps: usize::MAX,
        divergence_factor: f32::INFINITY,
        ..GuardConfig::default()
    };
    let fitted =
        Synthesizer::try_fit_with(&table, &cfg, &guard, &FaultPlan::nan_grad_at(6)).unwrap();
    assert!(
        !fitted.outcome().is_clean(),
        "the injected fault must have triggered a recovery"
    );
    assert!(!fitted.outcome().degraded);

    let path = std::env::temp_dir().join("daisy-recovered-model.bin");
    fitted.save(&path).unwrap();
    let loaded = FittedSynthesizer::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let a = fitted.generate(90, &mut Rng::seed_from_u64(5));
    let b = loaded.generate(90, &mut Rng::seed_from_u64(5));
    assert_eq!(a, b);
    // The health report itself is not persisted: a reloaded model
    // starts with a clean slate.
    assert!(loaded.outcome().is_clean());
}

#[test]
fn model_files_are_compact() {
    // A quick sanity bound: the file stores weights + codec, not data.
    let spec = daisy::datasets::by_name("HTRU2").unwrap();
    let table = spec.generate(5000, 4);
    let mut tc = TrainConfig::vtrain(30);
    tc.batch_size = 32;
    tc.epochs = 1;
    let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    cfg.g_hidden = vec![32];
    cfg.d_hidden = vec![32];
    let fitted = Synthesizer::fit(&table, &cfg);
    let bytes = fitted.to_bytes();
    // Weights dominate; 5000 training rows must not leak into the file.
    assert!(bytes.len() < 200_000, "file unexpectedly large: {}", bytes.len());
}
