//! Property-style tests over the core invariants: reversible
//! transformations, tensor algebra, RNG distributions, classifiers and
//! metrics. Hand-rolled seeded case loops (the container builds
//! offline, so no proptest dependency).

use daisy::data::{Attribute, Column, Schema, Table, TransformConfig};
use daisy::prelude::*;
use daisy::tensor::Rng;

/// A small mixed-type labeled table derived from a seed.
fn arb_table(seed: u64) -> Table {
    let mut rng = Rng::seed_from_u64(seed);
    let rows = 2 + rng.usize(38);
    let pool_len = 2 + rng.usize(38);
    let pool: Vec<f64> = (0..pool_len).map(|_| rng.uniform(-1e4, 1e4)).collect();
    let k = 2 + rng.usize(4);
    let nums: Vec<f64> = (0..rows).map(|i| pool[i % pool.len()]).collect();
    let cats: Vec<u32> = (0..rows).map(|_| rng.usize(k) as u32).collect();
    let labels: Vec<u32> = (0..rows).map(|_| rng.usize(2) as u32).collect();
    Table::new(
        Schema::with_label(
            vec![
                Attribute::numerical("x"),
                Attribute::categorical("c"),
                Attribute::categorical("y"),
            ],
            2,
        ),
        vec![
            Column::Num(nums),
            Column::cat_with_domain(cats, k),
            Column::cat_with_domain(labels, 2),
        ],
    )
}

/// Encoding then decoding preserves categorical columns exactly and
/// numerics within a tolerance proportional to the column range, for
/// every transformation configuration.
#[test]
fn record_codec_roundtrip() {
    for case in 0..64u64 {
        let table = arb_table(case);
        let config = TransformConfig::all()[(case % 4) as usize];
        let codec = daisy::data::RecordCodec::fit(&table, &config);
        let encoded = codec.encode_table(&table);
        assert!(!encoded.has_non_finite());
        assert!(encoded.min() >= -1.0 - 1e-5 && encoded.max() <= 1.0 + 1e-5);
        let decoded = codec.decode_table(&encoded);
        assert_eq!(decoded.column(1).as_cat(), table.column(1).as_cat());
        assert_eq!(decoded.column(2).as_cat(), table.column(2).as_cat());
        let reals = table.column(0).as_num();
        let range = reals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - reals.iter().cloned().fold(f64::INFINITY, f64::min);
        let tol = (range * 0.05).max(1e-6);
        for (a, b) in reals.iter().zip(decoded.column(0).as_num()) {
            assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
        }
    }
}

/// Matrix-form transformation is reversible too.
#[test]
fn matrix_codec_roundtrip() {
    for case in 100..164u64 {
        let table = arb_table(case);
        let codec = daisy::data::MatrixCodec::fit(&table);
        let encoded = codec.encode_table(&table);
        let decoded = codec.decode_table(&encoded);
        assert_eq!(decoded.column(1).as_cat(), table.column(1).as_cat());
        assert_eq!(decoded.column(2).as_cat(), table.column(2).as_cat());
    }
}

/// Matmul distributes over addition: (A+B)C = AC + BC.
#[test]
fn matmul_distributive() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let (m, k, n) = (1 + rng.usize(7), 1 + rng.usize(7), 1 + rng.usize(7));
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[m, k], &mut rng);
        let c = Tensor::randn(&[k, n], &mut rng);
        let left = a.add(&b).matmul(&c);
        let right = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }
}

/// Softmax rows are probability distributions for any finite input.
#[test]
fn softmax_rows_are_distributions() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let (rows, cols) = (1 + rng.usize(5), 1 + rng.usize(5));
        let scale = rng.uniform(0.0, 50.0) as f32;
        let t = Tensor::randn(&[rows, cols], &mut rng).mul_scalar(scale);
        let s = t.softmax_rows();
        assert!(!s.has_non_finite());
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }
}

/// The RNG's bounded integer sampler stays in bounds.
#[test]
fn rng_usize_in_bounds() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
        let n = 1 + Rng::seed_from_u64(seed).usize(9_999);
        for _ in 0..100 {
            assert!(rng.usize(n) < n);
        }
    }
}

/// Weighted sampling never selects a zero-weight item.
#[test]
fn weighted_never_picks_zero() {
    for seed in 0..32u64 {
        let idx = (seed % 5) as usize;
        let mut weights = [1.0f64; 5];
        weights[idx] = 0.0;
        let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..50 {
            assert_ne!(rng.weighted(&weights), idx);
        }
    }
}

/// Decision trees predict labels inside the class domain.
#[test]
fn tree_predictions_in_domain() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 5 + rng.usize(35);
        let k = 2 + rng.usize(3);
        let x = Tensor::randn(&[n, 3], &mut rng);
        let y: Vec<usize> = (0..n).map(|_| rng.usize(k)).collect();
        let mut tree = daisy::eval::DecisionTree::new(6);
        use daisy::eval::Classifier;
        tree.fit(&x, &y, k, &mut rng);
        for p in tree.predict(&x) {
            assert!(p < k);
        }
    }
}

/// F1 is bounded and symmetric under permutation of sample order.
#[test]
fn f1_bounded_and_order_invariant() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 1 + rng.usize(49);
        let truth: Vec<usize> = (0..n).map(|_| rng.usize(2)).collect();
        let pred: Vec<usize> = (0..n).map(|_| rng.usize(2)).collect();
        let f1 = daisy::eval::f1_score(&truth, &pred, 1);
        assert!((0.0..=1.0).contains(&f1));
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let t2: Vec<usize> = idx.iter().map(|&i| truth[i]).collect();
        let p2: Vec<usize> = idx.iter().map(|&i| pred[i]).collect();
        assert!((f1 - daisy::eval::f1_score(&t2, &p2, 1)).abs() < 1e-12);
    }
}

/// NMI is symmetric and bounded.
#[test]
fn nmi_symmetric() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 2 + rng.usize(58);
        let a: Vec<usize> = (0..n).map(|_| rng.usize(3)).collect();
        let b: Vec<usize> = (0..n).map(|_| rng.usize(4)).collect();
        let ab = daisy::eval::nmi(&a, &b);
        let ba = daisy::eval::nmi(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&ab));
    }
}

/// GMM normalization round-trips any value drawn from the fitted
/// sample within a tight tolerance.
#[test]
fn gmm_roundtrip() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 10 + rng.usize(190);
        let s = 1 + rng.usize(4);
        let values: Vec<f64> = (0..n).map(|_| rng.normal_ms(10.0, 5.0)).collect();
        let gmm = daisy::data::Gmm1d::fit(&values, s, 15);
        for &v in values.iter().take(20) {
            let (norm, comp) = gmm.normalize(v);
            assert!((-1.0..=1.0).contains(&norm));
            let back = gmm.denormalize(norm, comp);
            // Clamping can cut extreme tails; allow 2*(2σ_max).
            let max_std = gmm.stds().iter().cloned().fold(0.0, f64::max);
            assert!((back - v).abs() <= 4.0 * max_std + 1e-9);
        }
    }
}

/// AQP relative errors are bounded in [0, 1] by construction.
#[test]
fn aqp_errors_bounded() {
    for seed in 0..12u64 {
        let table = daisy::datasets::SDataCat::new(0.5, daisy::datasets::Skew::Balanced)
            .generate(200, seed);
        let other = daisy::datasets::SDataCat::new(0.5, daisy::datasets::Skew::Balanced)
            .generate(150, seed.wrapping_add(1));
        let mut rng = Rng::seed_from_u64(seed);
        let queries = daisy::eval::generate_workload(&table, 20, &mut rng);
        let err = daisy::eval::workload_error(&table, &other, &queries);
        assert!((0.0..=1.0).contains(&err));
    }
}
