//! Property-based tests (proptest) over the core invariants: reversible
//! transformations, tensor algebra, RNG distributions, classifiers and
//! metrics.

use daisy::data::{Attribute, Column, Schema, Table, TransformConfig};
use daisy::prelude::*;
use daisy::tensor::Rng; // disambiguate vs proptest's Rng re-export
use proptest::prelude::*;

/// Strategy: a small mixed-type labeled table.
fn arb_table() -> impl Strategy<Value = Table> {
    (
        2usize..40,                          // rows
        prop::collection::vec(-1e4f64..1e4, 2..40), // numeric seed pool
        2usize..6,                           // categorical domain
        0u64..u64::MAX,                      // seed
    )
        .prop_map(|(rows, pool, k, seed)| {
            let mut rng = Rng::seed_from_u64(seed);
            let nums: Vec<f64> = (0..rows)
                .map(|i| pool[i % pool.len()])
                .collect();
            let cats: Vec<u32> = (0..rows).map(|_| rng.usize(k) as u32).collect();
            let labels: Vec<u32> = (0..rows).map(|_| rng.usize(2) as u32).collect();
            Table::new(
                Schema::with_label(
                    vec![
                        Attribute::numerical("x"),
                        Attribute::categorical("c"),
                        Attribute::categorical("y"),
                    ],
                    2,
                ),
                vec![
                    Column::Num(nums),
                    Column::cat_with_domain(cats, k),
                    Column::cat_with_domain(labels, 2),
                ],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding then decoding preserves categorical columns exactly and
    /// numerics within a tolerance proportional to the column range,
    /// for every transformation configuration.
    #[test]
    fn record_codec_roundtrip(table in arb_table(), cfg_idx in 0usize..4) {
        let config = TransformConfig::all()[cfg_idx];
        let codec = daisy::data::RecordCodec::fit(&table, &config);
        let encoded = codec.encode_table(&table);
        prop_assert!(!encoded.has_non_finite());
        prop_assert!(encoded.min() >= -1.0 - 1e-5 && encoded.max() <= 1.0 + 1e-5);
        let decoded = codec.decode_table(&encoded);
        prop_assert_eq!(decoded.column(1).as_cat(), table.column(1).as_cat());
        prop_assert_eq!(decoded.column(2).as_cat(), table.column(2).as_cat());
        let reals = table.column(0).as_num();
        let range = reals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - reals.iter().cloned().fold(f64::INFINITY, f64::min);
        let tol = (range * 0.05).max(1e-6);
        for (a, b) in reals.iter().zip(decoded.column(0).as_num()) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (tol {})", a, b, tol);
        }
    }

    /// Matrix-form transformation is reversible too.
    #[test]
    fn matrix_codec_roundtrip(table in arb_table()) {
        let codec = daisy::data::MatrixCodec::fit(&table);
        let encoded = codec.encode_table(&table);
        let decoded = codec.decode_table(&encoded);
        prop_assert_eq!(decoded.column(1).as_cat(), table.column(1).as_cat());
        prop_assert_eq!(decoded.column(2).as_cat(), table.column(2).as_cat());
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributive(seed in 0u64..1000, m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[m, k], &mut rng);
        let c = Tensor::randn(&[k, n], &mut rng);
        let left = a.add(&b).matmul(&c);
        let right = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    /// Softmax rows are probability distributions for any finite input.
    #[test]
    fn softmax_rows_are_distributions(seed in 0u64..1000, rows in 1usize..6, cols in 1usize..6, scale in 0.0f32..50.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let t = Tensor::randn(&[rows, cols], &mut rng).mul_scalar(scale);
        let s = t.softmax_rows();
        prop_assert!(!s.has_non_finite());
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    /// The RNG's bounded integer sampler stays in bounds.
    #[test]
    fn rng_usize_in_bounds(seed: u64, n in 1usize..10_000) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.usize(n) < n);
        }
    }

    /// Weighted sampling never selects a zero-weight item.
    #[test]
    fn weighted_never_picks_zero(seed: u64, idx in 0usize..5) {
        let mut weights = [1.0f64; 5];
        weights[idx] = 0.0;
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert_ne!(rng.weighted(&weights), idx);
        }
    }

    /// Decision trees predict labels inside the class domain and
    /// reproduce the training labels on duplicate-free separable data.
    #[test]
    fn tree_predictions_in_domain(seed in 0u64..1000, n in 5usize..40, k in 2usize..5) {
        let mut rng = Rng::seed_from_u64(seed);
        let x = Tensor::randn(&[n, 3], &mut rng);
        let y: Vec<usize> = (0..n).map(|_| rng.usize(k)).collect();
        let mut tree = daisy::eval::DecisionTree::new(6);
        use daisy::eval::Classifier;
        tree.fit(&x, &y, k, &mut rng);
        for p in tree.predict(&x) {
            prop_assert!(p < k);
        }
    }

    /// F1 is bounded and symmetric under permutation of sample order.
    #[test]
    fn f1_bounded_and_order_invariant(seed in 0u64..1000, n in 1usize..50) {
        let mut rng = Rng::seed_from_u64(seed);
        let truth: Vec<usize> = (0..n).map(|_| rng.usize(2)).collect();
        let pred: Vec<usize> = (0..n).map(|_| rng.usize(2)).collect();
        let f1 = daisy::eval::f1_score(&truth, &pred, 1);
        prop_assert!((0.0..=1.0).contains(&f1));
        // Permute both consistently.
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let t2: Vec<usize> = idx.iter().map(|&i| truth[i]).collect();
        let p2: Vec<usize> = idx.iter().map(|&i| pred[i]).collect();
        prop_assert!((f1 - daisy::eval::f1_score(&t2, &p2, 1)).abs() < 1e-12);
    }

    /// NMI is symmetric and bounded.
    #[test]
    fn nmi_symmetric(seed in 0u64..1000, n in 2usize..60) {
        let mut rng = Rng::seed_from_u64(seed);
        let a: Vec<usize> = (0..n).map(|_| rng.usize(3)).collect();
        let b: Vec<usize> = (0..n).map(|_| rng.usize(4)).collect();
        let ab = daisy::eval::nmi(&a, &b);
        let ba = daisy::eval::nmi(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// GMM normalization round-trips any value drawn from the fitted
    /// sample within a tight tolerance.
    #[test]
    fn gmm_roundtrip(seed in 0u64..500, n in 10usize..200, s in 1usize..5) {
        let mut rng = Rng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.normal_ms(10.0, 5.0)).collect();
        let gmm = daisy::data::Gmm1d::fit(&values, s, 15);
        for &v in values.iter().take(20) {
            let (norm, comp) = gmm.normalize(v);
            prop_assert!((-1.0..=1.0).contains(&norm));
            let back = gmm.denormalize(norm, comp);
            // Clamping can cut extreme tails; allow 2*(2σ_max).
            let max_std = gmm.stds().iter().cloned().fold(0.0, f64::max);
            prop_assert!((back - v).abs() <= 4.0 * max_std + 1e-9);
        }
    }

    /// AQP relative errors are bounded in [0, 1] by construction.
    #[test]
    fn aqp_errors_bounded(seed in 0u64..500) {
        let table = daisy::datasets::SDataCat::new(0.5, daisy::datasets::Skew::Balanced)
            .generate(200, seed);
        let other = daisy::datasets::SDataCat::new(0.5, daisy::datasets::Skew::Balanced)
            .generate(150, seed.wrapping_add(1));
        let mut rng = Rng::seed_from_u64(seed);
        let queries = daisy::eval::generate_workload(&table, 20, &mut rng);
        let err = daisy::eval::workload_error(&table, &other, &queries);
        prop_assert!((0.0..=1.0).contains(&err));
    }
}
