//! The `daisy lint` subcommand, end to end through the real binary:
//! same engine, same exit-code contract as the standalone `daisy-lint`
//! bin, wired into the main CLI.

use std::process::Command;

#[test]
fn daisy_lint_is_clean_on_the_repo_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .arg("lint")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("daisy binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");
}

#[test]
fn daisy_lint_json_emits_the_machine_report() {
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .args(["lint", "--json"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("daisy binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"tool\":\"daisy-lint\",\"version\":1,"), "{stdout}");
    assert!(stdout.contains("\"findings\":[]"), "{stdout}");
}

#[test]
fn daisy_lint_usage_errors_exit_2_without_the_synth_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .args(["lint", "--no-such-flag"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("daisy binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("SYNTH OPTIONS"), "lint must not print the synthesis help");
}

#[test]
fn daisy_lint_sarif_emits_a_minimal_valid_log() {
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .args(["lint", "--format", "sarif"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("daisy binary runs");
    // Exit-code contract holds in every format: clean tree exits 0.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"version\":\"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"daisy-lint\""), "{stdout}");
    assert!(stdout.contains("\"results\":[]"), "clean tree has no results: {stdout}");
    // The driver ships the whole rule catalogue, including the
    // registry rules.
    for id in ["D001", "S001", "H001", "M001", "K001", "W001"] {
        assert!(stdout.contains(&format!("\"id\":\"{id}\"")), "{id} missing: {stdout}");
    }
}

#[test]
fn daisy_lint_format_errors_exit_2() {
    // An unknown format and a missing format value are usage errors
    // (exit 2), distinct from findings (exit 1).
    for args in [&["lint", "--format", "xml"][..], &["lint", "--format"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
            .args(args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("daisy binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
    // An unreadable root is an I/O error: exit 2 in sarif format too.
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .args(["lint", "--format", "sarif", "--root", "/nonexistent/daisy"])
        .output()
        .expect("daisy binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn daisy_knobs_lists_every_daisy_var_in_the_tree() {
    use std::collections::BTreeSet;

    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .arg("knobs")
        .output()
        .expect("daisy binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();

    // The output is the stable machine-parseable table: four
    // tab-separated fields per line, name first.
    let mut registered = BTreeSet::new();
    for line in stdout.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 4, "name<TAB>default<TAB>owner<TAB>doc: {line:?}");
        assert!(fields[0].starts_with("DAISY_"), "{line:?}");
        assert!(!fields[1].is_empty() && !fields[2].is_empty() && !fields[3].is_empty());
        registered.insert(fields[0].to_string());
    }
    assert!(registered.len() >= 15, "registry shrank? {registered:?}");

    // Round trip: every DAISY_* name appearing anywhere in the tree's
    // Rust sources or docs must be a registered knob, so the dump is
    // the complete configuration surface. Test code is exempt (the
    // lint fixtures deliberately mention bogus knobs), following the
    // same convention as rule K001: `tests/` directories are skipped
    // and a source file stops counting at its first `#[cfg(test)]`.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut mentioned = BTreeSet::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().unwrap_or_default().to_string_lossy().to_string();
            if path.is_dir() {
                if !matches!(name.as_str(), "target" | ".git" | ".github" | "tests") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") || name.ends_with(".md") {
                let mut text = std::fs::read_to_string(&path).expect("readable file");
                if name.ends_with(".rs") {
                    if let Some(cut) = text.find("#[cfg(test)]") {
                        text.truncate(cut);
                    }
                }
                let bytes = text.as_bytes();
                let mut start = 0;
                while let Some(pos) = text[start..].find("DAISY_") {
                    let begin = start + pos;
                    let glued = begin > 0
                        && (bytes[begin - 1].is_ascii_alphanumeric() || bytes[begin - 1] == b'_');
                    let mut end = begin + "DAISY_".len();
                    while end < bytes.len()
                        && (bytes[end].is_ascii_uppercase()
                            || bytes[end].is_ascii_digit()
                            || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    let word = &text[begin..end];
                    if !glued && end > begin + "DAISY_".len() && !word.ends_with('_') {
                        mentioned.insert(word.to_string());
                    }
                    start = end;
                }
            }
        }
    }
    let unregistered: Vec<&String> = mentioned.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "DAISY_* names mentioned in the tree but absent from `daisy knobs`: {unregistered:?}"
    );
}

#[test]
fn daisy_knobs_defaults_match_the_code() {
    // Spot-check that registered defaults are the values the code
    // actually falls back to, so the dump cannot quietly drift.
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .arg("knobs")
        .output()
        .expect("daisy binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let default_of = |name: &str| -> String {
        stdout
            .lines()
            .find(|l| l.split('\t').next() == Some(name))
            .unwrap_or_else(|| panic!("{name} missing from `daisy knobs`"))
            .split('\t')
            .nth(1)
            .expect("default field")
            .to_string()
    };
    assert_eq!(default_of("DAISY_CKPT_EVERY"), "1");
    assert_eq!(
        default_of("DAISY_MEM_BUDGET").parse::<usize>().expect("numeric"),
        daisy::data::store::DEFAULT_MEM_BUDGET
    );
    let serve_defaults = daisy::serve::ServeConfig::default();
    assert_eq!(
        default_of("DAISY_SERVE_MAX_CONN").parse::<usize>().expect("numeric"),
        serve_defaults.max_conn
    );
    assert_eq!(
        default_of("DAISY_SERVE_MAX_ROWS").parse::<u64>().expect("numeric"),
        serve_defaults.max_rows
    );
    assert_eq!(
        default_of("DAISY_SERVE_TIMEOUT_MS").parse::<u64>().expect("numeric"),
        serve_defaults.timeout_ms
    );
    assert_eq!(
        default_of("DAISY_SERVE_DRAIN_MS").parse::<u64>().expect("numeric"),
        serve_defaults.drain_ms
    );
}
