//! The `daisy lint` subcommand, end to end through the real binary:
//! same engine, same exit-code contract as the standalone `daisy-lint`
//! bin, wired into the main CLI.

use std::process::Command;

#[test]
fn daisy_lint_is_clean_on_the_repo_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .arg("lint")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("daisy binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");
}

#[test]
fn daisy_lint_json_emits_the_machine_report() {
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .args(["lint", "--json"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("daisy binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"tool\":\"daisy-lint\",\"version\":1,"), "{stdout}");
    assert!(stdout.contains("\"findings\":[]"), "{stdout}");
}

#[test]
fn daisy_lint_usage_errors_exit_2_without_the_synth_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_daisy"))
        .args(["lint", "--no-such-flag"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("daisy binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("SYNTH OPTIONS"), "lint must not print the synthesis help");
}
