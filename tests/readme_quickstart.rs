//! Compile-guard for the README quick-start snippet.
//!
//! The function body below mirrors the `## Install & quickstart` code
//! block in `README.md` line for line (only the dataset size and
//! iteration budget are allowed to differ). If the public API drifts,
//! this file stops compiling and the README must be updated with it.

use daisy::prelude::*;

fn readme_quickstart() -> Result<(), TrainError> {
    // Any labeled relational table; here the Adult-like structural stand-in.
    let table: Table = daisy::datasets::by_name("Adult").unwrap().generate(300, 1);
    let mut rng = Rng::seed_from_u64(7);
    let (train, _valid, test) = table.split_train_valid_test(&mut rng);

    // The paper's recommended design point for skewed labels:
    // conditional training, one-hot + GMM transformation.
    let mut config = SynthesizerConfig::new(NetworkKind::Lstm, TrainConfig::ctrain(40));
    config.transform = TransformConfig::gn_ht();

    // `try_fit` trains under the resilience guard and returns a typed
    // `TrainError` instead of panicking; `Synthesizer::fit` is the
    // panicking shorthand. Every fitted model carries a health report.
    let fitted = Synthesizer::try_fit(&train, &config)?;
    println!("training: {}", fitted.outcome().summary());
    let synthetic = fitted.generate(train.n_rows(), &mut rng);

    // Utility: |F1(real-trained) − F1(synthetic-trained)| on the test set.
    let report = classification_utility(
        &train,
        &synthetic,
        &test,
        || Box::new(daisy::eval::DecisionTree::new(10)),
        &mut rng,
    );
    println!("F1 Diff = {:.3}", report.f1_diff);

    // Privacy risk of the release.
    let hit = daisy::eval::hitting_rate(&train, &synthetic, 5000, &mut rng);
    let dcr = daisy::eval::dcr(&train, &synthetic, 3000, &mut rng);
    println!("hitting rate = {hit:.4}, DCR = {dcr:.3}");
    Ok(())
}

#[test]
fn quickstart_snippet_runs() {
    readme_quickstart().expect("README quick-start pipeline trains");
}
