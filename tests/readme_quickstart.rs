//! Compile-guard for the README quick-start snippet.
//!
//! The function body below mirrors the `## Install & quickstart` code
//! block in `README.md` line for line (only the dataset size and
//! iteration budget are allowed to differ). If the public API drifts,
//! this file stops compiling and the README must be updated with it.

use daisy::prelude::*;

fn readme_quickstart() -> Result<(), TrainError> {
    // Any labeled relational table; here the Adult-like structural stand-in.
    let table: Table = daisy::datasets::by_name("Adult").unwrap().generate(300, 1);
    let mut rng = Rng::seed_from_u64(7);
    let (train, _valid, test) = table.split_train_valid_test(&mut rng);

    // The paper's recommended design point for skewed labels:
    // conditional training, one-hot + GMM transformation.
    let mut config = SynthesizerConfig::new(NetworkKind::Lstm, TrainConfig::ctrain(40));
    config.transform = TransformConfig::gn_ht();

    // `try_fit` trains under the resilience guard and returns a typed
    // `TrainError` instead of panicking; `Synthesizer::fit` is the
    // panicking shorthand. Every fitted model carries a health report.
    let fitted = Synthesizer::try_fit(&train, &config)?;
    println!("training: {}", fitted.outcome().summary());
    let synthetic = fitted.generate(train.n_rows(), &mut rng);

    // Utility: |F1(real-trained) − F1(synthetic-trained)| on the test set.
    let report = classification_utility(
        &train,
        &synthetic,
        &test,
        || Box::new(daisy::eval::DecisionTree::new(10)),
        &mut rng,
    );
    println!("F1 Diff = {:.3}", report.f1_diff);

    // Privacy risk of the release.
    let hit = daisy::eval::hitting_rate(&train, &synthetic, 5000, &mut rng);
    let dcr = daisy::eval::dcr(&train, &synthetic, 3000, &mut rng);
    println!("hitting rate = {hit:.4}, DCR = {dcr:.3}");
    Ok(())
}

#[test]
fn quickstart_snippet_runs() {
    readme_quickstart().expect("README quick-start pipeline trains");
}

/// Mirrors the `## Serving` code block in `README.md` line for line
/// (only the model provenance differs: the README assumes a saved
/// `model.daisy`, the test trains and saves a tiny stand-in first).
fn readme_serving(model_daisy: &std::path::Path) -> Result<(), ServeError> {
    // Serve a saved model and stream rows to a client, byte-reproducibly.
    let server = Server::bind(model_daisy, "127.0.0.1:0", ServeConfig::default())?;
    let addr = server.local_addr()?;
    // daisy-lint: allow(D003) -- README snippet; responses are seed-reproducible
    std::thread::spawn(move || server.run());
    let response = daisy::serve::fetch(addr, &Request::new(7, 1000))?;
    assert_eq!(response.rows.len(), 1000);
    Ok(())
}

#[test]
fn serving_snippet_runs() {
    let table: Table = daisy::datasets::by_name("HTRU2").unwrap().generate(300, 1);
    let mut tc = TrainConfig::vtrain(10);
    tc.batch_size = 32;
    tc.epochs = 1;
    let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    cfg.g_hidden = vec![16];
    cfg.d_hidden = vec![16];
    let fitted = Synthesizer::fit(&table, &cfg);
    let path = std::env::temp_dir().join("daisy-readme-serving-model.bin");
    fitted.save(&path).expect("stand-in model saves");
    readme_serving(&path).expect("README serving pipeline streams");
    std::fs::remove_file(&path).ok();
}
