//! The crash/resume contract, end to end: a training run killed at
//! step k (the deterministic stand-in for SIGKILL) and rerun against
//! the same checkpoint path must reach the *same final model, byte for
//! byte*, and the same deterministic telemetry view, as a run that was
//! never interrupted — at 1 thread and at N threads.
//!
//! Also covered here: injected I/O faults on the checkpoint write path
//! (torn write, bit flip) must never fail training or corrupt the
//! resume — a torn save is dropped in favour of the previous
//! checkpoint, a bit-flipped file is detected at load, quarantined, and
//! skipped.

use daisy::core::scratch_path;
use daisy::prelude::*;
use daisy::tensor::pool;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// 9 iterations over 3 epochs: epoch boundaries after steps 2, 5, 8,
/// so a checkpoint lands at t=3 and t=6 and the final state at t=9.
fn quick_config() -> SynthesizerConfig {
    let mut tc = TrainConfig::vtrain(9);
    tc.batch_size = 32;
    tc.epochs = 3;
    let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    cfg.g_hidden = vec![24];
    cfg.d_hidden = vec![24];
    cfg.noise_dim = 8;
    cfg
}

fn fixture() -> Table {
    daisy::datasets::SDataNum {
        correlation: 0.4,
        skew: daisy::datasets::Skew::Balanced,
    }
    .generate(300, 3)
}

/// Fits under a scoped in-memory recorder; returns the deterministic
/// trace view and the fit result as persisted model bytes.
fn traced_fit(
    table: &Table,
    ckpt: &CheckpointPlan,
    threads: usize,
) -> (String, Result<Vec<u8>, TrainError>) {
    pool::set_threads(threads);
    let rec = Arc::new(daisy::telemetry::MemoryRecorder::new());
    let mut result = None;
    daisy::telemetry::with_recorder(rec.clone(), || {
        result = Some(
            Synthesizer::try_fit_checkpointed(
                table,
                &quick_config(),
                &GuardConfig::default(),
                &FaultPlan::none(),
                ckpt,
            )
            .map(|fitted| fitted.to_bytes()),
        );
    });
    pool::set_threads(1);
    let view = daisy::telemetry::trace::deterministic_view(&rec.to_jsonl())
        .expect("recorded trace validates");
    (view, result.unwrap())
}

/// Drops the `"seq":N,` field so traces can be compared across runs
/// whose event streams start at different sequence numbers.
fn strip_seq(line: &str) -> String {
    let Some(start) = line.find("\"seq\":") else {
        return line.to_string();
    };
    let rest = &line[start + "\"seq\":".len()..];
    let end = rest.find(',').map(|i| i + 1).unwrap_or(rest.len());
    format!("{}{}", &line[..start], &rest[end..])
}

fn cleanup(path: &Path) {
    for ext in ["", ".prev", ".tmp", ".corrupt-0", ".corrupt-1"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(ext);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
}

/// Kill exactly at an epoch boundary (t=3, right after the epoch-0
/// checkpoint): the killed trace must be a byte prefix of the
/// uninterrupted one, and the resumed trace must be the restore
/// preamble plus — modulo sequence numbers — exactly the uninterrupted
/// trace's remainder. Final model bytes must match too.
fn boundary_kill_roundtrip(threads: usize) {
    let table = fixture();
    let ref_path = scratch_path("resume-ref");
    let kill_path = scratch_path("resume-kill");

    let (full_view, full_bytes) = traced_fit(&table, &CheckpointPlan::at(&ref_path), threads);
    let full_bytes = full_bytes.expect("uninterrupted fit succeeds");

    let (killed_view, killed) =
        traced_fit(&table, &CheckpointPlan::at(&kill_path).kill_at(3), threads);
    match killed {
        Err(TrainError::Interrupted { step, epoch }) => {
            assert_eq!((step, epoch), (3, 1));
        }
        other => panic!("expected an interrupted run, got {other:?}"),
    }
    assert!(
        full_view.starts_with(&killed_view),
        "killed trace is not a byte prefix of the uninterrupted trace\n\
         killed:\n{killed_view}\nfull:\n{full_view}"
    );

    let (resumed_view, resumed_bytes) = traced_fit(&table, &CheckpointPlan::at(&kill_path), threads);
    assert_eq!(
        resumed_bytes.expect("resumed fit succeeds"),
        full_bytes,
        "resumed model differs from the uninterrupted one"
    );

    let full_lines: Vec<&str> = full_view.lines().collect();
    let resumed_lines: Vec<&str> = resumed_view.lines().collect();
    let killed_len = killed_view.lines().count();
    assert_eq!(resumed_lines[0], full_lines[0], "fit_start differs");
    assert_eq!(resumed_lines[1], full_lines[1], "train_start differs");
    assert!(
        resumed_lines[2].contains("\"event\":\"checkpoint_restore\""),
        "expected a restore event, got {}",
        resumed_lines[2]
    );
    let resumed_tail: Vec<String> = resumed_lines[3..].iter().map(|l| strip_seq(l)).collect();
    let full_tail: Vec<String> = full_lines[killed_len..].iter().map(|l| strip_seq(l)).collect();
    assert_eq!(
        resumed_tail, full_tail,
        "resumed trace tail differs from the uninterrupted remainder"
    );

    cleanup(&ref_path);
    cleanup(&kill_path);
}

#[test]
fn boundary_kill_resume_is_bit_exact_at_1_thread() {
    boundary_kill_roundtrip(1);
}

#[test]
fn boundary_kill_resume_is_bit_exact_at_n_threads() {
    boundary_kill_roundtrip(6);
}

/// Kill mid-epoch (t=4): resume restores the epoch-0 boundary and
/// replays the partial epoch, still landing on identical final bytes.
#[test]
fn mid_epoch_kill_resume_is_bit_exact() {
    let table = fixture();
    let ref_path = scratch_path("resume-mid-ref");
    let kill_path = scratch_path("resume-mid-kill");
    let (_, full_bytes) = traced_fit(&table, &CheckpointPlan::at(&ref_path), 1);
    let (_, killed) = traced_fit(&table, &CheckpointPlan::at(&kill_path).kill_at(4), 1);
    assert!(matches!(killed, Err(TrainError::Interrupted { step: 4, epoch: 1 })));
    let (resumed_view, resumed_bytes) = traced_fit(&table, &CheckpointPlan::at(&kill_path), 1);
    assert!(resumed_view.contains("\"event\":\"checkpoint_restore\""));
    assert_eq!(resumed_bytes.unwrap(), full_bytes.unwrap());
    cleanup(&ref_path);
    cleanup(&kill_path);
}

/// A torn checkpoint write mid-run fails that save with a typed error,
/// fires exactly one telemetry fault event, and leaves training (and
/// its final model) completely untouched.
#[test]
fn torn_checkpoint_write_never_perturbs_training() {
    let table = fixture();
    let clean_path = scratch_path("torn-clean");
    let torn_path = scratch_path("torn-fault");
    let (_, clean_bytes) = traced_fit(&table, &CheckpointPlan::at(&clean_path), 1);
    let plan = CheckpointPlan::at(&torn_path).with_io_faults(IoFaultPlan::torn_write_at(1, 64));
    let (view, torn_bytes) = traced_fit(&table, &plan, 1);
    assert_eq!(
        torn_bytes.expect("fit survives the torn write"),
        clean_bytes.unwrap(),
        "a failed checkpoint save changed the trained model"
    );
    assert_eq!(
        view.matches("\"kind\":\"io_torn_write\"").count(),
        1,
        "expected exactly one fault_fired for the torn write:\n{view}"
    );
    // The torn save was dropped: the surviving checkpoint still loads
    // (it is the epoch-0 one, not the torn epoch-1 one).
    let (resumed_view, _) = traced_fit(&table, &CheckpointPlan::at(&torn_path), 1);
    assert!(resumed_view.contains("\"event\":\"checkpoint_restore\""));
    cleanup(&clean_path);
    cleanup(&torn_path);
}

/// A bit flip corrupting the latest checkpoint on disk is detected at
/// resume: the file is quarantined with a `checkpoint_corrupt_skipped`
/// event and the run falls back to the previous checkpoint — still
/// finishing bit-identical to the uninterrupted run.
#[test]
fn bit_flipped_checkpoint_is_quarantined_and_resume_falls_back() {
    let table = fixture();
    let ref_path = scratch_path("flip-ref");
    let flip_path = scratch_path("flip-fault");
    let (_, full_bytes) = traced_fit(&table, &CheckpointPlan::at(&ref_path), 1);
    // Flip a byte of the second save (epoch 1), then die at t=7: the
    // primary on disk is silently corrupt, `.prev` holds epoch 0.
    let plan = CheckpointPlan::at(&flip_path)
        .with_io_faults(IoFaultPlan::bit_flip_at(1, 2048))
        .kill_at(7);
    let (view, killed) = traced_fit(&table, &plan, 1);
    assert!(matches!(killed, Err(TrainError::Interrupted { step: 7, .. })));
    assert_eq!(view.matches("\"kind\":\"io_bit_flip\"").count(), 1);

    let (resumed_view, resumed_bytes) = traced_fit(&table, &CheckpointPlan::at(&flip_path), 1);
    assert!(
        resumed_view.contains("\"event\":\"checkpoint_corrupt_skipped\""),
        "corrupt primary was not reported:\n{resumed_view}"
    );
    assert!(resumed_view.contains("\"event\":\"checkpoint_restore\""));
    assert_eq!(
        resumed_bytes.expect("resume survives the corrupt primary"),
        full_bytes.unwrap(),
        "fallback resume diverged from the uninterrupted run"
    );
    // The corrupt file was moved aside, not deleted.
    let mut quarantined = flip_path.as_os_str().to_os_string();
    quarantined.push(".corrupt-0");
    assert!(PathBuf::from(quarantined).exists());
    cleanup(&ref_path);
    cleanup(&flip_path);
}
