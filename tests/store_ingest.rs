//! End-to-end contract of the out-of-core data plane, through the
//! public crate API only: a dataset is written to CSV, streamed into a
//! sealed chunk store, killed mid-flight, resumed, rotted on disk, and
//! finally used to train — with every failure surfacing as a typed
//! error and every recovery converging to the byte-identical store a
//! clean run would have produced.

use daisy::data::{
    ingest_csv, ChunkStore, DataError, DataFaultPlan, IngestConfig, RecordCodec, RowErrorPolicy,
    TransformConfig,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("daisy-itest-store")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_dataset_csv(dir: &Path, rows: usize, seed: u64) -> PathBuf {
    let table = daisy::datasets::by_name("Adult").unwrap().generate(rows, seed);
    let path = dir.join("input.csv");
    let file = std::fs::File::create(&path).unwrap();
    daisy::data::csv::write_csv(&table, std::io::BufWriter::new(file)).unwrap();
    path
}

fn cfg(chunk_rows: usize) -> IngestConfig {
    IngestConfig {
        chunk_rows,
        label: Some("label".to_string()),
        ..IngestConfig::default()
    }
}

/// Every file in `dir`, sorted by name, with its exact bytes.
fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn killed_ingest_resumes_to_the_clean_run_byte_for_byte() {
    let base = scratch("kill-resume");
    let input = write_dataset_csv(&base, 700, 41);
    let clean = base.join("clean");
    let report = ingest_csv(&input, &clean, &cfg(128)).unwrap();
    assert_eq!(report.rows, 700);
    assert_eq!(report.chunks, 6);
    let want = dir_bytes(&clean);

    // Kill before the first seal, mid-chunk, exactly on a seal
    // boundary, and deep into the file: resume must converge from all
    // of them.
    for kill_row in [0, 63, 128, 511, 698] {
        let dir = base.join(format!("killed-{kill_row}"));
        let mut killed = cfg(128);
        killed.faults = DataFaultPlan::kill_at_row(kill_row);
        let err = ingest_csv(&input, &dir, &killed).unwrap_err();
        assert!(
            matches!(err, DataError::Interrupted { .. }),
            "kill at {kill_row}: {err}"
        );
        let resumed = ingest_csv(&input, &dir, &cfg(128)).unwrap();
        assert_eq!(resumed.rows, 700, "kill at {kill_row}");
        assert_eq!(
            dir_bytes(&dir),
            want,
            "resume after kill at row {kill_row} must be byte-identical"
        );
    }

    // And the converged store round-trips the original rows exactly.
    let store = ChunkStore::open(&clean).unwrap();
    let file = std::fs::File::open(&input).unwrap();
    let reference =
        daisy::data::csv::read_csv(std::io::BufReader::new(file), Some("label")).unwrap();
    assert_eq!(store.to_table().unwrap(), reference);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn on_disk_bit_rot_is_quarantined_not_fatal() {
    let base = scratch("bit-rot");
    let input = write_dataset_csv(&base, 300, 7);
    let store_dir = base.join("store");
    ingest_csv(&input, &store_dir, &cfg(64)).unwrap();

    // Flip one payload byte of a sealed chunk on disk.
    let victim = store_dir.join("chunk-000002.dch");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    let store = ChunkStore::open(&store_dir).unwrap();
    let err = store.chunk(2).unwrap_err();
    assert!(
        matches!(err, DataError::CorruptChunk { .. }),
        "checksum mismatch must be typed: {err}"
    );
    // The rotten file is moved aside with its bytes preserved for
    // forensics, and the rest of the store stays readable.
    assert!(!victim.exists(), "corrupt chunk must leave the hot path");
    let quarantined = store_dir.join("chunk-000002.dch.corrupt-0");
    assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
    for k in [0usize, 1, 3, 4] {
        assert!(store.chunk(k).is_ok(), "chunk {k} must survive");
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn skip_policy_quarantines_bad_rows_with_line_numbers() {
    let base = scratch("skip-policy");
    let input = base.join("dirty.csv");
    let mut file = std::fs::File::create(&input).unwrap();
    // Line 3 has a non-finite weight, line 5 is ragged (the header is
    // line 1).
    write!(
        file,
        "age,weight,label\n\
         30,71.5,a\n\
         41,NaN,b\n\
         35,80.1,a\n\
         50,62.0\n\
         28,59.9,b\n\
         44,70.2,a\n"
    )
    .unwrap();
    drop(file);

    // Strict policy: the first bad row is fatal, typed, and names its
    // input line. Structural errors surface already in the schema
    // pass, so the ragged line 5 aborts before the chunk pass would
    // reach line 3's NaN.
    let strict_dir = base.join("strict");
    let err = ingest_csv(&input, &strict_dir, &cfg(4)).unwrap_err();
    assert!(
        matches!(err, DataError::RaggedRow { line: 5, .. }),
        "strict error is typed with its line: {err}"
    );

    // Skip policy: bad rows land in rejected.txt with line numbers and
    // their raw text, good rows are sealed.
    let skip_dir = base.join("skip");
    let mut skip_cfg = cfg(4);
    skip_cfg.policy = RowErrorPolicy::SkipWithBudget { budget: 5 };
    let report = ingest_csv(&input, &skip_dir, &skip_cfg).unwrap();
    assert_eq!(report.rows, 4);
    assert_eq!(report.rejected, 2);
    let rejected = std::fs::read_to_string(skip_dir.join("rejected.txt")).unwrap();
    let lines: Vec<&str> = rejected.lines().collect();
    assert_eq!(lines.len(), 2, "one quarantine line per rejected row:\n{rejected}");
    assert!(lines[0].starts_with("line 3:"), "line number recorded: {}", lines[0]);
    assert!(lines[0].ends_with("41,NaN,b"), "raw row preserved: {}", lines[0]);
    assert!(lines[1].starts_with("line 5:"), "line number recorded: {}", lines[1]);
    assert!(lines[1].ends_with("50,62.0"), "raw row preserved: {}", lines[1]);

    // A budget of 1 is exhausted by the second bad row.
    let tight_dir = base.join("tight");
    let mut tight_cfg = cfg(4);
    tight_cfg.policy = RowErrorPolicy::SkipWithBudget { budget: 1 };
    let err = ingest_csv(&input, &tight_dir, &tight_cfg).unwrap_err();
    assert!(
        matches!(err, DataError::RowBudgetExhausted { .. }),
        "budget exhaustion is typed: {err}"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn store_backed_codec_matches_chunked_fit_over_same_rows() {
    let base = scratch("codec-parity");
    let input = write_dataset_csv(&base, 256, 9);
    let store_dir = base.join("store");
    ingest_csv(&input, &store_dir, &cfg(50)).unwrap();
    let store = ChunkStore::open(&store_dir).unwrap();

    // Fitting over the on-disk store and over an in-memory chunk view
    // of the same rows must agree exactly: the codec only sees the
    // ChunkSource trait, never the storage.
    let config = TransformConfig::sn_ht();
    let from_store = RecordCodec::fit_chunks(&store, &config).unwrap();
    let table = store.to_table().unwrap();
    let chunks = daisy::data::TableChunks::new(table.clone(), 50);
    let from_memory = RecordCodec::fit_chunks(&chunks, &config).unwrap();
    assert_eq!(from_store.width(), from_memory.width());
    let enc_store = from_store.encode_table(&table);
    let enc_memory = from_memory.encode_table(&table);
    assert_eq!(enc_store, enc_memory);
    std::fs::remove_dir_all(&base).ok();
}
