//! Cross-crate edge cases: unusual shapes, degenerate data, and error
//! paths that the per-module unit tests do not reach.

use daisy::data::{Attribute, Column, Schema, Table};
use daisy::prelude::*;

fn quick(network: NetworkKind, iterations: usize) -> SynthesizerConfig {
    let mut tc = TrainConfig::vtrain(iterations);
    tc.batch_size = 16;
    tc.epochs = 2;
    let mut cfg = SynthesizerConfig::new(network, tc);
    cfg.g_hidden = vec![24];
    cfg.d_hidden = vec![24];
    cfg.noise_dim = 8;
    cfg.cnn_channels = 4;
    cfg
}

#[test]
fn single_attribute_table_synthesizes() {
    // One numeric column and nothing else (no label).
    let mut rng = Rng::seed_from_u64(0);
    let table = Table::new(
        Schema::new(vec![Attribute::numerical("x")]),
        vec![Column::Num((0..300).map(|_| rng.normal_ms(5.0, 2.0)).collect())],
    );
    let fitted = Synthesizer::fit(&table, &quick(NetworkKind::Mlp, 60));
    let syn = fitted.generate(50, &mut rng);
    assert_eq!(syn.n_rows(), 50);
    assert!(syn.column(0).as_num().iter().all(|v| v.is_finite()));
}

#[test]
fn constant_columns_survive_the_pipeline() {
    let mut rng = Rng::seed_from_u64(1);
    let table = Table::new(
        Schema::with_label(
            vec![
                Attribute::numerical("const_num"),
                Attribute::categorical("const_cat"),
                Attribute::numerical("varies"),
                Attribute::categorical("y"),
            ],
            3,
        ),
        vec![
            Column::Num(vec![7.0; 200]),
            Column::cat_with_domain(vec![0; 200], 1),
            Column::Num((0..200).map(|_| rng.normal()).collect()),
            Column::cat_with_domain((0..200).map(|_| rng.usize(2) as u32).collect(), 2),
        ],
    );
    for config in [TransformConfig::sn_od(), TransformConfig::gn_ht()] {
        let codec = daisy::data::RecordCodec::fit(&table, &config);
        let back = codec.decode_table(&codec.encode_table(&table));
        assert!(back.column(0).as_num().iter().all(|&v| (v - 7.0).abs() < 1e-6));
        assert!(back.column(1).as_cat().iter().all(|&c| c == 0));
    }
    // And the full GAN pipeline does not blow up on them. (The GMM
    // std floor of 1e-4 lets decoded constants wiggle by ±2e-4.)
    let fitted = Synthesizer::fit(&table, &quick(NetworkKind::Mlp, 40));
    let syn = fitted.generate(30, &mut rng);
    assert!(syn.column(0).as_num().iter().all(|&v| (v - 7.0).abs() < 1e-3));
}

#[test]
fn wide_table_goes_through_lstm_and_cnn() {
    // 36 numeric attributes (SAT-like): LSTM unrolls 72 steps under
    // gn; CNN packs into a 7x7 matrix (36 -> side 6... ceil(sqrt(37))
    // with label = 7x7? 37 attrs -> side 7).
    let spec = daisy::datasets::by_name("SAT").unwrap();
    let table = spec.generate(250, 2);
    let mut rng = Rng::seed_from_u64(3);
    for network in [NetworkKind::Lstm, NetworkKind::Cnn] {
        let fitted = Synthesizer::fit(&table, &quick(network, 20));
        let syn = fitted.generate(20, &mut rng);
        assert_eq!(syn.n_attrs(), table.n_attrs(), "{network:?}");
    }
}

#[test]
fn batch_larger_than_table_is_fine() {
    let table = daisy::datasets::by_name("HTRU2").unwrap().generate(40, 4);
    let mut cfg = quick(NetworkKind::Mlp, 30);
    cfg.train.batch_size = 128; // far more than 40 rows: sampling w/ replacement
    let fitted = Synthesizer::fit(&table, &cfg);
    let mut rng = Rng::seed_from_u64(5);
    assert_eq!(fitted.generate(10, &mut rng).n_rows(), 10);
}

#[test]
fn generate_more_rows_than_training() {
    let table = daisy::datasets::by_name("HTRU2").unwrap().generate(200, 6);
    let fitted = Synthesizer::fit(&table, &quick(NetworkKind::Mlp, 40));
    let mut rng = Rng::seed_from_u64(7);
    let syn = fitted.generate(1000, &mut rng);
    assert_eq!(syn.n_rows(), 1000);
}

#[test]
fn snapshots_are_independent() {
    // Different epochs must generally produce different generators.
    let table = daisy::datasets::by_name("HTRU2").unwrap().generate(300, 8);
    let mut cfg = quick(NetworkKind::Mlp, 100);
    cfg.train.epochs = 4;
    let mut fitted = Synthesizer::fit(&table, &cfg);
    let mut rng_a = Rng::seed_from_u64(9);
    let mut rng_b = Rng::seed_from_u64(9);
    let first = fitted.generate_from_snapshot(0, 30, &mut rng_a);
    let last = fitted.generate_from_snapshot(3, 30, &mut rng_b);
    assert_ne!(first, last, "epoch snapshots identical");
    // And generate_from_snapshot restores the selection afterwards.
    assert_eq!(fitted.selected_epoch(), 3);
}

#[test]
fn wasserstein_trains_cnn() {
    let table = daisy::datasets::by_name("HTRU2").unwrap().generate(250, 10);
    let mut cfg = quick(NetworkKind::Cnn, 20);
    cfg.train = TrainConfig::wtrain(20);
    cfg.train.batch_size = 16;
    cfg.train.epochs = 2;
    let fitted = Synthesizer::fit(&table, &cfg);
    let mut rng = Rng::seed_from_u64(11);
    assert_eq!(fitted.generate(10, &mut rng).n_rows(), 10);
}

#[test]
#[should_panic(expected = "conditional GAN requires a labeled table")]
fn conditional_on_unlabeled_panics() {
    let table = daisy::datasets::by_name("Bing").unwrap().generate(100, 12);
    let mut cfg = quick(NetworkKind::Mlp, 10);
    cfg.train.conditional = true;
    let _ = Synthesizer::fit(&table, &cfg);
}

#[test]
#[should_panic(expected = "does not support conditional")]
fn conditional_cnn_panics() {
    let table = daisy::datasets::by_name("HTRU2").unwrap().generate(100, 13);
    let mut cfg = quick(NetworkKind::Cnn, 10);
    cfg.train.conditional = true;
    let _ = Synthesizer::fit(&table, &cfg);
}

#[test]
fn vae_handles_wide_categorical_tables() {
    let spec = daisy::datasets::by_name("Census").unwrap();
    let table = spec.generate(300, 14);
    let vae = Vae::fit(
        &table,
        &VaeConfig {
            iterations: 60,
            hidden: vec![32],
            ..VaeConfig::default()
        },
    );
    let mut rng = Rng::seed_from_u64(15);
    let syn = vae.generate(40, &mut rng);
    assert_eq!(syn.n_attrs(), table.n_attrs());
}

#[test]
fn privbayes_on_single_column() {
    let mut rng = Rng::seed_from_u64(16);
    let table = Table::new(
        Schema::new(vec![Attribute::categorical("only")]),
        vec![Column::cat_with_domain(
            (0..500).map(|_| rng.usize(3) as u32).collect(),
            3,
        )],
    );
    let pb = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(4.0));
    let syn = pb.generate(500, &mut rng);
    // Marginal roughly preserved even with one attribute.
    let count0 = syn.column(0).as_cat().iter().filter(|&&c| c == 0).count();
    assert!((count0 as f64 / 500.0 - 1.0 / 3.0).abs() < 0.15);
}

#[test]
fn duplicated_rows_flag_collapse_after_decode() {
    // A generator emitting constants must be caught by the detector.
    let table = daisy::datasets::by_name("HTRU2").unwrap().generate(100, 17);
    let codec = daisy::data::RecordCodec::fit(&table, &TransformConfig::sn_od());
    let constant = daisy::tensor::Tensor::zeros(&[100, codec.width()]);
    let decoded = codec.decode_table(&constant);
    assert!(daisy::core::is_collapsed(&decoded, 0.9));
}
