//! Cross-method integration: every synthesizer implements the common
//! interface and produces schema-faithful tables; relative behaviours
//! that are stable at small scale hold.

use daisy::prelude::*;

#[test]
fn all_methods_produce_schema_faithful_tables() {
    let spec = daisy::datasets::by_name("Adult").unwrap();
    let table = spec.generate(700, 1);
    let mut rng = Rng::seed_from_u64(2);

    let mut tc = TrainConfig::vtrain(80);
    tc.batch_size = 32;
    tc.epochs = 2;
    let mut gan_cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    gan_cfg.g_hidden = vec![32];
    gan_cfg.d_hidden = vec![32];
    let gan = Synthesizer::fit(&table, &gan_cfg);
    let vae = Vae::fit(
        &table,
        &VaeConfig {
            iterations: 200,
            hidden: vec![32],
            ..VaeConfig::default()
        },
    );
    let pb = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(1.0));
    let ind = IndependentMarginals::fit(&table);

    let methods: Vec<&dyn TableSynthesizer> = vec![&gan, &vae, &pb, &ind];
    for method in methods {
        let syn = method.synthesize(150, &mut rng);
        assert_eq!(syn.schema(), table.schema(), "{}", method.method_name());
        assert_eq!(syn.n_rows(), 150);
        // Numeric columns contain finite values.
        for j in 0..syn.n_attrs() {
            if let daisy::data::Column::Num(v) = &syn.columns()[j] {
                assert!(v.iter().all(|x| x.is_finite()), "{}", method.method_name());
            }
        }
    }
}

#[test]
fn privbayes_epsilon_tradeoff_on_dependence() {
    // Tighter epsilon must hurt the preserved dependence (monotone in
    // expectation; compared at the extremes to stay robust).
    let table = daisy::datasets::SDataCat::new(0.9, daisy::datasets::Skew::Balanced)
        .generate(3000, 3);
    let dependence = |syn: &daisy::data::Table| {
        let a = syn.column(0).as_cat();
        let b = syn.column(1).as_cat();
        a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / syn.n_rows() as f64
    };
    let mut rng = Rng::seed_from_u64(4);
    let loose = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(16.0))
        .synthesize(3000, &mut rng);
    let tight = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(0.01))
        .synthesize(3000, &mut rng);
    assert!(
        dependence(&loose) > dependence(&tight) + 0.1,
        "loose {} vs tight {}",
        dependence(&loose),
        dependence(&tight)
    );
}

#[test]
fn independent_marginals_lose_to_structure_aware_methods_on_aqp() {
    // Group-by queries over correlated attributes punish the
    // correlation-destroying baseline.
    use daisy::eval::{generate_workload, workload_error};
    let table = daisy::datasets::SDataCat::new(0.9, daisy::datasets::Skew::Balanced)
        .generate(4000, 5);
    let mut rng = Rng::seed_from_u64(6);
    let queries = generate_workload(&table, 200, &mut rng);
    let ind = IndependentMarginals::fit(&table).synthesize(4000, &mut rng);
    let pb = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(16.0))
        .synthesize(4000, &mut rng);
    let e_ind = workload_error(&table, &ind, &queries);
    let e_pb = workload_error(&table, &pb, &queries);
    assert!(
        e_pb < e_ind,
        "structure-aware PB ({e_pb}) should beat independent ({e_ind})"
    );
}

#[test]
fn vae_and_gan_share_the_record_codec_contract() {
    // Both neural methods must decode through the same reversible
    // transformation, so category codes always stay in-domain.
    let spec = daisy::datasets::by_name("Census").unwrap();
    let table = spec.generate(500, 7);
    let mut rng = Rng::seed_from_u64(8);
    let vae = Vae::fit(
        &table,
        &VaeConfig {
            iterations: 100,
            hidden: vec![32],
            ..VaeConfig::default()
        },
    );
    let syn = vae.synthesize(200, &mut rng);
    for j in 0..syn.n_attrs() {
        if let daisy::data::Column::Cat { codes, categories } = &syn.columns()[j] {
            assert!(codes.iter().all(|&c| (c as usize) < categories.len()));
        }
    }
}
