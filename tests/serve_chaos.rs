//! Chaos tests for the serving plane: every injected network fault —
//! torn frames, stalled reads, mid-stream resets, a hot reload racing
//! a stream, a full disk under quarantine, a graceful drain — must end
//! in either a byte-identical reassembled stream or a typed error,
//! never a hang, a panic, or silently wrong rows.
//!
//! Faults are scripted through `daisy::serve::fault::ChaosProxy`, so
//! each failure lands at an exact frame or byte offset: the tests are
//! deterministic, not sleep-and-hope.

use daisy::prelude::*;
use daisy::serve::fault::{ChaosProxy, FaultPlan, ServeFault};
use daisy::serve::{
    fetch, fetch_raw, fetch_resumable, read_frame, serve_connection, RetryPolicy, ServeState,
    StreamDecoder, StreamItem, MAX_REQUEST_FRAME,
};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Trains one small conditional model and saves it once for the whole
/// test binary (same fixture shape as `serve_stream.rs`).
fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let spec = daisy::datasets::by_name("Adult").unwrap();
        let table = spec.generate(500, 3);
        let mut tc = TrainConfig::ctrain(60);
        tc.batch_size = 32;
        tc.epochs = 1;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![16];
        cfg.d_hidden = vec![16];
        let fitted = Synthesizer::fit(&table, &cfg);
        let path = std::env::temp_dir().join("daisy-serve-chaos-model.bin");
        fitted.save(&path).expect("test model saves");
        path
    })
}

/// A second model with different weights (different training seed), so
/// reload tests can observe the fingerprint actually change.
fn alt_model_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let spec = daisy::datasets::by_name("Adult").unwrap();
        let table = spec.generate(500, 3);
        let mut tc = TrainConfig::ctrain(60);
        tc.batch_size = 32;
        tc.epochs = 1;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![16];
        cfg.d_hidden = vec![16];
        cfg.seed = 99;
        let fitted = Synthesizer::fit(&table, &cfg);
        let path = std::env::temp_dir().join("daisy-serve-chaos-alt-model.bin");
        fitted.save(&path).expect("alt model saves");
        std::fs::read(&path).expect("alt model bytes")
    })
}

/// A private, per-test copy of the fixture model, so reload/corruption
/// tests never race the other tests sharing the fixture file.
fn private_model_copy(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("daisy-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("model.bin");
    std::fs::copy(model_path(), &path).expect("model copies");
    path
}

/// Binds and detaches a server, returning the shared handle and its
/// serving address.
fn spawn_server(model: &PathBuf, cfg: ServeConfig) -> (Arc<Server>, std::net::SocketAddr) {
    let server = Arc::new(Server::bind(model, "127.0.0.1:0", cfg).expect("server binds"));
    let addr = server.local_addr().expect("server has an address");
    let handle = Arc::clone(&server);
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = handle.run();
    });
    (server, addr)
}

#[test]
fn torn_frame_retry_reassembles_byte_identical_stream() {
    let (server, addr) = spawn_server(model_path(), ServeConfig::default());
    let request = Request::new(11, 1000);

    let (direct, clean) =
        fetch_resumable(addr, &request, &RetryPolicy::default()).expect("clean fetch");
    assert_eq!(clean.attempts, 1, "no faults on the direct path");
    assert_eq!(direct.rows.len(), 1000);

    // Tear mid-frame after the header and one data frame have passed.
    let plan = FaultPlan::new(vec![ServeFault::TornFrame { after_frames: 2 }]);
    // daisy-lint: allow(D003) -- scripted chaos proxy; its faults are deterministic, not scheduled
    let proxy = ChaosProxy::spawn(addr, plan, Some(server.shared_model())).expect("proxy spawns");
    let (resumed, report) =
        fetch_resumable(proxy.addr(), &request, &RetryPolicy::default()).expect("retry converges");

    assert_eq!(report.attempts, 2, "one tear, one clean retry");
    assert_eq!(resumed.rows, direct.rows, "rows identical after reassembly");
    assert_eq!(
        report.payload, clean.payload,
        "reassembled payload bytes identical to the uninterrupted fetch"
    );
    assert_eq!(proxy.plan().remaining(), 0, "the scripted fault was consumed");
}

#[test]
fn mid_stream_reset_resumes_at_the_last_validated_row() {
    let (server, addr) = spawn_server(model_path(), ServeConfig::default());
    let request = Request::conditioned(3, 900, &conditional_category());

    let (direct, clean) =
        fetch_resumable(addr, &request, &RetryPolicy::default()).expect("clean fetch");
    assert_eq!(clean.attempts, 1);

    // Two resets on consecutive connections, then clean: the client
    // must converge in exactly three attempts, never re-receiving a
    // validated row.
    let plan = FaultPlan::new(vec![
        ServeFault::MidStreamReset { after_frames: 2 },
        ServeFault::MidStreamReset { after_frames: 1 },
    ]);
    // daisy-lint: allow(D003) -- scripted chaos proxy; its faults are deterministic, not scheduled
    let proxy = ChaosProxy::spawn(addr, plan, Some(server.shared_model())).expect("proxy spawns");
    let (resumed, report) =
        fetch_resumable(proxy.addr(), &request, &RetryPolicy::default()).expect("retry converges");

    assert_eq!(report.attempts, 3);
    assert_eq!(resumed.rows, direct.rows);
    assert_eq!(report.payload, clean.payload);
}

#[test]
fn stalled_request_hits_the_server_deadline_and_the_client_recovers() {
    let cfg = ServeConfig {
        timeout_ms: 300,
        ..ServeConfig::default()
    };
    let (server, addr) = spawn_server(model_path(), cfg);
    let request = Request::new(21, 600);

    let (direct, _) =
        fetch_resumable(addr, &request, &RetryPolicy::default()).expect("clean fetch");

    let timeouts_before = daisy::telemetry::metrics::counter("serve.timeouts").get();
    // Deliver 8 bytes of the request, then stall with the connection
    // held open: the server's read deadline — not a truncation — must
    // evict the connection.
    let plan = FaultPlan::new(vec![ServeFault::StalledRead { after_bytes: 8 }]);
    // daisy-lint: allow(D003) -- scripted chaos proxy; its faults are deterministic, not scheduled
    let proxy = ChaosProxy::spawn(addr, plan, Some(server.shared_model())).expect("proxy spawns");
    let (resumed, report) =
        fetch_resumable(proxy.addr(), &request, &RetryPolicy::default()).expect("retry converges");

    assert_eq!(report.attempts, 2, "one stalled attempt, one clean retry");
    assert_eq!(resumed.rows, direct.rows);
    assert!(
        daisy::telemetry::metrics::counter("serve.timeouts").get() > timeouts_before,
        "the eviction must be counted as a deadline timeout"
    );
}

#[test]
fn reload_during_stream_finishes_on_the_old_model() {
    let model = private_model_copy("reload-mid-stream");
    let (server, addr) = spawn_server(&model, ServeConfig::default());
    let request = Request::new(5, 1200);

    let (direct, clean) =
        fetch_resumable(addr, &request, &RetryPolicy::default()).expect("clean fetch");
    let old_fingerprint = server.shared_model().facts().fingerprint;

    // Put different weights at the model path, then let the proxy
    // trigger the reload after two response frames are in flight.
    std::fs::write(&model, alt_model_bytes()).expect("alt model lands at the path");
    let plan = FaultPlan::new(vec![ServeFault::ReloadDuringStream { after_frames: 2 }]);
    // daisy-lint: allow(D003) -- scripted chaos proxy; its faults are deterministic, not scheduled
    let proxy = ChaosProxy::spawn(addr, plan, Some(server.shared_model())).expect("proxy spawns");
    let (streamed, report) =
        fetch_resumable(proxy.addr(), &request, &RetryPolicy::default()).expect("stream completes");

    assert_eq!(report.attempts, 1, "a reload must not interrupt the stream");
    assert_eq!(
        report.payload, clean.payload,
        "the in-flight stream must finish on the model it started with"
    );
    assert_eq!(streamed.rows, direct.rows);

    // The swap itself happened: new fingerprint, bumped generation.
    let shared = server.shared_model();
    assert_eq!(shared.generation(), 1);
    assert_ne!(shared.facts().fingerprint, old_fingerprint);
    assert_eq!(shared.facts().fingerprint, daisy::wire::crc64(alt_model_bytes()));

    // New connections decode the new model: same request, different
    // bytes than the pre-reload stream.
    let (_, after) = fetch_resumable(addr, &request, &RetryPolicy::default()).expect("new fetch");
    assert_ne!(
        after.payload, clean.payload,
        "post-reload streams come from the new weights"
    );
}

#[test]
fn corrupt_reload_quarantines_and_the_old_model_keeps_serving() {
    let model = private_model_copy("corrupt-reload");
    let (server, addr) = spawn_server(&model, ServeConfig::default());
    let request = Request::new(8, 300);
    let shared = server.shared_model();
    let old_fingerprint = shared.facts().fingerprint;

    let before = fetch(addr, &request).expect("serves before the bad push");

    // Push garbage to the model path and reload: typed error, file
    // quarantined aside, old model untouched.
    std::fs::write(&model, b"not a model at all").expect("garbage lands");
    let Err(ServeError::CorruptModel { quarantined, .. }) = shared.reload() else {
        panic!("a corrupt replacement must be a typed CorruptModel error");
    };
    let moved = quarantined.expect("bad file quarantined aside");
    assert!(moved.exists(), "quarantine file exists");
    assert!(!model.exists(), "the garbage no longer sits at the model path");
    assert_eq!(shared.generation(), 0, "a failed reload bumps nothing");
    assert_eq!(shared.facts().fingerprint, old_fingerprint);

    let after = fetch(addr, &request).expect("still serving on the old model");
    assert_eq!(before.rows, after.rows, "same model, same rows");

    // Disk-full flavor: the quarantine rename itself "fails". Armed
    // through the fault plan; the reload still fails typed, the old
    // model still serves, and the garbage stays in place.
    std::fs::write(&model, b"still not a model").expect("garbage lands again");
    let plan = FaultPlan::new(vec![ServeFault::DiskFullOnQuarantine]);
    // daisy-lint: allow(D003) -- scripted chaos proxy; its faults are deterministic, not scheduled
    let _proxy = ChaosProxy::spawn(addr, plan, Some(Arc::clone(&shared))).expect("proxy spawns");
    let Err(ServeError::CorruptModel { quarantined, .. }) = shared.reload() else {
        panic!("typed error under disk-full too");
    };
    assert!(
        quarantined.is_none(),
        "a failed rename is reported, not papered over"
    );
    assert!(model.exists(), "the bad file stays when the rename fails");
    assert_eq!(shared.facts().fingerprint, old_fingerprint);
    let again = fetch(addr, &request).expect("still serving");
    assert_eq!(before.rows, again.rows);
}

#[test]
fn drain_seals_in_flight_streams_with_a_typed_end_frame() {
    use std::io::Read;
    use std::net::{Shutdown, TcpStream};

    let cfg = ServeConfig {
        drain_ms: 100,
        ..ServeConfig::default()
    };
    let (server, addr) = spawn_server(model_path(), cfg);
    let request = Request::new(33, 500_000);

    // Start a long stream, confirm bytes are flowing, then drain.
    let mut stream = TcpStream::connect(addr).expect("client connects");
    daisy::serve::write_frame(&mut stream, &request.encode()).expect("request sends");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut first = vec![0u8; 1024];
    stream.read_exact(&mut first).expect("stream started");
    server.drain_handle().begin_drain();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("stream sealed and closed");
    let mut bytes = first;
    bytes.extend_from_slice(&rest);

    // Every delivered frame validates; the seal is a draining end
    // frame naming the exact resume point.
    let mut decoder = StreamDecoder::new();
    let mut input = &bytes[..];
    while let Some(body) = read_frame(&mut input, MAX_REQUEST_FRAME * 1024).expect("frame reads") {
        decoder.feed(&body).expect("every delivered frame validates");
    }
    let end = *decoder.end().expect("stream was sealed, not torn");
    assert!(end.draining(), "the seal carries the draining flag");
    assert!(
        end.end_row < 500_000,
        "the stream was truncated, not completed"
    );
    assert_eq!(end.end_row % daisy::core::synthesizer::GENERATION_BATCH as u64, 0,
        "truncation lands on a batch boundary");

    // A request arriving on an already-accepted connection during a
    // drain is refused with a typed reason (in-memory: a fresh TCP
    // connect would park in the backlog of the now-gone accept loop).
    let (_bytes, model) = daisy::serve::load_model(model_path()).expect("fixture loads");
    let draining = ServeState::default();
    draining.begin_drain();
    let mut req_bytes = Vec::new();
    daisy::serve::write_frame(&mut req_bytes, &Request::new(1, 10).encode())
        .expect("writing to a Vec cannot fail");
    let mut input = &req_bytes[..];
    let mut output = Vec::new();
    serve_connection(&model, 0, &ServeConfig::default(), &draining, &mut input, &mut output)
        .expect("rejection is answered on the wire, not an error");
    let Err(ServeError::Rejected(reason)) = daisy::serve::decode_response(&output) else {
        panic!("new requests during a drain must be typed rejections");
    };
    assert!(reason.starts_with("draining"), "got: {reason}");

    // Resume the sealed stream against a fresh replica: the
    // concatenation must be byte-identical to one uninterrupted fetch.
    let (_, addr2) = spawn_server(model_path(), ServeConfig::default());
    let (_, tail) = fetch_resumable(addr2, &request.resuming_at(end.end_row), &RetryPolicy::default())
        .expect("resume succeeds");
    let (_, full) =
        fetch_resumable(addr2, &request, &RetryPolicy::default()).expect("uninterrupted fetch");

    let mut reassembled = Vec::new();
    let mut decoder = StreamDecoder::new();
    let mut input = &bytes[..];
    while let Some(body) = read_frame(&mut input, MAX_REQUEST_FRAME * 1024).expect("frame reads") {
        if let StreamItem::Rows { payload, .. } = decoder.feed(&body).expect("validates") {
            reassembled.extend_from_slice(&payload);
        }
    }
    reassembled.extend_from_slice(&tail.payload);
    assert_eq!(
        reassembled, full.payload,
        "drained head + resumed tail == uninterrupted stream, byte for byte"
    );
}

#[test]
fn retries_exhaust_into_the_underlying_error() {
    let (server, addr) = spawn_server(model_path(), ServeConfig::default());
    // More scripted resets than allowed attempts: the client must give
    // up with the transport error, not hang.
    let plan = FaultPlan::new(vec![
        ServeFault::MidStreamReset { after_frames: 1 },
        ServeFault::MidStreamReset { after_frames: 1 },
        ServeFault::MidStreamReset { after_frames: 1 },
    ]);
    // daisy-lint: allow(D003) -- scripted chaos proxy; its faults are deterministic, not scheduled
    let proxy = ChaosProxy::spawn(addr, plan, Some(server.shared_model())).expect("proxy spawns");
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff_ms: 10,
        ..RetryPolicy::default()
    };
    let err = fetch_resumable(proxy.addr(), &Request::new(2, 800), &policy)
        .expect_err("exhausted retries surface the failure");
    assert!(matches!(err, ServeError::Protocol(_)), "got: {err:?}");

    // Permanent rejections never retry: first attempt, typed error.
    let err = fetch_raw_condition_error(addr);
    assert!(matches!(err, ServeError::Rejected(_)));
}

/// A permanent rejection (unknown category) through the resumable
/// client — must fail on the first attempt.
fn fetch_raw_condition_error(addr: std::net::SocketAddr) -> ServeError {
    let policy = RetryPolicy::default();
    match fetch_resumable(addr, &Request::conditioned(1, 10, "no-such-category"), &policy) {
        Ok(_) => panic!("an unknown category must be rejected"),
        Err(e) => e,
    }
}

/// First category of the fixture's conditional label.
fn conditional_category() -> String {
    let (_, model) = daisy::serve::load_model(model_path()).expect("fixture loads");
    model.condition_categories()[1].clone()
}

/// The raw one-shot path still works against a clean server (guards
/// the non-resumable fetch from regressions while the client grew).
#[test]
fn one_shot_fetch_raw_is_still_byte_stable() {
    let (_, addr) = spawn_server(model_path(), ServeConfig::default());
    let request = Request::new(77, 512);
    let a = fetch_raw(addr, &request).expect("fetch");
    let b = fetch_raw(addr, &request).expect("fetch");
    assert_eq!(a, b, "replay stays byte-identical");
}
