//! Integration tests for the serving plane: the reproducibility,
//! backpressure, and typed-failure contracts `docs/SERVING.md`
//! documents. The server streams rows over the daisy-wire framed
//! protocol; these tests pin that the bytes on the wire are a pure
//! function of `(model file, request)` — independent of connection
//! interleaving and worker thread count — and that failure paths are
//! typed errors, never panics.

use daisy::prelude::*;
use daisy::serve::{
    decode_response, fetch, fetch_raw, load_model, read_frame, serve_connection, write_frame,
    Header, ServeState, MAX_REQUEST_FRAME,
};
use daisy::tensor::pool;
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Trains one small conditional model (CTrain ⇒ label-conditioned
/// generator) and saves it once for the whole test binary.
fn model_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let spec = daisy::datasets::by_name("Adult").unwrap();
        let table = spec.generate(500, 3);
        let mut tc = TrainConfig::ctrain(60);
        tc.batch_size = 32;
        tc.epochs = 1;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![16];
        cfg.d_hidden = vec![16];
        let fitted = Synthesizer::fit(&table, &cfg);
        let path = std::env::temp_dir().join("daisy-serve-stream-model.bin");
        fitted.save(&path).expect("test model saves");
        path
    })
}

/// Encodes `request` as the client would put it on the wire.
fn request_bytes(request: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, &request.encode()).expect("writing to a Vec cannot fail");
    buf
}

/// Serves `input` through an in-memory connection and returns the raw
/// response bytes.
fn serve_in_memory(input: &[u8], cfg: &ServeConfig) -> Vec<u8> {
    let (_bytes, model) = load_model(model_path()).expect("test model loads");
    let mut input = input;
    let mut output = Vec::new();
    serve_connection(&model, 0, cfg, &ServeState::default(), &mut input, &mut output)
        .expect("connection serves cleanly");
    output
}

#[test]
fn same_request_yields_identical_bytes_at_any_thread_count() {
    let request = Request::new(41, 700);
    let input = request_bytes(&request);
    let cfg = ServeConfig::default();

    pool::set_threads(1);
    let serial_a = serve_in_memory(&input, &cfg);
    let serial_b = serve_in_memory(&input, &cfg);
    assert_eq!(serial_a, serial_b, "replay must be byte-identical");

    pool::set_threads(4);
    let parallel = serve_in_memory(&input, &cfg);
    pool::set_threads(1);
    assert_eq!(
        serial_a, parallel,
        "worker thread count must not leak into the stream"
    );

    let response = decode_response(&serial_a).expect("stream decodes");
    assert_eq!(response.rows.len(), 700);
    assert_eq!(response.seed, 41);
}

#[test]
fn concurrent_tcp_clients_replaying_a_seed_get_identical_streams() {
    let server = Server::bind(model_path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server binds");
    let addr = server.local_addr().expect("server has an address");
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let request = Request::new(9, 600);
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let request = request.clone();
            // daisy-lint: allow(D003) -- racing test clients; streams must be byte-identical
            std::thread::spawn(move || fetch_raw(addr, &request).expect("fetch succeeds"))
        })
        .collect();
    let streams: Vec<Vec<u8>> = handles
        .into_iter()
        .map(|h| h.join().expect("client joins"))
        .collect();
    assert_eq!(
        streams[0], streams[1],
        "concurrent replays of one seed must be byte-identical"
    );
    let response = decode_response(&streams[0]).expect("stream decodes");
    assert_eq!(response.rows.len(), 600);
}

#[test]
fn conditional_requests_pin_every_label_cell() {
    let (_bytes, model) = load_model(model_path()).expect("test model loads");
    assert!(model.is_conditional(), "CTrain model must be conditional");
    let category = model.condition_categories()[1].clone();
    let label_col = model
        .output_template()
        .schema()
        .label()
        .expect("conditional model has a label column");

    let server = Server::bind(model_path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server binds");
    let addr = server.local_addr().expect("server has an address");
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let response = fetch(addr, &Request::conditioned(3, 300, &category)).expect("fetch succeeds");
    assert_eq!(response.condition.as_deref(), Some(category.as_str()));
    assert_eq!(response.rows.len(), 300);
    for row in &response.rows {
        assert_eq!(
            response.render_cell(label_col, &row[label_col]),
            category,
            "a conditioned stream must pin the label column"
        );
    }
}

#[test]
fn client_disconnect_mid_stream_frees_the_connection_slot() {
    let cfg = ServeConfig {
        max_conn: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind(model_path(), "127.0.0.1:0", cfg).expect("server binds");
    let addr = server.local_addr().expect("server has an address");
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });

    // Claim the only slot, read a sliver of the response, and vanish.
    {
        let mut stream = TcpStream::connect(addr).expect("first client connects");
        write_frame(&mut stream, &Request::new(1, 50_000).encode()).expect("request sends");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut sliver = [0u8; 64];
        stream.read_exact(&mut sliver).expect("stream started");
    } // dropped mid-stream

    // If the slot leaked, this second fetch would block forever on the
    // kernel backlog and the test would time out.
    let response = fetch(addr, &Request::new(2, 40)).expect("slot was released");
    assert_eq!(response.rows.len(), 40);
}

#[test]
fn corrupt_model_files_are_typed_errors_and_quarantined() {
    let dir = std::env::temp_dir().join("daisy-serve-corrupt-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let bad = dir.join("model.bin");
    let mut bytes = std::fs::read(model_path()).expect("test model bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&bad, &bytes).expect("corrupt model written");

    let Err(ServeError::CorruptModel { error, quarantined }) = load_model(&bad) else {
        panic!("a corrupted model must be a typed CorruptModel error");
    };
    assert!(!error.is_empty(), "diagnosis must name the failure");
    let moved = quarantined.expect("bad file is renamed aside");
    assert!(moved.exists(), "quarantine file must exist");
    assert!(
        !bad.exists(),
        "the corrupt file must no longer sit at the model path"
    );
    assert!(
        Server::bind(&bad, "127.0.0.1:0", ServeConfig::default()).is_err(),
        "binding on a missing model must fail, not panic"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejected_requests_leave_the_connection_usable() {
    let cfg = ServeConfig {
        max_rows: 100,
        ..ServeConfig::default()
    };
    // Two requests on one connection: the first breaks the row cap and
    // is rejected; the second must still be answered in full.
    let mut input = request_bytes(&Request::new(1, 1_000));
    input.extend_from_slice(&request_bytes(&Request::new(2, 30)));
    let output = serve_in_memory(&input, &cfg);

    let mut rest = &output[..];
    let first = read_frame(&mut rest, MAX_REQUEST_FRAME * 1024)
        .expect("first response frame reads")
        .expect("first response present");
    let Header::Rejected { reason } = Header::decode(&first).expect("header decodes") else {
        panic!("over-cap request must be rejected");
    };
    assert!(
        reason.contains("100"),
        "rejection must name the cap: {reason}"
    );
    let second = decode_response(rest).expect("connection stays usable after a rejection");
    assert_eq!(second.rows.len(), 30);

    // An impossible condition is the same shape of failure over TCP.
    let server = Server::bind(model_path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server binds");
    let addr = server.local_addr().expect("server has an address");
    // daisy-lint: allow(D003) -- test server thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });
    let Err(ServeError::Rejected(reason)) =
        fetch(addr, &Request::conditioned(1, 10, "no-such-category"))
    else {
        panic!("an unknown category must be a typed rejection");
    };
    assert!(reason.contains("no-such-category"), "got: {reason}");
}
