//! Differentially private release (paper §5.4, Figure 8): train DPGAN
//! at several privacy budgets and watch the privacy/utility tradeoff,
//! with PrivBayes as the statistical reference at the same ε.
//!
//! Expected shape (the paper's Finding 7): DPGAN pays a heavy utility
//! price for its noise and generally cannot beat PrivBayes under a DP
//! guarantee — one of the open problems the paper flags.
//!
//! ```sh
//! cargo run --release --example dp_release
//! ```

use daisy::prelude::*;

fn main() {
    let spec = daisy::datasets::by_name("Adult").expect("registered dataset");
    let table = spec.generate(2400, 21);
    let mut rng = Rng::seed_from_u64(4);
    let (train, _valid, test) = table.split_train_valid_test(&mut rng);
    println!(
        "training table: {} rows; evaluating DT10 F1 Diff at each epsilon",
        train.n_rows()
    );
    println!();
    println!("{:>8} {:>12} {:>12}", "epsilon", "PB Diff", "DPGAN Diff");

    let iterations = 400;
    for eps in [0.1, 0.4, 1.6] {
        // PrivBayes at this budget.
        let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
        let pb_syn = pb.synthesize(train.n_rows(), &mut rng);

        // DPGAN: Wasserstein training with clipped, noised gradients,
        // noise calibrated to the same budget.
        let dp = DpConfig::for_epsilon(eps, iterations * 3, 64, train.n_rows());
        let mut tc = TrainConfig::dptrain(iterations, dp);
        tc.batch_size = 64;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.transform = TransformConfig::gn_ht();
        let dpgan = Synthesizer::fit(&train, &cfg);
        let dpgan_syn = dpgan.generate(train.n_rows(), &mut rng);

        let eval = |syn: &Table, rng: &mut Rng| {
            classification_utility(
                &train,
                syn,
                &test,
                || Box::new(daisy::eval::DecisionTree::new(10)),
                rng,
            )
            .f1_diff
        };
        let pb_diff = eval(&pb_syn, &mut rng);
        let dpgan_diff = eval(&dpgan_syn, &mut rng);
        println!("{eps:>8} {pb_diff:>12.3} {dpgan_diff:>12.3}");
    }
    println!();
    println!(
        "Note: DPGAN's noise scale grows as epsilon shrinks, crippling the \
         adversarial signal — matching the paper's conclusion that provable \
         privacy remains an open problem for GAN synthesis."
    );
}
