//! Explore the design space on your own table: networks x
//! transformations x training algorithms, scored by classification
//! utility — a miniature of the paper's Table 3 / Figure 5 study that
//! you can point at any labeled dataset.
//!
//! ```sh
//! cargo run --release --example design_space_sweep
//! ```

use daisy::prelude::*;

fn main() {
    let table = daisy::datasets::SDataNum {
        correlation: 0.5,
        skew: daisy::datasets::Skew::Skewed,
    }
    .generate(2400, 5);
    let mut rng = Rng::seed_from_u64(1);
    let (train, _valid, test) = table.split_train_valid_test(&mut rng);
    println!("design-space sweep on SDataNum-0.5-skew ({} train rows)", train.n_rows());
    println!();
    println!("{:<34} {:>9} {:>9}", "design point", "DT10 Diff", "dup-frac");

    let mut points: Vec<(String, SynthesizerConfig)> = Vec::new();
    for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
        for transform in [TransformConfig::sn_ht(), TransformConfig::gn_ht()] {
            for (tname, tc) in [
                ("VTrain", TrainConfig::vtrain(400)),
                ("CTrain", TrainConfig::ctrain(400)),
            ] {
                let mut cfg = SynthesizerConfig::new(network, tc);
                cfg.transform = transform;
                cfg.g_hidden = vec![64];
                cfg.d_hidden = vec![64];
                points.push((
                    format!("{} {} {}", network.name(), transform.short_name(), tname),
                    cfg,
                ));
            }
        }
    }
    // The CNN corner of the space (matrix samples, ordinal + simple
    // normalization only).
    let mut cnn = SynthesizerConfig::new(NetworkKind::Cnn, TrainConfig::vtrain(400));
    cnn.cnn_channels = 8;
    points.push(("CNN sn/od VTrain".into(), cnn));

    for (name, cfg) in points {
        let fitted = Synthesizer::fit(&train, &cfg);
        let synthetic = fitted.generate(train.n_rows(), &mut rng);
        let report = classification_utility(
            &train,
            &synthetic,
            &test,
            || Box::new(daisy::eval::DecisionTree::new(10)),
            &mut rng,
        );
        let dup = daisy::core::duplicate_fraction(&synthetic, 20);
        println!("{name:<34} {:>9.3} {:>9.3}", report.f1_diff, dup);
    }
    println!();
    println!(
        "Reading guide: lower Diff = better utility; dup-frac near 1 \
         signals mode collapse (paper §5.2)."
    );
}
