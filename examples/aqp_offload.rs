//! Approximate query processing offload (paper §2.1): ship a synthetic
//! table to the client so dashboards answer aggregate queries locally,
//! without hitting the server that holds the real data.
//!
//! Compares the synthetic table against the classic alternative — a 1%
//! uniform sample — on a workload of count/avg/sum queries with
//! selections and group-bys.
//!
//! ```sh
//! cargo run --release --example aqp_offload
//! ```

use daisy::eval::{generate_workload, workload_error};
use daisy::prelude::*;

fn main() {
    // A Bing-like production workload table: wide, mixed-type,
    // unlabeled.
    let spec = daisy::datasets::by_name("Bing").expect("registered dataset");
    let table = spec.generate(8000, 9);
    let mut rng = Rng::seed_from_u64(2);
    println!(
        "warehouse table: {} rows, {} attributes",
        table.n_rows(),
        table.n_attrs()
    );

    // Train an unconditional GAN (no label column exists).
    let mut tc = TrainConfig::vtrain(500);
    tc.batch_size = 64;
    let mut config = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    config.transform = TransformConfig::gn_ht();
    println!("training synthesizer...");
    let fitted = Synthesizer::fit(&table, &config);
    let synthetic = fitted.generate(table.n_rows(), &mut rng);

    // Baselines for the client cache: a 1% uniform sample and
    // independent marginals.
    let one_percent: Vec<usize> = (0..table.n_rows() / 100).map(|_| rng.usize(table.n_rows())).collect();
    let sample = {
        
        table.select_rows(&one_percent)
    };
    let independent = IndependentMarginals::fit(&table).synthesize(table.n_rows(), &mut rng);

    let queries = generate_workload(&table, 400, &mut rng);
    println!("workload: {} aggregate queries (count/avg/sum, selections, group-by)", queries.len());
    println!();
    println!("{:<22} {:>18}", "client cache", "mean rel. error");
    for (name, estimate) in [
        ("GAN synthetic (100%)", &synthetic),
        ("uniform sample (1%)", &sample),
        ("independent marginals", &independent),
    ] {
        let err = workload_error(&table, estimate, &queries);
        println!("{name:<22} {err:>18.4}");
    }
    println!();
    println!(
        "The synthetic table competes with the 1% sample while never \
         exposing a real row; the independent baseline shows what \
         ignoring attribute correlations costs."
    );
}
