//! Quickstart: synthesize a relational table with a GAN and check its
//! utility and privacy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use daisy::prelude::*;

fn main() {
    // A stand-in for the paper's Adult census table (mixed numerical /
    // categorical attributes, skewed binary income label).
    let spec = daisy::datasets::by_name("Adult").expect("registered dataset");
    let table = spec.generate(3000, 42);
    println!(
        "dataset: {} rows, {} numerical + {} categorical attributes, {} classes",
        table.n_rows(),
        table.schema().n_numerical(),
        table.schema().n_categorical() - 1,
        table.n_classes()
    );

    // Split 4:1:1 as in the paper's evaluation protocol.
    let mut rng = Rng::seed_from_u64(7);
    let (train, _valid, test) = table.split_train_valid_test(&mut rng);

    // The paper's recommended expert design point: LSTM generator with
    // one-hot + GMM transformation, conditional training for the skewed
    // label (Findings 1 and 4). 600 iterations keeps this example fast;
    // raise it for better quality.
    let mut train_cfg = TrainConfig::ctrain(600);
    train_cfg.batch_size = 64;
    let mut config = SynthesizerConfig::new(NetworkKind::Mlp, train_cfg);
    config.transform = TransformConfig::gn_ht();
    config.seed = 1;

    println!("training GAN synthesizer ({:?} iterations)...", config.train.iterations);
    let fitted = Synthesizer::fit(&train, &config);
    let synthetic = fitted.generate(train.n_rows(), &mut rng);
    println!("generated {} synthetic records", synthetic.n_rows());

    // Utility: train a decision tree on real vs synthetic, compare F1
    // on the same held-out test set (the paper's Diff metric).
    let report = classification_utility(
        &train,
        &synthetic,
        &test,
        || Box::new(daisy::eval::DecisionTree::new(10)),
        &mut rng,
    );
    println!(
        "DT10 F1: real-trained {:.3}, synthetic-trained {:.3}, Diff {:.3}",
        report.f1_real, report.f1_synthetic, report.f1_diff
    );

    // Privacy: hitting rate (lower = better) and distance to the
    // closest record (higher = better).
    let hr = daisy::eval::hitting_rate(&train, &synthetic, 500, &mut rng);
    let d = daisy::eval::dcr(&train, &synthetic, 300, &mut rng);
    println!("privacy: hitting rate {hr:.3}%, DCR {d:.3}");
}
