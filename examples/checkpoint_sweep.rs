//! Crash-safe design-space sweep: every cell journals its progress and
//! checkpoints its training state, so killing this process mid-sweep
//! (Ctrl-C, SIGKILL, power loss) loses almost nothing — rerun the same
//! command and it skips finished cells and resumes the interrupted one
//! from its last epoch boundary.
//!
//! ```sh
//! cargo run --release --example checkpoint_sweep   # start the sweep
//! # ... kill it mid-cell, then simply run it again:
//! cargo run --release --example checkpoint_sweep   # resumes
//! ```
//!
//! Knobs: `DAISY_SWEEP_DIR` (journal + checkpoint directory, default
//! `daisy-sweep`), `DAISY_SWEEP_ITERS` (iterations for the long cells,
//! default 1500), `DAISY_SWEEP_KILL_AT` (simulate a crash at that
//! training step of the first unfinished cell), `DAISY_CKPT_EVERY`
//! (checkpoint cadence in epochs, default 1).

use daisy::prelude::*;
use daisy_bench::harness::{run_sweep_resumable, SweepCellResult};
use daisy_bench::journal::SweepJournal;
use std::path::PathBuf;

fn env_usize(name: &str, default: usize) -> usize {
    daisy::telemetry::knobs::raw(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cell(network: NetworkKind, tc: TrainConfig, label: &str) -> (String, SynthesizerConfig) {
    let mut cfg = SynthesizerConfig::new(network, tc);
    cfg.g_hidden = vec![32];
    cfg.d_hidden = vec![32];
    cfg.noise_dim = 8;
    cfg.seed = 7;
    (label.to_string(), cfg)
}

fn main() {
    let dir = PathBuf::from(
        daisy::telemetry::knobs::raw("DAISY_SWEEP_DIR").unwrap_or_else(|| "daisy-sweep".to_string()),
    );
    let iters = env_usize("DAISY_SWEEP_ITERS", 1500);

    let table = daisy::datasets::SDataNum {
        correlation: 0.5,
        skew: daisy::datasets::Skew::Balanced,
    }
    .generate(900, 5);
    let mut rng = Rng::seed_from_u64(1);
    let (train, _valid, _test) = table.split_train_valid_test(&mut rng);

    // First cell small on purpose: even a very early kill leaves at
    // least one journalled `done` for the rerun to skip.
    let mut tiny = TrainConfig::vtrain(120);
    tiny.epochs = 3;
    let mut long_v = TrainConfig::vtrain(iters);
    long_v.epochs = 3;
    let mut long_c = TrainConfig::ctrain(iters);
    long_c.epochs = 3;
    let mut long_w = TrainConfig::wtrain(iters);
    long_w.epochs = 3;
    let cells = vec![
        cell(NetworkKind::Mlp, tiny, "mlp-vtrain-tiny"),
        cell(NetworkKind::Mlp, long_v, "mlp-vtrain"),
        cell(NetworkKind::Mlp, long_c, "mlp-ctrain"),
        cell(NetworkKind::Lstm, long_w, "lstm-wtrain"),
    ];

    if let Ok(journal) = SweepJournal::open(dir.join("journal.txt")) {
        if !journal.is_empty() {
            println!(
                "resuming: {}/{} cells already done (journal: {})",
                journal.done_count(),
                cells.len(),
                journal.path().display()
            );
        }
    }

    let mut plan = CheckpointPlan::at(dir.join("cell"));
    if let Some(step) = daisy::telemetry::knobs::raw("DAISY_SWEEP_KILL_AT") {
        plan = plan.kill_at(step.parse().expect("DAISY_SWEEP_KILL_AT must be a step"));
    }

    let results = run_sweep_resumable(&train, &cells, 7, &dir, &plan).expect("journal I/O");

    let mut skipped = 0;
    let mut failed = 0;
    for (id, result) in &results {
        match result {
            SweepCellResult::Skipped => {
                skipped += 1;
                println!("  {id:<18} skipped (journalled done)");
            }
            SweepCellResult::Ran(c) if c.interrupted => {
                println!("  {id:<18} interrupted mid-training (simulated crash)");
                println!("rerun this command to resume the sweep");
                std::process::exit(3);
            }
            SweepCellResult::Ran(c) if c.synthetic.is_some() => {
                println!("  {id:<18} done ({} attempt(s))", c.attempts);
            }
            SweepCellResult::Ran(c) => {
                failed += 1;
                println!("  {id:<18} FAILED: {}", c.failures.join("; "));
            }
        }
    }
    println!(
        "sweep complete: {} cells, {skipped} skipped, {failed} failed",
        results.len()
    );
}
