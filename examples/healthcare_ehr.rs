//! The paper's motivating scenario (§1): a hospital wants to share
//! electronic health records with a research team without months of
//! privacy review. It releases a GAN-synthesized table instead, and the
//! team's models/algorithms transfer back to the real data.
//!
//! This example builds a simulated EHR table (vitals, demographics,
//! diagnosis label), synthesizes it, and verifies the two transfers the
//! paper measures: classification (predicting the diagnosis) and
//! clustering (discovering patient groups), plus a privacy audit.
//!
//! ```sh
//! cargo run --release --example healthcare_ehr
//! ```

use daisy::data::{Attribute, Column, Schema, Table};
use daisy::prelude::*;

/// Simulated EHR: two latent conditions drive vitals and diagnosis.
fn simulate_ehr(n: usize, seed: u64) -> Table {
    let mut rng = Rng::seed_from_u64(seed);
    let mut age = Vec::with_capacity(n);
    let mut systolic = Vec::with_capacity(n);
    let mut glucose = Vec::with_capacity(n);
    let mut bmi = Vec::with_capacity(n);
    let mut smoker = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut diagnosis = Vec::with_capacity(n);
    for _ in 0..n {
        // ~18% of patients carry the condition (skewed label).
        let sick = rng.bool(0.18);
        let severity = if sick { rng.uniform(0.5, 1.5) } else { 0.0 };
        age.push(rng.normal_ms(52.0 + 14.0 * severity, 12.0).clamp(18.0, 95.0));
        systolic.push(rng.normal_ms(118.0 + 22.0 * severity, 11.0));
        glucose.push(rng.normal_ms(95.0 + 40.0 * severity, 14.0));
        bmi.push(rng.normal_ms(25.0 + 4.0 * severity, 3.5));
        smoker.push(u32::from(rng.bool(0.2 + 0.3 * severity.min(1.0))));
        sex.push(rng.usize(2) as u32);
        diagnosis.push(u32::from(sick));
    }
    Table::new(
        Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::numerical("systolic_bp"),
                Attribute::numerical("glucose"),
                Attribute::numerical("bmi"),
                Attribute::categorical("smoker"),
                Attribute::categorical("sex"),
                Attribute::categorical("diagnosis"),
            ],
            6,
        ),
        vec![
            Column::Num(age),
            Column::Num(systolic),
            Column::Num(glucose),
            Column::Num(bmi),
            Column::cat_with_domain(smoker, 2),
            Column::cat_with_domain(sex, 2),
            Column::cat_with_domain(diagnosis, 2),
        ],
    )
}

fn main() {
    let records = simulate_ehr(4000, 11);
    let mut rng = Rng::seed_from_u64(3);
    let (train, _valid, test) = records.split_train_valid_test(&mut rng);
    println!(
        "hospital table: {} patients, {:.1}% diagnosed",
        train.n_rows(),
        100.0 * train.labels().iter().filter(|&&y| y == 1).count() as f64
            / train.n_rows() as f64
    );

    // Conditional GAN (CTrain) handles the skewed diagnosis label.
    let mut tc = TrainConfig::ctrain(800);
    tc.batch_size = 64;
    let mut config = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    config.transform = TransformConfig::gn_ht();
    println!("training synthesizer...");
    let fitted = Synthesizer::fit(&train, &config);
    let release = fitted.generate(train.n_rows(), &mut rng);

    // 1. Classification transfer: the research team trains a
    //    diagnosis model on the release; the hospital checks it on
    //    real held-out patients.
    for (name, make) in classifier_zoo().into_iter().take(3) {
        let report = classification_utility(&train, &release, &test, make, &mut rng);
        println!(
            "  {name}: F1(real) {:.3} vs F1(release) {:.3}  (Diff {:.3})",
            report.f1_real, report.f1_synthetic, report.f1_diff
        );
    }

    // 2. Clustering transfer: patient-group discovery (the paper's
    //    DiffCST with K-Means + NMI).
    let diff_cst = clustering_utility(&train, &release, &mut rng);
    println!("  clustering DiffCST: {diff_cst:.4} (lower = structure preserved)");

    // 3. Privacy audit before releasing.
    let hr = daisy::eval::hitting_rate(&train, &release, 1000, &mut rng);
    let d = daisy::eval::dcr(&train, &release, 500, &mut rng);
    println!("  privacy audit: hitting rate {hr:.3}%, DCR {d:.3}");
    println!(
        "  (release carries no one-to-one mapping to patients; \
         re-identification risk is bounded by the audit above)"
    );
}
