//! Structural stand-ins for the paper's eight real datasets (Table 2,
//! Appendix B.1).
//!
//! The original UCI / Microsoft datasets are not redistributable inside
//! this repository, so each is replaced by a seeded synthetic table
//! reproducing its *published structure*: row count, attribute counts
//! and types, label cardinality, and label skewness (e.g. Adult's 0.34
//! positive:negative ratio, Census's 5%/95%, CovType's 46%-to-6%
//! spread). Attribute↔attribute and attribute↔label dependence are
//! planted through the latent-factor generator, which is what the
//! paper's relative comparisons between synthesizers exercise. See
//! DESIGN.md §5 for the substitution argument.

use crate::synthetic::TableSpec;

/// `HTRU2` \[5\]: 17,898 pulsar candidates; 8 numerical attributes,
/// binary, skewed (~1:10 pulsar:non-pulsar).
pub fn htru2() -> TableSpec {
    TableSpec {
        name: "HTRU2",
        default_rows: 17_898,
        numerical: 8,
        categorical_domains: vec![],
        label_probs: Some(vec![0.91, 0.09]),
        latent_dim: 3,
        label_effect: 2.0,
        multimodal: true,
    }
}

/// `Digits` \[6\]: 10,992 pen-based handwritten digits; 16 numerical
/// attributes, 10 balanced classes.
pub fn digits() -> TableSpec {
    TableSpec {
        name: "Digits",
        default_rows: 10_992,
        numerical: 16,
        categorical_domains: vec![],
        label_probs: Some(vec![0.1; 10]),
        latent_dim: 4,
        label_effect: 2.2,
        multimodal: false,
    }
}

/// `Adult` \[1\]: 41,292 census records; 6 numerical + 8 categorical
/// attributes, binary income label with positive:negative = 0.34.
pub fn adult() -> TableSpec {
    TableSpec {
        name: "Adult",
        default_rows: 41_292,
        numerical: 6,
        categorical_domains: vec![7, 16, 7, 14, 6, 5, 2, 41],
        label_probs: Some(vec![1.0 / 1.34, 0.34 / 1.34]),
        latent_dim: 3,
        label_effect: 1.8,
        multimodal: true,
    }
}

/// `CovType` \[4\]: 116,204 forest records; 10 numerical + 2 categorical
/// attributes (wilderness area, soil type), 7 skewed cover-type labels
/// (46% for label 2 down to 6% for label 3).
pub fn covtype() -> TableSpec {
    TableSpec {
        name: "CovType",
        default_rows: 116_204,
        numerical: 10,
        categorical_domains: vec![4, 40],
        label_probs: Some(vec![0.30, 0.46, 0.06, 0.015, 0.05, 0.06, 0.055]),
        latent_dim: 4,
        label_effect: 1.6,
        multimodal: true,
    }
}

/// `SAT` \[7\]: 6,435 satellite-image neighborhoods; 36 numerical
/// attributes (4 spectral bands × 9 pixels), 6 balanced classes.
pub fn sat() -> TableSpec {
    TableSpec {
        name: "SAT",
        default_rows: 6_435,
        numerical: 36,
        categorical_domains: vec![],
        label_probs: Some(vec![1.0 / 6.0; 6]),
        latent_dim: 5,
        label_effect: 2.0,
        multimodal: false,
    }
}

/// `Anuran` \[2\]: 7,195 frog-call records; 22 numerical MFCC attributes,
/// 10 species labels, very skewed (3,478 vs. 68 records).
pub fn anuran() -> TableSpec {
    let raw = [3478.0, 1132.0, 1086.0, 542.0, 310.0, 286.0, 229.0, 64.0, 68.0f64, 270.0];
    let total: f64 = raw.iter().sum();
    TableSpec {
        name: "Anuran",
        default_rows: 7_195,
        numerical: 22,
        categorical_domains: vec![],
        label_probs: Some(raw.iter().map(|r| r / total).collect()),
        latent_dim: 4,
        label_effect: 2.2,
        multimodal: false,
    }
}

/// `Census` \[3\]: 142,522 population-survey records; 9 numerical + 30
/// categorical attributes, binary income label, 5%/95% skew.
pub fn census() -> TableSpec {
    // Domain sizes spread from binary flags to high-cardinality codes,
    // echoing the Current Population Survey schema.
    let mut domains = Vec::with_capacity(30);
    for j in 0..30usize {
        domains.push(match j % 6 {
            0 => 2,
            1 => 3,
            2 => 5,
            3 => 7,
            4 => 9,
            _ => 15,
        });
    }
    TableSpec {
        name: "Census",
        default_rows: 142_522,
        numerical: 9,
        categorical_domains: domains,
        label_probs: Some(vec![0.95, 0.05]),
        latent_dim: 4,
        label_effect: 1.8,
        multimodal: true,
    }
}

/// `Bing` \[36\]: 500,000 Microsoft production search-workload records;
/// 7 numerical + 23 categorical attributes, no label — AQP-only.
pub fn bing() -> TableSpec {
    let mut domains = Vec::with_capacity(23);
    for j in 0..23usize {
        domains.push(match j % 5 {
            0 => 2,
            1 => 4,
            2 => 6,
            3 => 10,
            _ => 20,
        });
    }
    TableSpec {
        name: "Bing",
        default_rows: 500_000,
        numerical: 7,
        categorical_domains: domains,
        label_probs: None,
        latent_dim: 4,
        label_effect: 0.0,
        multimodal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_structure() {
        // (name, #rec, #num, #cat-excluding-label, #labels)
        let expected: &[(&str, usize, usize, usize, usize)] = &[
            ("HTRU2", 17_898, 8, 0, 2),
            ("Digits", 10_992, 16, 0, 10),
            ("Adult", 41_292, 6, 8, 2),
            ("CovType", 116_204, 10, 2, 7),
            ("SAT", 6_435, 36, 0, 6),
            ("Anuran", 7_195, 22, 0, 10),
            ("Census", 142_522, 9, 30, 2),
            ("Bing", 500_000, 7, 23, 0),
        ];
        let specs = [
            htru2(),
            digits(),
            adult(),
            covtype(),
            sat(),
            anuran(),
            census(),
            bing(),
        ];
        for (spec, &(name, rec, num, cat, labels)) in specs.iter().zip(expected) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.default_rows, rec, "{name} rows");
            assert_eq!(spec.numerical, num, "{name} numerical");
            assert_eq!(spec.categorical_domains.len(), cat, "{name} categorical");
            assert_eq!(
                spec.label_probs.as_ref().map(Vec::len).unwrap_or(0),
                labels,
                "{name} labels"
            );
        }
    }

    #[test]
    fn skewness_classes_match_table2() {
        // skew iff max/min label ratio > 9 (paper's criterion).
        let skew_of = |spec: &TableSpec| {
            let t = spec.generate(8000, 1);
            t.label_skewness()
        };
        assert!(skew_of(&htru2()) > 9.0);
        assert!(skew_of(&digits()) < 2.0);
        assert!(skew_of(&covtype()) > 9.0);
        assert!(skew_of(&sat()) < 2.0);
        assert!(skew_of(&anuran()) > 9.0);
        assert!(skew_of(&census()) > 9.0);
    }

    #[test]
    fn adult_positive_ratio() {
        let t = adult().generate(20_000, 2);
        let pos = t.labels().iter().filter(|&&y| y == 1).count() as f64;
        let neg = t.labels().iter().filter(|&&y| y == 0).count() as f64;
        assert!((pos / neg - 0.34).abs() < 0.05, "ratio = {}", pos / neg);
    }

    #[test]
    fn bing_is_unlabeled() {
        let t = bing().generate(500, 3);
        assert_eq!(t.schema().label(), None);
        assert_eq!(t.n_attrs(), 30);
    }
}
