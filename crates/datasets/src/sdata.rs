//! The paper's simulated datasets (§6.1): `SDataNum` (grid Gaussian
//! mixtures with controlled attribute correlation) and `SDataCat`
//! (chain Bayesian networks with controlled conditional-probability
//! concentration), each in balanced and skew label variants.

use daisy_data::{Attribute, Column, Schema, Table};
use daisy_tensor::Rng;

/// Label-skewness setting for simulated data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Positive:negative ≈ 1:1.
    Balanced,
    /// Positive:negative ≈ 1:9.
    Skewed,
}

impl Skew {
    fn positive_fraction(self) -> f64 {
        match self {
            Skew::Balanced => 0.5,
            Skew::Skewed => 0.1,
        }
    }

    /// Display suffix matching the paper's dataset names.
    pub fn suffix(self) -> &'static str {
        match self {
            Skew::Balanced => "balance",
            Skew::Skewed => "skew",
        }
    }
}

/// Configuration of an `SDataNum` dataset: 25 two-dimensional Gaussians
/// centered on the grid `{-4,-2,0,2,4}²`, `σ ~ U(0.5, 1)`, correlation
/// coefficient `ρ` shared by all components.
#[derive(Debug, Clone, Copy)]
pub struct SDataNum {
    /// Correlation coefficient `ρ_xy` of each Gaussian (the paper uses
    /// 0.5 and 0.9).
    pub correlation: f64,
    /// Label balance.
    pub skew: Skew,
}

impl SDataNum {
    /// Generates `n` records. Each record samples one of the 25
    /// components; its binary label leans on the component (a fixed
    /// subset of components is positive-leaning), which plants a
    /// feature↔label dependence for the utility classifiers while
    /// hitting the target label ratio.
    pub fn generate(&self, n: usize, seed: u64) -> Table {
        assert!(
            (0.0..1.0).contains(&self.correlation.abs()),
            "|ρ| must be < 1"
        );
        let mut rng = Rng::seed_from_u64(seed);
        // Component means on the 5x5 grid; per-component σs.
        let grid = [-4.0, -2.0, 0.0, 2.0, 4.0];
        let mut comps = Vec::with_capacity(25);
        for &mx in &grid {
            for &my in &grid {
                let sx = rng.uniform(0.5, 1.0);
                let sy = rng.uniform(0.5, 1.0);
                comps.push((mx, my, sx, sy));
            }
        }
        // Positive-leaning components: enough to hit the target ratio
        // with P(y=1 | leaning) = 0.9 and P(y=1 | other) = 0.02.
        let target = self.skew.positive_fraction();
        let m = (((target - 0.02) / (0.9 - 0.02)) * 25.0).round().max(1.0) as usize;
        let mut leaning = [false; 25];
        // Spread the leaning components across the grid (stride pattern)
        // so the label is not a linear function of position.
        for i in 0..m.min(25) {
            leaning[(i * 7) % 25] = true;
        }

        let rho = self.correlation;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.usize(25);
            let (mx, my, sx, sy) = comps[c];
            let z1 = rng.normal();
            let z2 = rng.normal();
            xs.push(mx + sx * z1);
            ys.push(my + sy * (rho * z1 + (1.0 - rho * rho).sqrt() * z2));
            let p = if leaning[c] { 0.9 } else { 0.02 };
            labels.push(rng.bool(p) as u32);
        }
        Table::new(
            Schema::with_label(
                vec![
                    Attribute::numerical("x"),
                    Attribute::numerical("y"),
                    Attribute::categorical("label"),
                ],
                2,
            ),
            vec![
                Column::Num(xs),
                Column::Num(ys),
                Column::cat_with_domain(labels, 2),
            ],
        )
    }

    /// Dataset display name, e.g. `SDataNum-0.5-skew`.
    pub fn name(&self) -> String {
        format!("SDataNum-{}-{}", self.correlation, self.skew.suffix())
    }
}

/// Configuration of an `SDataCat` dataset: a 5-node chain Bayesian
/// network of categorical variables; each edge's conditional
/// probability matrix has diagonal `p` and uniform off-diagonals, so
/// larger `p` means stronger attribute dependence (`p = 1` makes each
/// attribute a function of its predecessor).
#[derive(Debug, Clone, Copy)]
pub struct SDataCat {
    /// Diagonal conditional probability `p` (the paper uses 0.5, 0.9).
    pub diagonal: f64,
    /// Label balance.
    pub skew: Skew,
    /// Domain size of each of the 5 attributes.
    pub domain: usize,
}

impl SDataCat {
    /// The paper's configuration with a domain size of 4 per attribute.
    pub fn new(diagonal: f64, skew: Skew) -> Self {
        SDataCat {
            diagonal,
            skew,
            domain: 4,
        }
    }

    /// Generates `n` records by ancestral sampling along the chain; the
    /// binary label leans on the final node's value.
    pub fn generate(&self, n: usize, seed: u64) -> Table {
        assert!(
            (0.0..=1.0).contains(&self.diagonal),
            "diagonal probability must be in [0, 1]"
        );
        assert!(self.domain >= 2, "domain must have at least 2 values");
        let mut rng = Rng::seed_from_u64(seed);
        let k = self.domain;
        let p = self.diagonal;
        let off = (1.0 - p) / (k - 1) as f64;

        // Label leaning per value of the last attribute, tuned to the
        // target positive fraction (values are ~uniform marginally
        // because the transition matrix is doubly stochastic).
        let target = self.skew.positive_fraction();
        let m = ((target - 0.02) / (0.9 - 0.02) * k as f64).round().max(1.0) as usize;
        let leaning: Vec<bool> = (0..k).map(|v| v < m.min(k)).collect();

        let mut cols: Vec<Vec<u32>> = (0..5).map(|_| Vec::with_capacity(n)).collect();
        let mut labels = Vec::with_capacity(n);
        let mut weights = vec![0.0f64; k];
        for _ in 0..n {
            let mut prev = rng.usize(k);
            cols[0].push(prev as u32);
            for col in cols.iter_mut().skip(1) {
                for (v, wv) in weights.iter_mut().enumerate() {
                    *wv = if v == prev { p } else { off };
                }
                // p = 1 makes the off-diagonal zero; weighted() needs a
                // positive sum, which p=1 still satisfies.
                prev = rng.weighted(&weights);
                col.push(prev as u32);
            }
            let lp = if leaning[prev] { 0.9 } else { 0.02 };
            labels.push(rng.bool(lp) as u32);
        }

        let mut attrs: Vec<Attribute> = (0..5)
            .map(|j| Attribute::categorical(format!("a{j}")))
            .collect();
        attrs.push(Attribute::categorical("label"));
        let mut columns: Vec<Column> = cols
            .into_iter()
            .map(|codes| Column::cat_with_domain(codes, k))
            .collect();
        columns.push(Column::cat_with_domain(labels, 2));
        Table::new(Schema::with_label(attrs, 5), columns)
    }

    /// Dataset display name, e.g. `SDataCat-0.9-balance`.
    pub fn name(&self) -> String {
        format!("SDataCat-{}-{}", self.diagonal, self.skew.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdatanum_shape_and_grid() {
        let t = SDataNum {
            correlation: 0.5,
            skew: Skew::Balanced,
        }
        .generate(2000, 0);
        assert_eq!(t.n_rows(), 2000);
        assert_eq!(t.schema().n_numerical(), 2);
        let xs = t.column(0).as_num();
        // Values live on the grid ± a few σ.
        assert!(xs.iter().all(|&v| (-8.0..=8.0).contains(&v)));
        // The mixture spans positive and negative regions.
        assert!(xs.iter().any(|&v| v > 2.0) && xs.iter().any(|&v| v < -2.0));
    }

    #[test]
    fn correlation_is_planted() {
        let corr_of = |rho: f64| {
            let t = SDataNum {
                correlation: rho,
                skew: Skew::Balanced,
            }
            .generate(20_000, 1);
            let xs = t.column(0).as_num();
            let ys = t.column(1).as_num();
            // Within-component correlation: use residuals from the
            // nearest grid centers.
            let resid = |v: f64| v - (2.0 * ((v + 4.0) / 2.0).round().clamp(0.0, 4.0) - 4.0);
            let rx: Vec<f64> = xs.iter().map(|&v| resid(v)).collect();
            let ry: Vec<f64> = ys.iter().map(|&v| resid(v)).collect();
            let n = rx.len() as f64;
            let mx = rx.iter().sum::<f64>() / n;
            let my = ry.iter().sum::<f64>() / n;
            let cov = rx
                .iter()
                .zip(&ry)
                .map(|(&a, &b)| (a - mx) * (b - my))
                .sum::<f64>()
                / n;
            let sx = (rx.iter().map(|&a| (a - mx) * (a - mx)).sum::<f64>() / n).sqrt();
            let sy = (ry.iter().map(|&b| (b - my) * (b - my)).sum::<f64>() / n).sqrt();
            cov / (sx * sy)
        };
        // Higher ρ must yield visibly higher residual correlation.
        assert!(corr_of(0.9) > corr_of(0.1) + 0.2);
    }

    #[test]
    fn skew_ratios() {
        let frac = |skew: Skew| {
            let t = SDataNum {
                correlation: 0.5,
                skew,
            }
            .generate(10_000, 2);
            t.labels().iter().filter(|&&y| y == 1).count() as f64 / 10_000.0
        };
        let b = frac(Skew::Balanced);
        let s = frac(Skew::Skewed);
        assert!((b - 0.5).abs() < 0.1, "balanced fraction {b}");
        assert!((s - 0.1).abs() < 0.05, "skew fraction {s}");
    }

    #[test]
    fn sdatacat_chain_dependence() {
        let dependence = |p: f64| {
            let t = SDataCat::new(p, Skew::Balanced).generate(10_000, 3);
            let a = t.column(0).as_cat();
            let b = t.column(1).as_cat();
            a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / 10_000.0
        };
        let strong = dependence(0.9);
        let weak = dependence(0.3);
        assert!((strong - 0.9).abs() < 0.03, "strong diag {strong}");
        assert!((weak - 0.3).abs() < 0.03, "weak diag {weak}");
    }

    #[test]
    fn sdatacat_deterministic_chain_at_p1() {
        let t = SDataCat::new(1.0, Skew::Balanced).generate(500, 4);
        for j in 1..5 {
            assert_eq!(t.column(j).as_cat(), t.column(0).as_cat());
        }
    }

    #[test]
    fn sdatacat_label_depends_on_chain() {
        let t = SDataCat::new(0.9, Skew::Balanced).generate(10_000, 5);
        let last = t.column(4).as_cat();
        let labels = t.labels();
        // P(y=1 | leaning value) must far exceed P(y=1 | other value).
        let mut pos = [0usize; 2];
        let mut tot = [0usize; 2];
        for (&v, &y) in last.iter().zip(labels) {
            let lean = usize::from(v < 2);
            tot[lean] += 1;
            pos[lean] += y as usize;
        }
        let p_lean = pos[1] as f64 / tot[1] as f64;
        let p_other = pos[0] as f64 / tot[0] as f64;
        assert!(p_lean > p_other + 0.5, "{p_lean} vs {p_other}");
    }

    #[test]
    fn names_match_paper_convention() {
        assert_eq!(
            SDataNum {
                correlation: 0.5,
                skew: Skew::Skewed
            }
            .name(),
            "SDataNum-0.5-skew"
        );
        assert_eq!(
            SDataCat::new(0.9, Skew::Balanced).name(),
            "SDataCat-0.9-balance"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SDataNum {
            correlation: 0.5,
            skew: Skew::Balanced,
        }
        .generate(100, 7);
        let b = SDataNum {
            correlation: 0.5,
            skew: Skew::Balanced,
        }
        .generate(100, 7);
        assert_eq!(a, b);
    }
}
