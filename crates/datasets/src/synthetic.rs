//! A seeded latent-factor table generator, used to build structural
//! stand-ins for the paper's real datasets (see `real.rs`).
//!
//! Each record draws a label `y` from a configurable distribution and a
//! latent vector `z ~ N(0, I)`. Attributes are functions of `(y, z,
//! noise)`:
//! - numerical attributes are affine in `z` with a label offset and an
//!   optional discrete mode shift (multi-modality for GMM
//!   normalization to exploit);
//! - categorical attributes sample from a softmax over per-category
//!   scores that are affine in `z` with a label-dependent boost.
//!
//! Shared latent factors plant attribute↔attribute correlation; label
//! terms plant attribute↔label dependence. Both are exactly the
//! properties the paper's experiments measure synthesizers on.

use daisy_data::{Attribute, Column, Schema, Table};
use daisy_tensor::Rng;

/// Declarative spec of a synthetic table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Dataset display name.
    pub name: &'static str,
    /// Row count of the full-size dataset.
    pub default_rows: usize,
    /// Number of numerical attributes.
    pub numerical: usize,
    /// Domain size per categorical attribute (excluding the label).
    pub categorical_domains: Vec<usize>,
    /// Label distribution (`None` for unlabeled AQP-only tables).
    pub label_probs: Option<Vec<f64>>,
    /// Latent dimensionality (attribute correlation strength scales
    /// with fewer factors shared by more attributes).
    pub latent_dim: usize,
    /// Scale of the label's effect on attributes (0 = labels carry no
    /// signal; ~2 = easily learnable).
    pub label_effect: f64,
    /// Give numerical attributes 2–3 modes (exercises GMM-based
    /// normalization).
    pub multimodal: bool,
}

impl TableSpec {
    /// Number of attributes including the label.
    pub fn n_attrs(&self) -> usize {
        self.numerical
            + self.categorical_domains.len()
            + usize::from(self.label_probs.is_some())
    }

    /// Generates the table at its full published size.
    pub fn generate_default(&self, seed: u64) -> Table {
        self.generate(self.default_rows, seed)
    }

    /// Generates `n` rows. All structural parameters (factor loadings,
    /// category scores, mode offsets) derive deterministically from
    /// `seed`, so two tables from the same seed share one underlying
    /// population.
    pub fn generate(&self, n: usize, seed: u64) -> Table {
        assert!(n > 0, "need at least one row");
        let k_label = self.label_probs.as_ref().map(Vec::len).unwrap_or(0);
        if let Some(probs) = &self.label_probs {
            assert!(
                (probs.iter().sum::<f64>() - 1.0).abs() < 1e-6,
                "label probabilities must sum to 1"
            );
        }
        // Structure RNG: fixed per dataset so that different row counts
        // sample the same population.
        const STRUCTURE_SALT: u64 = 0x5eed_5717;
        let mut srng = Rng::seed_from_u64(seed ^ STRUCTURE_SALT);
        let l = self.latent_dim;

        // Numerical attribute parameters.
        struct NumParams {
            loadings: Vec<f64>,
            label_shift: Vec<f64>,
            noise: f64,
            scale: f64,
            offset: f64,
            mode_offsets: Vec<f64>,
        }
        let num_params: Vec<NumParams> = (0..self.numerical)
            .map(|_| NumParams {
                loadings: (0..l).map(|_| srng.normal()).collect(),
                label_shift: (0..k_label.max(1))
                    .map(|_| srng.normal() * self.label_effect)
                    .collect(),
                noise: srng.uniform(0.2, 0.6),
                scale: srng.uniform(0.5, 20.0),
                offset: srng.uniform(-10.0, 50.0),
                mode_offsets: if self.multimodal {
                    let m = 2 + srng.usize(2);
                    (0..m).map(|i| i as f64 * srng.uniform(2.5, 5.0)).collect()
                } else {
                    vec![0.0]
                },
            })
            .collect();

        // Categorical attribute parameters: [k][l] loadings + [y][k]
        // label boosts.
        struct CatParams {
            loadings: Vec<Vec<f64>>,
            label_boost: Vec<Vec<f64>>,
        }
        let cat_params: Vec<CatParams> = self
            .categorical_domains
            .iter()
            .map(|&k| CatParams {
                loadings: (0..k)
                    .map(|_| (0..l).map(|_| srng.normal() * 1.5).collect())
                    .collect(),
                label_boost: (0..k_label.max(1))
                    .map(|_| (0..k).map(|_| srng.normal() * self.label_effect).collect())
                    .collect(),
            })
            .collect();

        // Row RNG: varies with seed but independent of structure.
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let mut num_cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); self.numerical];
        let mut cat_cols: Vec<Vec<u32>> =
            vec![Vec::with_capacity(n); self.categorical_domains.len()];
        let mut labels: Vec<u32> = Vec::with_capacity(n);

        let mut z = vec![0.0f64; l];
        for _ in 0..n {
            let y = match &self.label_probs {
                Some(probs) => rng.weighted(probs),
                None => 0,
            };
            for zi in &mut z {
                *zi = rng.normal();
            }
            for (col, p) in num_cols.iter_mut().zip(&num_params) {
                let mut v: f64 = p.loadings.iter().zip(&z).map(|(w, zi)| w * zi).sum();
                v += p.label_shift[y.min(p.label_shift.len() - 1)];
                v += p.mode_offsets[rng.usize(p.mode_offsets.len())];
                v += rng.normal() * p.noise;
                col.push(p.offset + p.scale * v);
            }
            for ((col, p), &k) in cat_cols
                .iter_mut()
                .zip(&cat_params)
                .zip(&self.categorical_domains)
            {
                let mut weights = Vec::with_capacity(k);
                let mut max_score = f64::NEG_INFINITY;
                let mut scores = Vec::with_capacity(k);
                for c in 0..k {
                    let s: f64 = p.loadings[c].iter().zip(&z).map(|(w, zi)| w * zi).sum::<f64>()
                        + p.label_boost[y.min(p.label_boost.len() - 1)][c];
                    max_score = max_score.max(s);
                    scores.push(s);
                }
                for s in scores {
                    weights.push((s - max_score).exp());
                }
                col.push(rng.weighted(&weights) as u32);
            }
            if k_label > 0 {
                labels.push(y as u32);
            }
        }

        // Assemble schema and columns: numerics, categoricals, label.
        let mut attrs = Vec::with_capacity(self.n_attrs());
        let mut columns = Vec::with_capacity(self.n_attrs());
        for (j, col) in num_cols.into_iter().enumerate() {
            attrs.push(Attribute::numerical(format!("num{j}")));
            columns.push(Column::Num(col));
        }
        for ((j, col), &k) in cat_cols.into_iter().enumerate().zip(&self.categorical_domains) {
            attrs.push(Attribute::categorical(format!("cat{j}")));
            columns.push(Column::cat_with_domain(col, k));
        }
        if k_label > 0 {
            let label_idx = attrs.len();
            attrs.push(Attribute::categorical("label"));
            columns.push(Column::cat_with_domain(labels, k_label));
            Table::new(Schema::with_label(attrs, label_idx), columns)
        } else {
            Table::new(Schema::new(attrs), columns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> TableSpec {
        TableSpec {
            name: "demo",
            default_rows: 1000,
            numerical: 3,
            categorical_domains: vec![4, 2],
            label_probs: Some(vec![0.7, 0.3]),
            latent_dim: 2,
            label_effect: 1.5,
            multimodal: true,
        }
    }

    #[test]
    fn shape_matches_spec() {
        let t = demo_spec().generate(500, 0);
        assert_eq!(t.n_rows(), 500);
        assert_eq!(t.n_attrs(), 6);
        assert_eq!(t.schema().n_numerical(), 3);
        assert_eq!(t.schema().n_categorical(), 3);
        assert_eq!(t.n_classes(), 2);
    }

    #[test]
    fn label_distribution_matches() {
        let t = demo_spec().generate(20_000, 1);
        let p1 = t.labels().iter().filter(|&&y| y == 1).count() as f64 / 20_000.0;
        assert!((p1 - 0.3).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn attributes_carry_label_signal() {
        // A depth-10 tree must beat the majority baseline clearly.
        use daisy_eval::classifiers::{Classifier, DecisionTree};
        use daisy_eval::FeatureSpace;
        let t = demo_spec().generate(3000, 2);
        let space = FeatureSpace::fit(&t);
        let x = space.transform(&t);
        let y = FeatureSpace::labels(&t);
        let mut tree = DecisionTree::new(10);
        let mut rng = daisy_tensor::Rng::seed_from_u64(3);
        tree.fit(&x, &y, 2, &mut rng);
        let t2 = demo_spec().generate(1000, 2_000_002);
        // NB: different seed = different population; evaluate in-sample
        // train accuracy against majority instead.
        let _ = t2;
        let acc = daisy_eval::accuracy(&y, &tree.predict(&x));
        let majority = y.iter().filter(|&&v| v == 0).count() as f64 / y.len() as f64;
        assert!(acc > majority + 0.1, "acc {acc} vs majority {majority}");
    }

    #[test]
    fn latent_factors_correlate_attributes() {
        let t = TableSpec {
            latent_dim: 1, // single shared factor = strong correlation
            multimodal: false,
            ..demo_spec()
        }
        .generate(5000, 4);
        let a = t.column(0).as_num();
        let b = t.column(1).as_num();
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum::<f64>() / n;
        let sa = (a.iter().map(|&x| (x - ma) * (x - ma)).sum::<f64>() / n).sqrt();
        let sb = (b.iter().map(|&y| (y - mb) * (y - mb)).sum::<f64>() / n).sqrt();
        assert!(
            (cov / (sa * sb)).abs() > 0.3,
            "correlation too weak: {}",
            cov / (sa * sb)
        );
    }

    #[test]
    fn unlabeled_spec_has_no_label() {
        let t = TableSpec {
            label_probs: None,
            ..demo_spec()
        }
        .generate(100, 5);
        assert_eq!(t.schema().label(), None);
        assert_eq!(t.n_attrs(), 5);
    }

    #[test]
    fn same_seed_same_population_different_rows() {
        let spec = demo_spec();
        let small = spec.generate(100, 6);
        let large = spec.generate(200, 6);
        // First rows of both draws agree (same row stream).
        assert_eq!(small.row(0), large.row(0));
        assert_eq!(small.row(99), large.row(99));
    }
}
