//! # daisy-datasets
//!
//! Every dataset of the paper's §6.1: the simulated `SDataNum` /
//! `SDataCat` families with controlled attribute correlation and label
//! skewness, and seeded structural stand-ins for the eight real
//! datasets of Table 2 (HTRU2, Digits, Adult, CovType, SAT, Anuran,
//! Census, Bing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod real;
pub mod registry;
pub mod sdata;
pub mod synthetic;

pub use registry::{all_real, by_name, high_dimensional, low_dimensional};
pub use sdata::{SDataCat, SDataNum, Skew};
pub use synthetic::TableSpec;
