//! Name-based dataset lookup for the experiment harness.

use crate::real;
use crate::synthetic::TableSpec;

/// All real-dataset stand-ins, in the paper's Table 2 order.
pub fn all_real() -> Vec<TableSpec> {
    vec![
        real::htru2(),
        real::digits(),
        real::adult(),
        real::covtype(),
        real::sat(),
        real::anuran(),
        real::census(),
        real::bing(),
    ]
}

/// Looks a dataset spec up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<TableSpec> {
    all_real()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// The low-dimensional datasets (#Attr ≤ 20).
pub fn low_dimensional() -> Vec<TableSpec> {
    all_real()
        .into_iter()
        .filter(|s| s.n_attrs() <= 20)
        .collect()
}

/// The high-dimensional datasets (#Attr > 20).
pub fn high_dimensional() -> Vec<TableSpec> {
    all_real()
        .into_iter()
        .filter(|s| s.n_attrs() > 20)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("adult").unwrap().name, "Adult");
        assert_eq!(by_name("COVTYPE").unwrap().name, "CovType");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn dimensionality_partition_matches_paper() {
        let low: Vec<_> = low_dimensional().iter().map(|s| s.name).collect();
        let high: Vec<_> = high_dimensional().iter().map(|s| s.name).collect();
        assert_eq!(low, vec!["HTRU2", "Digits", "Adult", "CovType"]);
        assert_eq!(high, vec!["SAT", "Anuran", "Census", "Bing"]);
    }

    #[test]
    fn registry_covers_all_eight() {
        assert_eq!(all_real().len(), 8);
    }
}
