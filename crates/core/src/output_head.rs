//! The attribute-aware generator output layer (paper §5.1, Appendix
//! A.1.2 cases C1–C4): each encoded attribute block receives the
//! activation its transformation scheme demands.

use daisy_data::{OutputBlock, OutputBlockKind};
use daisy_tensor::Var;

/// Applies per-block activations to a raw `[B, d]` pre-activation and
/// reassembles the full sample.
pub fn apply_output_head(raw: &Var, blocks: &[OutputBlock]) -> Var {
    assert!(!blocks.is_empty(), "no output blocks");
    let parts: Vec<Var> = blocks.iter().map(|b| activate_block(raw, b)).collect();
    Var::concat_cols(&parts)
}

fn activate_block(raw: &Var, block: &OutputBlock) -> Var {
    let slice = raw.slice_cols(block.lo, block.hi);
    match block.kind {
        OutputBlockKind::Tanh => slice.tanh(),
        OutputBlockKind::Sigmoid => slice.sigmoid(),
        OutputBlockKind::Softmax => slice.softmax_rows(),
        OutputBlockKind::GmmValueAndComponent => {
            let value = slice.slice_cols(0, 1).tanh();
            let comp = slice.slice_cols(1, block.width()).softmax_rows();
            Var::concat_cols(&[value, comp])
        }
    }
}

/// The softmax-probability sub-blocks of an output layout — the blocks
/// over which VTrain's KL warm-up term is computed (one-hot attribute
/// indicators and GMM component indicators).
pub fn softmax_spans(blocks: &[OutputBlock]) -> Vec<(usize, usize)> {
    blocks
        .iter()
        .filter_map(|b| match b.kind {
            OutputBlockKind::Softmax => Some((b.lo, b.hi)),
            OutputBlockKind::GmmValueAndComponent => Some((b.lo + 1, b.hi)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::{Rng, Tensor};

    fn blocks() -> Vec<OutputBlock> {
        vec![
            OutputBlock {
                kind: OutputBlockKind::Tanh,
                lo: 0,
                hi: 1,
            },
            OutputBlock {
                kind: OutputBlockKind::Softmax,
                lo: 1,
                hi: 4,
            },
            OutputBlock {
                kind: OutputBlockKind::GmmValueAndComponent,
                lo: 4,
                hi: 7,
            },
            OutputBlock {
                kind: OutputBlockKind::Sigmoid,
                lo: 7,
                hi: 8,
            },
        ]
    }

    #[test]
    fn head_respects_each_activation() {
        let mut rng = Rng::seed_from_u64(0);
        let raw = Var::constant(Tensor::randn(&[5, 8], &mut rng).mul_scalar(3.0));
        let out = apply_output_head(&raw, &blocks());
        assert_eq!(out.shape(), &[5, 8]);
        let v = out.value();
        for r in 0..5 {
            let row = v.row(r);
            // Tanh column in [-1, 1].
            assert!(row[0] >= -1.0 && row[0] <= 1.0);
            // Softmax block sums to one.
            let s: f32 = row[1..4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row[1..4].iter().all(|&p| p >= 0.0));
            // GMM block: tanh value + softmax components.
            assert!(row[4] >= -1.0 && row[4] <= 1.0);
            let s: f32 = row[5..7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            // Sigmoid column in [0, 1].
            assert!(row[7] >= 0.0 && row[7] <= 1.0);
        }
    }

    #[test]
    fn head_is_differentiable() {
        let p = daisy_tensor::Param::new(Tensor::randn(
            &[4, 8],
            &mut Rng::seed_from_u64(1),
        ));
        apply_output_head(&p.var(), &blocks()).sqr().mean().backward();
        assert!(p.grad().norm() > 0.0);
        assert!(!p.grad().has_non_finite());
    }

    #[test]
    fn softmax_spans_extracts_probability_blocks() {
        let spans = softmax_spans(&blocks());
        assert_eq!(spans, vec![(1, 4), (5, 7)]);
    }
}
