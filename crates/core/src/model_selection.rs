//! Hyper-parameter search (paper §6.4): random search over candidate
//! settings, each trained once and rated on the validation set — the
//! procedure the paper adopts from Lucic et al.'s large-scale GAN
//! study.

use crate::config::SynthesizerConfig;
use crate::synthesizer::{FittedSynthesizer, Synthesizer};
use daisy_data::Table;
use daisy_tensor::Rng;

/// One candidate hyper-parameter setting (the `param-1 … param-6` of
/// the paper's Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParams {
    /// Generator learning rate.
    pub lr_g: f32,
    /// Discriminator learning rate.
    pub lr_d: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Generator hidden widths.
    pub g_hidden: Vec<usize>,
    /// Prior noise dimension.
    pub noise_dim: usize,
}

impl HyperParams {
    /// Applies the setting onto a base configuration.
    pub fn apply(&self, base: &SynthesizerConfig) -> SynthesizerConfig {
        let mut cfg = base.clone();
        cfg.train.lr_g = self.lr_g;
        cfg.train.lr_d = self.lr_d;
        cfg.train.batch_size = self.batch_size;
        cfg.g_hidden = self.g_hidden.clone();
        cfg.noise_dim = self.noise_dim;
        cfg
    }
}

/// The six canonical candidate settings used by the robustness
/// experiments (Figures 4, 16–18): learning rates spanning two orders
/// of magnitude, two batch sizes, two capacities.
pub fn default_candidates() -> Vec<HyperParams> {
    vec![
        HyperParams {
            lr_g: 2e-3,
            lr_d: 2e-3,
            batch_size: 64,
            g_hidden: vec![128, 128],
            noise_dim: 32,
        },
        HyperParams {
            lr_g: 1e-2,
            lr_d: 1e-2,
            batch_size: 64,
            g_hidden: vec![128, 128],
            noise_dim: 32,
        },
        HyperParams {
            lr_g: 5e-4,
            lr_d: 5e-4,
            batch_size: 32,
            g_hidden: vec![64],
            noise_dim: 16,
        },
        HyperParams {
            lr_g: 2e-2,
            lr_d: 2e-3,
            batch_size: 128,
            g_hidden: vec![256, 256],
            noise_dim: 64,
        },
        HyperParams {
            lr_g: 2e-3,
            lr_d: 2e-2,
            batch_size: 32,
            g_hidden: vec![64, 64],
            noise_dim: 32,
        },
        HyperParams {
            lr_g: 5e-2,
            lr_d: 5e-2,
            batch_size: 64,
            g_hidden: vec![128],
            noise_dim: 32,
        },
    ]
}

/// Result of a hyper-parameter search.
pub struct SearchResult {
    /// The winning configuration.
    pub config: SynthesizerConfig,
    /// Its validation score.
    pub score: f64,
    /// Index of the winning candidate.
    pub candidate: usize,
    /// The fitted synthesizer for the winner.
    pub fitted: FittedSynthesizer,
}

/// Random hyper-parameter search: draws `trials` candidates (with
/// replacement) from `candidates`, trains each on `train`, scores each
/// fitted model with `scorer` (higher is better), returns the best.
pub fn random_search(
    train: &Table,
    base: &SynthesizerConfig,
    candidates: &[HyperParams],
    trials: usize,
    mut scorer: impl FnMut(&FittedSynthesizer) -> f64,
    rng: &mut Rng,
) -> SearchResult {
    assert!(!candidates.is_empty(), "no candidates to search");
    assert!(trials > 0, "need at least one trial");
    let mut best: Option<SearchResult> = None;
    for t in 0..trials {
        let idx = rng.usize(candidates.len());
        let mut cfg = candidates[idx].apply(base);
        cfg.seed = base.seed.wrapping_add(t as u64);
        let fitted = Synthesizer::fit(train, &cfg);
        let score = scorer(&fitted);
        let better = best.as_ref().is_none_or(|b| score > b.score);
        if better {
            best = Some(SearchResult {
                config: cfg,
                score,
                candidate: idx,
                fitted,
            });
        }
    }
    best.expect("at least one trial ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkKind, TrainConfig};
    use crate::generator::test_support::tiny_table;

    #[test]
    fn candidates_are_distinct() {
        let c = default_candidates();
        assert_eq!(c.len(), 6);
        for i in 0..c.len() {
            for j in i + 1..c.len() {
                assert_ne!(c[i], c[j]);
            }
        }
    }

    #[test]
    fn apply_overrides_base() {
        let base = SynthesizerConfig::new(NetworkKind::Mlp, TrainConfig::vtrain(10));
        let hp = &default_candidates()[1];
        let cfg = hp.apply(&base);
        assert_eq!(cfg.train.lr_g, 1e-2);
        assert_eq!(cfg.noise_dim, 32);
        assert_eq!(cfg.network, NetworkKind::Mlp);
    }

    #[test]
    fn search_returns_highest_scorer() {
        let table = tiny_table(200, 0);
        let mut train_cfg = TrainConfig::vtrain(4);
        train_cfg.epochs = 1;
        train_cfg.batch_size = 16;
        let mut base = SynthesizerConfig::new(NetworkKind::Mlp, train_cfg);
        base.g_hidden = vec![16];
        base.d_hidden = vec![16];
        base.noise_dim = 4;
        let mut rng = Rng::seed_from_u64(1);
        // Score = negated candidate lr so the smallest-lr candidate wins
        // whenever it is drawn; mostly we check plumbing + determinism.
        let mut scores = Vec::new();
        let result = random_search(
            &table,
            &base,
            &default_candidates()[..2],
            3,
            |f| {
                let s = -(f.config().train.lr_g as f64);
                scores.push(s);
                s
            },
            &mut rng,
        );
        let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(result.score, best);
        assert!(result.candidate < 2);
    }
}
