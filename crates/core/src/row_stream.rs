//! Pull-based row streaming over a fitted generator — the serving
//! plane's core primitive.
//!
//! [`RowStream`] turns Phase III generation inside-out: instead of
//! materializing an `n`-row table, the consumer *pulls* decoded rows
//! (or whole [`GENERATION_BATCH`]-row batches) and the stream runs one
//! batched forward pass through the generator each time it drains — so
//! memory stays bounded by one batch no matter how many rows a request
//! asks for, while each forward still amortizes across the
//! `daisy-tensor` worker pool.
//!
//! Every stream owns a private RNG seeded from the request, so any
//! request `{seed, n_rows, condition?}` is independently reproducible:
//! same inputs → bit-identical rows, at any thread count, regardless of
//! what other streams run concurrently. [`FittedSynthesizer::generate`]
//! is itself implemented over a stream, which pins the two code paths
//! together: a streamed request equals the batch API row for row by
//! construction, not by convention.

use crate::synthesizer::{FittedSynthesizer, GENERATION_BATCH};
use daisy_data::{Column, Table, Value};
use daisy_tensor::{Rng, RngState, Tensor};

/// A pull-based stream of synthetic rows from a [`FittedSynthesizer`].
///
/// Create one with [`FittedSynthesizer::stream_rows`] (conditions drawn
/// from the training label distribution) or
/// [`FittedSynthesizer::try_stream_rows`] (fixed condition). Consume it
/// either as an `Iterator` of row vectors or batch-at-a-time via
/// [`RowStream::next_batch`] — but pick one: the iterator buffers the
/// current batch internally, so interleaving the two skips rows.
pub struct RowStream<'a> {
    synth: &'a FittedSynthesizer,
    rng: Rng,
    total: usize,
    generated: usize,
    /// Fixed condition code; `None` samples conditions from the
    /// training label distribution (conditional models only).
    condition: Option<u32>,
    /// Tail of a batch that [`RowStream::fast_forward`] landed inside:
    /// the containing batch is generated in full (to keep the RNG and
    /// batch grid aligned with an uninterrupted stream) and the rows at
    /// and past the offset are parked here for the next
    /// [`RowStream::next_batch`] call.
    pending: Option<Table>,
    /// Current decoded batch for the row-at-a-time iterator.
    batch: Option<Table>,
    cursor: usize,
}

impl<'a> RowStream<'a> {
    pub(crate) fn new(
        synth: &'a FittedSynthesizer,
        total: usize,
        rng: Rng,
        condition: Option<u32>,
    ) -> Self {
        synth.generator.set_training(false);
        RowStream {
            synth,
            rng,
            total,
            generated: 0,
            condition,
            pending: None,
            batch: None,
            cursor: 0,
        }
    }

    /// Total rows this stream will produce.
    pub fn total_rows(&self) -> usize {
        self.total
    }

    /// Rows already generated (handed out via [`RowStream::next_batch`]
    /// or buffered for the iterator).
    pub fn generated_rows(&self) -> usize {
        self.generated
    }

    /// The stream RNG's current state — [`FittedSynthesizer::generate`]
    /// uses this to advance its caller's RNG exactly as the pre-stream
    /// implementation did.
    pub fn rng_state(&self) -> RngState {
        self.rng.state()
    }

    /// Generates and decodes the next batch of up to
    /// [`GENERATION_BATCH`] rows, or `None` when the stream is
    /// exhausted.
    ///
    /// The RNG draw order per batch is fixed — noise first, then
    /// condition labels — and the batch size is a constant, so the
    /// concatenation of all batches is bit-identical to a single
    /// [`FittedSynthesizer::generate`] call with the same RNG, at any
    /// thread count.
    pub fn next_batch(&mut self) -> Option<Table> {
        if let Some(tail) = self.pending.take() {
            return Some(tail);
        }
        if self.generated >= self.total {
            return None;
        }
        daisy_telemetry::phase_scope!("generate");
        let batch = (self.total - self.generated).min(GENERATION_BATCH);
        let g = self.synth.generator.as_ref();
        let z = g.sample_noise(batch, &mut self.rng);
        let conditional = self.synth.config.train.conditional;
        let (cond, labels) = if conditional {
            let labels: Vec<u32> = match self.condition {
                Some(code) => vec![code; batch],
                None => (0..batch)
                    .map(|_| self.rng.weighted(&self.synth.label_dist) as u32)
                    .collect(),
            };
            let c = daisy_data::one_hot_labels(&labels, self.synth.label_dist.len());
            (Some(c), labels)
        } else {
            (None, Vec::new())
        };
        let fake = g.forward(&z, cond.as_ref(), &mut self.rng);
        let table = self.synth.codec.decode_table(fake.value());
        let table = if conditional {
            let j = self.synth.label_col.expect("conditional models have a label");
            let label_column = Column::Cat {
                codes: labels,
                categories: self.synth.label_categories.clone(),
            };
            table.insert_column(j, label_column, self.synth.output_schema.clone())
        } else {
            table
        };
        self.generated += batch;
        Some(table)
    }

    /// Fast-forwards the stream to row `n` without emitting rows
    /// `[0, n)` — the server side of a resumed (`start_row`) fetch.
    ///
    /// Batch boundaries stay on the [`GENERATION_BATCH`] grid anchored
    /// at row 0: full batches before the offset are skipped RNG-only
    /// (every draw `next_batch` would make is mirrored, no forward
    /// pass), and when `n` lands inside a batch the containing batch is
    /// generated in full with its first `n % GENERATION_BATCH` rows
    /// discarded. The rows this stream then produces are therefore
    /// bit-identical to rows `[n, total)` of an uninterrupted stream —
    /// the property that makes resumed serve fetches byte-exact.
    ///
    /// Call before the first [`RowStream::next_batch`]; fast-forwarding
    /// a partially consumed stream would double-count the batches
    /// already emitted.
    pub fn fast_forward(&mut self, n: usize) {
        let n = n.min(self.total);
        daisy_telemetry::phase_scope!("generate");
        while self.generated + GENERATION_BATCH <= n {
            let batch = (self.total - self.generated).min(GENERATION_BATCH);
            self.skip_batch_rng(batch);
            self.generated += batch;
        }
        let within = n - self.generated;
        if within > 0 {
            if let Some(table) = self.next_batch() {
                let keep: Vec<usize> = (within..table.n_rows()).collect();
                if !keep.is_empty() {
                    self.pending = Some(table.select_rows(&keep));
                }
            }
        }
    }

    /// Advances the stream RNG past exactly the draws one
    /// [`RowStream::next_batch`] of `batch` rows would make — noise,
    /// then sampled condition labels, then any in-forward draws — in
    /// the same order.
    fn skip_batch_rng(&mut self, batch: usize) {
        let g = self.synth.generator.as_ref();
        let _ = g.sample_noise(batch, &mut self.rng);
        if self.synth.config.train.conditional && self.condition.is_none() {
            for _ in 0..batch {
                let _ = self.rng.weighted(&self.synth.label_dist);
            }
        }
        g.skip_forward_rng(batch, &mut self.rng);
    }
}

impl Iterator for RowStream<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            if let Some(b) = &self.batch {
                if self.cursor < b.n_rows() {
                    let row = b.row(self.cursor);
                    self.cursor += 1;
                    return Some(row);
                }
            }
            self.batch = Some(self.next_batch()?);
            self.cursor = 0;
        }
    }
}

/// Stacks batch tables produced by [`RowStream::next_batch`] onto a
/// 0-row `template` (from [`FittedSynthesizer::output_template`]).
fn concat_tables(template: Table, batches: Vec<Table>) -> Table {
    let mut columns: Vec<Column> = template.columns().to_vec();
    for batch in &batches {
        for (dst, src) in columns.iter_mut().zip(batch.columns()) {
            match (dst, src) {
                (Column::Num(all), Column::Num(part)) => all.extend_from_slice(part),
                (Column::Cat { codes: all, .. }, Column::Cat { codes: part, .. }) => {
                    all.extend_from_slice(part)
                }
                _ => panic!("batch column type does not match the output template"),
            }
        }
    }
    Table::new(template.schema().clone(), columns)
}

impl FittedSynthesizer {
    /// A 0-row table with exactly the schema, column order and
    /// categorical domains that generation produces — the column
    /// contract a serving front-end advertises to clients before any
    /// row exists.
    pub fn output_template(&self) -> Table {
        let empty = self
            .codec
            .decode_table(&Tensor::zeros(&[0, self.codec.width()]));
        if self.config.train.conditional {
            let j = self.label_col.expect("conditional models have a label");
            let label_column = Column::Cat {
                codes: Vec::new(),
                categories: self.label_categories.clone(),
            };
            empty.insert_column(j, label_column, self.output_schema.clone())
        } else {
            empty
        }
    }

    /// True when the model was trained conditionally (CTrain / CGAN-V)
    /// and therefore honors per-request conditions.
    pub fn is_conditional(&self) -> bool {
        self.config.train.conditional
    }

    /// Category names of the label attribute (empty for
    /// non-conditional models) — the legal values for a streamed
    /// request's `condition`.
    pub fn condition_categories(&self) -> &[String] {
        &self.label_categories
    }

    /// Total scalar weights in the generator.
    pub fn param_count(&self) -> usize {
        daisy_nn::num_params(&self.generator.params())
    }

    /// Resident bytes of the generator weights — what one decoded
    /// serving replica costs in memory, before batch buffers.
    pub fn param_bytes(&self) -> usize {
        daisy_nn::params_bytes(&self.generator.params())
    }

    /// Streams `n` rows from a fresh RNG seeded with `seed`, drawing
    /// conditions from the training label distribution. The stream is
    /// independently reproducible: same `(seed, n)` → bit-identical
    /// rows, at any thread count.
    pub fn stream_rows(&self, n: usize, seed: u64) -> RowStream<'_> {
        RowStream::new(self, n, Rng::seed_from_u64(seed), None)
    }

    /// Streams `n` rows from a fresh RNG seeded with `seed`, with every
    /// row conditioned on the label category named `condition` (when
    /// given). Fails when the model is not conditional or the category
    /// is unknown — the typed rejection a serving front-end reports
    /// back to the client.
    pub fn try_stream_rows(
        &self,
        n: usize,
        seed: u64,
        condition: Option<&str>,
    ) -> Result<RowStream<'_>, String> {
        let code = match condition {
            None => None,
            Some(name) => {
                if !self.config.train.conditional {
                    return Err(format!(
                        "model is not conditional; cannot honor condition {name:?}"
                    ));
                }
                let code = self
                    .label_categories
                    .iter()
                    .position(|c| c == name)
                    .ok_or_else(|| {
                        format!(
                            "unknown label category {name:?} (known: {})",
                            self.label_categories.join(", ")
                        )
                    })?;
                Some(code as u32)
            }
        };
        Ok(RowStream::new(self, n, Rng::seed_from_u64(seed), code))
    }

    /// Consumes a stream into one table (shared by
    /// [`FittedSynthesizer::generate`] and tests).
    pub(crate) fn collect_stream(&self, mut stream: RowStream<'_>) -> (Table, RngState) {
        let mut batches = Vec::new();
        while let Some(b) = stream.next_batch() {
            batches.push(b);
        }
        let state = stream.rng_state();
        (concat_tables(self.output_template(), batches), state)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{NetworkKind, SynthesizerConfig, TrainConfig};
    use crate::generator::test_support::tiny_table;
    use crate::synthesizer::{Synthesizer, GENERATION_BATCH};
    use daisy_tensor::Rng;

    fn tiny_fitted(conditional: bool) -> crate::FittedSynthesizer {
        tiny_fitted_kind(NetworkKind::Mlp, conditional)
    }

    fn tiny_fitted_kind(kind: NetworkKind, conditional: bool) -> crate::FittedSynthesizer {
        let table = tiny_table(120, 7);
        let train = if conditional {
            TrainConfig::ctrain(30)
        } else {
            TrainConfig::vtrain(30)
        };
        let config = SynthesizerConfig::new(kind, train);
        Synthesizer::fit(&table, &config)
    }

    /// Rows `[k, n)` of a fast-forwarded stream must equal rows
    /// `[k, n)` of an uninterrupted stream, bit for bit.
    fn assert_resume_parity(
        fitted: &crate::FittedSynthesizer,
        n: usize,
        seed: u64,
        condition: Option<&str>,
    ) {
        let full: Vec<Vec<daisy_data::Value>> = fitted
            .try_stream_rows(n, seed, condition)
            .expect("full stream")
            .collect();
        for k in [0, 1, GENERATION_BATCH - 1, GENERATION_BATCH, GENERATION_BATCH + 37, n] {
            let mut resumed = fitted
                .try_stream_rows(n, seed, condition)
                .expect("resumed stream");
            resumed.fast_forward(k);
            let tail: Vec<Vec<daisy_data::Value>> = resumed.collect();
            assert_eq!(tail.len(), n - k, "resume at {k} yields the remainder");
            assert_eq!(tail, full[k..], "resume at {k} diverged");
        }
    }

    #[test]
    fn fast_forward_resumes_bit_identical_mlp() {
        let fitted = tiny_fitted(false);
        assert_resume_parity(&fitted, GENERATION_BATCH + 90, 11, None);

        let conditional = tiny_fitted(true);
        // Sampled labels consume per-row RNG draws the skip must mirror.
        assert_resume_parity(&conditional, GENERATION_BATCH + 90, 11, None);
        // Pinned labels consume none.
        let category = conditional.condition_categories()[0].clone();
        assert_resume_parity(&conditional, GENERATION_BATCH + 90, 11, Some(&category));
    }

    #[test]
    fn fast_forward_resumes_bit_identical_lstm() {
        // The LSTM generator draws from the stream RNG inside `forward`
        // (random initial state); `skip_forward_rng` must mirror it.
        let fitted = tiny_fitted_kind(NetworkKind::Lstm, false);
        assert_resume_parity(&fitted, GENERATION_BATCH + 40, 5, None);
    }

    #[test]
    fn stream_equals_generate_row_for_row() {
        let fitted = tiny_fitted(true);
        let n = GENERATION_BATCH + 37; // straddle a batch boundary
        let seed = 42;
        let mut rng = Rng::seed_from_u64(seed);
        let table = fitted.generate(n, &mut rng);
        let streamed: Vec<Vec<daisy_data::Value>> = fitted.stream_rows(n, seed).collect();
        assert_eq!(streamed.len(), n);
        for (i, row) in streamed.iter().enumerate() {
            assert_eq!(*row, table.row(i), "row {i} diverged");
        }
    }

    #[test]
    fn same_seed_same_rows_fresh_streams() {
        let fitted = tiny_fitted(false);
        let a: Vec<Vec<daisy_data::Value>> = fitted.stream_rows(300, 9).collect();
        let b: Vec<Vec<daisy_data::Value>> = fitted.stream_rows(300, 9).collect();
        assert_eq!(a, b);
        let c: Vec<Vec<daisy_data::Value>> = fitted.stream_rows(300, 10).collect();
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn fixed_condition_pins_every_label() {
        let fitted = tiny_fitted(true);
        let category = fitted.condition_categories()[1].clone();
        let stream = fitted
            .try_stream_rows(50, 3, Some(&category))
            .expect("known category");
        let label_col = fitted.output_template().schema().label().unwrap();
        for row in stream {
            assert_eq!(row[label_col], daisy_data::Value::Cat(1));
        }
    }

    #[test]
    fn bad_conditions_are_typed_errors() {
        let conditional = tiny_fitted(true);
        let Err(err) = conditional.try_stream_rows(10, 0, Some("no-such-category")) else {
            panic!("unknown category accepted");
        };
        assert!(err.contains("unknown label category"), "{err}");

        let unconditional = tiny_fitted(false);
        let Err(err) = unconditional.try_stream_rows(10, 0, Some("a")) else {
            panic!("condition accepted by a non-conditional model");
        };
        assert!(err.contains("not conditional"), "{err}");
    }

    #[test]
    fn output_template_matches_generated_schema() {
        for conditional in [false, true] {
            let fitted = tiny_fitted(conditional);
            let template = fitted.output_template();
            assert_eq!(template.n_rows(), 0);
            let mut rng = Rng::seed_from_u64(0);
            let table = fitted.generate(10, &mut rng);
            assert_eq!(template.schema(), table.schema());
            for (t, g) in template.columns().iter().zip(table.columns()) {
                assert_eq!(t.ty(), g.ty());
            }
        }
    }

    #[test]
    fn generate_zero_rows_is_the_template() {
        let fitted = tiny_fitted(true);
        let mut rng = Rng::seed_from_u64(0);
        let empty = fitted.generate(0, &mut rng);
        assert_eq!(empty, fitted.output_template());
    }
}
