//! Phase II of the framework: GAN model training.
//!
//! One driver implements all four training algorithms of the paper's
//! Table 1 — the strategy differences (loss, optimizer, sampling,
//! differential privacy) are configuration:
//!
//! | Algorithm | Loss     | Optimizer | Sampling     | DP |
//! |-----------|----------|-----------|--------------|----|
//! | VTrain    | Eq. (2)  | Adam      | random       | ✗  |
//! | WTrain    | Eq. (3)  | RMSProp   | random       | ✗  |
//! | CTrain    | Eq. (4)  | Adam      | label-aware  | ✗  |
//! | DPTrain   | Eq. (3)  | RMSProp   | random       | ✓  |

use crate::config::{LossKind, TrainConfig};
use crate::discriminator::Discriminator;
use crate::generator::Generator;
use crate::sampler::{Minibatch, TrainingData};
use daisy_nn::loss::{batch_distribution, empirical_distribution, kl_divergence};
use daisy_nn::{
    add_grad_noise, clip_grad_norm, clip_weights, snapshot, zero_grads, Adam, Optimizer, RmsProp,
};
use daisy_tensor::{Rng, Tensor, Var};

/// Aggregate losses of one training epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean discriminator loss over the epoch.
    pub d_loss: f32,
    /// Mean generator loss (including the KL term when enabled).
    pub g_loss: f32,
    /// Mean KL warm-up term alone.
    pub kl: f32,
}

/// The result of a training run: per-epoch generator snapshots (for
/// validation-based model selection, §6.2) and loss history.
pub struct TrainingRun {
    /// Generator parameter snapshots, one per epoch.
    pub snapshots: Vec<Vec<Tensor>>,
    /// Loss history, one entry per epoch.
    pub history: Vec<EpochStats>,
}

/// Trains `g` against `d` on `data` per `cfg`. The KL warm-up term is
/// computed over `softmax_spans` (one-hot and GMM-component blocks of
/// the encoded layout; pass empty to disable).
pub fn train_gan(
    g: &dyn Generator,
    d: &dyn Discriminator,
    data: &TrainingData,
    softmax_spans: &[(usize, usize)],
    cfg: &TrainConfig,
    rng: &mut Rng,
) -> TrainingRun {
    assert!(cfg.iterations > 0, "need at least one iteration");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    assert!(
        !cfg.conditional || data.n_classes() > 0,
        "conditional training requires a labeled table"
    );
    assert!(cfg.pac >= 1, "pac degree must be at least 1");
    assert!(
        cfg.pac == 1 || !cfg.conditional,
        "PacGAN packing is unconditional-only (conditions cannot be packed)"
    );
    let g_params = g.params();
    let d_params = d.params();
    g.set_training(true);
    d.set_training(true);

    let (mut opt_g, mut opt_d): (Box<dyn Optimizer>, Box<dyn Optimizer>) = match cfg.loss {
        LossKind::Vanilla => (
            Box::new(Adam::with_betas(g_params.clone(), cfg.lr_g, 0.5, 0.999)),
            Box::new(Adam::with_betas(d_params.clone(), cfg.lr_d, 0.5, 0.999)),
        ),
        LossKind::Wasserstein => (
            Box::new(RmsProp::new(g_params.clone(), cfg.lr_g)),
            Box::new(RmsProp::new(d_params.clone(), cfg.lr_d)),
        ),
    };

    let epochs = cfg.epochs.max(1);
    let iters_per_epoch = cfg.iterations.div_ceil(epochs);
    let mut run = TrainingRun {
        snapshots: Vec::with_capacity(epochs),
        history: Vec::with_capacity(epochs),
    };
    let mut acc = (0.0f64, 0.0f64, 0.0f64, 0usize); // d, g, kl, count

    for t in 0..cfg.iterations {
        if cfg.conditional && cfg.label_aware {
            // Algorithm 3: iterate every label in the domain.
            for y in 0..data.n_classes() as u32 {
                let (dl, gl, kl) = step(
                    g,
                    d,
                    data,
                    softmax_spans,
                    cfg,
                    Some(y),
                    &mut *opt_g,
                    &mut *opt_d,
                    rng,
                );
                acc = (acc.0 + dl as f64, acc.1 + gl as f64, acc.2 + kl as f64, acc.3 + 1);
            }
        } else {
            let (dl, gl, kl) = step(
                g,
                d,
                data,
                softmax_spans,
                cfg,
                None,
                &mut *opt_g,
                &mut *opt_d,
                rng,
            );
            acc = (acc.0 + dl as f64, acc.1 + gl as f64, acc.2 + kl as f64, acc.3 + 1);
        }

        let end_of_epoch = (t + 1) % iters_per_epoch == 0 || t + 1 == cfg.iterations;
        if end_of_epoch {
            let n = acc.3.max(1) as f64;
            run.history.push(EpochStats {
                epoch: run.history.len(),
                d_loss: (acc.0 / n) as f32,
                g_loss: (acc.1 / n) as f32,
                kl: (acc.2 / n) as f32,
            });
            run.snapshots.push(snapshot(&g_params));
            acc = (0.0, 0.0, 0.0, 0);
            if run.snapshots.len() == epochs {
                break;
            }
        }
    }
    g.set_training(false);
    d.set_training(false);
    run
}

/// One generator iteration: `d_steps` discriminator updates followed by
/// one generator update. Returns `(d_loss, g_loss, kl_term)`.
#[allow(clippy::too_many_arguments)]
fn step(
    g: &dyn Generator,
    d: &dyn Discriminator,
    data: &TrainingData,
    softmax_spans: &[(usize, usize)],
    cfg: &TrainConfig,
    target_label: Option<u32>,
    opt_g: &mut dyn Optimizer,
    opt_d: &mut dyn Optimizer,
    rng: &mut Rng,
) -> (f32, f32, f32) {
    let m = cfg.batch_size;
    let g_params = g.params();
    let d_params = d.params();

    // ---- discriminator phase ----
    // With PacGAN packing, `pac` consecutive samples are concatenated
    // into one discriminator input; `m` is rounded down accordingly.
    let pac = cfg.pac.max(1);
    let m = (m / pac).max(1) * pac;
    let groups = m / pac;
    let mut d_loss_last = 0.0;
    for _ in 0..cfg.d_steps.max(1) {
        let real = sample(data, cfg, target_label, m, rng);
        let cond = real.conditions.clone();
        let z = g.sample_noise(m, rng);
        // The generator graph is detached: only D updates here.
        let fake = pack(&g.forward(&z, cond.as_ref(), rng).detach(), pac);

        zero_grads(&d_params);
        let real_var = pack(&Var::constant(real.samples.clone()), pac);
        let d_loss = match cfg.loss {
            LossKind::Vanilla => {
                let loss_real = d
                    .logits(&real_var, cond.as_ref())
                    .bce_with_logits(&Tensor::ones(&[groups, 1]));
                let loss_fake = d
                    .logits(&fake, cond.as_ref())
                    .bce_with_logits(&Tensor::zeros(&[groups, 1]));
                loss_real.add(&loss_fake)
            }
            LossKind::Wasserstein => {
                // L_D = E[D(fake)] - E[D(real)], Equation (3).
                let score_real = d.logits(&real_var, cond.as_ref()).mean();
                let score_fake = d.logits(&fake, cond.as_ref()).mean();
                score_fake.sub(&score_real)
            }
        };
        d_loss_last = d_loss.value().data()[0];
        d_loss.backward();

        if let Some(dp) = &cfg.dp {
            // DPTrain (Algorithm 4): bound sensitivity, then perturb.
            // The recorded gradient is the batch mean, so the noise a
            // mean-of-per-example-noised gradient would carry has
            // standard deviation σ_n · c_g / m.
            clip_grad_norm(&d_params, dp.grad_bound);
            add_grad_noise(
                &d_params,
                dp.noise_scale * dp.grad_bound / m as f32,
                rng,
            );
        }
        opt_d.step();
        if matches!(cfg.loss, LossKind::Wasserstein) {
            clip_weights(&d_params, cfg.weight_clip);
        }
    }

    // ---- generator phase ----
    let real = sample(data, cfg, target_label, m, rng);
    let cond = real.conditions.clone();
    let z = g.sample_noise(m, rng);
    zero_grads(&g_params);
    zero_grads(&d_params); // D receives gradients below; discard them.
    let fake = g.forward(&z, cond.as_ref(), rng);

    let (g_loss, kl_value) = match cfg.loss {
        LossKind::Vanilla => {
            // Non-saturating generator loss plus the KL warm-up of
            // Equation (2).
            let adv = d
                .logits(&pack(&fake, pac), cond.as_ref())
                .bce_with_logits(&Tensor::ones(&[groups, 1]));
            if cfg.kl_weight > 0.0 && !softmax_spans.is_empty() {
                let kl = kl_term(&real, &fake, softmax_spans);
                let kl_value = kl.value().data()[0];
                (adv.add(&kl.mul_scalar(cfg.kl_weight)), kl_value)
            } else {
                (adv, 0.0)
            }
        }
        LossKind::Wasserstein => {
            // L_G = -E[D(G(z))], Equation (3).
            (
                d.logits(&pack(&fake, pac), cond.as_ref()).mean().neg(),
                0.0,
            )
        }
    };
    let g_loss_value = g_loss.value().data()[0];
    g_loss.backward();
    opt_g.step();

    (d_loss_last, g_loss_value, kl_value)
}

/// PacGAN packing: `[m, d] -> [m/pac, pac*d]` by concatenating groups
/// of consecutive rows (a row-major reshape). Identity when `pac == 1`.
fn pack(x: &Var, pac: usize) -> Var {
    if pac <= 1 {
        return x.clone();
    }
    let (m, d) = (x.shape()[0], x.shape()[1]);
    debug_assert_eq!(m % pac, 0, "batch not divisible by pac");
    x.reshape(&[m / pac, pac * d])
}

fn sample(
    data: &TrainingData,
    cfg: &TrainConfig,
    target_label: Option<u32>,
    m: usize,
    rng: &mut Rng,
) -> Minibatch {
    match target_label {
        Some(y) => data.sample_with_label(y, m, rng),
        None => data.sample_random(m, cfg.conditional, rng),
    }
}

/// `Σ_j KL(T[j] ‖ T'[j])` over the probability blocks of the layout.
fn kl_term(real: &Minibatch, fake: &Var, spans: &[(usize, usize)]) -> Var {
    let mut total: Option<Var> = None;
    for &(lo, hi) in spans {
        let p_real = empirical_distribution(&real.samples.slice_cols(lo, hi));
        let q_syn = batch_distribution(&fake.slice_cols(lo, hi));
        let kl = kl_divergence(&p_real, &q_syn, 1e-6);
        total = Some(match total {
            Some(t) => t.add(&kl),
            None => kl,
        });
    }
    total.expect("kl_term called with no spans")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DpConfig, NetworkKind, SynthesizerConfig};
    use crate::discriminator::MlpDiscriminator;
    use crate::generator::test_support::tiny_table;
    use crate::generator::MlpGenerator;
    use crate::output_head::softmax_spans;
    use daisy_data::{RecordCodec, TransformConfig};

    fn setup(
        cfg: &TrainConfig,
        seed: u64,
    ) -> (MlpGenerator, MlpDiscriminator, TrainingData, Vec<(usize, usize)>) {
        let table = tiny_table(400, seed);
        let codec = RecordCodec::fit(&table, &TransformConfig::sn_ht());
        let data = TrainingData::from_table(&table, &codec);
        let mut rng = Rng::seed_from_u64(seed);
        let cond = if cfg.conditional { data.n_classes() } else { 0 };
        let g = MlpGenerator::new(8, cond, &[32], codec.output_blocks(), &mut rng);
        let d = MlpDiscriminator::new(codec.width(), cond, &[32], &mut rng);
        let spans = softmax_spans(&codec.output_blocks());
        (g, d, data, spans)
    }

    #[test]
    fn vtrain_produces_snapshots_and_history() {
        let cfg = TrainConfig {
            iterations: 20,
            batch_size: 32,
            epochs: 5,
            ..TrainConfig::vtrain(20)
        };
        let (g, d, data, spans) = setup(&cfg, 0);
        let mut rng = Rng::seed_from_u64(1);
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
        assert_eq!(run.snapshots.len(), 5);
        assert_eq!(run.history.len(), 5);
        assert!(run.history.iter().all(|h| h.d_loss.is_finite() && h.g_loss.is_finite()));
        // KL term is active under VTrain with one-hot blocks.
        assert!(run.history.iter().any(|h| h.kl > 0.0));
    }

    #[test]
    fn wtrain_clips_weights() {
        let cfg = TrainConfig {
            iterations: 6,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::wtrain(6)
        };
        let (g, d, data, spans) = setup(&cfg, 2);
        let mut rng = Rng::seed_from_u64(3);
        let _ = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
        use crate::discriminator::Discriminator;
        for p in d.params() {
            let v = p.value();
            assert!(
                v.max() <= cfg.weight_clip + 1e-6 && v.min() >= -cfg.weight_clip - 1e-6,
                "weights not clipped"
            );
        }
    }

    #[test]
    fn ctrain_runs_per_label() {
        let cfg = TrainConfig {
            iterations: 4,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::ctrain(4)
        };
        let (g, d, data, spans) = setup(&cfg, 4);
        let mut rng = Rng::seed_from_u64(5);
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
        assert_eq!(run.snapshots.len(), 2);
    }

    #[test]
    fn dptrain_finishes_with_finite_losses() {
        let dp = DpConfig::for_epsilon(1.0, 20, 16, 400);
        let cfg = TrainConfig {
            iterations: 6,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::dptrain(6, dp)
        };
        let (g, d, data, spans) = setup(&cfg, 6);
        let mut rng = Rng::seed_from_u64(7);
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
        assert!(run.history.iter().all(|h| h.d_loss.is_finite()));
    }

    #[test]
    fn training_changes_generator_params() {
        let cfg = TrainConfig {
            iterations: 10,
            batch_size: 32,
            epochs: 2,
            ..TrainConfig::vtrain(10)
        };
        let (g, d, data, spans) = setup(&cfg, 8);
        let before = daisy_nn::snapshot(&g.params());
        let mut rng = Rng::seed_from_u64(9);
        let _ = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
        let after = daisy_nn::snapshot(&g.params());
        let moved = before
            .iter()
            .zip(&after)
            .any(|(a, b)| a.sub(b).norm() > 1e-6);
        assert!(moved, "generator parameters did not move");
    }

    #[test]
    fn pacgan_packing_trains_and_packs_correctly() {
        let mut cfg = TrainConfig::vtrain(8);
        cfg.batch_size = 30; // rounds down to 30 (divisible by 3)
        cfg.pac = 3;
        cfg.epochs = 2;
        let table = tiny_table(300, 20);
        let codec = RecordCodec::fit(&table, &TransformConfig::sn_ht());
        let data = TrainingData::from_table(&table, &codec);
        let mut rng = Rng::seed_from_u64(21);
        let g = MlpGenerator::new(8, 0, &[24], codec.output_blocks(), &mut rng);
        // The packed discriminator sees pac * width inputs.
        let d = MlpDiscriminator::new(codec.width() * 3, 0, &[24], &mut rng);
        let spans = softmax_spans(&codec.output_blocks());
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
        assert_eq!(run.snapshots.len(), 2);
        assert!(run.history.iter().all(|h| h.d_loss.is_finite()));
    }

    #[test]
    #[should_panic(expected = "unconditional-only")]
    fn pacgan_rejects_conditional() {
        let mut cfg = TrainConfig::ctrain(4);
        cfg.pac = 2;
        let (g, d, data, spans) = setup(&cfg, 22);
        let mut rng = Rng::seed_from_u64(23);
        let _ = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TrainConfig {
            iterations: 5,
            batch_size: 16,
            epochs: 1,
            ..TrainConfig::vtrain(5)
        };
        let run_once = || {
            let (g, d, data, spans) = setup(&cfg, 10);
            let mut rng = Rng::seed_from_u64(11);
            let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng);
            run.snapshots[0][0].data().to_vec()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn effective_d_hidden_feeds_simplified_discriminator() {
        // Smoke-test the simplified-D wiring end to end.
        let mut cfg_s = SynthesizerConfig::new(NetworkKind::Mlp, TrainConfig::vtrain(5));
        cfg_s.simplified_d = true;
        assert!(cfg_s.effective_d_hidden().len() == 1);
    }
}
