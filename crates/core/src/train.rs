//! Phase II of the framework: GAN model training.
//!
//! One driver implements all four training algorithms of the paper's
//! Table 1 — the strategy differences (loss, optimizer, sampling,
//! differential privacy) are configuration:
//!
//! | Algorithm | Loss     | Optimizer | Sampling     | DP |
//! |-----------|----------|-----------|--------------|----|
//! | VTrain    | Eq. (2)  | Adam      | random       | ✗  |
//! | WTrain    | Eq. (3)  | RMSProp   | random       | ✗  |
//! | CTrain    | Eq. (4)  | Adam      | label-aware  | ✗  |
//! | DPTrain   | Eq. (3)  | RMSProp   | random       | ✓  |
//!
//! Training runs under the resilience layer of [`crate::guard`]:
//! [`train_gan_resilient`] wraps every step in health checks and a
//! bounded rollback/escalation recovery policy, while [`train_gan`]
//! keeps the open-loop behaviour (guards disabled) for callers that
//! want the raw algorithms.
//!
//! Every D and G step runs its matmuls, convolutions and reductions on
//! daisy-tensor's worker pool (`daisy_tensor::pool`, sized by
//! `DAISY_THREADS`). The pool's determinism contract — bit-identical
//! results for any thread count — is what keeps the guard's recovery
//! traces and the fixed-seed reproducibility tests below valid on
//! multi-core machines.

use crate::checkpoint::{CheckpointPlan, CheckpointStore, TrainCheckpoint};
use crate::config::{LossKind, TrainConfig};
use crate::discriminator::Discriminator;
use crate::fault::{ArmedFaults, Fault, FaultPlan};
use crate::generator::Generator;
use crate::guard::{
    GuardConfig, RecoveryAction, RecoveryEvent, TrainError, TrainGuard, TrainOutcome, TripReason,
};
use crate::sampler::{BatchSource, Minibatch};
use daisy_nn::loss::{batch_distribution, empirical_distribution, kl_divergence};
use daisy_nn::{
    add_grad_noise, clip_grad_norm, clip_weights, grad_norm, params_non_finite, restore, snapshot,
    zero_grads, Adam, Optimizer, RmsProp,
};
use daisy_telemetry::{field, schema};
use daisy_tensor::{Rng, Tensor, Var};

/// Emits the typed `recovery` event for one recovery-trace entry.
/// Exactly one event per entry: every push onto `outcome.recoveries`
/// is paired with one call.
fn emit_recovery(event: &RecoveryEvent) {
    if daisy_telemetry::enabled() {
        daisy_telemetry::emit(schema::RECOVERY, event.telemetry_fields());
    }
}

/// Aggregate losses of one training epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean discriminator loss over the epoch.
    pub d_loss: f32,
    /// Mean generator loss (including the KL term when enabled).
    pub g_loss: f32,
    /// Mean KL warm-up term alone.
    pub kl: f32,
}

/// The result of a training run: per-epoch generator snapshots (for
/// validation-based model selection, §6.2) and loss history.
pub struct TrainingRun {
    /// Generator parameter snapshots, one per epoch.
    pub snapshots: Vec<Vec<Tensor>>,
    /// Loss history, one entry per epoch.
    pub history: Vec<EpochStats>,
}

/// A training run plus the resilience layer's health report.
pub struct ResilientRun {
    /// Snapshots and loss history (possibly truncated when degraded).
    pub run: TrainingRun,
    /// Recovery trace, escalations, and degradation status.
    pub outcome: TrainOutcome,
}

/// Everything needed to rewind training to a healthy point: network
/// parameters, optimizer moments, step/epoch counters and the guard's
/// loss envelope. Captured at initialization and after every clean
/// epoch.
struct Healthy {
    g: Vec<Tensor>,
    d: Vec<Tensor>,
    opt_g: Vec<Tensor>,
    opt_d: Vec<Tensor>,
    /// Loss family the optimizer states belong to (a WTrain switch
    /// invalidates Adam moments).
    loss: LossKind,
    t: usize,
    epochs_done: usize,
    ema: (f32, f32, usize),
}

/// Trains `g` against `d` on `data` per `cfg`, open-loop (guards
/// disabled, no fault injection). The KL warm-up term is computed over
/// `softmax_spans` (one-hot and GMM-component blocks of the encoded
/// layout; pass empty to disable). Returns [`TrainError::InvalidConfig`]
/// on bad configuration instead of panicking.
pub fn train_gan(
    g: &dyn Generator,
    d: &dyn Discriminator,
    data: &dyn BatchSource,
    softmax_spans: &[(usize, usize)],
    cfg: &TrainConfig,
    rng: &mut Rng,
) -> Result<TrainingRun, TrainError> {
    train_gan_resilient(
        g,
        d,
        data,
        softmax_spans,
        cfg,
        &GuardConfig::disabled(),
        &FaultPlan::none(),
        rng,
    )
    .map(|r| r.run)
}

fn validate(cfg: &TrainConfig, data: &dyn BatchSource) -> Result<(), TrainError> {
    let err = |msg: &str| Err(TrainError::InvalidConfig(msg.to_string()));
    if cfg.iterations == 0 {
        return err("need at least one iteration");
    }
    if cfg.batch_size == 0 {
        return err("batch size must be positive");
    }
    if cfg.conditional && data.n_classes() == 0 {
        return err("conditional training requires a labeled table");
    }
    if cfg.pac == 0 {
        return err("pac degree must be at least 1");
    }
    if cfg.pac > 1 && cfg.conditional {
        return err("PacGAN packing is unconditional-only (conditions cannot be packed)");
    }
    Ok(())
}

fn build_optimizers(
    loss: LossKind,
    g: &dyn Generator,
    d: &dyn Discriminator,
    lr_g: f32,
    lr_d: f32,
) -> (Box<dyn Optimizer>, Box<dyn Optimizer>) {
    match loss {
        LossKind::Vanilla => (
            Box::new(Adam::with_betas(g.params(), lr_g, 0.5, 0.999)),
            Box::new(Adam::with_betas(d.params(), lr_d, 0.5, 0.999)),
        ),
        LossKind::Wasserstein => (
            Box::new(RmsProp::new(g.params(), lr_g)),
            Box::new(RmsProp::new(d.params(), lr_d)),
        ),
    }
}

/// Generates `rows` samples for the mode-collapse probe. Conditional
/// models get labels cycled over the domain so every class is probed.
fn collapse_probe(
    g: &dyn Generator,
    data: &dyn BatchSource,
    cfg: &TrainConfig,
    rows: usize,
    rng: &mut Rng,
) -> Tensor {
    let z = g.sample_noise(rows, rng);
    let cond = if cfg.conditional {
        let k = data.n_classes().max(1);
        let labels: Vec<u32> = (0..rows).map(|i| (i % k) as u32).collect();
        Some(daisy_data::one_hot_labels(&labels, k))
    } else {
        None
    };
    g.forward(&z, cond.as_ref(), rng).value().clone()
}

/// Trains `g` against `d` under the resilience layer: per-step health
/// checks ([`TrainGuard`]), snapshot rollback with learning-rate decay
/// and noise re-seeding on a trip, escalation to WTrain after repeated
/// rollbacks, and graceful degradation to the best healthy snapshot
/// when the recovery budget runs out. `plan` injects deterministic
/// faults for testing (pass [`FaultPlan::none`] in production).
///
/// Returns [`TrainError::Unrecoverable`] only when the budget is
/// exhausted before a single healthy epoch exists.
#[allow(clippy::too_many_arguments)]
pub fn train_gan_resilient(
    g: &dyn Generator,
    d: &dyn Discriminator,
    data: &dyn BatchSource,
    softmax_spans: &[(usize, usize)],
    cfg: &TrainConfig,
    guard_cfg: &GuardConfig,
    plan: &FaultPlan,
    rng: &mut Rng,
) -> Result<ResilientRun, TrainError> {
    train_gan_checkpointed(
        g,
        d,
        data,
        softmax_spans,
        cfg,
        guard_cfg,
        plan,
        &CheckpointPlan::disabled(),
        rng,
    )
}

/// [`train_gan_resilient`] plus crash-safe checkpoint/resume: when
/// `ckpt` names a path, the complete training state is written durably
/// at every `ckpt.every`-th clean epoch boundary, and a valid
/// checkpoint found at that path (matching `ckpt.fingerprint`) is
/// restored before the first step — the resumed run then replays the
/// remaining steps bit-identically to a run that was never
/// interrupted. A failed checkpoint *write* never fails training: the
/// error is counted (`checkpoint.save_failures`) and the run continues
/// under the protection of the previous checkpoint.
///
/// `ckpt.kill_at_step` aborts with [`TrainError::Interrupted`] before
/// executing that step (and before emitting anything for it), which is
/// how the resume tests simulate SIGKILL deterministically.
#[allow(clippy::too_many_arguments)]
pub fn train_gan_checkpointed(
    g: &dyn Generator,
    d: &dyn Discriminator,
    data: &dyn BatchSource,
    softmax_spans: &[(usize, usize)],
    cfg: &TrainConfig,
    guard_cfg: &GuardConfig,
    plan: &FaultPlan,
    ckpt: &CheckpointPlan,
    rng: &mut Rng,
) -> Result<ResilientRun, TrainError> {
    validate(cfg, data)?;
    if daisy_telemetry::enabled() {
        daisy_telemetry::emit(
            schema::TRAIN_START,
            vec![
                field("algorithm", cfg.name()),
                field("iterations", cfg.iterations),
                field("epochs", cfg.epochs),
                field("batch_size", cfg.batch_size),
                field("d_steps", cfg.d_steps),
                field("conditional", cfg.conditional),
                field("dp", cfg.dp.is_some()),
                field("pac", cfg.pac),
            ],
        );
    }
    let g_params = g.params();
    let d_params = d.params();
    g.set_training(true);
    d.set_training(true);

    // `active` may diverge from `cfg` after a WTrain escalation.
    let mut active = cfg.clone();
    let (mut opt_g, mut opt_d) = build_optimizers(active.loss, g, d, active.lr_g, active.lr_d);
    let mut lr_scale = 1.0f32;

    let mut guard = TrainGuard::new(guard_cfg.clone());
    let mut armed = ArmedFaults::new(plan);
    let mut outcome = TrainOutcome::default();

    let epochs = cfg.epochs.max(1);
    let iters_per_epoch = cfg.iterations.div_ceil(epochs);
    let mut run = TrainingRun {
        snapshots: Vec::with_capacity(epochs),
        history: Vec::with_capacity(epochs),
    };
    let mut acc = (0.0f64, 0.0f64, 0.0f64, 0usize); // d, g, kl, count

    // The initialization state is the rollback target until the first
    // clean epoch completes.
    let mut healthy = Healthy {
        g: snapshot(&g_params),
        d: snapshot(&d_params),
        opt_g: opt_g.state(),
        opt_d: opt_d.state(),
        loss: active.loss,
        t: 0,
        epochs_done: 0,
        ema: guard.ema_state(),
    };

    let mut plain_rollbacks = 0usize;
    let mut t = 0usize;

    // ---- resume from a durable checkpoint, when one exists ----
    let mut store = ckpt
        .path
        .as_ref()
        .map(|p| CheckpointStore::new(p.clone(), &ckpt.io_faults));
    if let Some(store) = store.as_ref() {
        if let Some(c) = store.load_latest(ckpt.fingerprint) {
            // Restore the *complete* state captured at the boundary:
            // anything short of this list (weights alone, say) would
            // replay a different trajectory than the uninterrupted run.
            active.loss = c.loss;
            active.d_steps = c.d_steps;
            lr_scale = c.lr_scale;
            let (og, od) =
                build_optimizers(active.loss, g, d, cfg.lr_g * lr_scale, cfg.lr_d * lr_scale);
            opt_g = og;
            opt_d = od;
            opt_g.set_state(&c.opt_g);
            opt_d.set_state(&c.opt_d);
            restore(&g_params, &c.g_params);
            g.set_state(&c.g_state);
            restore(&d_params, &c.d_params);
            d.set_state(&c.d_state);
            d.set_rng_states(&c.d_rng);
            guard.restore_ema(c.ema);
            armed.restore_fired(&c.fired);
            *rng = Rng::from_state(c.rng);
            outcome = c.outcome;
            run.history = c.history;
            run.snapshots = c.snapshots;
            plain_rollbacks = c.plain_rollbacks;
            t = c.t;
            healthy = Healthy {
                g: c.g_params,
                d: c.d_params,
                opt_g: c.opt_g,
                opt_d: c.opt_d,
                loss: c.loss,
                t: c.t,
                epochs_done: c.epochs_done,
                ema: c.ema,
            };
            if daisy_telemetry::enabled() {
                daisy_telemetry::emit(
                    schema::CHECKPOINT_RESTORE,
                    vec![field("step", t), field("epoch", healthy.epochs_done)],
                );
            }
            if run.snapshots.len() >= epochs {
                // The checkpoint already covers the full run: nothing
                // left to train.
                t = active.iterations;
            }
        }
    }

    // Phase profiling: one "epoch" scope spans every step of an epoch so
    // the kernel phases underneath aggregate as fit/epoch/... paths. The
    // scope is closed at each clean boundary and reopened on the next
    // step; a no-op unless profiling is enabled.
    let mut epoch_scope: Option<daisy_telemetry::profile::PhaseScope> = None;
    while t < active.iterations {
        if epoch_scope.is_none() {
            epoch_scope = Some(daisy_telemetry::profile::scope("epoch"));
        }
        // ---- deterministic kill (crash stand-in for resume tests) ----
        // Before any emission or mutation for step t, so the killed
        // run's telemetry is an exact prefix of the uninterrupted one.
        if ckpt.kill_at_step == Some(t) {
            g.set_training(false);
            d.set_training(false);
            return Err(TrainError::Interrupted {
                step: t,
                epoch: run.history.len(),
            });
        }

        // ---- deterministic fault injection ----
        let mut poison = false;
        for fault in armed.take(t) {
            if daisy_telemetry::enabled() {
                daisy_telemetry::emit(
                    schema::FAULT_FIRED,
                    vec![field("kind", fault.kind()), field("step", t)],
                );
            }
            match fault {
                Fault::NanGrad { .. } => {
                    // Route the NaN through the optimizer, exactly as an
                    // overflowed backward pass would.
                    zero_grads(&d_params);
                    if let Some(p) = d_params.first() {
                        let shape = p.value().shape().to_vec();
                        p.var().backward_with(Tensor::full(&shape, f32::NAN));
                    }
                    opt_d.step();
                }
                Fault::PoisonBatch { .. } => poison = true,
                Fault::ForceCollapse { .. } => {
                    for p in &g_params {
                        p.set_value(Tensor::zeros(p.value().shape()));
                    }
                }
            }
        }

        // ---- pre-step health checks ----
        // Weight and probe sweeps run before the optimizer step so a
        // corruption present at step t is caught at step t — one Adam
        // step with accumulated momentum is enough to smear a zeroed or
        // poisoned network back into plausible-looking weights.
        let mut trip: Option<TripReason> = None;
        if guard.weights_due(t) && (params_non_finite(&g_params) || params_non_finite(&d_params)) {
            trip = Some(TripReason::NonFiniteWeights);
        }
        if trip.is_none() && guard.probe_due(t) {
            let samples = collapse_probe(g, data, &active, guard.config().probe_rows, rng);
            trip = guard.check_probe(&samples);
        }

        // ---- one generator iteration ----
        let end_of_epoch = (t + 1).is_multiple_of(iters_per_epoch) || t + 1 == active.iterations;
        if trip.is_none() {
            let mut losses: Vec<(f32, f32)> = Vec::with_capacity(1);
            if active.conditional && active.label_aware {
                // Algorithm 3: iterate every label in the domain.
                for y in 0..data.n_classes() as u32 {
                    let (dl, gl, kl) = match step(
                        g,
                        d,
                        data,
                        softmax_spans,
                        &active,
                        Some(y),
                        poison,
                        &mut *opt_g,
                        &mut *opt_d,
                        rng,
                    ) {
                        Ok(v) => v,
                        Err(e) => {
                            g.set_training(false);
                            d.set_training(false);
                            return Err(e);
                        }
                    };
                    acc = (acc.0 + dl as f64, acc.1 + gl as f64, acc.2 + kl as f64, acc.3 + 1);
                    losses.push((dl, gl));
                }
            } else {
                let (dl, gl, kl) = match step(
                    g,
                    d,
                    data,
                    softmax_spans,
                    &active,
                    None,
                    poison,
                    &mut *opt_g,
                    &mut *opt_d,
                    rng,
                ) {
                    Ok(v) => v,
                    Err(e) => {
                        g.set_training(false);
                        d.set_training(false);
                        return Err(e);
                    }
                };
                acc = (acc.0 + dl as f64, acc.1 + gl as f64, acc.2 + kl as f64, acc.3 + 1);
                losses.push((dl, gl));
            }

            for (dl, gl) in losses {
                if trip.is_none() {
                    trip = guard.observe_losses(dl, gl);
                }
            }
            // Never snapshot a poisoned epoch: sweep the weights at the
            // boundary even when the periodic cadence missed it.
            if trip.is_none()
                && end_of_epoch
                && (params_non_finite(&g_params) || params_non_finite(&d_params))
            {
                trip = Some(TripReason::NonFiniteWeights);
            }
        }

        // ---- recovery policy ----
        if let Some(reason) = trip {
            if daisy_telemetry::enabled() {
                let mut fields = vec![field("step", t), field("epoch", run.history.len())];
                fields.extend(reason.telemetry_fields());
                daisy_telemetry::emit(schema::GUARD_TRIP, fields);
            }
            if outcome.recoveries.len() >= guard_cfg.max_recoveries {
                // Budget exhausted: degrade to the best healthy state,
                // or fail when none exists.
                outcome.recoveries.push(RecoveryEvent {
                    step: t,
                    epoch: run.history.len(),
                    reason,
                    action: RecoveryAction::Degrade,
                });
                emit_recovery(outcome.recoveries.last().unwrap());
                if run.history.is_empty() {
                    g.set_training(false);
                    d.set_training(false);
                    return Err(TrainError::Unrecoverable {
                        trace: outcome.recoveries,
                        last: reason,
                    });
                }
                restore(&g_params, &healthy.g);
                restore(&d_params, &healthy.d);
                outcome.degraded = true;
                break;
            }

            let switch = guard_cfg.escalate_wtrain
                && matches!(active.loss, LossKind::Vanilla)
                && plain_rollbacks >= guard_cfg.rollback_retries;
            lr_scale *= guard_cfg.lr_decay;

            restore(&g_params, &healthy.g);
            restore(&d_params, &healthy.d);
            if switch {
                // The paper's alternative training (§5.2): Wasserstein
                // loss, RMSProp, several critic steps per G step. The
                // healthy optimizer moments belong to Adam, so the
                // optimizers are rebuilt fresh.
                active.loss = LossKind::Wasserstein;
                active.d_steps = active.d_steps.max(3);
                let (og, od) = build_optimizers(
                    active.loss,
                    g,
                    d,
                    cfg.lr_g * lr_scale,
                    cfg.lr_d * lr_scale,
                );
                opt_g = og;
                opt_d = od;
                outcome.escalated_wtrain = true;
            } else if healthy.loss == active.loss {
                opt_g.set_state(&healthy.opt_g);
                opt_d.set_state(&healthy.opt_d);
                opt_g.set_lr(cfg.lr_g * lr_scale);
                opt_d.set_lr(cfg.lr_d * lr_scale);
                plain_rollbacks += 1;
            } else {
                // Snapshot predates a loss switch: moments don't apply.
                let (og, od) = build_optimizers(
                    active.loss,
                    g,
                    d,
                    cfg.lr_g * lr_scale,
                    cfg.lr_d * lr_scale,
                );
                opt_g = og;
                opt_d = od;
                plain_rollbacks += 1;
            }

            run.history.truncate(healthy.epochs_done);
            run.snapshots.truncate(healthy.epochs_done);
            acc = (0.0, 0.0, 0.0, 0);
            guard.restore_ema(healthy.ema);
            // Re-seed the noise stream so the replay explores a fresh
            // trajectory — deterministically derived from the current
            // stream state and the recovery index.
            let salt = (outcome.recoveries.len() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            *rng = Rng::seed_from_u64(rng.next_u64() ^ salt);

            outcome.recoveries.push(RecoveryEvent {
                step: t,
                epoch: run.history.len(),
                reason,
                action: if switch {
                    RecoveryAction::SwitchToWTrain { lr_scale }
                } else {
                    RecoveryAction::Rollback { lr_scale }
                },
            });
            emit_recovery(outcome.recoveries.last().unwrap());
            t = healthy.t;
            continue;
        }

        // ---- clean epoch boundary: record and snapshot ----
        if end_of_epoch {
            let n = acc.3.max(1) as f64;
            run.history.push(EpochStats {
                epoch: run.history.len(),
                d_loss: (acc.0 / n) as f32,
                g_loss: (acc.1 / n) as f32,
                kl: (acc.2 / n) as f32,
            });
            run.snapshots.push(snapshot(&g_params));
            if daisy_telemetry::enabled() {
                let stats = run.history.last().unwrap();
                // Gradient norms are read-only probes of the last step's
                // grads; the values are deterministic (pool contract) so
                // they may live in the event stream, and the gauges make
                // them visible in metrics snapshots too.
                let gn_g = grad_norm(&g_params);
                let gn_d = grad_norm(&d_params);
                daisy_telemetry::metrics::gauge("train.grad_norm_g").set(gn_g as f64);
                daisy_telemetry::metrics::gauge("train.grad_norm_d").set(gn_d as f64);
                daisy_telemetry::emit(
                    schema::EPOCH,
                    vec![
                        field("epoch", stats.epoch),
                        field("step", t),
                        field("d_loss", stats.d_loss),
                        field("g_loss", stats.g_loss),
                        field("kl", stats.kl),
                        field("grad_norm_g", gn_g),
                        field("grad_norm_d", gn_d),
                    ],
                );
                daisy_telemetry::emit(
                    schema::SNAPSHOT,
                    vec![field("epoch", stats.epoch), field("step", t)],
                );
            }
            acc = (0.0, 0.0, 0.0, 0);
            healthy = Healthy {
                g: snapshot(&g_params),
                d: snapshot(&d_params),
                opt_g: opt_g.state(),
                opt_d: opt_d.state(),
                loss: active.loss,
                t: t + 1,
                epochs_done: run.history.len(),
                ema: guard.ema_state(),
            };
            // ---- durable checkpoint of the boundary state ----
            if let Some(store) = store.as_mut() {
                if run.history.len().is_multiple_of(ckpt.every.max(1)) {
                    let payload = TrainCheckpoint {
                        fingerprint: ckpt.fingerprint,
                        t: healthy.t,
                        epochs_done: healthy.epochs_done,
                        loss: healthy.loss,
                        d_steps: active.d_steps,
                        lr_scale,
                        plain_rollbacks,
                        ema: healthy.ema,
                        rng: rng.state(),
                        fired: armed.fired().to_vec(),
                        outcome: outcome.clone(),
                        g_params: healthy.g.clone(),
                        g_state: g.state(),
                        d_params: healthy.d.clone(),
                        d_state: d.state(),
                        d_rng: d.rng_states(),
                        opt_g: healthy.opt_g.clone(),
                        opt_d: healthy.opt_d.clone(),
                        history: run.history.clone(),
                        snapshots: run.snapshots.clone(),
                    };
                    match store.save(&payload) {
                        Ok(bytes) => {
                            if daisy_telemetry::enabled() {
                                daisy_telemetry::emit(
                                    schema::CHECKPOINT_WRITE,
                                    vec![
                                        field("epoch", run.history.len() - 1),
                                        field("step", t),
                                        field("bytes", bytes),
                                    ],
                                );
                            }
                        }
                        Err(_) => {
                            // A failed save must never fail training:
                            // the previous checkpoint still protects
                            // the run. Counted, not emitted, so the
                            // deterministic trace stays comparable to
                            // a run whose saves all succeeded.
                            daisy_telemetry::metrics::counter("checkpoint.save_failures").add(1);
                        }
                    }
                }
            }
            epoch_scope = None;
            if run.snapshots.len() == epochs {
                break;
            }
        }
        t += 1;
    }
    drop(epoch_scope);
    g.set_training(false);
    d.set_training(false);
    outcome.completed_epochs = run.history.len();
    if daisy_telemetry::enabled() {
        daisy_telemetry::emit(
            schema::TRAIN_END,
            vec![
                field("completed_epochs", outcome.completed_epochs),
                field("recoveries", outcome.recoveries.len()),
                field("degraded", outcome.degraded),
                field("escalated_wtrain", outcome.escalated_wtrain),
            ],
        );
    }
    Ok(ResilientRun { run, outcome })
}

/// One generator iteration: `d_steps` discriminator updates followed by
/// one generator update. Returns `(d_loss, g_loss, kl_term)`. When
/// `poison` is set the real minibatches of the discriminator phase are
/// replaced with NaN samples (fault injection).
#[allow(clippy::too_many_arguments)]
fn step(
    g: &dyn Generator,
    d: &dyn Discriminator,
    data: &dyn BatchSource,
    softmax_spans: &[(usize, usize)],
    cfg: &TrainConfig,
    target_label: Option<u32>,
    poison: bool,
    opt_g: &mut dyn Optimizer,
    opt_d: &mut dyn Optimizer,
    rng: &mut Rng,
) -> Result<(f32, f32, f32), TrainError> {
    let m = cfg.batch_size;
    let g_params = g.params();
    let d_params = d.params();

    // ---- discriminator phase ----
    // With PacGAN packing, `pac` consecutive samples are concatenated
    // into one discriminator input; `m` is rounded down accordingly.
    let pac = cfg.pac.max(1);
    let m = (m / pac).max(1) * pac;
    let groups = m / pac;
    let mut d_loss_last = 0.0;
    for _ in 0..cfg.d_steps.max(1) {
        let mut real = sample(data, cfg, target_label, m, rng)?;
        if poison {
            real.samples = Tensor::full(real.samples.shape(), f32::NAN);
        }
        let cond = real.conditions.clone();
        let z = g.sample_noise(m, rng);
        // The generator graph is detached: only D updates here.
        let fake = pack(&g.forward(&z, cond.as_ref(), rng).detach(), pac);

        zero_grads(&d_params);
        let real_var = pack(&Var::constant(real.samples.clone()), pac);
        let d_loss = match cfg.loss {
            LossKind::Vanilla => {
                let loss_real = d
                    .logits(&real_var, cond.as_ref())
                    .bce_with_logits(&Tensor::ones(&[groups, 1]));
                let loss_fake = d
                    .logits(&fake, cond.as_ref())
                    .bce_with_logits(&Tensor::zeros(&[groups, 1]));
                loss_real.add(&loss_fake)
            }
            LossKind::Wasserstein => {
                // L_D = E[D(fake)] - E[D(real)], Equation (3).
                let score_real = d.logits(&real_var, cond.as_ref()).mean();
                let score_fake = d.logits(&fake, cond.as_ref()).mean();
                score_fake.sub(&score_real)
            }
        };
        d_loss_last = d_loss.value().data()[0];
        d_loss.backward();

        if let Some(dp) = &cfg.dp {
            // DPTrain (Algorithm 4): bound sensitivity, then perturb.
            // The recorded gradient is the batch mean, so the noise a
            // mean-of-per-example-noised gradient would carry has
            // standard deviation σ_n · c_g / m.
            clip_grad_norm(&d_params, dp.grad_bound);
            add_grad_noise(
                &d_params,
                dp.noise_scale * dp.grad_bound / m as f32,
                rng,
            );
        }
        {
            daisy_telemetry::phase_scope!("optim");
            opt_d.step();
        }
        if matches!(cfg.loss, LossKind::Wasserstein) {
            clip_weights(&d_params, cfg.weight_clip);
        }
    }

    // ---- generator phase ----
    let real = sample(data, cfg, target_label, m, rng)?;
    let cond = real.conditions.clone();
    let z = g.sample_noise(m, rng);
    zero_grads(&g_params);
    zero_grads(&d_params); // D receives gradients below; discard them.
    let fake = g.forward(&z, cond.as_ref(), rng);

    let (g_loss, kl_value) = match cfg.loss {
        LossKind::Vanilla => {
            // Non-saturating generator loss plus the KL warm-up of
            // Equation (2).
            let adv = d
                .logits(&pack(&fake, pac), cond.as_ref())
                .bce_with_logits(&Tensor::ones(&[groups, 1]));
            if cfg.kl_weight > 0.0 && !softmax_spans.is_empty() {
                let kl = kl_term(&real, &fake, softmax_spans);
                let kl_value = kl.value().data()[0];
                (adv.add(&kl.mul_scalar(cfg.kl_weight)), kl_value)
            } else {
                (adv, 0.0)
            }
        }
        LossKind::Wasserstein => {
            // L_G = -E[D(G(z))], Equation (3).
            (
                d.logits(&pack(&fake, pac), cond.as_ref()).mean().neg(),
                0.0,
            )
        }
    };
    let g_loss_value = g_loss.value().data()[0];
    g_loss.backward();
    {
        daisy_telemetry::phase_scope!("optim");
        opt_g.step();
    }

    Ok((d_loss_last, g_loss_value, kl_value))
}

/// PacGAN packing: `[m, d] -> [m/pac, pac*d]` by concatenating groups
/// of consecutive rows (a row-major reshape). Identity when `pac == 1`.
fn pack(x: &Var, pac: usize) -> Var {
    if pac <= 1 {
        return x.clone();
    }
    let (m, d) = (x.shape()[0], x.shape()[1]);
    debug_assert_eq!(m % pac, 0, "batch not divisible by pac");
    x.reshape(&[m / pac, pac * d])
}

fn sample(
    data: &dyn BatchSource,
    cfg: &TrainConfig,
    target_label: Option<u32>,
    m: usize,
    rng: &mut Rng,
) -> Result<Minibatch, TrainError> {
    match target_label {
        Some(y) => data.sample_with_label(y, m, rng),
        None => data.sample_random(m, cfg.conditional, rng),
    }
    .map_err(|e| TrainError::Data(e.to_string()))
}

/// `Σ_j KL(T[j] ‖ T'[j])` over the probability blocks of the layout.
fn kl_term(real: &Minibatch, fake: &Var, spans: &[(usize, usize)]) -> Var {
    let mut total: Option<Var> = None;
    for &(lo, hi) in spans {
        let p_real = empirical_distribution(&real.samples.slice_cols(lo, hi));
        let q_syn = batch_distribution(&fake.slice_cols(lo, hi));
        let kl = kl_divergence(&p_real, &q_syn, 1e-6);
        total = Some(match total {
            Some(t) => t.add(&kl),
            None => kl,
        });
    }
    total.expect("kl_term called with no spans")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DpConfig, NetworkKind, SynthesizerConfig};
    use crate::discriminator::MlpDiscriminator;
    use crate::generator::test_support::tiny_table;
    use crate::generator::MlpGenerator;
    use crate::output_head::softmax_spans;
    use crate::sampler::TrainingData;
    use daisy_data::{RecordCodec, TransformConfig};

    fn setup(
        cfg: &TrainConfig,
        seed: u64,
    ) -> (MlpGenerator, MlpDiscriminator, TrainingData, Vec<(usize, usize)>) {
        let table = tiny_table(400, seed);
        let codec = RecordCodec::fit(&table, &TransformConfig::sn_ht());
        let data = TrainingData::from_table(&table, &codec);
        let mut rng = Rng::seed_from_u64(seed);
        let cond = if cfg.conditional { data.n_classes() } else { 0 };
        let g = MlpGenerator::new(8, cond, &[32], codec.output_blocks(), &mut rng);
        let d = MlpDiscriminator::new(codec.width(), cond, &[32], &mut rng);
        let spans = softmax_spans(&codec.output_blocks());
        (g, d, data, spans)
    }

    /// A guard tuned for the short test runs: tight check cadence, no
    /// false divergence trips.
    fn test_guard() -> GuardConfig {
        GuardConfig {
            check_weights_every: 1,
            probe_every: 1,
            probe_rows: 32,
            warmup_steps: usize::MAX,
            divergence_factor: f32::INFINITY,
            max_recoveries: 6,
            rollback_retries: 2,
            ..GuardConfig::default()
        }
    }

    #[test]
    fn vtrain_produces_snapshots_and_history() {
        let cfg = TrainConfig {
            iterations: 20,
            batch_size: 32,
            epochs: 5,
            ..TrainConfig::vtrain(20)
        };
        let (g, d, data, spans) = setup(&cfg, 0);
        let mut rng = Rng::seed_from_u64(1);
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng).unwrap();
        assert_eq!(run.snapshots.len(), 5);
        assert_eq!(run.history.len(), 5);
        assert!(run.history.iter().all(|h| h.d_loss.is_finite() && h.g_loss.is_finite()));
        // KL term is active under VTrain with one-hot blocks.
        assert!(run.history.iter().any(|h| h.kl > 0.0));
    }

    #[test]
    fn wtrain_clips_weights() {
        let cfg = TrainConfig {
            iterations: 6,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::wtrain(6)
        };
        let (g, d, data, spans) = setup(&cfg, 2);
        let mut rng = Rng::seed_from_u64(3);
        let _ = train_gan(&g, &d, &data, &spans, &cfg, &mut rng).unwrap();
        use crate::discriminator::Discriminator;
        for p in d.params() {
            let v = p.value();
            assert!(
                v.max() <= cfg.weight_clip + 1e-6 && v.min() >= -cfg.weight_clip - 1e-6,
                "weights not clipped"
            );
        }
    }

    #[test]
    fn ctrain_runs_per_label() {
        let cfg = TrainConfig {
            iterations: 4,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::ctrain(4)
        };
        let (g, d, data, spans) = setup(&cfg, 4);
        let mut rng = Rng::seed_from_u64(5);
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng).unwrap();
        assert_eq!(run.snapshots.len(), 2);
    }

    #[test]
    fn dptrain_finishes_with_finite_losses() {
        let dp = DpConfig::for_epsilon(1.0, 20, 16, 400);
        let cfg = TrainConfig {
            iterations: 6,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::dptrain(6, dp)
        };
        let (g, d, data, spans) = setup(&cfg, 6);
        let mut rng = Rng::seed_from_u64(7);
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng).unwrap();
        assert!(run.history.iter().all(|h| h.d_loss.is_finite()));
    }

    #[test]
    fn training_changes_generator_params() {
        let cfg = TrainConfig {
            iterations: 10,
            batch_size: 32,
            epochs: 2,
            ..TrainConfig::vtrain(10)
        };
        let (g, d, data, spans) = setup(&cfg, 8);
        let before = daisy_nn::snapshot(&g.params());
        let mut rng = Rng::seed_from_u64(9);
        let _ = train_gan(&g, &d, &data, &spans, &cfg, &mut rng).unwrap();
        let after = daisy_nn::snapshot(&g.params());
        let moved = before
            .iter()
            .zip(&after)
            .any(|(a, b)| a.sub(b).norm() > 1e-6);
        assert!(moved, "generator parameters did not move");
    }

    #[test]
    fn pacgan_packing_trains_and_packs_correctly() {
        let mut cfg = TrainConfig::vtrain(8);
        cfg.batch_size = 30; // rounds down to 30 (divisible by 3)
        cfg.pac = 3;
        cfg.epochs = 2;
        let table = tiny_table(300, 20);
        let codec = RecordCodec::fit(&table, &TransformConfig::sn_ht());
        let data = TrainingData::from_table(&table, &codec);
        let mut rng = Rng::seed_from_u64(21);
        let g = MlpGenerator::new(8, 0, &[24], codec.output_blocks(), &mut rng);
        // The packed discriminator sees pac * width inputs.
        let d = MlpDiscriminator::new(codec.width() * 3, 0, &[24], &mut rng);
        let spans = softmax_spans(&codec.output_blocks());
        let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng).unwrap();
        assert_eq!(run.snapshots.len(), 2);
        assert!(run.history.iter().all(|h| h.d_loss.is_finite()));
    }

    #[test]
    fn pacgan_rejects_conditional() {
        let mut cfg = TrainConfig::ctrain(4);
        cfg.pac = 2;
        let (g, d, data, spans) = setup(&cfg, 22);
        let mut rng = Rng::seed_from_u64(23);
        let Err(err) = train_gan(&g, &d, &data, &spans, &cfg, &mut rng) else {
            panic!("expected InvalidConfig");
        };
        assert!(matches!(err, TrainError::InvalidConfig(ref m) if m.contains("unconditional-only")));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TrainConfig {
            iterations: 5,
            batch_size: 16,
            epochs: 1,
            ..TrainConfig::vtrain(5)
        };
        let run_once = || {
            let (g, d, data, spans) = setup(&cfg, 10);
            let mut rng = Rng::seed_from_u64(11);
            let run = train_gan(&g, &d, &data, &spans, &cfg, &mut rng).unwrap();
            run.snapshots[0][0].data().to_vec()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn effective_d_hidden_feeds_simplified_discriminator() {
        // Smoke-test the simplified-D wiring end to end.
        let mut cfg_s = SynthesizerConfig::new(NetworkKind::Mlp, TrainConfig::vtrain(5));
        cfg_s.simplified_d = true;
        assert!(cfg_s.effective_d_hidden().len() == 1);
    }

    // ---- resilience layer ----

    #[test]
    fn nan_grad_fault_recovers_by_rollback() {
        let cfg = TrainConfig {
            iterations: 12,
            batch_size: 32,
            epochs: 4,
            ..TrainConfig::vtrain(12)
        };
        let (g, d, data, spans) = setup(&cfg, 30);
        let mut rng = Rng::seed_from_u64(31);
        let res = train_gan_resilient(
            &g,
            &d,
            &data,
            &spans,
            &cfg,
            &test_guard(),
            &FaultPlan::nan_grad_at(5),
            &mut rng,
        )
        .unwrap();
        // Exactly one trip, recovered, full run completed.
        assert_eq!(res.outcome.recoveries.len(), 1);
        let ev = res.outcome.recoveries[0];
        assert_eq!(ev.step, 5);
        assert!(matches!(
            ev.reason,
            TripReason::NonFiniteLoss { .. } | TripReason::NonFiniteWeights
        ));
        assert!(matches!(ev.action, RecoveryAction::Rollback { .. }));
        assert!(!res.outcome.degraded);
        assert_eq!(res.run.snapshots.len(), 4);
        assert!(res
            .run
            .history
            .iter()
            .all(|h| h.d_loss.is_finite() && h.g_loss.is_finite()));
        // The recovered weights are finite.
        assert!(!params_non_finite(&g.params()));
        use crate::discriminator::Discriminator;
        assert!(!params_non_finite(&d.params()));
    }

    /// The telemetry contract for the resilience layer: one typed event
    /// per fault firing, per guard trip, and per recovery action — no
    /// duplicates, no drops.
    #[test]
    fn faulted_run_emits_exactly_one_event_per_incident() {
        use daisy_telemetry::MemoryRecorder;
        use std::sync::Arc;
        let cfg = TrainConfig {
            iterations: 12,
            batch_size: 32,
            epochs: 4,
            ..TrainConfig::vtrain(12)
        };
        let (g, d, data, spans) = setup(&cfg, 30);
        let mut rng = Rng::seed_from_u64(31);
        let rec = Arc::new(MemoryRecorder::new());
        let res = daisy_telemetry::with_recorder(rec.clone(), || {
            train_gan_resilient(
                &g,
                &d,
                &data,
                &spans,
                &cfg,
                &test_guard(),
                &FaultPlan::nan_grad_at(5),
                &mut rng,
            )
            .unwrap()
        });
        assert_eq!(rec.count(schema::FAULT_FIRED), 1);
        assert_eq!(rec.count(schema::GUARD_TRIP), 1);
        assert_eq!(rec.count(schema::RECOVERY), res.outcome.recoveries.len());
        assert_eq!(rec.count(schema::TRAIN_START), 1);
        assert_eq!(rec.count(schema::TRAIN_END), 1);
        // Every clean epoch boundary logs one epoch event and one
        // snapshot event; rollbacks may re-run epochs, so the trace can
        // hold more epoch events than the final history length.
        assert_eq!(rec.count(schema::EPOCH), rec.count(schema::SNAPSHOT));
        assert!(rec.count(schema::EPOCH) >= res.outcome.completed_epochs);
    }

    /// A clean run must carry no incident events at all.
    #[test]
    fn clean_run_emits_no_incident_events() {
        use daisy_telemetry::MemoryRecorder;
        use std::sync::Arc;
        let cfg = TrainConfig {
            iterations: 8,
            batch_size: 32,
            epochs: 2,
            ..TrainConfig::vtrain(8)
        };
        let (g, d, data, spans) = setup(&cfg, 0);
        let mut rng = Rng::seed_from_u64(7);
        let rec = Arc::new(MemoryRecorder::new());
        daisy_telemetry::with_recorder(rec.clone(), || {
            train_gan_resilient(
                &g,
                &d,
                &data,
                &spans,
                &cfg,
                &test_guard(),
                &FaultPlan::none(),
                &mut rng,
            )
            .unwrap()
        });
        assert_eq!(rec.count(schema::FAULT_FIRED), 0);
        assert_eq!(rec.count(schema::GUARD_TRIP), 0);
        assert_eq!(rec.count(schema::RECOVERY), 0);
        assert_eq!(rec.count(schema::EPOCH), 2);
    }

    #[test]
    fn poisoned_batch_trips_non_finite_loss() {
        let cfg = TrainConfig {
            iterations: 8,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::vtrain(8)
        };
        let (g, d, data, spans) = setup(&cfg, 32);
        let mut rng = Rng::seed_from_u64(33);
        let res = train_gan_resilient(
            &g,
            &d,
            &data,
            &spans,
            &cfg,
            &test_guard(),
            &FaultPlan::poison_batch_at(3),
            &mut rng,
        )
        .unwrap();
        assert_eq!(res.outcome.recoveries.len(), 1);
        assert!(matches!(
            res.outcome.recoveries[0].reason,
            TripReason::NonFiniteLoss { .. }
        ));
        assert!(!res.outcome.degraded);
        assert_eq!(res.run.snapshots.len(), 2);
    }

    #[test]
    fn forced_collapse_trips_probe_and_recovers() {
        let cfg = TrainConfig {
            iterations: 8,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::vtrain(8)
        };
        let (g, d, data, spans) = setup(&cfg, 34);
        let mut rng = Rng::seed_from_u64(35);
        let res = train_gan_resilient(
            &g,
            &d,
            &data,
            &spans,
            &cfg,
            &test_guard(),
            &FaultPlan::force_collapse_at(4),
            &mut rng,
        )
        .unwrap();
        assert!(res
            .outcome
            .recoveries
            .iter()
            .any(|e| matches!(e.reason, TripReason::ModeCollapse { .. })));
        assert!(!res.outcome.degraded);
        // The rollback un-collapsed the generator: fresh samples are
        // diverse again.
        let probe = collapse_probe(&g, &data, &cfg, 64, &mut rng);
        assert!(crate::diagnostics::encoded_duplicate_fraction(&probe, 20) < 0.95);
    }

    #[test]
    fn repeated_faults_escalate_to_wtrain() {
        let cfg = TrainConfig {
            iterations: 12,
            batch_size: 16,
            epochs: 3,
            ..TrainConfig::vtrain(12)
        };
        let (g, d, data, spans) = setup(&cfg, 36);
        let mut rng = Rng::seed_from_u64(37);
        let mut guard = test_guard();
        guard.rollback_retries = 1;
        let plan = FaultPlan::new(vec![
            Fault::NanGrad { step: 2 },
            Fault::NanGrad { step: 5 },
            Fault::NanGrad { step: 7 },
        ]);
        let res =
            train_gan_resilient(&g, &d, &data, &spans, &cfg, &guard, &plan, &mut rng).unwrap();
        assert!(res.outcome.escalated_wtrain);
        assert!(res
            .outcome
            .recoveries
            .iter()
            .any(|e| matches!(e.action, RecoveryAction::SwitchToWTrain { .. })));
        assert!(!res.outcome.degraded);
        assert_eq!(res.run.snapshots.len(), 3);
        // WTrain clips the discriminator weights from the switch on.
        use crate::discriminator::Discriminator;
        for p in d.params() {
            let v = p.value();
            assert!(v.max() <= cfg.weight_clip + 1e-6 && v.min() >= -cfg.weight_clip - 1e-6);
        }
    }

    #[test]
    fn budget_exhaustion_degrades_to_best_snapshot() {
        let cfg = TrainConfig {
            iterations: 12,
            batch_size: 16,
            epochs: 6, // 2 iterations per epoch
            ..TrainConfig::vtrain(12)
        };
        let (g, d, data, spans) = setup(&cfg, 38);
        let mut rng = Rng::seed_from_u64(39);
        let mut guard = test_guard();
        guard.max_recoveries = 1;
        guard.escalate_wtrain = false;
        let plan = FaultPlan::new(vec![
            Fault::NanGrad { step: 3 },
            Fault::NanGrad { step: 5 },
        ]);
        let res =
            train_gan_resilient(&g, &d, &data, &spans, &cfg, &guard, &plan, &mut rng).unwrap();
        assert!(res.outcome.degraded);
        assert!(res.outcome.completed_epochs >= 1);
        assert_eq!(res.run.history.len(), res.outcome.completed_epochs);
        assert!(matches!(
            res.outcome.recoveries.last().unwrap().action,
            RecoveryAction::Degrade
        ));
        // Degradation restored the last healthy weights.
        assert!(!params_non_finite(&g.params()));
    }

    #[test]
    fn fault_before_any_healthy_epoch_is_unrecoverable() {
        let cfg = TrainConfig {
            iterations: 6,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::vtrain(6)
        };
        let (g, d, data, spans) = setup(&cfg, 40);
        let mut rng = Rng::seed_from_u64(41);
        let mut guard = test_guard();
        guard.max_recoveries = 0;
        let Err(err) = train_gan_resilient(
            &g,
            &d,
            &data,
            &spans,
            &cfg,
            &guard,
            &FaultPlan::nan_grad_at(0),
            &mut rng,
        ) else {
            panic!("expected Unrecoverable");
        };
        match err {
            TrainError::Unrecoverable { trace, last } => {
                assert_eq!(trace.len(), 1);
                assert!(matches!(
                    last,
                    TripReason::NonFiniteLoss { .. } | TripReason::NonFiniteWeights
                ));
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn same_seed_and_plan_reproduce_the_recovery_trace() {
        let cfg = TrainConfig {
            iterations: 10,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::vtrain(10)
        };
        let plan = FaultPlan::new(vec![
            Fault::NanGrad { step: 6 },
            Fault::ForceCollapse { step: 8 },
        ]);
        let run_once = || {
            let (g, d, data, spans) = setup(&cfg, 42);
            let mut rng = Rng::seed_from_u64(43);
            let res = train_gan_resilient(
                &g,
                &d,
                &data,
                &spans,
                &cfg,
                &test_guard(),
                &plan,
                &mut rng,
            )
            .unwrap();
            let final_weights = res.run.snapshots.last().unwrap()[0].data().to_vec();
            (res.outcome, final_weights)
        };
        let (a_outcome, a_weights) = run_once();
        let (b_outcome, b_weights) = run_once();
        // NaN-carrying trip reasons compare unequal under PartialEq;
        // the debug rendering is the bit-reproducibility witness.
        assert_eq!(format!("{a_outcome:?}"), format!("{b_outcome:?}"));
        assert_eq!(a_weights, b_weights);
        assert!(!a_outcome.recoveries.is_empty());
    }

    #[test]
    fn clean_run_reports_clean_outcome() {
        let cfg = TrainConfig {
            iterations: 6,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::vtrain(6)
        };
        let (g, d, data, spans) = setup(&cfg, 44);
        let mut rng = Rng::seed_from_u64(45);
        let res = train_gan_resilient(
            &g,
            &d,
            &data,
            &spans,
            &cfg,
            &test_guard(),
            &FaultPlan::none(),
            &mut rng,
        )
        .unwrap();
        assert!(res.outcome.is_clean());
        assert_eq!(res.outcome.completed_epochs, 2);
    }
}
