//! Back-compat shim over [`daisy_wire`]: the CRC/framing layer used by
//! [`crate::persist`] and [`crate::checkpoint`] now lives in its own
//! crate so the data plane (`daisy-data`'s chunk store and ingest
//! journal) shares the same encoding discipline. Everything the
//! synthesizer and checkpoint formats use is re-exported here under its
//! historical path.

pub(crate) use daisy_wire::{
    atomic_write, crc64, sibling, sync_parent_dir, Reader, WireError, Writer,
};
