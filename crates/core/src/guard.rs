//! The training resilience layer: per-step health checks and a bounded
//! recovery policy for GAN training.
//!
//! The paper's central finding is that GAN training on relational data
//! is fragile — mode collapse (§5.2), divergence under DP noise (§5.4,
//! Figure 8), and hyper-parameter sensitivity (Figures 4, 16–18). An
//! open-loop trainer lets one non-finite loss silently poison every
//! later epoch. The [`TrainGuard`] closes the loop:
//!
//! 1. **Detect** — every step it checks losses for non-finite values
//!    and divergence (an EMA blow-up); periodically it checks weights
//!    for NaN/inf and probes the generator for mode collapse (scored by
//!    the duplicate-fraction diagnostic of §5.2).
//! 2. **Recover** — on a trip the trainer rolls generator,
//!    discriminator and optimizer state back to the last healthy epoch
//!    snapshot, decays the learning rate, and re-seeds the noise
//!    stream.
//! 3. **Escalate** — after `rollback_retries` failed rollbacks it
//!    applies the paper's own remedy reachable inside the trainer:
//!    switching to WTrain (Wasserstein loss + RMSProp + weight
//!    clipping, §5.2's alternative training). The other paper remedy —
//!    the simplified discriminator — needs a network rebuild and is
//!    applied one level up by [`crate::Synthesizer::try_fit`].
//! 4. **Degrade gracefully** — when the recovery budget is exhausted,
//!    training returns the best healthy snapshot seen together with a
//!    structured [`TrainOutcome`] report instead of panicking; only a
//!    run with *no* healthy snapshot at all becomes a [`TrainError`].

use std::fmt;

/// Thresholds and budgets of the resilience layer.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Check generator/discriminator weights for non-finite values
    /// every this many steps (and at every epoch boundary). 0 disables
    /// the periodic weight sweep (epoch-boundary checks remain).
    pub check_weights_every: usize,
    /// EMA smoothing for the loss divergence detector.
    pub ema_beta: f32,
    /// Trip when |loss| exceeds `divergence_factor * max(EMA, floor)`.
    pub divergence_factor: f32,
    /// Divergence floor: losses below this magnitude never trip, which
    /// keeps the detector quiet around zero-crossing Wasserstein losses.
    pub divergence_floor: f32,
    /// Steps before the divergence detector arms (the EMA needs to see
    /// a representative loss scale first).
    pub warmup_steps: usize,
    /// Probe the generator for mode collapse every this many steps.
    /// 0 disables the probe.
    pub probe_every: usize,
    /// Rows per collapse probe.
    pub probe_rows: usize,
    /// Duplicate fraction above which the probe trips (§5.2's alarm).
    pub collapse_threshold: f64,
    /// Quantization bins for the probe's duplicate fraction.
    pub collapse_bins: usize,
    /// Total recovery budget: rollbacks (including escalations) before
    /// the run degrades to its best snapshot.
    pub max_recoveries: usize,
    /// Plain rollback retries before escalating to WTrain.
    pub rollback_retries: usize,
    /// Learning-rate multiplier applied at every rollback.
    pub lr_decay: f32,
    /// Escalate to Wasserstein training after `rollback_retries`
    /// (only from vanilla-loss runs; WTrain runs skip this rung).
    pub escalate_wtrain: bool,
    /// Let [`crate::Synthesizer::try_fit`] rebuild with the simplified
    /// discriminator when training degrades (§5.2's other remedy).
    pub escalate_simplified_d: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            check_weights_every: 16,
            ema_beta: 0.9,
            divergence_factor: 50.0,
            divergence_floor: 2.0,
            warmup_steps: 20,
            probe_every: 50,
            probe_rows: 64,
            collapse_threshold: 0.95,
            collapse_bins: 20,
            max_recoveries: 6,
            rollback_retries: 2,
            lr_decay: 0.5,
            escalate_wtrain: true,
            escalate_simplified_d: true,
        }
    }
}

impl GuardConfig {
    /// A guard that never trips — the open-loop behaviour of the
    /// pre-resilience trainer, useful for microbenchmarks.
    pub fn disabled() -> Self {
        GuardConfig {
            check_weights_every: 0,
            probe_every: 0,
            divergence_factor: f32::INFINITY,
            warmup_steps: usize::MAX,
            max_recoveries: 0,
            escalate_wtrain: false,
            escalate_simplified_d: false,
            ..Self::default()
        }
    }
}

/// Why the guard tripped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripReason {
    /// A discriminator or generator loss came back NaN/inf.
    NonFiniteLoss {
        /// Discriminator loss at the offending step.
        d_loss: f32,
        /// Generator loss at the offending step.
        g_loss: f32,
    },
    /// A network weight went NaN/inf (e.g. after a poisoned gradient).
    NonFiniteWeights,
    /// Loss magnitude blew past the EMA envelope.
    Divergence {
        /// Absolute loss magnitude that tripped the envelope.
        loss: f32,
        /// The exponential moving average it was compared against.
        ema: f32,
    },
    /// The collapse probe found near-duplicate generator output.
    ModeCollapse {
        /// Fraction of probe samples that were near-duplicates.
        duplicate_fraction: f64,
    },
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripReason::NonFiniteLoss { d_loss, g_loss } => {
                write!(f, "non-finite loss (d = {d_loss}, g = {g_loss})")
            }
            TripReason::NonFiniteWeights => write!(f, "non-finite network weights"),
            TripReason::Divergence { loss, ema } => {
                write!(f, "loss divergence (|loss| = {loss:.3}, ema = {ema:.3})")
            }
            TripReason::ModeCollapse { duplicate_fraction } => {
                write!(f, "mode collapse (duplicate fraction {duplicate_fraction:.3})")
            }
        }
    }
}

impl TripReason {
    /// Machine-readable tag used in `guard_trip` telemetry events.
    pub fn tag(&self) -> &'static str {
        match self {
            TripReason::NonFiniteLoss { .. } => "non_finite_loss",
            TripReason::NonFiniteWeights => "non_finite_weights",
            TripReason::Divergence { .. } => "divergence",
            TripReason::ModeCollapse { .. } => "mode_collapse",
        }
    }

    /// The tag plus reason-specific detail as telemetry fields.
    pub fn telemetry_fields(&self) -> daisy_telemetry::Fields {
        use daisy_telemetry::field;
        let mut fields = vec![field("reason", self.tag())];
        match *self {
            TripReason::NonFiniteLoss { d_loss, g_loss } => {
                fields.push(field("d_loss", d_loss));
                fields.push(field("g_loss", g_loss));
            }
            TripReason::NonFiniteWeights => {}
            TripReason::Divergence { loss, ema } => {
                fields.push(field("loss", loss));
                fields.push(field("ema", ema));
            }
            TripReason::ModeCollapse { duplicate_fraction } => {
                fields.push(field("duplicate_fraction", duplicate_fraction));
            }
        }
        fields
    }
}

/// What the recovery policy did about a trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryAction {
    /// Rolled back to the last healthy snapshot, decayed the learning
    /// rate by `lr_scale` (cumulative), re-seeded the noise stream.
    Rollback {
        /// Cumulative learning-rate decay applied after the rollback.
        lr_scale: f32,
    },
    /// Rollback plus escalation to Wasserstein training (WTrain).
    SwitchToWTrain {
        /// Cumulative learning-rate decay carried into WTrain.
        lr_scale: f32,
    },
    /// Budget exhausted: training stopped at the best healthy snapshot.
    Degrade,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::Rollback { lr_scale } => {
                write!(f, "rollback (lr x{lr_scale:.3})")
            }
            RecoveryAction::SwitchToWTrain { lr_scale } => {
                write!(f, "rollback + switch to WTrain (lr x{lr_scale:.3})")
            }
            RecoveryAction::Degrade => write!(f, "degrade to best snapshot"),
        }
    }
}

impl RecoveryAction {
    /// Machine-readable tag used in `recovery` telemetry events.
    pub fn tag(&self) -> &'static str {
        match self {
            RecoveryAction::Rollback { .. } => "rollback",
            RecoveryAction::SwitchToWTrain { .. } => "switch_to_wtrain",
            RecoveryAction::Degrade => "degrade",
        }
    }
}

/// One entry of the recovery trace. For a fixed seed and fault plan the
/// full trace is bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Global step index at which the guard tripped.
    pub step: usize,
    /// Epoch the trip landed in (index of the next epoch boundary).
    pub epoch: usize,
    /// What tripped.
    pub reason: TripReason,
    /// What the policy did.
    pub action: RecoveryAction,
}

impl RecoveryEvent {
    /// Telemetry fields for the `recovery` event: logical position,
    /// action tag, and the cumulative learning-rate scale when the
    /// action has one.
    pub fn telemetry_fields(&self) -> daisy_telemetry::Fields {
        use daisy_telemetry::field;
        let mut fields = vec![
            field("step", self.step),
            field("epoch", self.epoch),
            field("action", self.action.tag()),
        ];
        if let RecoveryAction::Rollback { lr_scale } | RecoveryAction::SwitchToWTrain { lr_scale } =
            self.action
        {
            fields.push(field("lr_scale", lr_scale));
        }
        fields
    }
}

/// Structured report of a training run's health, attached to every
/// fitted synthesizer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainOutcome {
    /// Every trip and the action taken, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// True when the recovery budget ran out and the run returned its
    /// best healthy snapshot instead of completing all epochs.
    pub degraded: bool,
    /// Epochs whose snapshots survived (== requested epochs iff the run
    /// completed).
    pub completed_epochs: usize,
    /// True when the trainer escalated to Wasserstein training.
    pub escalated_wtrain: bool,
    /// True when the synthesizer escalated to the simplified
    /// discriminator and refitted.
    pub escalated_simplified_d: bool,
}

impl TrainOutcome {
    /// True when training never tripped a guard.
    pub fn is_clean(&self) -> bool {
        self.recoveries.is_empty() && !self.degraded
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("clean ({} epochs)", self.completed_epochs);
        }
        format!(
            "{} recover{} ({}{}{}{} epochs kept)",
            self.recoveries.len(),
            if self.recoveries.len() == 1 { "y" } else { "ies" },
            if self.degraded { "degraded, " } else { "" },
            if self.escalated_wtrain { "WTrain, " } else { "" },
            if self.escalated_simplified_d {
                "simplified-D, "
            } else {
                ""
            },
            self.completed_epochs,
        )
    }
}

/// Training failures that cannot be absorbed by the recovery policy.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The configuration/data combination is invalid (the conditions
    /// the pre-resilience trainer asserted on).
    InvalidConfig(String),
    /// The guard tripped past its budget before any healthy epoch
    /// snapshot existed — there is nothing useful to return.
    Unrecoverable {
        /// The full recovery trace up to the failure.
        trace: Vec<RecoveryEvent>,
        /// The trip that exhausted the budget.
        last: TripReason,
    },
    /// Training was cut short by a scheduled kill
    /// ([`crate::checkpoint::CheckpointPlan::kill_at_step`]) — the
    /// deterministic stand-in for a crash/SIGKILL in resume tests. Not
    /// a failure of the model: rerunning with the same checkpoint path
    /// resumes from the last durable checkpoint.
    Interrupted {
        /// Step at which training stopped.
        step: usize,
        /// Epochs completed (and durably snapshotted) before the kill.
        epoch: usize,
    },
    /// The batch source failed mid-training — an out-of-core store hit
    /// corruption or I/O failure after construction-time validation.
    /// Not guard-recoverable: rolling back weights cannot repair the
    /// data underneath, so the typed error propagates immediately.
    /// Carries the rendered [`daisy_data::DataError`].
    Data(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TrainError::Unrecoverable { trace, last } => write!(
                f,
                "training unrecoverable after {} recovery attempt(s): {last}",
                trace.len()
            ),
            TrainError::Interrupted { step, epoch } => {
                write!(f, "training interrupted at step {step} (epoch {epoch})")
            }
            TrainError::Data(msg) => write!(f, "batch source failed: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Per-step health monitor. Owns the loss EMAs and decides when to
/// trip; the *recovery* (rollback, decay, escalation) lives in the
/// trainer, which owns the state to restore.
#[derive(Debug, Clone)]
pub struct TrainGuard {
    cfg: GuardConfig,
    ema_d: f32,
    ema_g: f32,
    steps_seen: usize,
}

impl TrainGuard {
    /// Creates a guard with the given thresholds.
    pub fn new(cfg: GuardConfig) -> Self {
        TrainGuard {
            cfg,
            ema_d: 0.0,
            ema_g: 0.0,
            steps_seen: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &GuardConfig {
        &self.cfg
    }

    /// Feeds one step's losses; returns a trip when they are non-finite
    /// or diverging. Finite, healthy losses update the EMA envelope.
    pub fn observe_losses(&mut self, d_loss: f32, g_loss: f32) -> Option<TripReason> {
        if !d_loss.is_finite() || !g_loss.is_finite() {
            return Some(TripReason::NonFiniteLoss { d_loss, g_loss });
        }
        let (ad, ag) = (d_loss.abs(), g_loss.abs());
        if self.steps_seen >= self.cfg.warmup_steps {
            let env_d = self.cfg.divergence_factor * self.ema_d.max(self.cfg.divergence_floor);
            let env_g = self.cfg.divergence_factor * self.ema_g.max(self.cfg.divergence_floor);
            if ad > env_d {
                return Some(TripReason::Divergence {
                    loss: ad,
                    ema: self.ema_d,
                });
            }
            if ag > env_g {
                return Some(TripReason::Divergence {
                    loss: ag,
                    ema: self.ema_g,
                });
            }
        }
        let b = self.cfg.ema_beta;
        if self.steps_seen == 0 {
            self.ema_d = ad;
            self.ema_g = ag;
        } else {
            self.ema_d = b * self.ema_d + (1.0 - b) * ad;
            self.ema_g = b * self.ema_g + (1.0 - b) * ag;
        }
        self.steps_seen += 1;
        None
    }

    /// Whether step `t` is a scheduled weight-health sweep.
    pub fn weights_due(&self, t: usize) -> bool {
        self.cfg.check_weights_every > 0 && (t + 1).is_multiple_of(self.cfg.check_weights_every)
    }

    /// Whether step `t` is a scheduled collapse probe.
    pub fn probe_due(&self, t: usize) -> bool {
        self.cfg.probe_every > 0 && (t + 1).is_multiple_of(self.cfg.probe_every)
    }

    /// Scores a collapse probe's encoded samples.
    pub fn check_probe(&self, samples: &daisy_tensor::Tensor) -> Option<TripReason> {
        let frac = crate::diagnostics::encoded_duplicate_fraction(samples, self.cfg.collapse_bins);
        (frac > self.cfg.collapse_threshold)
            .then_some(TripReason::ModeCollapse {
                duplicate_fraction: frac,
            })
    }

    /// The EMA state, captured into an epoch snapshot so a rollback
    /// also rewinds the divergence envelope.
    pub fn ema_state(&self) -> (f32, f32, usize) {
        (self.ema_d, self.ema_g, self.steps_seen)
    }

    /// Restores EMA state captured by [`TrainGuard::ema_state`].
    pub fn restore_ema(&mut self, state: (f32, f32, usize)) {
        self.ema_d = state.0;
        self.ema_g = state.1;
        self.steps_seen = state.2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::Tensor;

    #[test]
    fn nan_loss_trips_immediately() {
        let mut g = TrainGuard::new(GuardConfig::default());
        assert_eq!(g.observe_losses(0.5, 0.5), None);
        assert!(matches!(
            g.observe_losses(f32::NAN, 0.5),
            Some(TripReason::NonFiniteLoss { .. })
        ));
        assert!(matches!(
            g.observe_losses(0.5, f32::INFINITY),
            Some(TripReason::NonFiniteLoss { .. })
        ));
    }

    #[test]
    fn divergence_arms_after_warmup() {
        let cfg = GuardConfig {
            warmup_steps: 5,
            divergence_factor: 10.0,
            divergence_floor: 0.1,
            ..GuardConfig::default()
        };
        let mut g = TrainGuard::new(cfg);
        // Spikes during warmup only feed the EMA.
        assert_eq!(g.observe_losses(100.0, 0.5), None);
        for _ in 0..6 {
            assert_eq!(g.observe_losses(0.5, 0.5), None);
        }
        // EMA has decayed toward 0.5; a 10_000x spike must trip now.
        assert!(matches!(
            g.observe_losses(0.5, 10_000.0),
            Some(TripReason::Divergence { .. })
        ));
    }

    #[test]
    fn small_losses_never_trip_divergence() {
        let cfg = GuardConfig {
            warmup_steps: 1,
            divergence_floor: 2.0,
            divergence_factor: 10.0,
            ..GuardConfig::default()
        };
        let mut g = TrainGuard::new(cfg);
        g.observe_losses(0.001, 0.001);
        // 0.5 < factor * floor = 20 even though the EMA is ~0.001.
        assert_eq!(g.observe_losses(0.5, 0.5), None);
    }

    #[test]
    fn probe_scoring_uses_threshold() {
        let g = TrainGuard::new(GuardConfig::default());
        let collapsed = Tensor::full(&[32, 4], 1.0);
        assert!(matches!(
            g.check_probe(&collapsed),
            Some(TripReason::ModeCollapse { .. })
        ));
        let mut rng = daisy_tensor::Rng::seed_from_u64(3);
        let diverse = Tensor::randn(&[32, 4], &mut rng);
        assert_eq!(g.check_probe(&diverse), None);
    }

    #[test]
    fn ema_state_roundtrip() {
        let mut g = TrainGuard::new(GuardConfig::default());
        for _ in 0..10 {
            g.observe_losses(1.0, 2.0);
        }
        let state = g.ema_state();
        for _ in 0..5 {
            g.observe_losses(9.0, 9.0);
        }
        g.restore_ema(state);
        assert_eq!(g.ema_state(), state);
    }

    #[test]
    fn outcome_summaries() {
        let mut o = TrainOutcome {
            completed_epochs: 10,
            ..Default::default()
        };
        assert!(o.is_clean());
        assert_eq!(o.summary(), "clean (10 epochs)");
        o.recoveries.push(RecoveryEvent {
            step: 3,
            epoch: 0,
            reason: TripReason::NonFiniteWeights,
            action: RecoveryAction::Rollback { lr_scale: 0.5 },
        });
        o.degraded = true;
        assert!(!o.is_clean());
        assert!(o.summary().contains("1 recovery"));
        assert!(o.summary().contains("degraded"));
    }

    #[test]
    fn schedules() {
        let cfg = GuardConfig {
            check_weights_every: 4,
            probe_every: 10,
            ..GuardConfig::default()
        };
        let g = TrainGuard::new(cfg);
        assert!(!g.weights_due(0));
        assert!(g.weights_due(3));
        assert!(g.probe_due(9));
        assert!(!g.probe_due(10));
        let off = TrainGuard::new(GuardConfig::disabled());
        assert!(!off.weights_due(3));
        assert!(!off.probe_due(9));
    }
}
