//! The end-to-end synthesis pipeline (paper Figure 2): fit a codec,
//! train a GAN, select the best epoch snapshot on validation data, and
//! generate a synthetic table.

use crate::checkpoint::{config_fingerprint, CheckpointPlan};
use crate::config::{DiscriminatorKind, NetworkKind, SynthesizerConfig};
use crate::discriminator::{CnnDiscriminator, Discriminator, LstmDiscriminator, MlpDiscriminator};
use crate::fault::FaultPlan;
use crate::generator::{CnnGenerator, Generator, LstmGenerator, MlpGenerator};
use crate::guard::{GuardConfig, TrainError, TrainOutcome};
use crate::output_head::softmax_spans;
use crate::sampler::TrainingData;
use crate::train::{train_gan_checkpointed, EpochStats, TrainingRun};
use daisy_data::{Column, MatrixCodec, RecordCodec, Schema, Table};
use daisy_nn::restore;
use daisy_telemetry::{field, schema};
use daisy_tensor::{Rng, Tensor};

/// Rows per generation batch in [`FittedSynthesizer::generate`].
///
/// Deliberately a constant: each batch draws noise (and, for LSTM
/// generators, initial states) from the caller's RNG, so the batch size
/// is part of the deterministic computation. It must never be derived
/// from the thread count or machine — the worker pool parallelizes
/// *inside* each batch's forward pass instead.
pub const GENERATION_BATCH: usize = 256;

/// Anything that can produce a synthetic table — the common interface
/// of the GAN synthesizer and the baselines (VAE, PrivBayes,
/// independent marginals), letting the experiment harness swap methods.
pub trait TableSynthesizer {
    /// Generates `n` synthetic records.
    fn synthesize(&self, n: usize, rng: &mut Rng) -> Table;

    /// Display name of the method.
    fn method_name(&self) -> String;
}

impl TableSynthesizer for FittedSynthesizer {
    fn synthesize(&self, n: usize, rng: &mut Rng) -> Table {
        self.generate(n, rng)
    }

    fn method_name(&self) -> String {
        format!(
            "GAN({}/{})",
            self.config.network.name(),
            self.config.train.name()
        )
    }
}

/// Either sample form, behind one reversible interface.
pub enum SampleCodec {
    /// Vector-formed samples (MLP/LSTM).
    Record(RecordCodec),
    /// Matrix-formed samples (CNN), flattened to `[n, side²]`.
    Matrix(MatrixCodec),
}

impl SampleCodec {
    /// Flattened sample width.
    pub fn width(&self) -> usize {
        match self {
            SampleCodec::Record(c) => c.width(),
            SampleCodec::Matrix(c) => c.side() * c.side(),
        }
    }

    /// Encodes a table into flattened `[n, d]` samples.
    pub fn encode_table(&self, table: &Table) -> Tensor {
        match self {
            SampleCodec::Record(c) => c.encode_table(table),
            SampleCodec::Matrix(c) => {
                let t4 = c.encode_table(table);
                let n = t4.shape()[0];
                let area = t4.shape()[2] * t4.shape()[3];
                t4.reshape(&[n, area])
            }
        }
    }

    /// Decodes flattened `[n, d]` samples back into records.
    pub fn decode_table(&self, samples: &Tensor) -> Table {
        match self {
            SampleCodec::Record(c) => c.decode_table(samples),
            SampleCodec::Matrix(c) => {
                let n = samples.rows();
                let side = c.side();
                c.decode_table(&samples.reshape(&[n, 1, side, side]))
            }
        }
    }
}

/// A trained synthesizer: Phase III generation plus training telemetry.
///
/// In conditional mode (CTrain / CGAN-V) the label attribute is *not*
/// part of the generated record: the generator synthesizes the feature
/// attributes conditioned on a one-hot label, exactly the CGAN
/// formulation of §5.3, and generation re-attaches the conditioned
/// label as a column. This forces the discriminator to judge
/// feature↔label consistency instead of merely copying a label block.
pub struct FittedSynthesizer {
    pub(crate) codec: SampleCodec,
    pub(crate) generator: Box<dyn Generator>,
    pub(crate) config: SynthesizerConfig,
    /// Empirical label distribution of the training table (used to draw
    /// conditions at generation time).
    pub(crate) label_dist: Vec<f64>,
    pub(crate) label_col: Option<usize>,
    /// Schema of the full (label-included) table.
    pub(crate) output_schema: Schema,
    /// Category names of the label column (conditional mode).
    pub(crate) label_categories: Vec<String>,
    pub(crate) run: TrainingRun,
    /// Which epoch snapshot the generator currently holds.
    pub(crate) selected_epoch: usize,
    /// Health report of the training run (recoveries, escalations,
    /// degradation status).
    pub(crate) outcome: TrainOutcome,
}

impl FittedSynthesizer {
    /// Per-epoch loss history.
    pub fn history(&self) -> &[EpochStats] {
        &self.run.history
    }

    /// Number of stored epoch snapshots.
    pub fn n_snapshots(&self) -> usize {
        self.run.snapshots.len()
    }

    /// The epoch whose snapshot is currently loaded.
    pub fn selected_epoch(&self) -> usize {
        self.selected_epoch
    }

    /// The fitted configuration.
    pub fn config(&self) -> &SynthesizerConfig {
        &self.config
    }

    /// The resilience layer's report on the training run: recovery
    /// trace, escalations taken, and whether the run degraded to its
    /// best snapshot instead of completing.
    pub fn outcome(&self) -> &TrainOutcome {
        &self.outcome
    }

    /// Loads the generator parameters of the given epoch snapshot.
    pub fn load_snapshot(&mut self, epoch: usize) {
        assert!(epoch < self.run.snapshots.len(), "no such snapshot");
        restore(&self.generator.params(), &self.run.snapshots[epoch]);
        self.selected_epoch = epoch;
    }

    /// Generates `n` synthetic records (Phase III).
    ///
    /// Generation runs in fixed [`GENERATION_BATCH`]-row batches; each
    /// batch's forward pass executes on daisy-tensor's worker pool, so
    /// generation scales with `DAISY_THREADS` while staying
    /// bit-identical for any thread count (the batch size — and with it
    /// the RNG draw order — is a constant, never a function of the
    /// parallelism).
    pub fn generate(&self, n: usize, rng: &mut Rng) -> Table {
        // Implemented over the pull-based row stream so the batch API
        // and the serving plane cannot drift: a streamed request with
        // this RNG yields these rows, bit for bit.
        let stream = crate::row_stream::RowStream::new(self, n, Rng::from_state(rng.state()), None);
        let (table, state) = self.collect_stream(stream);
        *rng = Rng::from_state(state);
        table
    }

    /// Generates from a specific snapshot without changing the loaded
    /// selection permanently.
    pub fn generate_from_snapshot(&mut self, epoch: usize, n: usize, rng: &mut Rng) -> Table {
        let keep = self.selected_epoch;
        self.load_snapshot(epoch);
        let t = self.generate(n, rng);
        self.load_snapshot(keep);
        t
    }
}

/// Entry points for fitting synthesizers.
pub struct Synthesizer;

impl Synthesizer {
    /// Fits a GAN synthesizer and keeps the **last** epoch snapshot.
    ///
    /// Thin compatible wrapper over [`Synthesizer::try_fit`]: panics on
    /// [`TrainError`]. Callers that want to handle training failure
    /// (invalid configuration, unrecoverable divergence) should use
    /// `try_fit` directly.
    pub fn fit(table: &Table, config: &SynthesizerConfig) -> FittedSynthesizer {
        Self::try_fit(table, config)
            .unwrap_or_else(|e| panic!("synthesizer training failed: {e}"))
    }

    /// Fits a GAN synthesizer under the default resilience policy
    /// ([`GuardConfig::default`]) and keeps the **last** epoch snapshot.
    ///
    /// Training runs with NaN/divergence guards and snapshot-rollback
    /// recovery; a degraded-but-usable run comes back `Ok` with
    /// [`TrainOutcome::degraded`] set, and only a run with no healthy
    /// epoch at all is an `Err`.
    pub fn try_fit(
        table: &Table,
        config: &SynthesizerConfig,
    ) -> Result<FittedSynthesizer, TrainError> {
        Self::try_fit_with(table, config, &GuardConfig::default(), &FaultPlan::none())
    }

    /// [`Synthesizer::try_fit`] with an explicit guard policy and fault
    /// plan (the fault plan injects deterministic failures for testing;
    /// pass [`FaultPlan::none`] in production).
    ///
    /// When training degrades or fails and
    /// [`GuardConfig::escalate_simplified_d`] is set, the synthesizer
    /// applies the paper's §5.2 remedy: it rebuilds with the simplified
    /// discriminator and refits (the fault plan re-arms for the new
    /// attempt).
    pub fn try_fit_with(
        table: &Table,
        config: &SynthesizerConfig,
        guard: &GuardConfig,
        faults: &FaultPlan,
    ) -> Result<FittedSynthesizer, TrainError> {
        Self::try_fit_inner(table, config, guard, faults, &CheckpointPlan::disabled(), None)
    }

    /// [`Synthesizer::try_fit_with`] plus crash-safe checkpoint/resume:
    /// when `ckpt` names a path, training state is written durably at
    /// epoch boundaries, and a rerun of the *same configuration* with
    /// the same path resumes from the latest valid checkpoint instead
    /// of starting over — bit-identical to an uninterrupted fit. The
    /// plan's fingerprint is stamped from `config` automatically, so a
    /// checkpoint left behind by a different configuration is ignored.
    ///
    /// An interrupted run (the plan's deterministic kill, standing in
    /// for a real crash) surfaces as [`TrainError::Interrupted`]; it is
    /// never escalated to a simplified-discriminator refit.
    pub fn try_fit_checkpointed(
        table: &Table,
        config: &SynthesizerConfig,
        guard: &GuardConfig,
        faults: &FaultPlan,
        ckpt: &CheckpointPlan,
    ) -> Result<FittedSynthesizer, TrainError> {
        Self::try_fit_inner(table, config, guard, faults, ckpt, None)
    }

    /// Fits a GAN synthesizer with validation-based model selection
    /// (§6.2): after training, every epoch snapshot generates a
    /// validation-sized synthetic table which `scorer` rates (higher is
    /// better); the best snapshot is loaded. Panics on [`TrainError`];
    /// see [`Synthesizer::try_fit_selected`].
    pub fn fit_selected(
        table: &Table,
        config: &SynthesizerConfig,
        scorer: impl FnMut(&Table) -> f64,
    ) -> FittedSynthesizer {
        Self::try_fit_selected(table, config, scorer)
            .unwrap_or_else(|e| panic!("synthesizer training failed: {e}"))
    }

    /// [`Synthesizer::fit_selected`] with a typed error instead of a
    /// panic, running under the default resilience policy.
    pub fn try_fit_selected(
        table: &Table,
        config: &SynthesizerConfig,
        scorer: impl FnMut(&Table) -> f64,
    ) -> Result<FittedSynthesizer, TrainError> {
        Self::try_fit_inner(
            table,
            config,
            &GuardConfig::default(),
            &FaultPlan::none(),
            &CheckpointPlan::disabled(),
            Some(Box::new(scorer)),
        )
    }

    #[allow(clippy::type_complexity)]
    fn try_fit_inner(
        table: &Table,
        config: &SynthesizerConfig,
        guard: &GuardConfig,
        faults: &FaultPlan,
        ckpt: &CheckpointPlan,
        mut scorer: Option<Box<dyn FnMut(&Table) -> f64 + '_>>,
    ) -> Result<FittedSynthesizer, TrainError> {
        let first = Self::fit_attempt(table, config, guard, faults, ckpt, scorer.as_deref_mut());
        let needs_escalation = match &first {
            Ok(f) => f.outcome.degraded,
            Err(TrainError::Unrecoverable { .. }) => true,
            Err(TrainError::InvalidConfig(_)) => false,
            // A deterministic kill is not a training failure: the rerun
            // resumes the same configuration, so escalating would both
            // waste the checkpoint and change the design point.
            Err(TrainError::Interrupted { .. }) => false,
            // Corrupt data underneath the trainer: retraining on the
            // same source would hit the same error.
            Err(TrainError::Data(_)) => false,
        };
        if needs_escalation && guard.escalate_simplified_d && !config.simplified_d {
            if daisy_telemetry::enabled() {
                let reason = match &first {
                    Ok(_) => "degraded",
                    Err(_) => "unrecoverable",
                };
                daisy_telemetry::emit(
                    schema::ESCALATE_SIMPLIFIED_D,
                    vec![field("reason", reason)],
                );
            }
            // The paper's other §5.2 remedy: shrink the discriminator so
            // it cannot saturate, and train again from scratch.
            let mut simplified = config.clone();
            simplified.simplified_d = true;
            match Self::fit_attempt(table, &simplified, guard, faults, ckpt, scorer.as_deref_mut())
            {
                Ok(mut second) => {
                    second.outcome.escalated_simplified_d = true;
                    // Keep the first attempt's trace so the full story
                    // survives in one report.
                    if let Err(TrainError::Unrecoverable { trace, .. }) = &first {
                        let mut merged = trace.clone();
                        merged.extend(second.outcome.recoveries.iter().copied());
                        second.outcome.recoveries = merged;
                    } else if let Ok(f) = &first {
                        let mut merged = f.outcome.recoveries.clone();
                        merged.extend(second.outcome.recoveries.iter().copied());
                        second.outcome.recoveries = merged;
                    }
                    Ok(second)
                }
                // The escalation also failed: fall back to the degraded
                // first attempt when one exists.
                Err(e2) => first.map_err(|_| e2),
            }
        } else {
            first
        }
    }

    #[allow(clippy::type_complexity)]
    fn fit_attempt(
        table: &Table,
        config: &SynthesizerConfig,
        guard: &GuardConfig,
        faults: &FaultPlan,
        ckpt: &CheckpointPlan,
        scorer: Option<&mut (dyn FnMut(&Table) -> f64 + '_)>,
    ) -> Result<FittedSynthesizer, TrainError> {
        daisy_telemetry::phase_scope!("fit");
        let invalid = |msg: &str| TrainError::InvalidConfig(msg.to_string());
        if table.n_rows() == 0 {
            return Err(invalid("cannot fit on an empty table"));
        }
        if daisy_telemetry::enabled() {
            daisy_telemetry::emit(
                schema::FIT_START,
                vec![
                    field("network", config.network.name()),
                    field("algorithm", config.train.name()),
                    field("rows", table.n_rows()),
                    field("seed", config.seed),
                    field("conditional", config.train.conditional),
                    field("simplified_d", config.simplified_d),
                ],
            );
        }
        let mut rng = Rng::seed_from_u64(config.seed);

        // Conditional mode strips the label from the generated record:
        // the label travels through the condition vector only (§5.3).
        let conditional = config.train.conditional;
        let label_col = table.schema().label();
        let label_categories = label_col
            .map(|j| match &table.columns()[j] {
                Column::Cat { categories, .. } => categories.clone(),
                Column::Num(_) => unreachable!("labels are categorical"),
            })
            .unwrap_or_default();
        let record_table = if conditional {
            let j = label_col.ok_or_else(|| invalid("conditional GAN requires a labeled table"))?;
            if config.network == NetworkKind::Cnn {
                return Err(invalid("the CNN family does not support conditional GAN"));
            }
            table.drop_column(j)
        } else {
            table.clone()
        };

        // Phase I: data transformation.
        let codec = match config.network {
            NetworkKind::Cnn => SampleCodec::Matrix(MatrixCodec::fit(&record_table)),
            _ => SampleCodec::Record(RecordCodec::fit(&record_table, &config.transform)),
        };
        let encoded = codec.encode_table(&record_table);
        // Labels (for conditions and label-aware sampling) still come
        // from the original table.
        let data = TrainingData::from_encoded(encoded, table);

        let cond_dim = if conditional {
            if data.n_classes() == 0 {
                return Err(invalid("conditional GAN requires a labeled table"));
            }
            data.n_classes()
        } else {
            0
        };

        // Networks.
        let blocks = match &codec {
            SampleCodec::Record(c) => c.output_blocks(),
            SampleCodec::Matrix(_) => Vec::new(),
        };
        let spans = softmax_spans(&blocks);
        // BatchNorm is disabled for conditional training: Algorithm 3's
        // pure-label minibatches make batch statistics label-dependent,
        // which mismatches the blended running statistics used at
        // generation time (see `SynthesizerConfig::g_batchnorm`).
        let g_bn = config.g_batchnorm && !conditional;
        let generator: Box<dyn Generator> = match config.network {
            NetworkKind::Mlp => Box::new(MlpGenerator::with_options(
                config.noise_dim,
                cond_dim,
                &config.g_hidden,
                blocks.clone(),
                g_bn,
                &mut rng,
            )),
            NetworkKind::Lstm => {
                let hidden = config.g_hidden.first().copied().unwrap_or(64);
                let f_dim = config.g_hidden.get(1).copied().unwrap_or(hidden / 2).max(4);
                Box::new(LstmGenerator::new(
                    config.noise_dim,
                    cond_dim,
                    hidden,
                    f_dim,
                    blocks.clone(),
                    &mut rng,
                ))
            }
            NetworkKind::Cnn => {
                let SampleCodec::Matrix(m) = &codec else {
                    unreachable!()
                };
                Box::new(CnnGenerator::new(
                    config.noise_dim,
                    config.cnn_channels,
                    m.side(),
                    &mut rng,
                ))
            }
        };
        let d_hidden = config.effective_d_hidden();
        let pac = config.train.pac.max(1);
        if pac > 1 && config.discriminator != DiscriminatorKind::Mlp {
            return Err(invalid("PacGAN packing requires the MLP discriminator"));
        }
        let discriminator: Box<dyn Discriminator> = match config.discriminator {
            DiscriminatorKind::Mlp => Box::new(MlpDiscriminator::with_dropout(
                codec.width() * pac,
                cond_dim,
                &d_hidden,
                config.d_dropout,
                &mut rng,
            )),
            DiscriminatorKind::Lstm => {
                assert!(
                    !blocks.is_empty(),
                    "LSTM discriminator requires vector-formed samples"
                );
                let hidden = d_hidden.first().copied().unwrap_or(64);
                Box::new(LstmDiscriminator::new(
                    blocks.clone(),
                    cond_dim,
                    hidden,
                    &mut rng,
                ))
            }
            DiscriminatorKind::Cnn => {
                let SampleCodec::Matrix(m) = &codec else {
                    panic!("CNN discriminator requires matrix-formed samples")
                };
                Box::new(CnnDiscriminator::new(
                    m.side(),
                    config.cnn_channels,
                    &mut rng,
                ))
            }
        };

        // Phase II: adversarial training under the resilience layer,
        // with durable checkpointing when the plan names a path. The
        // fingerprint ties every checkpoint to this exact configuration
        // (a simplified-D escalation changes `simplified_d`, hence the
        // fingerprint — each attempt only ever resumes its own state).
        let mut ckpt = ckpt.clone();
        ckpt.fingerprint = config_fingerprint(config);
        let resilient = train_gan_checkpointed(
            generator.as_ref(),
            discriminator.as_ref(),
            &data,
            &spans,
            &config.train,
            guard,
            faults,
            &ckpt,
            &mut rng,
        )?;

        let label_dist = data.label_distribution();
        let mut fitted = FittedSynthesizer {
            codec,
            generator,
            config: config.clone(),
            label_dist,
            label_col,
            output_schema: table.schema().clone(),
            label_categories,
            selected_epoch: 0,
            run: resilient.run,
            outcome: resilient.outcome,
        };
        let last = fitted.n_snapshots() - 1;
        fitted.load_snapshot(last);

        // Validation-based model selection over epoch snapshots.
        if let Some(scorer) = scorer {
            let sample_n = table.n_rows().clamp(64, 512);
            let mut best = (f64::NEG_INFINITY, last);
            for e in 0..fitted.n_snapshots() {
                let mut eval_rng = Rng::seed_from_u64(config.seed ^ 0x5e1ec7);
                let synthetic = fitted.generate_from_snapshot(e, sample_n, &mut eval_rng);
                let score = scorer(&synthetic);
                if daisy_telemetry::enabled() {
                    daisy_telemetry::emit(
                        schema::MODEL_SELECTION_SCORE,
                        vec![field("epoch", e), field("score", score)],
                    );
                }
                if score > best.0 {
                    best = (score, e);
                }
            }
            fitted.load_snapshot(best.1);
            if daisy_telemetry::enabled() {
                daisy_telemetry::emit(
                    schema::MODEL_SELECTED,
                    vec![field("epoch", best.1), field("score", best.0)],
                );
            }
        }
        if daisy_telemetry::enabled() {
            daisy_telemetry::emit(
                schema::FIT_END,
                vec![
                    field("completed_epochs", fitted.outcome.completed_epochs),
                    field("recoveries", fitted.outcome.recoveries.len()),
                    field("degraded", fitted.outcome.degraded),
                    field("escalated_wtrain", fitted.outcome.escalated_wtrain),
                    field("selected_epoch", fitted.selected_epoch),
                    field("clean", fitted.outcome.is_clean()),
                ],
            );
            // End-of-fit pool/kernel utilization. The snapshot event is
            // marked non-deterministic (counters depend on the thread
            // count), so `deterministic_view` drops it wholesale.
            daisy_telemetry::emit_metrics_snapshot();
            // Phase profile (wall time per fit/epoch/... path) rides the
            // same nd plane; a no-op unless DAISY_PROFILE is on.
            daisy_telemetry::emit_profile_snapshot();
        }
        Ok(fitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::generator::test_support::tiny_table;

    fn quick_config(network: NetworkKind) -> SynthesizerConfig {
        let mut train = TrainConfig::vtrain(12);
        train.batch_size = 32;
        train.epochs = 3;
        let mut cfg = SynthesizerConfig::new(network, train);
        cfg.noise_dim = 8;
        cfg.g_hidden = vec![32];
        cfg.d_hidden = vec![32];
        cfg.cnn_channels = 4;
        cfg
    }

    #[test]
    fn mlp_end_to_end() {
        let table = tiny_table(300, 0);
        let fitted = Synthesizer::fit(&table, &quick_config(NetworkKind::Mlp));
        let mut rng = Rng::seed_from_u64(1);
        let synthetic = fitted.generate(100, &mut rng);
        assert_eq!(synthetic.n_rows(), 100);
        assert_eq!(synthetic.schema(), table.schema());
        assert_eq!(fitted.n_snapshots(), 3);
    }

    #[test]
    fn lstm_end_to_end() {
        let table = tiny_table(300, 2);
        let fitted = Synthesizer::fit(&table, &quick_config(NetworkKind::Lstm));
        let mut rng = Rng::seed_from_u64(3);
        let synthetic = fitted.generate(50, &mut rng);
        assert_eq!(synthetic.n_rows(), 50);
    }

    #[test]
    fn cnn_end_to_end() {
        let table = tiny_table(300, 4);
        let fitted = Synthesizer::fit(&table, &quick_config(NetworkKind::Cnn));
        let mut rng = Rng::seed_from_u64(5);
        let synthetic = fitted.generate(50, &mut rng);
        assert_eq!(synthetic.n_rows(), 50);
        assert_eq!(synthetic.n_attrs(), 3);
    }

    #[test]
    fn conditional_generation_matches_label_distribution() {
        let table = tiny_table(400, 6);
        let mut cfg = quick_config(NetworkKind::Mlp);
        cfg.train.conditional = true;
        cfg.train.label_aware = true;
        let fitted = Synthesizer::fit(&table, &cfg);
        let mut rng = Rng::seed_from_u64(7);
        let synthetic = fitted.generate(1000, &mut rng);
        let real_p1 = table.labels().iter().filter(|&&y| y == 1).count() as f64
            / table.n_rows() as f64;
        let syn_p1 = synthetic.labels().iter().filter(|&&y| y == 1).count() as f64 / 1000.0;
        assert!(
            (real_p1 - syn_p1).abs() < 0.1,
            "label distribution drifted: {real_p1} vs {syn_p1}"
        );
    }

    #[test]
    fn snapshot_selection_picks_scored_best() {
        let table = tiny_table(300, 8);
        // Scorer that prefers epoch 1's snapshot by construction: score
        // by a counter so the second evaluation wins.
        let mut calls = 0;
        let fitted = Synthesizer::fit_selected(&table, &quick_config(NetworkKind::Mlp), |_t| {
            calls += 1;
            if calls == 2 {
                10.0
            } else {
                0.0
            }
        });
        assert_eq!(fitted.selected_epoch(), 1);
    }

    #[test]
    fn conditional_gan_learns_feature_label_dependence() {
        // x | y=0 ~ N(-2, 1), x | y=1 ~ N(+2, 1): after CTrain, the
        // generated x means must separate by the conditioned label.
        // This is the regression test for two historical failure modes:
        // the label block leaking into the record, and BatchNorm
        // cancelling constant-condition batches under label-aware
        // sampling.
        let table = tiny_table(600, 12);
        let mut cfg = quick_config(NetworkKind::Mlp);
        cfg.train = TrainConfig::ctrain(300);
        cfg.train.batch_size = 48;
        cfg.train.epochs = 3;
        cfg.g_hidden = vec![48];
        cfg.d_hidden = vec![48];
        let fitted = Synthesizer::fit(&table, &cfg);
        let mut rng = Rng::seed_from_u64(13);
        let synthetic = fitted.generate(1500, &mut rng);
        let xs = synthetic.column(0).as_num();
        let labels = synthetic.labels();
        let mean_by = |target: u32| {
            let vals: Vec<f64> = xs
                .iter()
                .zip(labels)
                .filter(|(_, &y)| y == target)
                .map(|(&v, _)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let (m0, m1) = (mean_by(0), mean_by(1));
        assert!(
            m1 - m0 > 1.0,
            "conditional dependence not learned: mean(x|0)={m0:.2}, mean(x|1)={m1:.2}"
        );
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let table = tiny_table(200, 9);
        let fitted = Synthesizer::fit(&table, &quick_config(NetworkKind::Mlp));
        let a = fitted.generate(20, &mut Rng::seed_from_u64(42));
        let b = fitted.generate(20, &mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    fn resilience_guard() -> GuardConfig {
        GuardConfig {
            check_weights_every: 1,
            probe_every: 0,
            warmup_steps: usize::MAX,
            divergence_factor: f32::INFINITY,
            ..GuardConfig::default()
        }
    }

    #[test]
    fn try_fit_recovers_from_injected_fault() {
        let table = tiny_table(300, 20);
        let fitted = Synthesizer::try_fit_with(
            &table,
            &quick_config(NetworkKind::Mlp),
            &resilience_guard(),
            &FaultPlan::nan_grad_at(6),
        )
        .expect("recovered fit");
        assert_eq!(fitted.outcome().recoveries.len(), 1);
        assert!(!fitted.outcome().degraded);
        // The recovered model still generates a full, valid table.
        let mut rng = Rng::seed_from_u64(21);
        let synthetic = fitted.generate(50, &mut rng);
        assert_eq!(synthetic.n_rows(), 50);
        assert_eq!(synthetic.schema(), table.schema());
    }

    #[test]
    fn try_fit_clean_run_has_clean_outcome() {
        let table = tiny_table(200, 22);
        let fitted = Synthesizer::try_fit(&table, &quick_config(NetworkKind::Mlp)).unwrap();
        assert!(fitted.outcome().is_clean());
    }

    #[test]
    fn unrecoverable_fault_is_an_error_not_a_panic() {
        let table = tiny_table(200, 24);
        let mut guard = resilience_guard();
        guard.max_recoveries = 0;
        guard.escalate_simplified_d = false;
        let Err(err) = Synthesizer::try_fit_with(
            &table,
            &quick_config(NetworkKind::Mlp),
            &guard,
            &FaultPlan::nan_grad_at(0),
        ) else {
            panic!("expected Unrecoverable");
        };
        assert!(matches!(err, crate::guard::TrainError::Unrecoverable { .. }));
    }

    #[test]
    fn degraded_run_returns_best_snapshot() {
        let table = tiny_table(300, 26);
        let mut guard = resilience_guard();
        guard.max_recoveries = 1;
        guard.escalate_wtrain = false;
        guard.escalate_simplified_d = false;
        // quick_config: 12 iterations over 3 epochs = 4 per epoch. The
        // second fault lands after epoch 1 exists but past the budget.
        let plan = FaultPlan::new(vec![
            crate::fault::Fault::NanGrad { step: 5 },
            crate::fault::Fault::NanGrad { step: 7 },
        ]);
        let fitted =
            Synthesizer::try_fit_with(&table, &quick_config(NetworkKind::Mlp), &guard, &plan)
                .expect("degraded but usable");
        assert!(fitted.outcome().degraded);
        assert!(fitted.outcome().completed_epochs >= 1);
        let mut rng = Rng::seed_from_u64(27);
        assert_eq!(fitted.generate(20, &mut rng).n_rows(), 20);
    }

    #[test]
    fn persistent_failure_escalates_to_simplified_d() {
        let table = tiny_table(300, 28);
        let mut guard = resilience_guard();
        guard.max_recoveries = 1;
        guard.escalate_wtrain = false;
        guard.escalate_simplified_d = true;
        let plan = FaultPlan::new(vec![
            crate::fault::Fault::NanGrad { step: 5 },
            crate::fault::Fault::NanGrad { step: 7 },
        ]);
        let fitted =
            Synthesizer::try_fit_with(&table, &quick_config(NetworkKind::Mlp), &guard, &plan)
                .expect("escalated fit");
        // The refit used the paper's simplified discriminator, and the
        // outcome records the escalation plus both attempts' traces.
        assert!(fitted.outcome().escalated_simplified_d);
        assert!(fitted.config().simplified_d);
        assert!(fitted.outcome().recoveries.len() >= 2);
    }

    #[test]
    fn lstm_discriminator_variant_trains() {
        let table = tiny_table(200, 10);
        let mut cfg = quick_config(NetworkKind::Mlp);
        cfg.discriminator = DiscriminatorKind::Lstm;
        let fitted = Synthesizer::fit(&table, &cfg);
        let mut rng = Rng::seed_from_u64(11);
        assert_eq!(fitted.generate(10, &mut rng).n_rows(), 10);
    }
}
