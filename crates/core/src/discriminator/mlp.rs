//! MLP discriminator (Appendix A.1.2, Figure 11b): fully-connected
//! layers with LeakyReLU, ending in a single logit.

use crate::discriminator::{attach_condition, Discriminator};
use daisy_nn::{Activation, Dropout, Linear, Module, Sequential};
use daisy_tensor::{Param, Rng, RngState, Tensor, Var};

/// Fully-connected discriminator. The "Simplified" mode-collapse remedy
/// (§5.2) is obtained by constructing it with a single narrow hidden
/// layer — see `SynthesizerConfig::effective_d_hidden`.
pub struct MlpDiscriminator {
    net: Sequential,
    cond_dim: usize,
}

impl MlpDiscriminator {
    /// Builds a discriminator over `input_dim`-wide samples.
    pub fn new(input_dim: usize, cond_dim: usize, hidden: &[usize], rng: &mut Rng) -> Self {
        Self::with_dropout(input_dim, cond_dim, hidden, 0.0, rng)
    }

    /// Builds a discriminator with inverted dropout after every hidden
    /// activation (`p = 0` disables it) — a regularization knob that
    /// keeps D from memorizing small real tables.
    pub fn with_dropout(
        input_dim: usize,
        cond_dim: usize,
        hidden: &[usize],
        dropout: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(!hidden.is_empty(), "discriminator needs a hidden layer");
        let mut net = Sequential::new();
        let mut prev = input_dim + cond_dim;
        for (i, &h) in hidden.iter().enumerate() {
            net = net
                .push(Linear::new(prev, h, rng))
                .push(Activation::LeakyRelu(0.2));
            if dropout > 0.0 {
                net = net.push(Dropout::new(dropout, rng.next_u64() ^ i as u64));
            }
            prev = h;
        }
        net = net.push(Linear::new(prev, 1, rng));
        MlpDiscriminator { net, cond_dim }
    }
}

impl Discriminator for MlpDiscriminator {
    fn logits(&self, x: &Var, cond: Option<&Tensor>) -> Var {
        let input = attach_condition(x, cond, self.cond_dim);
        self.net.forward(&input)
    }

    fn params(&self) -> Vec<Param> {
        self.net.params()
    }

    fn set_training(&self, training: bool) {
        self.net.set_training(training);
    }

    fn rng_states(&self) -> Vec<RngState> {
        let mut out = Vec::new();
        self.net.collect_rng_states(&mut out);
        out
    }

    fn set_rng_states(&self, states: &[RngState]) {
        let mut iter = states.iter();
        self.net.restore_rng_states(&mut iter);
        assert!(iter.next().is_none(), "rng-state arity mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_have_logit_shape() {
        let mut rng = Rng::seed_from_u64(0);
        let d = MlpDiscriminator::new(10, 0, &[32, 16], &mut rng);
        let x = Var::constant(Tensor::randn(&[7, 10], &mut rng));
        let s = d.logits(&x, None);
        assert_eq!(s.shape(), &[7, 1]);
    }

    #[test]
    fn can_separate_two_blobs() {
        // D must learn to score N(+2) vs N(-2) batches apart.
        let mut rng = Rng::seed_from_u64(1);
        let d = MlpDiscriminator::new(2, 0, &[16], &mut rng);
        let params = d.params();
        let mut opt = daisy_nn::Adam::new(params.clone(), 0.01);
        use daisy_nn::Optimizer;
        for _ in 0..200 {
            opt.zero_grad();
            let real = Tensor::randn(&[16, 2], &mut rng).add_scalar(2.0);
            let fake = Tensor::randn(&[16, 2], &mut rng).add_scalar(-2.0);
            let loss_real = d
                .logits(&Var::constant(real), None)
                .bce_with_logits(&Tensor::ones(&[16, 1]));
            let loss_fake = d
                .logits(&Var::constant(fake), None)
                .bce_with_logits(&Tensor::zeros(&[16, 1]));
            loss_real.backward();
            loss_fake.backward();
            opt.step();
        }
        let real_score = d
            .logits(&Var::constant(Tensor::full(&[1, 2], 2.0)), None)
            .value()
            .data()[0];
        let fake_score = d
            .logits(&Var::constant(Tensor::full(&[1, 2], -2.0)), None)
            .value()
            .data()[0];
        assert!(real_score > 1.0 && fake_score < -1.0, "{real_score} vs {fake_score}");
    }

    #[test]
    fn conditional_discriminator_uses_condition() {
        let mut rng = Rng::seed_from_u64(2);
        let d = MlpDiscriminator::new(3, 2, &[8], &mut rng);
        let x = Var::constant(Tensor::randn(&[4, 3], &mut rng));
        let c0 = daisy_data::one_hot_labels(&[0, 0, 0, 0], 2);
        let c1 = daisy_data::one_hot_labels(&[1, 1, 1, 1], 2);
        let s0 = d.logits(&x, Some(&c0));
        let s1 = d.logits(&x, Some(&c1));
        assert_ne!(s0.value(), s1.value());
    }

    #[test]
    fn dropout_variant_trains_and_evals() {
        let mut rng = Rng::seed_from_u64(4);
        let d = MlpDiscriminator::with_dropout(4, 0, &[16], 0.3, &mut rng);
        let x = Var::constant(Tensor::randn(&[8, 4], &mut rng));
        // Training mode is stochastic; eval mode is deterministic.
        d.set_training(true);
        let a = d.logits(&x, None).value().clone();
        let b = d.logits(&x, None).value().clone();
        assert_ne!(a, b, "dropout masks should differ across calls");
        d.set_training(false);
        let c = d.logits(&x, None).value().clone();
        let e = d.logits(&x, None).value().clone();
        assert_eq!(c, e);
    }

    #[test]
    fn simplified_has_fewer_params() {
        let mut rng = Rng::seed_from_u64(3);
        let normal = MlpDiscriminator::new(20, 0, &[128, 64], &mut rng);
        let simplified = MlpDiscriminator::new(20, 0, &[32], &mut rng);
        assert!(
            daisy_nn::num_params(&simplified.params())
                < daisy_nn::num_params(&normal.params()) / 4
        );
    }
}
