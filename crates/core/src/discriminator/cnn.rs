//! CNN discriminator (Appendix A.1.1, Figure 10b): a convolution
//! process `h^{l+1} = LeakyReLU(BN(Conv(h^l)))` over matrix-formed
//! samples, ending in a single logit.

use crate::discriminator::Discriminator;
use daisy_nn::{BatchNorm2d, Conv2d, Linear, Module};
use daisy_tensor::{Param, Rng, Tensor, Var};

/// Convolutional discriminator over flattened `side × side` samples.
pub struct CnnDiscriminator {
    conv1: Conv2d,
    conv2: Conv2d,
    bn: BatchNorm2d,
    head: Linear,
    side: usize,
    channels: usize,
}

impl CnnDiscriminator {
    /// Builds a discriminator for `side × side` matrices.
    pub fn new(side: usize, channels: usize, rng: &mut Rng) -> Self {
        CnnDiscriminator {
            conv1: Conv2d::new(1, channels, 3, 1, 1, rng),
            conv2: Conv2d::new(channels, channels * 2, 3, 1, 1, rng),
            bn: BatchNorm2d::new(channels * 2),
            head: Linear::new(channels * 2 * side * side, 1, rng),
            side,
            channels,
        }
    }
}

impl Discriminator for CnnDiscriminator {
    fn logits(&self, x: &Var, cond: Option<&Tensor>) -> Var {
        assert!(
            cond.is_none(),
            "the CNN family does not support conditional GAN"
        );
        let batch = x.shape()[0];
        assert_eq!(
            x.shape()[1],
            self.side * self.side,
            "expected flattened {0}x{0} samples",
            self.side
        );
        let img = x.reshape(&[batch, 1, self.side, self.side]);
        let h1 = self.conv1.forward(&img).leaky_relu(0.2);
        let h2 = self.bn.forward(&self.conv2.forward(&h1)).leaky_relu(0.2);
        let flat = h2.reshape(&[batch, self.channels * 2 * self.side * self.side]);
        self.head.forward(&flat)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p.extend(self.bn.params());
        p.extend(self.head.params());
        p
    }

    fn set_training(&self, training: bool) {
        self.bn.set_training(training);
    }

    fn state(&self) -> Vec<Tensor> {
        vec![self.bn.inner().running_mean(), self.bn.inner().running_var()]
    }

    fn set_state(&self, state: &[Tensor]) {
        assert_eq!(state.len(), 2, "CNN discriminator state is [mean, var]");
        self.bn
            .inner()
            .set_running_stats(state[0].clone(), state[1].clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logit_shape() {
        let mut rng = Rng::seed_from_u64(0);
        let d = CnnDiscriminator::new(3, 4, &mut rng);
        let x = Var::constant(Tensor::randn(&[6, 9], &mut rng));
        assert_eq!(d.logits(&x, None).shape(), &[6, 1]);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = Rng::seed_from_u64(1);
        let d = CnnDiscriminator::new(4, 4, &mut rng);
        let x = Var::constant(Tensor::randn(&[4, 16], &mut rng));
        d.logits(&x, None).sqr().mean().backward();
        for p in d.params() {
            assert!(p.grad().norm() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "expected flattened")]
    fn wrong_width_rejected() {
        let mut rng = Rng::seed_from_u64(2);
        let d = CnnDiscriminator::new(3, 4, &mut rng);
        let x = Var::constant(Tensor::randn(&[2, 8], &mut rng));
        let _ = d.logits(&x, None);
    }
}
