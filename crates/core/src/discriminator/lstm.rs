//! Sequence-to-one LSTM discriminator (paper §5.1, Appendix B.4).
//!
//! The encoded sample is consumed attribute block by attribute block;
//! the final hidden state feeds a linear logit head. Blocks of
//! different widths are zero-padded to the widest block. The paper
//! finds this discriminator markedly worse than the MLP one (Table 11),
//! and this implementation exists to reproduce that comparison.

use crate::discriminator::Discriminator;
use daisy_data::OutputBlock;
use daisy_nn::{Linear, LstmCell, Module};
use daisy_tensor::{Param, Rng, Tensor, Var};

/// LSTM critic over attribute-block sequences.
pub struct LstmDiscriminator {
    cell: LstmCell,
    head: Linear,
    blocks: Vec<OutputBlock>,
    step_width: usize,
    cond_dim: usize,
}

impl LstmDiscriminator {
    /// Builds a discriminator over the given encoded layout.
    pub fn new(blocks: Vec<OutputBlock>, cond_dim: usize, hidden: usize, rng: &mut Rng) -> Self {
        assert!(!blocks.is_empty(), "output layout is empty");
        let step_width = blocks.iter().map(OutputBlock::width).max().unwrap();
        LstmDiscriminator {
            cell: LstmCell::new(step_width + cond_dim, hidden, rng),
            head: Linear::new(hidden, 1, rng),
            blocks,
            step_width,
            cond_dim,
        }
    }
}

impl Discriminator for LstmDiscriminator {
    fn logits(&self, x: &Var, cond: Option<&Tensor>) -> Var {
        let batch = x.shape()[0];
        let cond_var = match cond {
            Some(c) => {
                assert_eq!(c.cols(), self.cond_dim, "condition width mismatch");
                Some(Var::constant(c.clone()))
            }
            None => {
                assert_eq!(self.cond_dim, 0, "discriminator expects a condition");
                None
            }
        };
        let mut state = self.cell.zero_state(batch);
        for b in &self.blocks {
            let mut step = x.slice_cols(b.lo, b.hi);
            if b.width() < self.step_width {
                let pad = Var::constant(Tensor::zeros(&[batch, self.step_width - b.width()]));
                step = Var::concat_cols(&[step, pad]);
            }
            let input = match &cond_var {
                Some(c) => Var::concat_cols(&[step, c.clone()]),
                None => step,
            };
            state = self.cell.step(&input, &state);
        }
        self.head.forward(&state.h)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.cell.params();
        p.extend(self.head.params());
        p
    }

    fn set_training(&self, _training: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::OutputBlockKind;

    fn layout() -> Vec<OutputBlock> {
        vec![
            OutputBlock {
                kind: OutputBlockKind::Tanh,
                lo: 0,
                hi: 1,
            },
            OutputBlock {
                kind: OutputBlockKind::Softmax,
                lo: 1,
                hi: 4,
            },
        ]
    }

    #[test]
    fn logit_shape() {
        let mut rng = Rng::seed_from_u64(0);
        let d = LstmDiscriminator::new(layout(), 0, 16, &mut rng);
        let x = Var::constant(Tensor::randn(&[5, 4], &mut rng));
        assert_eq!(d.logits(&x, None).shape(), &[5, 1]);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = Rng::seed_from_u64(1);
        let d = LstmDiscriminator::new(layout(), 0, 8, &mut rng);
        let x = Var::constant(Tensor::randn(&[4, 4], &mut rng));
        d.logits(&x, None).sqr().mean().backward();
        for p in d.params() {
            assert!(p.grad().norm() > 0.0);
        }
    }

    #[test]
    fn conditional_variant() {
        let mut rng = Rng::seed_from_u64(2);
        let d = LstmDiscriminator::new(layout(), 2, 8, &mut rng);
        let x = Var::constant(Tensor::randn(&[3, 4], &mut rng));
        let c = daisy_data::one_hot_labels(&[0, 1, 1], 2);
        assert_eq!(d.logits(&x, Some(&c)).shape(), &[3, 1]);
    }
}
