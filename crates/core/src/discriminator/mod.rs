//! Discriminator networks `D(t [, c]) → score` (§5.1).
//!
//! Discriminators emit *raw logits* `[B, 1]`. Vanilla training applies
//! the sigmoid inside the numerically stable BCE loss; Wasserstein
//! training uses the logit directly as the critic score (WGAN "removes
//! the sigmoid of D", §5.2).

mod cnn;
mod lstm;
mod mlp;

pub use cnn::CnnDiscriminator;
pub use lstm::LstmDiscriminator;
pub use mlp::MlpDiscriminator;

use daisy_tensor::{Param, RngState, Tensor, Var};

/// A discriminator/critic over (flattened) encoded samples.
pub trait Discriminator {
    /// Scores a batch `x [B, d]`; `cond` is the one-hot condition for
    /// conditional GAN. Returns logits `[B, 1]`.
    fn logits(&self, x: &Var, cond: Option<&Tensor>) -> Var;

    /// Trainable parameters.
    fn params(&self) -> Vec<Param>;

    /// Train/eval mode switch.
    fn set_training(&self, training: bool);

    /// Non-parameter state (batch-norm running statistics), in a stable
    /// order — mirrors [`crate::generator::Generator::state`] so
    /// checkpoints capture the discriminator completely.
    fn state(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Restores state captured by [`Discriminator::state`].
    fn set_state(&self, state: &[Tensor]) {
        assert!(state.is_empty(), "discriminator carries no state");
    }

    /// Internal RNG streams (dropout mask generators), in a stable
    /// order. Empty for discriminators without internal randomness.
    fn rng_states(&self) -> Vec<RngState> {
        Vec::new()
    }

    /// Restores streams captured by [`Discriminator::rng_states`].
    fn set_rng_states(&self, states: &[RngState]) {
        assert!(states.is_empty(), "discriminator carries no rng streams");
    }
}

pub(crate) fn attach_condition(x: &Var, cond: Option<&Tensor>, cond_dim: usize) -> Var {
    match cond {
        Some(c) => {
            assert_eq!(c.cols(), cond_dim, "condition width mismatch");
            Var::concat_cols(&[x.clone(), Var::constant(c.clone())])
        }
        None => {
            assert_eq!(cond_dim, 0, "discriminator expects a condition");
            x.clone()
        }
    }
}
