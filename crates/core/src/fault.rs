//! Deterministic fault injection for the training resilience layer.
//!
//! A [`FaultPlan`] schedules synthetic failures at fixed generator
//! iterations so every recovery path of [`crate::guard`] can be driven
//! on demand and reproduced bit-for-bit: the same seed and the same
//! plan always produce the same recovery trace. The faults model the
//! real failure modes the paper's experiments hit — exploding/NaN
//! gradients (DP noise, §5.4), corrupt input batches, and mode collapse
//! (§5.2) — by perturbing the live training state through the same code
//! paths a genuine failure would take (the optimizer applies the NaN
//! gradient; the discriminator sees the poisoned batch).
//!
//! Each fault fires **once per training attempt**, even when a rollback
//! rewinds the step counter past its trigger — otherwise replaying the
//! healthy prefix would re-inject the fault forever and no recovery
//! could ever succeed. A refit (e.g. the simplified-D escalation in
//! [`crate::Synthesizer::try_fit`]) is a new attempt: the plan re-arms.
//!
//! Data-plane faults (torn chunk writes, bit rot on read, full disks,
//! mid-ingest kills) live in `daisy-data` and are re-exported here so
//! one import path covers the whole fault surface.

pub use daisy_data::{DataFault, DataFaultPlan};

/// One scheduled fault. `step` counts generator iterations (the
/// trainer's `t`), starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Accumulates an all-NaN gradient into a discriminator parameter
    /// and applies one optimizer step, exactly as an overflowed
    /// backward pass would: the weights go NaN and the next loss
    /// evaluation is non-finite.
    NanGrad {
        /// Iteration at which the gradient is poisoned.
        step: usize,
    },
    /// Replaces the step's real minibatches with all-NaN samples
    /// (a corrupt input shard): the discriminator loss comes back NaN.
    PoisonBatch {
        /// Iteration whose minibatches are poisoned.
        step: usize,
    },
    /// Zeroes every generator weight, forcing constant output — the
    /// collapse probe sees a duplicate fraction of 1.
    ForceCollapse {
        /// Iteration at which the generator is collapsed.
        step: usize,
    },
}

impl Fault {
    /// The iteration this fault triggers at.
    pub fn step(&self) -> usize {
        match *self {
            Fault::NanGrad { step }
            | Fault::PoisonBatch { step }
            | Fault::ForceCollapse { step } => step,
        }
    }

    /// Machine-readable tag used in `fault_fired` telemetry events.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::NanGrad { .. } => "nan_grad",
            Fault::PoisonBatch { .. } => "poison_batch",
            Fault::ForceCollapse { .. } => "force_collapse",
        }
    }
}

/// A deterministic schedule of faults for one training run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no injected faults (production setting).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan firing the given faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Convenience: a single NaN-gradient fault at `step`.
    pub fn nan_grad_at(step: usize) -> Self {
        Self::new(vec![Fault::NanGrad { step }])
    }

    /// Convenience: a single poisoned minibatch at `step`.
    pub fn poison_batch_at(step: usize) -> Self {
        Self::new(vec![Fault::PoisonBatch { step }])
    }

    /// Convenience: a single forced generator collapse at `step`.
    pub fn force_collapse_at(step: usize) -> Self {
        Self::new(vec![Fault::ForceCollapse { step }])
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// Per-attempt arming state: tracks which scheduled faults have fired
/// so each fires at most once even across rollback replays.
#[derive(Debug, Clone)]
pub(crate) struct ArmedFaults {
    plan: FaultPlan,
    fired: Vec<bool>,
}

impl ArmedFaults {
    /// Arms every fault of `plan` for a fresh training attempt.
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        ArmedFaults {
            fired: vec![false; plan.faults().len()],
            plan: plan.clone(),
        }
    }

    /// Returns the faults due at iteration `step` that have not fired
    /// yet, marking them fired.
    pub(crate) fn take(&mut self, step: usize) -> Vec<Fault> {
        let mut due = Vec::new();
        for (i, f) in self.plan.faults().iter().enumerate() {
            if !self.fired[i] && f.step() == step {
                self.fired[i] = true;
                due.push(*f);
            }
        }
        due
    }

    /// The per-fault fired flags, for checkpoint capture: a resumed run
    /// must not re-fire a fault the interrupted run already injected at
    /// or before the checkpointed step.
    pub(crate) fn fired(&self) -> &[bool] {
        &self.fired
    }

    /// Restores fired flags captured by [`ArmedFaults::fired`]. Flags
    /// from a checkpoint of a different plan are ignored (arity
    /// mismatch), keeping a stale checkpoint from disarming anything.
    pub(crate) fn restore_fired(&mut self, fired: &[bool]) {
        if fired.len() == self.fired.len() {
            self.fired.copy_from_slice(fired);
        }
    }
}

// ---------------------------------------------------------------------
// I/O faults (checkpoint write path)
// ---------------------------------------------------------------------

/// One scheduled I/O fault against the checkpoint store. `save` counts
/// checkpoint save operations within one training attempt, starting at
/// 0 — the I/O analogue of [`Fault`]'s step index. Each models a real
/// storage failure:
///
/// - [`IoFault::TornWrite`]: the process dies (or the disk gives out)
///   mid-write — only a prefix of the temp file lands on disk and the
///   atomic rename never happens.
/// - [`IoFault::BitFlip`]: the save completes, then one byte of the
///   file rots silently. Detected at the *next load* by the checksum,
///   quarantined, and the predecessor checkpoint is used instead.
/// - [`IoFault::RenameFail`]: the temp file is fully written but the
///   rename into place fails (e.g. the directory vanished).
/// - [`IoFault::DiskFull`]: the write itself is refused outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Truncates the temp-file write at `offset` (modulo the payload
    /// length) and fails the save.
    TornWrite {
        /// Save operation to tear.
        save: usize,
        /// Byte offset at which the write is cut short.
        offset: u64,
    },
    /// Completes the save, then flips one bit of the written file at
    /// `offset` (modulo the file length). The save reports success —
    /// the corruption is only discoverable by checksum at load time.
    BitFlip {
        /// Save operation whose output is corrupted.
        save: usize,
        /// Byte offset of the flipped bit.
        offset: u64,
    },
    /// Fails the atomic rename after a complete temp-file write.
    RenameFail {
        /// Save operation whose rename fails.
        save: usize,
    },
    /// Fails the save before any byte is written.
    DiskFull {
        /// Save operation that is refused.
        save: usize,
    },
}

impl IoFault {
    /// The save-operation index this fault triggers at.
    pub fn save(&self) -> usize {
        match *self {
            IoFault::TornWrite { save, .. }
            | IoFault::BitFlip { save, .. }
            | IoFault::RenameFail { save }
            | IoFault::DiskFull { save } => save,
        }
    }

    /// Machine-readable tag used in `fault_fired` telemetry events.
    pub fn kind(&self) -> &'static str {
        match self {
            IoFault::TornWrite { .. } => "io_torn_write",
            IoFault::BitFlip { .. } => "io_bit_flip",
            IoFault::RenameFail { .. } => "io_rename_fail",
            IoFault::DiskFull { .. } => "io_disk_full",
        }
    }
}

/// A deterministic schedule of I/O faults for one training attempt's
/// checkpoint store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoFaultPlan {
    faults: Vec<IoFault>,
}

impl IoFaultPlan {
    /// The empty plan: no injected I/O faults (production setting).
    pub fn none() -> Self {
        IoFaultPlan::default()
    }

    /// A plan firing the given faults.
    pub fn new(faults: Vec<IoFault>) -> Self {
        IoFaultPlan { faults }
    }

    /// Convenience: tear the `save`-th checkpoint write at `offset`.
    pub fn torn_write_at(save: usize, offset: u64) -> Self {
        Self::new(vec![IoFault::TornWrite { save, offset }])
    }

    /// Convenience: flip a bit of the `save`-th checkpoint at `offset`.
    pub fn bit_flip_at(save: usize, offset: u64) -> Self {
        Self::new(vec![IoFault::BitFlip { save, offset }])
    }

    /// Convenience: fail the `save`-th checkpoint's rename.
    pub fn rename_fail_at(save: usize) -> Self {
        Self::new(vec![IoFault::RenameFail { save }])
    }

    /// Convenience: refuse the `save`-th checkpoint write.
    pub fn disk_full_at(save: usize) -> Self {
        Self::new(vec![IoFault::DiskFull { save }])
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[IoFault] {
        &self.faults
    }
}

/// Per-attempt arming state for I/O faults: each fires at most once.
#[derive(Debug, Clone)]
pub(crate) struct ArmedIoFaults {
    plan: IoFaultPlan,
    fired: Vec<bool>,
}

impl ArmedIoFaults {
    /// Arms every fault of `plan` for a fresh checkpoint store.
    pub(crate) fn new(plan: &IoFaultPlan) -> Self {
        ArmedIoFaults {
            fired: vec![false; plan.faults().len()],
            plan: plan.clone(),
        }
    }

    /// Returns the faults due at save operation `save` that have not
    /// fired yet, marking them fired.
    pub(crate) fn take(&mut self, save: usize) -> Vec<IoFault> {
        let mut due = Vec::new();
        for (i, f) in self.plan.faults().iter().enumerate() {
            if !self.fired[i] && f.save() == save {
                self.fired[i] = true;
                due.push(*f);
            }
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_even_after_rewind() {
        let plan = FaultPlan::new(vec![
            Fault::NanGrad { step: 3 },
            Fault::PoisonBatch { step: 3 },
            Fault::ForceCollapse { step: 7 },
        ]);
        let mut armed = ArmedFaults::new(&plan);
        assert!(armed.take(0).is_empty());
        assert_eq!(armed.take(3).len(), 2);
        // A rollback replays step 3: nothing fires again.
        assert!(armed.take(3).is_empty());
        assert_eq!(armed.take(7), vec![Fault::ForceCollapse { step: 7 }]);
        // A fresh attempt re-arms everything.
        let mut rearmed = ArmedFaults::new(&plan);
        assert_eq!(rearmed.take(3).len(), 2);
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut armed = ArmedFaults::new(&FaultPlan::none());
        assert!(FaultPlan::none().is_empty());
        for t in 0..10 {
            assert!(armed.take(t).is_empty());
        }
    }
}
