//! LSTM generator (paper §5.1, Appendix A.1.3, Figure 12): record
//! synthesis as sequence generation — attribute `j` is produced at
//! timestep `j`, conditioned on the noise and the understanding of
//! previous attributes carried in the hidden state. GMM-normalized
//! attributes use two timesteps (value, then component indicator).

use crate::generator::Generator;
use daisy_data::{OutputBlock, OutputBlockKind};
use daisy_nn::{Linear, LstmCell, Module};
use daisy_tensor::{Param, Rng, Tensor, Var};

#[derive(Debug, Clone, Copy, PartialEq)]
enum StepKind {
    Tanh,
    Sigmoid,
    Softmax,
    GmmValue,
    GmmComponent,
}

struct Step {
    kind: StepKind,
    head: Linear,
}

/// Sequence-generation network over vector-formed samples.
pub struct LstmGenerator {
    cell: LstmCell,
    f_proj: Linear,
    steps: Vec<Step>,
    /// Number of timesteps each attribute occupies (1, or 2 for GMM).
    steps_per_block: Vec<usize>,
    noise_dim: usize,
    cond_dim: usize,
    f_dim: usize,
    width: usize,
}

impl LstmGenerator {
    /// Builds the generator.
    ///
    /// * `hidden` — LSTM hidden width.
    /// * `f_dim` — width of the per-step output embedding `f`.
    pub fn new(
        noise_dim: usize,
        cond_dim: usize,
        hidden: usize,
        f_dim: usize,
        blocks: Vec<OutputBlock>,
        rng: &mut Rng,
    ) -> Self {
        let width = blocks.last().map(|b| b.hi).unwrap_or(0);
        assert!(width > 0, "output layout is empty");
        let cell = LstmCell::new(noise_dim + cond_dim + f_dim, hidden, rng);
        let f_proj = Linear::new(hidden, f_dim, rng);
        let mut steps = Vec::new();
        let mut steps_per_block = Vec::new();
        for b in &blocks {
            match b.kind {
                OutputBlockKind::Tanh => {
                    steps.push(Step {
                        kind: StepKind::Tanh,
                        head: Linear::new(f_dim, 1, rng),
                    });
                    steps_per_block.push(1);
                }
                OutputBlockKind::Sigmoid => {
                    steps.push(Step {
                        kind: StepKind::Sigmoid,
                        head: Linear::new(f_dim, 1, rng),
                    });
                    steps_per_block.push(1);
                }
                OutputBlockKind::Softmax => {
                    steps.push(Step {
                        kind: StepKind::Softmax,
                        head: Linear::new(f_dim, b.width(), rng),
                    });
                    steps_per_block.push(1);
                }
                OutputBlockKind::GmmValueAndComponent => {
                    steps.push(Step {
                        kind: StepKind::GmmValue,
                        head: Linear::new(f_dim, 1, rng),
                    });
                    steps.push(Step {
                        kind: StepKind::GmmComponent,
                        head: Linear::new(f_dim, b.width() - 1, rng),
                    });
                    steps_per_block.push(2);
                }
            }
        }
        LstmGenerator {
            cell,
            f_proj,
            steps,
            steps_per_block,
            noise_dim,
            cond_dim,
            f_dim,
            width,
        }
    }

    /// Number of unrolled timesteps per generated record.
    pub fn n_timesteps(&self) -> usize {
        self.steps.len()
    }

    /// Timesteps consumed by each attribute block, in block order
    /// (1 for plain blocks, 2 for GMM value+component blocks).
    pub fn steps_per_block(&self) -> &[usize] {
        &self.steps_per_block
    }
}

impl Generator for LstmGenerator {
    fn forward(&self, z: &Tensor, cond: Option<&Tensor>, rng: &mut Rng) -> Var {
        let batch = z.rows();
        let z_input = match cond {
            Some(c) => {
                assert_eq!(c.cols(), self.cond_dim, "condition width mismatch");
                Var::constant(Tensor::concat_cols(&[z, c]))
            }
            None => {
                assert_eq!(self.cond_dim, 0, "generator expects a condition");
                Var::constant(z.clone())
            }
        };
        // h0 and f0 are initialized with random values (paper A.1.3).
        let mut state = self.cell.random_state(batch, rng);
        let mut f = Var::constant(Tensor::randn(&[batch, self.f_dim], rng));

        let mut step_outputs: Vec<Var> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let input = Var::concat_cols(&[z_input.clone(), f.clone()]);
            state = self.cell.step(&input, &state);
            f = self.f_proj.forward(&state.h).tanh();
            let raw = step.head.forward(&f);
            let out = match step.kind {
                StepKind::Tanh | StepKind::GmmValue => raw.tanh(),
                StepKind::Sigmoid => raw.sigmoid(),
                StepKind::Softmax | StepKind::GmmComponent => raw.softmax_rows(),
            };
            step_outputs.push(out);
        }
        // Step outputs are emitted in block order (GMM value directly
        // followed by its component indicator), so plain concatenation
        // reproduces the encoded layout.
        Var::concat_cols(&step_outputs)
    }

    fn noise_dim(&self) -> usize {
        self.noise_dim
    }

    fn sample_width(&self) -> usize {
        self.width
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.cell.params();
        p.extend(self.f_proj.params());
        for s in &self.steps {
            p.extend(s.head.params());
        }
        p
    }

    fn set_training(&self, _training: bool) {}

    fn skip_forward_rng(&self, batch: usize, rng: &mut Rng) {
        // Mirror the draws of `forward` exactly: h0/c0 via the cell's
        // own constructor, then the f0 feature seed.
        let _ = self.cell.random_state(batch, rng);
        let _ = Tensor::randn(&[batch, self.f_dim], rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::test_support::tiny_table;
    use daisy_data::{RecordCodec, TransformConfig};

    fn build(config: TransformConfig, seed: u64) -> (LstmGenerator, RecordCodec) {
        let table = tiny_table(200, seed);
        let codec = RecordCodec::fit(&table, &config);
        let mut rng = Rng::seed_from_u64(seed);
        let g = LstmGenerator::new(8, 0, 32, 16, codec.output_blocks(), &mut rng);
        (g, codec)
    }

    #[test]
    fn gmm_attributes_take_two_timesteps() {
        let (g, codec) = build(TransformConfig::gn_ht(), 0);
        // 1 numeric (GMM: 2 steps) + 2 categoricals (1 step each).
        assert_eq!(g.n_timesteps(), 4);
        assert_eq!(codec.output_blocks().len(), 3);
        let (g, _) = build(TransformConfig::sn_ht(), 1);
        assert_eq!(g.n_timesteps(), 3);
    }

    #[test]
    fn generates_decodable_samples() {
        for config in TransformConfig::all() {
            let (g, codec) = build(config, 2);
            let mut rng = Rng::seed_from_u64(3);
            let z = g.sample_noise(8, &mut rng);
            let out = g.forward(&z, None, &mut rng);
            assert_eq!(out.shape(), &[8, codec.width()], "{config:?}");
            let decoded = codec.decode_table(out.value());
            assert_eq!(decoded.n_rows(), 8);
        }
    }

    #[test]
    fn probability_blocks_are_normalized() {
        let (g, codec) = build(TransformConfig::gn_ht(), 4);
        let mut rng = Rng::seed_from_u64(5);
        let z = g.sample_noise(6, &mut rng);
        let out = g.forward(&z, None, &mut rng);
        for span in crate::output_head::softmax_spans(&codec.output_blocks()) {
            let block = out.value().slice_cols(span.0, span.1);
            for r in 0..block.rows() {
                let s: f32 = block.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let (g, _) = build(TransformConfig::gn_ht(), 6);
        let mut rng = Rng::seed_from_u64(7);
        let z = g.sample_noise(8, &mut rng);
        g.forward(&z, None, &mut rng).sqr().mean().backward();
        for p in g.params() {
            assert!(p.grad().norm() > 0.0, "param without gradient: {p:?}");
        }
    }

    #[test]
    fn conditional_lstm_accepts_condition() {
        let table = tiny_table(100, 8);
        let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
        let mut rng = Rng::seed_from_u64(8);
        let g = LstmGenerator::new(8, 2, 24, 12, codec.output_blocks(), &mut rng);
        let z = g.sample_noise(4, &mut rng);
        let c = daisy_data::one_hot_labels(&[0, 1, 0, 1], 2);
        let out = g.forward(&z, Some(&c), &mut rng);
        assert_eq!(out.shape(), &[4, codec.width()]);
    }
}
