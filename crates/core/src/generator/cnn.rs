//! CNN generator (paper §5.1, Appendix A.1.1, Figure 10a): a DCGAN-style
//! de-convolution process from the prior noise to a square sample
//! matrix, `h^{l+1} = ReLU(BN(DeConv(h^l)))`, `t = tanh(DeConv(h^L))`.
//!
//! Matrix-formed samples pin the transformation to ordinal encoding +
//! simple normalization, so the whole output is a single tanh map — no
//! attribute-aware head exists in this family (one reason the paper
//! finds CNN inferior on relational data).

use crate::generator::Generator;
use daisy_nn::{BatchNorm2d, Conv2d, ConvTranspose2d, Module};
use daisy_tensor::{Param, Rng, Tensor, Var};

/// Convolutional generator over matrix-formed samples.
pub struct CnnGenerator {
    /// 1×1 → side×side projection.
    project: ConvTranspose2d,
    bn1: BatchNorm2d,
    refine: Conv2d,
    bn2: BatchNorm2d,
    out: Conv2d,
    noise_dim: usize,
    channels: usize,
    side: usize,
}

impl CnnGenerator {
    /// Builds a generator emitting `side × side` single-channel
    /// matrices (flattened to `[B, side²]`).
    pub fn new(noise_dim: usize, channels: usize, side: usize, rng: &mut Rng) -> Self {
        assert!(side >= 2, "matrix side must be at least 2");
        CnnGenerator {
            project: ConvTranspose2d::new(noise_dim, channels, side, 1, 0, rng),
            bn1: BatchNorm2d::new(channels),
            refine: Conv2d::new(channels, channels, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(channels),
            out: Conv2d::new(channels, 1, 3, 1, 1, rng),
            noise_dim,
            channels,
            side,
        }
    }

    /// Side length of the generated square.
    pub fn side(&self) -> usize {
        self.side
    }
}

impl Generator for CnnGenerator {
    fn forward(&self, z: &Tensor, cond: Option<&Tensor>, _rng: &mut Rng) -> Var {
        assert!(
            cond.is_none(),
            "the CNN family does not support conditional GAN (matrix-form \
             samples have no condition channel; the paper evaluates \
             conditional GAN on vector-form networks only)"
        );
        let batch = z.rows();
        // [B, z] -> [B, z, 1, 1] -> deconv stack -> [B, 1, s, s].
        let h0 = Var::constant(z.reshape(&[batch, self.noise_dim, 1, 1]));
        let h1 = self.bn1.forward(&self.project.forward(&h0)).relu();
        let h2 = self.bn2.forward(&self.refine.forward(&h1)).relu();
        let img = self.out.forward(&h2).tanh();
        img.reshape(&[batch, self.side * self.side])
    }

    fn noise_dim(&self) -> usize {
        self.noise_dim
    }

    fn sample_width(&self) -> usize {
        self.side * self.side
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.project.params();
        p.extend(self.bn1.params());
        p.extend(self.refine.params());
        p.extend(self.bn2.params());
        p.extend(self.out.params());
        p
    }

    fn set_training(&self, training: bool) {
        self.bn1.set_training(training);
        self.bn2.set_training(training);
    }

    fn sample_noise(&self, batch: usize, rng: &mut Rng) -> Tensor {
        Tensor::randn(&[batch, self.noise_dim], rng)
    }

    fn state(&self) -> Vec<Tensor> {
        vec![
            self.bn1.inner().running_mean(),
            self.bn1.inner().running_var(),
            self.bn2.inner().running_mean(),
            self.bn2.inner().running_var(),
        ]
    }

    fn set_state(&self, state: &[Tensor]) {
        assert_eq!(state.len(), 4, "CNN generator expects 4 state tensors");
        self.bn1
            .inner()
            .set_running_stats(state[0].clone(), state[1].clone());
        self.bn2
            .inner()
            .set_running_stats(state[2].clone(), state[3].clone());
    }
}

// Unused field lint guard: channels is retained for introspection.
impl CnnGenerator {
    /// Base channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::test_support::tiny_table;
    use daisy_data::MatrixCodec;

    #[test]
    fn output_is_flattened_square_in_tanh_range() {
        let mut rng = Rng::seed_from_u64(0);
        let g = CnnGenerator::new(16, 8, 3, &mut rng);
        let z = g.sample_noise(5, &mut rng);
        let out = g.forward(&z, None, &mut rng);
        assert_eq!(out.shape(), &[5, 9]);
        assert!(out.value().min() >= -1.0 && out.value().max() <= 1.0);
    }

    #[test]
    fn decodes_through_matrix_codec() {
        let table = tiny_table(100, 1);
        let codec = MatrixCodec::fit(&table);
        let mut rng = Rng::seed_from_u64(2);
        let g = CnnGenerator::new(16, 8, codec.side(), &mut rng);
        let z = g.sample_noise(4, &mut rng);
        let out = g.forward(&z, None, &mut rng);
        let mat = out.value().reshape(&[4, 1, codec.side(), codec.side()]);
        let decoded = codec.decode_table(&mat);
        assert_eq!(decoded.n_rows(), 4);
        assert_eq!(decoded.n_attrs(), 3);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = Rng::seed_from_u64(3);
        let g = CnnGenerator::new(8, 4, 4, &mut rng);
        let z = g.sample_noise(6, &mut rng);
        g.forward(&z, None, &mut rng).sqr().mean().backward();
        for p in g.params() {
            assert!(p.grad().norm() > 0.0, "param without gradient: {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "does not support conditional")]
    fn conditional_rejected() {
        let mut rng = Rng::seed_from_u64(4);
        let g = CnnGenerator::new(8, 4, 3, &mut rng);
        let z = g.sample_noise(2, &mut rng);
        let c = daisy_data::one_hot_labels(&[0, 1], 2);
        let _ = g.forward(&z, Some(&c), &mut rng);
    }
}
