//! MLP generator (paper §5.1, Appendix A.1.2, Figure 11a): a stack of
//! `FC → BatchNorm → ReLU` layers followed by the attribute-aware
//! output head.
//!
//! In conditional mode the one-hot condition is concatenated to the
//! input of *every* layer, not just the first. This matters because of
//! an interaction with batch normalization under label-aware sampling
//! (CTrain): minibatches then carry a constant condition, the condition
//! contributes only a constant shift to each hidden pre-activation, and
//! BatchNorm subtracts exactly that batch-constant shift — silently
//! erasing the label signal. Re-injecting the condition after each
//! normalized block keeps it visible at every depth.

use crate::generator::Generator;
use crate::output_head::apply_output_head;
use daisy_data::OutputBlock;
use daisy_nn::{BatchNorm1d, Linear, Module};
use daisy_tensor::{Param, Rng, Tensor, Var};

/// Fully-connected generator over vector-formed samples.
pub struct MlpGenerator {
    layers: Vec<(Linear, Option<BatchNorm1d>)>,
    head: Linear,
    blocks: Vec<OutputBlock>,
    noise_dim: usize,
    cond_dim: usize,
    width: usize,
}

impl MlpGenerator {
    /// Builds the generator.
    ///
    /// * `noise_dim` — prior dimension `|z|`.
    /// * `cond_dim` — condition width (0 for unconditional GAN).
    /// * `hidden` — body layer widths.
    /// * `blocks` — the output layout from the fitted record codec.
    pub fn new(
        noise_dim: usize,
        cond_dim: usize,
        hidden: &[usize],
        blocks: Vec<OutputBlock>,
        rng: &mut Rng,
    ) -> Self {
        Self::with_options(noise_dim, cond_dim, hidden, blocks, true, rng)
    }

    /// Builds the generator with batch normalization made optional (see
    /// `SynthesizerConfig::g_batchnorm` for when to disable it).
    pub fn with_options(
        noise_dim: usize,
        cond_dim: usize,
        hidden: &[usize],
        blocks: Vec<OutputBlock>,
        batchnorm: bool,
        rng: &mut Rng,
    ) -> Self {
        assert!(!hidden.is_empty(), "generator needs at least one hidden layer");
        let width = blocks.last().map(|b| b.hi).unwrap_or(0);
        assert!(width > 0, "output layout is empty");
        let mut layers = Vec::with_capacity(hidden.len());
        let mut prev = noise_dim;
        for &h in hidden {
            layers.push((
                Linear::new(prev + cond_dim, h, rng),
                batchnorm.then(|| BatchNorm1d::new(h)),
            ));
            prev = h;
        }
        let head = Linear::new(prev + cond_dim, width, rng);
        MlpGenerator {
            layers,
            head,
            blocks,
            noise_dim,
            cond_dim,
            width,
        }
    }

    /// Condition width this generator expects.
    pub fn cond_dim(&self) -> usize {
        self.cond_dim
    }

    fn with_cond(&self, x: &Var, cond: Option<&Var>) -> Var {
        match cond {
            Some(c) => Var::concat_cols(&[x.clone(), c.clone()]),
            None => x.clone(),
        }
    }
}

impl Generator for MlpGenerator {
    fn forward(&self, z: &Tensor, cond: Option<&Tensor>, _rng: &mut Rng) -> Var {
        let cond_var = match cond {
            Some(c) => {
                assert_eq!(c.cols(), self.cond_dim, "condition width mismatch");
                Some(Var::constant(c.clone()))
            }
            None => {
                assert_eq!(self.cond_dim, 0, "generator expects a condition");
                None
            }
        };
        let mut x = Var::constant(z.clone());
        for (linear, bn) in &self.layers {
            let input = self.with_cond(&x, cond_var.as_ref());
            let pre = linear.forward(&input);
            x = match bn {
                Some(bn) => bn.forward(&pre).relu(),
                None => pre.relu(),
            };
        }
        let raw = self.head.forward(&self.with_cond(&x, cond_var.as_ref()));
        apply_output_head(&raw, &self.blocks)
    }

    fn noise_dim(&self) -> usize {
        self.noise_dim
    }

    fn sample_width(&self) -> usize {
        self.width
    }

    fn params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        for (linear, bn) in &self.layers {
            p.extend(linear.params());
            if let Some(bn) = bn {
                p.extend(bn.params());
            }
        }
        p.extend(self.head.params());
        p
    }

    fn set_training(&self, training: bool) {
        for (_, bn) in &self.layers {
            if let Some(bn) = bn {
                bn.set_training(training);
            }
        }
    }

    fn state(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        for (_, bn) in &self.layers {
            if let Some(bn) = bn {
                out.push(bn.running_mean());
                out.push(bn.running_var());
            }
        }
        out
    }

    fn set_state(&self, state: &[Tensor]) {
        let mut it = state.iter();
        for (_, bn) in &self.layers {
            if let Some(bn) = bn {
                let mean = it.next().expect("missing running mean").clone();
                let var = it.next().expect("missing running var").clone();
                bn.set_running_stats(mean, var);
            }
        }
        assert!(it.next().is_none(), "extra generator state entries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::test_support::tiny_table;
    use daisy_data::{RecordCodec, TransformConfig};

    fn build(cond: usize, seed: u64) -> (MlpGenerator, RecordCodec) {
        let table = tiny_table(200, seed);
        let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
        let mut rng = Rng::seed_from_u64(seed);
        let g = MlpGenerator::new(8, cond, &[32, 32], codec.output_blocks(), &mut rng);
        (g, codec)
    }

    #[test]
    fn generates_decodable_samples() {
        let (g, codec) = build(0, 0);
        let mut rng = Rng::seed_from_u64(1);
        let z = g.sample_noise(16, &mut rng);
        let out = g.forward(&z, None, &mut rng);
        assert_eq!(out.shape(), &[16, codec.width()]);
        let table = codec.decode_table(out.value());
        assert_eq!(table.n_rows(), 16);
    }

    #[test]
    fn conditional_input_changes_output() {
        let (g, _) = build(2, 2);
        let mut rng = Rng::seed_from_u64(3);
        g.set_training(false);
        let z = g.sample_noise(4, &mut rng);
        let c0 = daisy_data::one_hot_labels(&[0, 0, 0, 0], 2);
        let c1 = daisy_data::one_hot_labels(&[1, 1, 1, 1], 2);
        let out0 = g.forward(&z, Some(&c0), &mut rng);
        let out1 = g.forward(&z, Some(&c1), &mut rng);
        assert_ne!(out0.value(), out1.value());
    }

    #[test]
    fn condition_survives_batchnorm_with_constant_batches() {
        // The CTrain failure mode: a whole batch shares one label, so a
        // first-layer-only condition would be cancelled by BatchNorm in
        // training mode. With per-layer injection the two pure batches
        // must produce visibly different outputs even in training mode.
        let (g, _) = build(2, 7);
        let mut rng = Rng::seed_from_u64(8);
        g.set_training(true);
        let z = g.sample_noise(16, &mut rng);
        let c0 = daisy_data::one_hot_labels(&[0; 16], 2);
        let c1 = daisy_data::one_hot_labels(&[1; 16], 2);
        let out0 = g.forward(&z, Some(&c0), &mut rng);
        let out1 = g.forward(&z, Some(&c1), &mut rng);
        let delta = out0.value().sub(out1.value()).norm();
        assert!(delta > 1e-3, "condition erased: delta = {delta}");
    }

    #[test]
    fn all_params_receive_gradients() {
        let (g, _) = build(0, 4);
        let mut rng = Rng::seed_from_u64(5);
        let z = g.sample_noise(8, &mut rng);
        g.forward(&z, None, &mut rng).sqr().mean().backward();
        for p in g.params() {
            assert!(p.grad().norm() > 0.0, "param without gradient: {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "expects a condition")]
    fn missing_condition_panics() {
        let (g, _) = build(2, 6);
        let mut rng = Rng::seed_from_u64(7);
        let z = g.sample_noise(2, &mut rng);
        let _ = g.forward(&z, None, &mut rng);
    }
}
