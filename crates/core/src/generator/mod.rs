//! Generator networks `G(z [, c]) → t'` for the three families of the
//! design space (§5.1).

mod cnn;
mod lstm;
mod mlp;

pub use cnn::CnnGenerator;
pub use lstm::LstmGenerator;
pub use mlp::MlpGenerator;

use daisy_tensor::{Param, Rng, Tensor, Var};

/// A generator: maps prior noise (and an optional condition vector) to
/// a synthetic sample batch `[B, d]` in the encoded sample space.
///
/// All generators emit *flattened* samples, including the CNN family
/// (whose `side × side` matrices are flattened row-major), so the
/// training loop and discriminators are layout-agnostic.
pub trait Generator {
    /// Builds the generation graph for a noise batch `z [B, z_dim]`.
    /// `cond` is the one-hot condition matrix `[B, k]` for conditional
    /// GAN. `rng` seeds any internal stochastic state (the LSTM
    /// generator's random initial hidden state).
    fn forward(&self, z: &Tensor, cond: Option<&Tensor>, rng: &mut Rng) -> Var;

    /// Prior noise dimension.
    fn noise_dim(&self) -> usize;

    /// Width of the generated (flattened) sample.
    fn sample_width(&self) -> usize;

    /// Trainable parameters.
    fn params(&self) -> Vec<Param>;

    /// Train/eval mode switch (batch-norm layers).
    fn set_training(&self, training: bool);

    /// Samples a standard-normal noise batch with this generator's
    /// dimensionality.
    fn sample_noise(&self, batch: usize, rng: &mut Rng) -> Tensor {
        Tensor::randn(&[batch, self.noise_dim()], rng)
    }

    /// Advances `rng` past exactly the draws one [`Generator::forward`]
    /// call on a `batch`-row input would consume, without building the
    /// graph — the cheap half of resuming a seeded row stream at an
    /// offset. The default is a no-op because the MLP and CNN families
    /// never touch the stream RNG in `forward`; the LSTM family (random
    /// initial state, paper A.1.3) overrides it to mirror its draws.
    fn skip_forward_rng(&self, batch: usize, rng: &mut Rng) {
        let _ = (batch, rng);
    }

    /// Non-parameter state (batch-norm running statistics), in a stable
    /// order — captured by model persistence alongside the parameters.
    fn state(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Restores state captured by [`Generator::state`].
    fn set_state(&self, state: &[Tensor]) {
        assert!(state.is_empty(), "generator carries no state");
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use daisy_data::{Attribute, Column, Schema, Table};
    use daisy_tensor::Rng;

    /// A small mixed-type labeled table for generator/discriminator
    /// tests: numeric, 3-way categorical, binary label.
    pub fn tiny_table(n: usize, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("x"),
                Attribute::categorical("c"),
                Attribute::categorical("y"),
            ],
            2,
        );
        let mut xs = Vec::with_capacity(n);
        let mut cs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.usize(2) as u32;
            ys.push(y);
            xs.push(rng.normal_ms(if y == 0 { -2.0 } else { 2.0 }, 1.0));
            cs.push(if rng.bool(0.7) { y } else { rng.usize(3) as u32 });
        }
        Table::new(
            schema,
            vec![
                Column::Num(xs),
                Column::cat_with_domain(cs, 3),
                Column::cat_with_domain(ys, 2),
            ],
        )
    }
}
