//! The design space of GAN-based relational data synthesis (paper
//! Figure 3), expressed as configuration types.

use daisy_data::TransformConfig;

/// Neural-network family for generator and discriminator (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// Fully-connected networks (vector-formed samples).
    Mlp,
    /// Sequence generation with LSTM cells (vector-formed samples).
    Lstm,
    /// DCGAN-style convolutional networks (matrix-formed samples,
    /// restricted to ordinal encoding + simple normalization).
    Cnn,
}

impl NetworkKind {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkKind::Mlp => "MLP",
            NetworkKind::Lstm => "LSTM",
            NetworkKind::Cnn => "CNN",
        }
    }
}

/// Which network realizes the discriminator. The paper's main study
/// pairs MLP/LSTM generators with an MLP discriminator (an LSTM
/// discriminator is evaluated separately in Appendix B.4 and found
/// inferior); CNN generators pair with a CNN discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscriminatorKind {
    /// Fully-connected discriminator (default for MLP/LSTM generators).
    Mlp,
    /// Sequence-to-one LSTM discriminator (Appendix B.4).
    Lstm,
    /// Convolutional discriminator (for CNN generators).
    Cnn,
}

/// Loss family (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Original GAN value function with the non-saturating generator
    /// loss, Equation (2).
    Vanilla,
    /// Wasserstein critic losses, Equation (3).
    Wasserstein,
}

/// Differential-privacy options for DPTrain (Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpConfig {
    /// Gaussian noise scale `σ_n` applied to discriminator gradients.
    pub noise_scale: f32,
    /// Gradient-norm bound `c_g` (sensitivity clamp).
    pub grad_bound: f32,
}

impl DpConfig {
    /// Calibrates the per-iteration Gaussian noise for a target `ε`
    /// under the DPGAN accounting heuristic: with sampling ratio
    /// `q = batch / n`, `T` discriminator iterations and `δ = 1e-5`,
    /// `σ_n = q · sqrt(2 T ln(1/δ)) / ε` (moments-accountant-style
    /// composition). The mapping is a calibration convention, not a
    /// formal proof — exactly the role it plays in the paper's Figure 8
    /// sweep.
    pub fn for_epsilon(epsilon: f64, d_iterations: usize, batch: usize, n_records: usize) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let q = batch as f64 / n_records.max(1) as f64;
        let delta: f64 = 1e-5;
        let sigma = q * (2.0 * d_iterations as f64 * (1.0 / delta).ln()).sqrt() / epsilon;
        DpConfig {
            noise_scale: sigma.max(1e-3) as f32,
            grad_bound: 1.0,
        }
    }
}

/// A training-algorithm configuration — one row of the paper's Table 1,
/// or any other point in the training design space.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Loss family; also pins the optimizer (Adam for vanilla, RMSProp
    /// for Wasserstein, as in Table 1).
    pub loss: LossKind,
    /// Feed the label as a condition vector to G and D (§5.3).
    pub conditional: bool,
    /// Label-aware minibatch sampling (CTrain, Algorithm 3).
    pub label_aware: bool,
    /// DP gradient perturbation (DPTrain); forces Wasserstein loss.
    pub dp: Option<DpConfig>,
    /// Weight of the KL warm-up term in the vanilla generator loss
    /// (Equation 2); 0 disables it.
    pub kl_weight: f32,
    /// Discriminator steps per generator step (WGAN uses several).
    pub d_steps: usize,
    /// WGAN weight-clipping bound `c_p`.
    pub weight_clip: f32,
    /// Total generator iterations.
    pub iterations: usize,
    /// Minibatch size `m`.
    pub batch_size: usize,
    /// Generator learning rate `α_g`.
    pub lr_g: f32,
    /// Discriminator learning rate `α_d`.
    pub lr_d: f32,
    /// Number of epoch snapshots for validation-based model selection
    /// (§6.2 uses 10).
    pub epochs: usize,
    /// PacGAN packing degree (Lin et al., 2018): the discriminator
    /// scores `pac` samples jointly, making collapsed generators easy
    /// to catch because packed fake batches look conspicuously
    /// self-similar. 1 = off (the paper's setting); an extension point
    /// beyond the paper's mode-collapse remedies, measured by the
    /// `ablation_design_choices` bench. Unconditional training only.
    pub pac: usize,
}

impl TrainConfig {
    /// VTrain (Algorithm 1): vanilla loss + KL warm-up, Adam, random
    /// sampling.
    pub fn vtrain(iterations: usize) -> Self {
        TrainConfig {
            loss: LossKind::Vanilla,
            conditional: false,
            label_aware: false,
            dp: None,
            kl_weight: 1.0,
            d_steps: 1,
            weight_clip: 0.01,
            iterations,
            batch_size: 64,
            lr_g: 2e-3,
            lr_d: 2e-3,
            epochs: 10,
            pac: 1,
        }
    }

    /// WTrain (Algorithm 2): Wasserstein loss, RMSProp, weight clipping.
    pub fn wtrain(iterations: usize) -> Self {
        TrainConfig {
            loss: LossKind::Wasserstein,
            d_steps: 3,
            lr_g: 5e-3,
            lr_d: 5e-3,
            ..Self::vtrain(iterations)
        }
    }

    /// CTrain (Algorithm 3): conditional GAN + label-aware sampling on
    /// the vanilla loss.
    pub fn ctrain(iterations: usize) -> Self {
        TrainConfig {
            conditional: true,
            label_aware: true,
            ..Self::vtrain(iterations)
        }
    }

    /// CGAN-V (§7.1.3): conditional GAN but with plain random sampling.
    pub fn cgan_v(iterations: usize) -> Self {
        TrainConfig {
            conditional: true,
            label_aware: false,
            ..Self::vtrain(iterations)
        }
    }

    /// DPTrain (Algorithm 4): Wasserstein training with gradient
    /// clipping and Gaussian noise on the discriminator.
    pub fn dptrain(iterations: usize, dp: DpConfig) -> Self {
        TrainConfig {
            dp: Some(dp),
            ..Self::wtrain(iterations)
        }
    }

    /// Display name matching Table 1.
    pub fn name(&self) -> &'static str {
        if self.dp.is_some() {
            "DPTrain"
        } else if self.conditional && self.label_aware {
            "CTrain"
        } else if matches!(self.loss, LossKind::Wasserstein) {
            "WTrain"
        } else {
            "VTrain"
        }
    }
}

/// Full synthesizer configuration: a point in the entire design space.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizerConfig {
    /// Generator network family.
    pub network: NetworkKind,
    /// Discriminator network family.
    pub discriminator: DiscriminatorKind,
    /// Data transformation (ignored for CNN, which is pinned to
    /// ordinal + simple normalization matrix samples).
    pub transform: TransformConfig,
    /// Training algorithm.
    pub train: TrainConfig,
    /// Prior noise dimension `|z|`.
    pub noise_dim: usize,
    /// Generator hidden widths (MLP body) / hidden size (LSTM).
    pub g_hidden: Vec<usize>,
    /// Discriminator hidden widths.
    pub d_hidden: Vec<usize>,
    /// Use a deliberately small discriminator (the "Simplified"
    /// mode-collapse remedy of §5.2).
    pub simplified_d: bool,
    /// Dropout probability after each hidden layer of the MLP
    /// discriminator (0 disables). A regularization knob beyond the
    /// paper's design space.
    pub d_dropout: f32,
    /// Batch normalization in the MLP generator body. Defaults to on
    /// (the paper's Equation 7); turned off automatically for
    /// conditional training, where pure-label minibatches (Algorithm 3)
    /// make training-time batch statistics label-dependent and
    /// generation-time running statistics a label-blended mismatch.
    pub g_batchnorm: bool,
    /// Base channel count for CNN networks.
    pub cnn_channels: usize,
    /// RNG seed; fixes initialization and sampling.
    pub seed: u64,
}

impl SynthesizerConfig {
    /// A reasonable default for the given network family.
    pub fn new(network: NetworkKind, train: TrainConfig) -> Self {
        SynthesizerConfig {
            network,
            discriminator: match network {
                NetworkKind::Cnn => DiscriminatorKind::Cnn,
                _ => DiscriminatorKind::Mlp,
            },
            transform: TransformConfig::gn_ht(),
            train,
            noise_dim: 32,
            g_hidden: vec![128, 128],
            d_hidden: vec![128, 64],
            simplified_d: false,
            d_dropout: 0.0,
            g_batchnorm: true,
            cnn_channels: 16,
            seed: 7,
        }
    }

    /// Effective discriminator widths after the simplified-D remedy.
    pub fn effective_d_hidden(&self) -> Vec<usize> {
        if self.simplified_d {
            // One narrow layer: enough signal to guide G, too little
            // capacity to saturate and starve G of gradient (§5.2).
            vec![self.d_hidden.first().copied().unwrap_or(64) / 4]
        } else {
            self.d_hidden.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        assert_eq!(TrainConfig::vtrain(10).name(), "VTrain");
        assert_eq!(TrainConfig::wtrain(10).name(), "WTrain");
        assert_eq!(TrainConfig::ctrain(10).name(), "CTrain");
        let dp = TrainConfig::dptrain(10, DpConfig::for_epsilon(1.0, 10, 64, 1000));
        assert_eq!(dp.name(), "DPTrain");
        assert_eq!(dp.loss, LossKind::Wasserstein);
    }

    #[test]
    fn dp_noise_scales_inversely_with_epsilon() {
        let tight = DpConfig::for_epsilon(0.1, 100, 64, 1000);
        let loose = DpConfig::for_epsilon(1.6, 100, 64, 1000);
        assert!(tight.noise_scale > loose.noise_scale * 10.0);
    }

    #[test]
    fn simplified_d_shrinks() {
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, TrainConfig::vtrain(10));
        assert_eq!(cfg.effective_d_hidden(), vec![128, 64]);
        cfg.simplified_d = true;
        assert_eq!(cfg.effective_d_hidden(), vec![32]);
    }

    #[test]
    fn cnn_defaults_to_cnn_discriminator() {
        let cfg = SynthesizerConfig::new(NetworkKind::Cnn, TrainConfig::vtrain(10));
        assert_eq!(cfg.discriminator, DiscriminatorKind::Cnn);
        let cfg = SynthesizerConfig::new(NetworkKind::Lstm, TrainConfig::vtrain(10));
        assert_eq!(cfg.discriminator, DiscriminatorKind::Mlp);
    }
}
