//! The `Sampler` component of the framework (Figure 2): draws real
//! minibatches, either uniformly at random or label-aware (every label
//! gets dedicated minibatches — the CTrain remedy for skewed label
//! distributions, §5.3).

use daisy_data::{one_hot_labels, DataError, RecordCodec, Table};
use daisy_tensor::{Rng, Tensor};

/// What the training algorithms need from real data: batch sampling
/// plus label metadata. Implemented by the fully-resident
/// [`TrainingData`] and by the out-of-core
/// [`ChunkedTrainingData`](crate::stream_data::ChunkedTrainingData);
/// the trainer takes `&dyn BatchSource`, so switching backends never
/// changes the training code path (or, with matching sources, the
/// arithmetic).
///
/// Sampling is fallible because a disk-backed source can hit
/// corruption mid-training; in-memory sources simply never return
/// `Err`.
pub trait BatchSource {
    /// Number of records.
    fn n_rows(&self) -> usize;
    /// Encoded sample width.
    fn width(&self) -> usize;
    /// Label domain size (0 when unlabeled).
    fn n_classes(&self) -> usize;
    /// Empirical label distribution (probabilities by label code).
    fn label_distribution(&self) -> Vec<f64>;
    /// Uniformly random minibatch (the `random` sampling strategy).
    fn sample_random(
        &self,
        batch: usize,
        with_conditions: bool,
        rng: &mut Rng,
    ) -> Result<Minibatch, DataError>;
    /// Label-aware minibatch: all rows share the target label
    /// (Algorithm 3).
    fn sample_with_label(
        &self,
        label: u32,
        batch: usize,
        rng: &mut Rng,
    ) -> Result<Minibatch, DataError>;
}

/// Encoded training data plus label metadata, shared by the training
/// algorithms.
pub struct TrainingData {
    /// Encoded (flattened) samples `[n, d]`.
    samples: Tensor,
    /// Per-row label codes (present iff the table has a label).
    labels: Option<Vec<u32>>,
    /// Label domain size (0 when unlabeled).
    n_classes: usize,
    /// Row indices grouped by label.
    label_groups: Vec<Vec<usize>>,
}

/// A real minibatch: encoded samples plus (for conditional training)
/// the one-hot condition matrix of their labels.
pub struct Minibatch {
    /// Encoded samples `[m, d]`.
    pub samples: Tensor,
    /// One-hot labels `[m, k]`, when labels exist.
    pub conditions: Option<Tensor>,
    /// Raw label codes of the batch.
    pub labels: Option<Vec<u32>>,
}

impl TrainingData {
    /// Encodes a table with the given codec. Labels are taken from the
    /// table's designated label column when present.
    pub fn from_table(table: &Table, codec: &RecordCodec) -> Self {
        let samples = codec.encode_table(table);
        Self::from_encoded(samples, table)
    }

    /// Wraps pre-encoded samples (used by the matrix-form pipeline,
    /// where encoding happens through `MatrixCodec`).
    pub fn from_encoded(samples: Tensor, table: &Table) -> Self {
        assert_eq!(samples.rows(), table.n_rows(), "row count mismatch");
        let (labels, n_classes, label_groups) = if table.schema().label().is_some() {
            (
                Some(table.labels().to_vec()),
                table.n_classes(),
                table.rows_by_label(),
            )
        } else {
            (None, 0, Vec::new())
        };
        TrainingData {
            samples,
            labels,
            n_classes,
            label_groups,
        }
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.samples.rows()
    }

    /// Encoded sample width.
    pub fn width(&self) -> usize {
        self.samples.cols()
    }

    /// Label domain size (0 when unlabeled).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The full encoded matrix.
    pub fn samples(&self) -> &Tensor {
        &self.samples
    }

    /// Empirical label distribution (probabilities by label code).
    pub fn label_distribution(&self) -> Vec<f64> {
        let n = self.n_rows().max(1) as f64;
        self.label_groups
            .iter()
            .map(|g| g.len() as f64 / n)
            .collect()
    }

    /// Uniformly random minibatch (the `random` sampling strategy).
    pub fn sample_random(&self, batch: usize, with_conditions: bool, rng: &mut Rng) -> Minibatch {
        let idx: Vec<usize> = (0..batch).map(|_| rng.usize(self.n_rows())).collect();
        self.assemble(&idx, with_conditions)
    }

    /// Label-aware minibatch: all rows share the target label
    /// (Algorithm 3). Falls back to random sampling when the label has
    /// no rows.
    pub fn sample_with_label(&self, label: u32, batch: usize, rng: &mut Rng) -> Minibatch {
        assert!(
            (label as usize) < self.n_classes,
            "label {label} out of domain {}",
            self.n_classes
        );
        let group = &self.label_groups[label as usize];
        if group.is_empty() {
            return self.sample_random(batch, true, rng);
        }
        let idx: Vec<usize> = (0..batch).map(|_| group[rng.usize(group.len())]).collect();
        self.assemble(&idx, true)
    }

    fn assemble(&self, idx: &[usize], with_conditions: bool) -> Minibatch {
        let samples = self.samples.gather_rows(idx);
        let labels = self
            .labels
            .as_ref()
            .map(|l| idx.iter().map(|&i| l[i]).collect::<Vec<u32>>());
        let conditions = if with_conditions {
            labels
                .as_ref()
                .map(|l| one_hot_labels(l, self.n_classes))
        } else {
            None
        };
        Minibatch {
            samples,
            conditions,
            labels,
        }
    }
}

impl BatchSource for TrainingData {
    fn n_rows(&self) -> usize {
        TrainingData::n_rows(self)
    }

    fn width(&self) -> usize {
        TrainingData::width(self)
    }

    fn n_classes(&self) -> usize {
        TrainingData::n_classes(self)
    }

    fn label_distribution(&self) -> Vec<f64> {
        TrainingData::label_distribution(self)
    }

    fn sample_random(
        &self,
        batch: usize,
        with_conditions: bool,
        rng: &mut Rng,
    ) -> Result<Minibatch, DataError> {
        Ok(TrainingData::sample_random(self, batch, with_conditions, rng))
    }

    fn sample_with_label(
        &self,
        label: u32,
        batch: usize,
        rng: &mut Rng,
    ) -> Result<Minibatch, DataError> {
        Ok(TrainingData::sample_with_label(self, label, batch, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::test_support::tiny_table;
    use daisy_data::TransformConfig;

    fn data(seed: u64) -> TrainingData {
        let table = tiny_table(300, seed);
        let codec = RecordCodec::fit(&table, &TransformConfig::sn_ht());
        TrainingData::from_table(&table, &codec)
    }

    #[test]
    fn random_batches_have_requested_size() {
        let d = data(0);
        let mut rng = Rng::seed_from_u64(1);
        let b = d.sample_random(32, true, &mut rng);
        assert_eq!(b.samples.shape(), &[32, d.width()]);
        assert_eq!(b.conditions.as_ref().unwrap().shape(), &[32, 2]);
        assert_eq!(b.labels.as_ref().unwrap().len(), 32);
    }

    #[test]
    fn label_aware_batches_are_pure() {
        let d = data(2);
        let mut rng = Rng::seed_from_u64(3);
        for y in 0..2u32 {
            let b = d.sample_with_label(y, 20, &mut rng);
            assert!(b.labels.unwrap().iter().all(|&l| l == y));
        }
    }

    #[test]
    fn label_distribution_sums_to_one() {
        let d = data(4);
        let dist = d.label_distribution();
        assert_eq!(dist.len(), 2);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditions_match_labels() {
        let d = data(5);
        let mut rng = Rng::seed_from_u64(6);
        let b = d.sample_random(16, true, &mut rng);
        let cond = b.conditions.unwrap();
        for (i, &y) in b.labels.unwrap().iter().enumerate() {
            assert_eq!(cond.at2(i, y as usize), 1.0);
        }
    }

    #[test]
    fn unlabeled_table_yields_no_conditions() {
        let table = tiny_table(50, 7);
        let unlabeled = daisy_data::Table::new(
            table.schema().without_label(),
            table.columns().to_vec(),
        );
        let codec = RecordCodec::fit(&unlabeled, &TransformConfig::sn_ht());
        let d = TrainingData::from_table(&unlabeled, &codec);
        assert_eq!(d.n_classes(), 0);
        let mut rng = Rng::seed_from_u64(8);
        let b = d.sample_random(8, true, &mut rng);
        assert!(b.conditions.is_none());
    }
}
