//! # daisy-core
//!
//! The unified GAN-based relational data synthesis framework of
//! *"Relational Data Synthesis using Generative Adversarial Networks: A
//! Design Space Exploration"* (Fan et al., PVLDB 2020): generators and
//! discriminators for the MLP / LSTM / CNN families, the four training
//! algorithms of Table 1 (VTrain, WTrain, CTrain, DPTrain), conditional
//! GAN with label-aware sampling, the simplified-discriminator
//! mode-collapse remedy, and epoch-snapshot model selection.
//!
//! ```no_run
//! use daisy_core::{NetworkKind, Synthesizer, SynthesizerConfig, TrainConfig};
//! # let table: daisy_data::Table = unimplemented!();
//!
//! let config = SynthesizerConfig::new(NetworkKind::Lstm, TrainConfig::vtrain(2000));
//! let fitted = Synthesizer::fit(&table, &config);
//! let mut rng = daisy_tensor::Rng::seed_from_u64(0);
//! let synthetic = fitted.generate(table.n_rows(), &mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod diagnostics;
pub mod discriminator;
pub mod fault;
pub mod generator;
pub mod guard;
pub mod model_selection;
pub mod output_head;
pub mod persist;
pub mod row_stream;
pub mod sampler;
pub mod stream_data;
pub mod synthesizer;
pub mod train;
mod wire;

pub use checkpoint::{config_fingerprint, scratch_path, CheckpointError, CheckpointPlan};
pub use config::{
    DiscriminatorKind, DpConfig, LossKind, NetworkKind, SynthesizerConfig, TrainConfig,
};
pub use diagnostics::{duplicate_fraction, encoded_duplicate_fraction, is_collapsed};
pub use discriminator::{CnnDiscriminator, Discriminator, LstmDiscriminator, MlpDiscriminator};
pub use fault::{DataFault, DataFaultPlan, Fault, FaultPlan, IoFault, IoFaultPlan};
pub use generator::{CnnGenerator, Generator, LstmGenerator, MlpGenerator};
pub use guard::{
    GuardConfig, RecoveryAction, RecoveryEvent, TrainError, TrainGuard, TrainOutcome, TripReason,
};
pub use model_selection::{default_candidates, random_search, HyperParams, SearchResult};
pub use persist::PersistError;
pub use row_stream::RowStream;
pub use sampler::{BatchSource, Minibatch, TrainingData};
pub use stream_data::ChunkedTrainingData;
pub use synthesizer::{FittedSynthesizer, SampleCodec, Synthesizer, TableSynthesizer};
pub use train::{
    train_gan, train_gan_checkpointed, train_gan_resilient, EpochStats, ResilientRun, TrainingRun,
};
