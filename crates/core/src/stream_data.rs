//! Out-of-core training data: a [`BatchSource`] over a
//! [`ChunkSource`], so training streams minibatches from a sealed
//! [`ChunkStore`](daisy_data::ChunkStore) (or any chunked backend)
//! instead of materializing the encoded `[n, d]` matrix.
//!
//! ## Bit-determinism contract
//!
//! [`ChunkedTrainingData`] draws row indices with exactly the same
//! arithmetic as [`TrainingData`](crate::sampler::TrainingData) — one
//! `rng.usize(n_rows)` per sampled row, label groups built in row
//! order — and encodes the drawn rows with the same fitted codec, row
//! by row. Since every row encodes independently of its neighbours,
//! the produced minibatches are bit-identical to the in-memory path
//! for the same seed, whatever the chunking and whatever
//! `DAISY_THREADS` says. The chunked-vs-resident equality tests below
//! and the integration suite pin this down.
//!
//! ## Memory profile
//!
//! Resident state is the label column (4 bytes/row) plus the label
//! group index (8 bytes/row) — not the encoded matrix (`4 * width`
//! bytes/row, typically 50–100× larger). Chunk payloads are fetched
//! through the source on demand; a [`ChunkStore`](daisy_data::ChunkStore)
//! backend caches decoded chunks under the `DAISY_MEM_BUDGET` ceiling.
//!
//! ## Failure semantics
//!
//! Construction reads every chunk once, so corruption present at
//! startup surfaces as a typed [`DataError`] before any training step
//! runs. A chunk that rots *after* that (detected by the store's CRC
//! frames on a later read) fails the batch draw; the trainer maps it
//! to [`TrainError::Data`](crate::guard::TrainError::Data) — data-plane
//! damage is never absorbed by the recovery policy and never panics.

use crate::sampler::{BatchSource, Minibatch};
use daisy_data::{one_hot_labels, AttrType, ChunkSource, Column, DataError, RecordCodec, Table};
use daisy_tensor::Rng;
use std::sync::Arc;

/// Label metadata plus chunk-granular row gathering over a
/// [`ChunkSource`]. See the module docs for the determinism, memory
/// and failure contracts.
pub struct ChunkedTrainingData<'a> {
    source: &'a dyn ChunkSource,
    codec: &'a RecordCodec,
    chunk_rows: usize,
    n_rows: usize,
    /// Per-row label codes (present iff the schema has a label).
    labels: Option<Vec<u32>>,
    /// Label domain size (0 when unlabeled).
    n_classes: usize,
    /// Row indices grouped by label.
    label_groups: Vec<Vec<usize>>,
}

impl<'a> ChunkedTrainingData<'a> {
    /// Wraps `source`, scanning every chunk once to validate it and to
    /// collect the label column. `codec` must already be fitted (e.g.
    /// via [`RecordCodec::fit_chunks`]) on the same logical table.
    pub fn new(
        source: &'a dyn ChunkSource,
        codec: &'a RecordCodec,
    ) -> Result<ChunkedTrainingData<'a>, DataError> {
        let n_rows = source.n_rows();
        let labeled = source.schema().label().is_some();
        let mut labels: Vec<u32> = Vec::with_capacity(if labeled { n_rows } else { 0 });
        let mut n_classes = 0usize;
        for k in 0..source.n_chunks() {
            let chunk = source.chunk(k)?;
            if labeled {
                n_classes = n_classes.max(chunk.n_classes());
                labels.extend_from_slice(chunk.labels());
            }
        }
        let (labels, label_groups) = if labeled {
            debug_assert_eq!(labels.len(), n_rows, "chunks do not partition the rows");
            let mut groups = vec![Vec::new(); n_classes];
            for (i, &y) in labels.iter().enumerate() {
                groups[y as usize].push(i);
            }
            (Some(labels), groups)
        } else {
            (None, Vec::new())
        };
        Ok(ChunkedTrainingData {
            source,
            codec,
            chunk_rows: source.chunk_rows(),
            n_rows,
            labels,
            n_classes,
            label_groups,
        })
    }

    /// Gathers the given global rows (in order) into one small table.
    /// Each referenced chunk is fetched exactly once per call.
    fn gather(&self, idx: &[usize]) -> Result<Table, DataError> {
        let mut ks: Vec<usize> = idx.iter().map(|&i| i / self.chunk_rows).collect();
        ks.sort_unstable();
        ks.dedup();
        let mut chunks: Vec<(usize, Arc<Table>)> = Vec::with_capacity(ks.len());
        for &k in &ks {
            chunks.push((k, self.source.chunk(k)?));
        }
        let chunk_of = |i: usize| -> &Table {
            let k = i / self.chunk_rows;
            let p = chunks
                .binary_search_by_key(&k, |&(k, _)| k)
                .expect("chunk fetched above");
            &chunks[p].1
        };
        let schema = self.source.schema().clone();
        let mut columns = Vec::with_capacity(schema.n_attrs());
        for j in 0..schema.n_attrs() {
            let col = match schema.attr(j).ty {
                AttrType::Numerical => Column::Num(
                    idx.iter()
                        .map(|&i| chunk_of(i).column(j).as_num()[i % self.chunk_rows])
                        .collect(),
                ),
                AttrType::Categorical => {
                    let codes = idx
                        .iter()
                        .map(|&i| chunk_of(i).column(j).as_cat()[i % self.chunk_rows])
                        .collect();
                    // Chunk tables carry the full store dictionary, so
                    // any referenced chunk supplies the domain.
                    let categories = match chunks.first() {
                        Some((_, t)) => match t.column(j) {
                            Column::Cat { categories, .. } => categories.clone(),
                            Column::Num(_) => unreachable!("schema says categorical"),
                        },
                        None => Vec::new(),
                    };
                    Column::Cat { codes, categories }
                }
            };
            columns.push(col);
        }
        Ok(Table::new(schema, columns))
    }

    /// Fetches and encodes the rows, mirroring
    /// `TrainingData::assemble` exactly.
    fn assemble(&self, idx: &[usize], with_conditions: bool) -> Result<Minibatch, DataError> {
        let batch = self.gather(idx)?;
        let samples = self.codec.encode_table(&batch);
        let labels = self
            .labels
            .as_ref()
            .map(|l| idx.iter().map(|&i| l[i]).collect::<Vec<u32>>());
        let conditions = if with_conditions {
            labels
                .as_ref()
                .map(|l| one_hot_labels(l, self.n_classes))
        } else {
            None
        };
        Ok(Minibatch {
            samples,
            conditions,
            labels,
        })
    }
}

impl BatchSource for ChunkedTrainingData<'_> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn width(&self) -> usize {
        self.codec.width()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn label_distribution(&self) -> Vec<f64> {
        let n = self.n_rows.max(1) as f64;
        self.label_groups
            .iter()
            .map(|g| g.len() as f64 / n)
            .collect()
    }

    fn sample_random(
        &self,
        batch: usize,
        with_conditions: bool,
        rng: &mut Rng,
    ) -> Result<Minibatch, DataError> {
        let idx: Vec<usize> = (0..batch).map(|_| rng.usize(self.n_rows)).collect();
        self.assemble(&idx, with_conditions)
    }

    fn sample_with_label(
        &self,
        label: u32,
        batch: usize,
        rng: &mut Rng,
    ) -> Result<Minibatch, DataError> {
        assert!(
            (label as usize) < self.n_classes,
            "label {label} out of domain {}",
            self.n_classes
        );
        let group = &self.label_groups[label as usize];
        if group.is_empty() {
            return self.sample_random(batch, true, rng);
        }
        let idx: Vec<usize> = (0..batch).map(|_| group[rng.usize(group.len())]).collect();
        self.assemble(&idx, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::discriminator::MlpDiscriminator;
    use crate::generator::test_support::tiny_table;
    use crate::generator::MlpGenerator;
    use crate::guard::TrainError;
    use crate::output_head::softmax_spans;
    use crate::sampler::TrainingData;
    use crate::train::train_gan;
    use daisy_data::{TableChunks, TransformConfig};
    use std::cell::Cell;

    fn fixtures(chunk_rows: usize) -> (TableChunks, RecordCodec, TrainingData) {
        let table = tiny_table(300, 9);
        let codec = RecordCodec::fit(&table, &TransformConfig::sn_ht());
        let resident = TrainingData::from_table(&table, &codec);
        (TableChunks::new(table, chunk_rows), codec, resident)
    }

    fn assert_batches_equal(a: &Minibatch, b: &Minibatch) {
        assert_eq!(a.samples.shape(), b.samples.shape());
        assert_eq!(a.samples.data(), b.samples.data());
        assert_eq!(a.labels, b.labels);
        match (&a.conditions, &b.conditions) {
            (Some(x), Some(y)) => assert_eq!(x.data(), y.data()),
            (None, None) => {}
            _ => panic!("condition presence mismatch"),
        }
    }

    #[test]
    fn random_batches_match_in_memory_bitwise() {
        let (chunks, codec, resident) = fixtures(32);
        let streamed = ChunkedTrainingData::new(&chunks, &codec).unwrap();
        assert_eq!(streamed.n_rows(), resident.n_rows());
        assert_eq!(BatchSource::width(&streamed), resident.width());
        assert_eq!(BatchSource::n_classes(&streamed), resident.n_classes());
        assert_eq!(
            BatchSource::label_distribution(&streamed),
            resident.label_distribution()
        );
        let mut rng_a = Rng::seed_from_u64(11);
        let mut rng_b = Rng::seed_from_u64(11);
        for _ in 0..5 {
            let a = streamed.sample_random(48, true, &mut rng_a).unwrap();
            let b = resident.sample_random(48, true, &mut rng_b);
            assert_batches_equal(&a, &b);
        }
    }

    #[test]
    fn label_aware_batches_match_in_memory_bitwise() {
        let (chunks, codec, resident) = fixtures(17); // ragged final chunk
        let streamed = ChunkedTrainingData::new(&chunks, &codec).unwrap();
        let mut rng_a = Rng::seed_from_u64(12);
        let mut rng_b = Rng::seed_from_u64(12);
        for y in 0..2u32 {
            let a = streamed.sample_with_label(y, 24, &mut rng_a).unwrap();
            let b = resident.sample_with_label(y, 24, &mut rng_b);
            assert_batches_equal(&a, &b);
            assert!(a.labels.unwrap().iter().all(|&l| l == y));
        }
    }

    #[test]
    fn chunked_training_is_bit_identical_to_in_memory() {
        let cfg = TrainConfig {
            iterations: 6,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::vtrain(6)
        };
        let run = |data: &dyn BatchSource, codec: &RecordCodec| {
            let mut rng = Rng::seed_from_u64(13);
            let g = MlpGenerator::new(8, 0, &[24], codec.output_blocks(), &mut rng);
            let d = MlpDiscriminator::new(codec.width(), 0, &[24], &mut rng);
            let spans = softmax_spans(&codec.output_blocks());
            let run = train_gan(&g, &d, data, &spans, &cfg, &mut rng).unwrap();
            run.snapshots
                .last()
                .unwrap()
                .iter()
                .flat_map(|t| t.data().to_vec())
                .collect::<Vec<f32>>()
        };
        let (chunks, codec, resident) = fixtures(32);
        let streamed = ChunkedTrainingData::new(&chunks, &codec).unwrap();
        assert_eq!(run(&streamed, &codec), run(&resident, &codec));
    }

    /// A source that starts failing after a fixed number of chunk
    /// reads: the construction scan succeeds, then a mid-training read
    /// fails — the trainer must surface a typed `TrainError::Data`,
    /// not a panic.
    struct FlakySource {
        inner: TableChunks,
        reads_left: Cell<usize>,
    }

    impl ChunkSource for FlakySource {
        fn schema(&self) -> &daisy_data::Schema {
            self.inner.schema()
        }
        fn n_rows(&self) -> usize {
            self.inner.n_rows()
        }
        fn n_chunks(&self) -> usize {
            self.inner.n_chunks()
        }
        fn chunk_rows(&self) -> usize {
            self.inner.chunk_rows()
        }
        fn chunk(&self, k: usize) -> Result<Arc<Table>, DataError> {
            if self.reads_left.get() == 0 {
                return Err(DataError::CorruptChunk {
                    path: format!("chunk-{k:06}.dch").into(),
                    detail: "simulated bit rot".to_string(),
                });
            }
            self.reads_left.set(self.reads_left.get() - 1);
            self.inner.chunk(k)
        }
    }

    #[test]
    fn mid_training_corruption_is_a_typed_error() {
        let (chunks, codec, _) = fixtures(32);
        let n_chunks = chunks.n_chunks();
        let flaky = FlakySource {
            inner: chunks,
            // Enough reads for the construction scan plus a couple of
            // batches, then hard failure.
            reads_left: Cell::new(n_chunks + 4),
        };
        let streamed = ChunkedTrainingData::new(&flaky, &codec).unwrap();
        let cfg = TrainConfig {
            iterations: 40,
            batch_size: 16,
            epochs: 2,
            ..TrainConfig::vtrain(40)
        };
        let mut rng = Rng::seed_from_u64(14);
        let g = MlpGenerator::new(8, 0, &[24], codec.output_blocks(), &mut rng);
        let d = MlpDiscriminator::new(codec.width(), 0, &[24], &mut rng);
        let spans = softmax_spans(&codec.output_blocks());
        let Err(err) = train_gan(&g, &d, &streamed, &spans, &cfg, &mut rng) else {
            panic!("expected TrainError::Data");
        };
        assert!(matches!(err, TrainError::Data(ref m) if m.contains("bit rot")));
    }

    #[test]
    fn corruption_at_construction_is_a_typed_error() {
        let (chunks, codec, _) = fixtures(32);
        let flaky = FlakySource {
            inner: chunks,
            reads_left: Cell::new(1),
        };
        assert!(matches!(
            ChunkedTrainingData::new(&flaky, &codec),
            Err(DataError::CorruptChunk { .. })
        ));
    }
}
