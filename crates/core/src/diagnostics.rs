//! Training diagnostics, chiefly mode-collapse detection (§5.2).
//!
//! Mode collapse manifests as "similar, or even nearly duplicated
//! records in synthetic table T′": the generator emits a limited
//! diversity of samples regardless of the noise. The duplicate fraction
//! below is the signal the paper's deep-dive used to identify collapsed
//! runs (F1 dropping to 0 on a snapshot). The encoded-space variant is
//! what the training resilience layer's periodic collapse probe uses —
//! it scores raw generator output without needing the reversible codec.

use daisy_data::{Column, Table};
use std::collections::HashSet;

/// Quantizes `v` into one of `bins` equi-width buckets of `[min, max]`,
/// reserving bucket `bins` for non-finite values so NaN/±inf rows hash
/// consistently instead of exercising a NaN→int cast.
fn quantize(v: f64, min: f64, max: f64, bins: usize) -> u32 {
    if !v.is_finite() {
        return bins as u32;
    }
    if max > min {
        let q = ((v - min) / (max - min) * bins as f64) as i64;
        q.clamp(0, bins as i64 - 1) as u32
    } else {
        0
    }
}

/// The observed range of the finite values of a column; `None` when the
/// column has no finite value at all (e.g. an all-NaN probe column).
fn finite_range<I: Iterator<Item = f64>>(values: I) -> Option<(f64, f64)> {
    let mut range: Option<(f64, f64)> = None;
    for v in values {
        if v.is_finite() {
            range = Some(match range {
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
                None => (v, v),
            });
        }
    }
    range
}

/// Fraction of records that are duplicates of an earlier record, after
/// quantizing numerical attributes into `bins` equi-width buckets of
/// their observed finite range. 0 = all distinct, →1 = collapsed.
/// Non-finite values (NaN, ±inf) share a dedicated extra bucket, so a
/// poisoned or all-NaN column degrades to "one bucket" rather than
/// poisoning the whole score.
pub fn duplicate_fraction(table: &Table, bins: usize) -> f64 {
    assert!(bins > 0, "need at least one bin");
    if table.n_rows() <= 1 {
        return 0.0;
    }
    // Precompute per-column quantization ranges over finite values.
    let ranges: Vec<Option<(f64, f64)>> = table
        .columns()
        .iter()
        .map(|c| match c {
            Column::Num(v) => finite_range(v.iter().copied()).or(Some((0.0, 0.0))),
            Column::Cat { .. } => None,
        })
        .collect();

    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(table.n_rows());
    let mut duplicates = 0usize;
    for i in 0..table.n_rows() {
        let key: Vec<u32> = table
            .columns()
            .iter()
            .zip(&ranges)
            .map(|(c, r)| match c {
                Column::Num(v) => {
                    let (min, max) = r.unwrap();
                    quantize(v[i], min, max, bins)
                }
                Column::Cat { codes, .. } => codes[i],
            })
            .collect();
        if !seen.insert(key) {
            duplicates += 1;
        }
    }
    duplicates as f64 / table.n_rows() as f64
}

/// [`duplicate_fraction`] over encoded `[n, d]` samples — the form the
/// trainer's collapse probe sees (raw generator output, before the
/// reversible decode). Each column is quantized over its observed
/// finite range exactly like a numerical attribute.
pub fn encoded_duplicate_fraction(samples: &daisy_tensor::Tensor, bins: usize) -> f64 {
    assert!(bins > 0, "need at least one bin");
    let n = samples.rows();
    if n <= 1 {
        return 0.0;
    }
    let d = samples.cols();
    let ranges: Vec<(f64, f64)> = (0..d)
        .map(|j| {
            finite_range((0..n).map(|i| samples.at2(i, j) as f64)).unwrap_or((0.0, 0.0))
        })
        .collect();
    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(n);
    let mut duplicates = 0usize;
    for i in 0..n {
        let key: Vec<u32> = samples
            .row(i)
            .iter()
            .zip(&ranges)
            .map(|(&v, &(min, max))| quantize(v as f64, min, max, bins))
            .collect();
        if !seen.insert(key) {
            duplicates += 1;
        }
    }
    duplicates as f64 / n as f64
}

/// True when the duplicate fraction exceeds `threshold` — the default
/// collapse alarm used by the experiments (0.95).
pub fn is_collapsed(table: &Table, threshold: f64) -> bool {
    duplicate_fraction(table, 20) > threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};
    use daisy_tensor::{Rng, Tensor};

    fn table_of(nums: Vec<f64>, cats: Vec<u32>) -> Table {
        Table::new(
            Schema::new(vec![
                Attribute::numerical("x"),
                Attribute::categorical("c"),
            ]),
            vec![Column::Num(nums), Column::cat_with_domain(cats, 4)],
        )
    }

    #[test]
    fn distinct_rows_have_zero_duplicates() {
        let t = table_of(vec![1.0, 2.0, 3.0, 4.0], vec![0, 1, 2, 3]);
        assert_eq!(duplicate_fraction(&t, 10), 0.0);
        assert!(!is_collapsed(&t, 0.95));
    }

    #[test]
    fn collapsed_table_detected() {
        let t = table_of(vec![5.0; 100], vec![2; 100]);
        assert!(duplicate_fraction(&t, 10) > 0.98);
        assert!(is_collapsed(&t, 0.95));
    }

    #[test]
    fn near_duplicates_quantize_together() {
        // Values within the same bin count as duplicates.
        let nums: Vec<f64> = (0..50).map(|i| 10.0 + (i % 2) as f64 * 0.001).collect();
        let t = table_of(nums, vec![1; 50]);
        assert!(duplicate_fraction(&t, 5) > 0.9);
    }

    #[test]
    fn empty_and_singleton_safe() {
        let t = table_of(vec![1.0], vec![0]);
        assert_eq!(duplicate_fraction(&t, 10), 0.0);
    }

    #[test]
    fn all_nan_column_does_not_poison_the_score() {
        // An all-NaN numerical column must act like a constant column
        // (one shared bucket), not return NaN or panic: distinctness
        // then hinges on the categorical column alone.
        let t = table_of(vec![f64::NAN; 4], vec![0, 1, 2, 3]);
        let f = duplicate_fraction(&t, 10);
        assert!(f.is_finite());
        assert_eq!(f, 0.0);
        // With duplicated categories the NaN rows collide.
        let t = table_of(vec![f64::NAN; 4], vec![1; 4]);
        assert_eq!(duplicate_fraction(&t, 10), 0.75);
    }

    #[test]
    fn mixed_nan_and_finite_values_split_buckets() {
        // NaN rows bucket together but never merge with finite rows,
        // and infinities join the non-finite bucket.
        let t = table_of(
            vec![f64::NAN, f64::NAN, 1.0, 2.0, f64::INFINITY],
            vec![0; 5],
        );
        // Duplicates: second NaN (with first), inf (with the NaNs).
        assert_eq!(duplicate_fraction(&t, 10), 2.0 / 5.0);
    }

    #[test]
    fn encoded_probe_matches_collapse_semantics() {
        let mut rng = Rng::seed_from_u64(0);
        let diverse = Tensor::randn(&[64, 6], &mut rng);
        assert!(encoded_duplicate_fraction(&diverse, 20) < 0.5);
        let collapsed = Tensor::full(&[64, 6], 0.123);
        assert!(encoded_duplicate_fraction(&collapsed, 20) > 0.95);
        // NaN output (a diverged generator) is also maximally duplicated.
        let nan = Tensor::full(&[64, 6], f32::NAN);
        assert!(encoded_duplicate_fraction(&nan, 20) > 0.95);
    }
}
