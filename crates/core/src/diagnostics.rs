//! Training diagnostics, chiefly mode-collapse detection (§5.2).
//!
//! Mode collapse manifests as "similar, or even nearly duplicated
//! records in synthetic table T′": the generator emits a limited
//! diversity of samples regardless of the noise. The duplicate fraction
//! below is the signal the paper's deep-dive used to identify collapsed
//! runs (F1 dropping to 0 on a snapshot).

use daisy_data::{Column, Table};
use std::collections::HashMap;

/// Fraction of records that are duplicates of an earlier record, after
/// quantizing numerical attributes into `bins` equi-width buckets of
/// their observed range. 0 = all distinct, →1 = collapsed.
pub fn duplicate_fraction(table: &Table, bins: usize) -> f64 {
    assert!(bins > 0, "need at least one bin");
    if table.n_rows() <= 1 {
        return 0.0;
    }
    // Precompute per-column quantization ranges.
    let ranges: Vec<Option<(f64, f64)>> = table
        .columns()
        .iter()
        .map(|c| match c {
            Column::Num(v) => {
                let min = v.iter().copied().fold(f64::INFINITY, f64::min);
                let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                Some((min, max))
            }
            Column::Cat { .. } => None,
        })
        .collect();

    let mut seen: HashMap<Vec<u32>, ()> = HashMap::with_capacity(table.n_rows());
    let mut duplicates = 0usize;
    for i in 0..table.n_rows() {
        let key: Vec<u32> = table
            .columns()
            .iter()
            .zip(&ranges)
            .map(|(c, r)| match c {
                Column::Num(v) => {
                    let (min, max) = r.unwrap();
                    if max > min {
                        let q = ((v[i] - min) / (max - min) * bins as f64) as i64;
                        q.clamp(0, bins as i64 - 1) as u32
                    } else {
                        0
                    }
                }
                Column::Cat { codes, .. } => codes[i],
            })
            .collect();
        if seen.insert(key, ()).is_some() {
            duplicates += 1;
        }
    }
    duplicates as f64 / table.n_rows() as f64
}

/// True when the duplicate fraction exceeds `threshold` — the default
/// collapse alarm used by the experiments (0.95).
pub fn is_collapsed(table: &Table, threshold: f64) -> bool {
    duplicate_fraction(table, 20) > threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};

    fn table_of(nums: Vec<f64>, cats: Vec<u32>) -> Table {
        Table::new(
            Schema::new(vec![
                Attribute::numerical("x"),
                Attribute::categorical("c"),
            ]),
            vec![Column::Num(nums), Column::cat_with_domain(cats, 4)],
        )
    }

    #[test]
    fn distinct_rows_have_zero_duplicates() {
        let t = table_of(vec![1.0, 2.0, 3.0, 4.0], vec![0, 1, 2, 3]);
        assert_eq!(duplicate_fraction(&t, 10), 0.0);
        assert!(!is_collapsed(&t, 0.95));
    }

    #[test]
    fn collapsed_table_detected() {
        let t = table_of(vec![5.0; 100], vec![2; 100]);
        assert!(duplicate_fraction(&t, 10) > 0.98);
        assert!(is_collapsed(&t, 0.95));
    }

    #[test]
    fn near_duplicates_quantize_together() {
        // Values within the same bin count as duplicates.
        let nums: Vec<f64> = (0..50).map(|i| 10.0 + (i % 2) as f64 * 0.001).collect();
        let t = table_of(nums, vec![1; 50]);
        assert!(duplicate_fraction(&t, 5) > 0.9);
    }

    #[test]
    fn empty_and_singleton_safe() {
        let t = table_of(vec![1.0], vec![0]);
        assert_eq!(duplicate_fraction(&t, 10), 0.0);
    }
}
