//! Model persistence: save a fitted synthesizer to a single file and
//! load it back for generation — so a trained model can be shipped to
//! the party that needs synthetic data without shipping any real data.
//!
//! The format is a small, versioned, little-endian binary layout
//! (magic `DAISYSY1`) covering the full design-space configuration, the
//! fitted reversible codec (including per-attribute GMM parameters and
//! category names), label metadata, and the selected generator
//! snapshot, terminated by a whole-file CRC-64 footer. Loading verifies
//! the checksum before parsing, so any byte of corruption surfaces as a
//! typed error rather than a garbled model. Saving goes through the
//! same write-to-temp → fsync → atomic-rename path as
//! [`crate::checkpoint`], so a crash mid-save never leaves a torn file.
//! Loading reconstructs the generator architecture from the
//! configuration and restores its weights; the result generates
//! identically to the model that was saved.

use crate::config::{
    DiscriminatorKind, DpConfig, LossKind, NetworkKind, SynthesizerConfig, TrainConfig,
};
use crate::generator::{CnnGenerator, Generator, LstmGenerator, MlpGenerator};
use crate::synthesizer::{FittedSynthesizer, SampleCodec};
use crate::train::TrainingRun;
use crate::wire::{atomic_write, crc64, Reader, Writer};
use daisy_data::{
    AttrType, Attribute, AttributeCodec, CategoricalEncoding, Gmm1d, MatrixCellParam,
    MatrixCodec, NumericalNormalization, RecordCodec, Schema, TransformConfig,
};
use daisy_nn::restore;
use daisy_tensor::{Rng, Tensor};
use std::path::Path;

use daisy_wire::magic::{SYNTH as MAGIC, SYNTH_FOOTER as FOOTER_MAGIC};

/// Serialization errors.
pub type PersistError = String;

// ---------------------------------------------------------------------
// component encoders (primitives live in `crate::wire`)
// ---------------------------------------------------------------------

fn write_schema(w: &mut Writer, schema: &Schema) {
    w.usize(schema.n_attrs());
    for a in schema.attrs() {
        w.str(&a.name);
        w.u8(match a.ty {
            AttrType::Numerical => 0,
            AttrType::Categorical => 1,
        });
    }
    match schema.label() {
        Some(j) => {
            w.bool(true);
            w.usize(j);
        }
        None => w.bool(false),
    }
}

fn read_schema(r: &mut Reader) -> Result<Schema, PersistError> {
    let n = r.len()?;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let ty = r.u8()?;
        attrs.push(match ty {
            0 => Attribute::numerical(name),
            1 => Attribute::categorical(name),
            other => return Err(format!("unknown attribute type tag {other}")),
        });
    }
    if r.bool()? {
        let j = r.usize()?;
        Ok(Schema::with_label(attrs, j))
    } else {
        Ok(Schema::new(attrs))
    }
}

fn write_categories(w: &mut Writer, cats: &[Vec<String>]) {
    w.usize(cats.len());
    for col in cats {
        w.usize(col.len());
        for c in col {
            w.str(c);
        }
    }
}

fn read_categories(r: &mut Reader) -> Result<Vec<Vec<String>>, PersistError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.len()?;
        let col: Result<Vec<String>, _> = (0..k).map(|_| r.str()).collect();
        out.push(col?);
    }
    Ok(out)
}

fn write_attribute_codec(w: &mut Writer, c: &AttributeCodec) {
    match c {
        AttributeCodec::Ordinal { k } => {
            w.u8(0);
            w.usize(*k);
        }
        AttributeCodec::OneHot { k } => {
            w.u8(1);
            w.usize(*k);
        }
        AttributeCodec::SimpleNorm { min, max } => {
            w.u8(2);
            w.f64(*min);
            w.f64(*max);
        }
        AttributeCodec::Gmm { gmm } => {
            w.u8(3);
            w.f64s(gmm.weights());
            w.f64s(gmm.means());
            w.f64s(gmm.stds());
        }
    }
}

fn read_attribute_codec(r: &mut Reader) -> Result<AttributeCodec, PersistError> {
    Ok(match r.u8()? {
        0 => AttributeCodec::Ordinal { k: r.usize()? },
        1 => AttributeCodec::OneHot { k: r.usize()? },
        2 => AttributeCodec::SimpleNorm {
            min: r.f64()?,
            max: r.f64()?,
        },
        3 => {
            let weights = r.f64s()?;
            let means = r.f64s()?;
            let stds = r.f64s()?;
            AttributeCodec::Gmm {
                gmm: Gmm1d::from_parts(weights, means, stds),
            }
        }
        other => return Err(format!("unknown attribute codec tag {other}")),
    })
}

fn write_config(w: &mut Writer, cfg: &SynthesizerConfig) {
    w.u8(match cfg.network {
        NetworkKind::Mlp => 0,
        NetworkKind::Lstm => 1,
        NetworkKind::Cnn => 2,
    });
    w.u8(match cfg.discriminator {
        DiscriminatorKind::Mlp => 0,
        DiscriminatorKind::Lstm => 1,
        DiscriminatorKind::Cnn => 2,
    });
    w.u8(match cfg.transform.categorical {
        CategoricalEncoding::Ordinal => 0,
        CategoricalEncoding::OneHot => 1,
    });
    w.u8(match cfg.transform.numerical {
        NumericalNormalization::Simple => 0,
        NumericalNormalization::Gmm => 1,
    });
    w.usize(cfg.transform.gmm_components);
    w.usize(cfg.transform.gmm_iterations);
    let t = &cfg.train;
    w.u8(match t.loss {
        LossKind::Vanilla => 0,
        LossKind::Wasserstein => 1,
    });
    w.bool(t.conditional);
    w.bool(t.label_aware);
    match &t.dp {
        Some(dp) => {
            w.bool(true);
            w.f32(dp.noise_scale);
            w.f32(dp.grad_bound);
        }
        None => w.bool(false),
    }
    w.f32(t.kl_weight);
    w.usize(t.d_steps);
    w.f32(t.weight_clip);
    w.usize(t.iterations);
    w.usize(t.batch_size);
    w.f32(t.lr_g);
    w.f32(t.lr_d);
    w.usize(t.epochs);
    w.usize(t.pac);
    w.usize(cfg.noise_dim);
    w.usizes(&cfg.g_hidden);
    w.usizes(&cfg.d_hidden);
    w.bool(cfg.simplified_d);
    w.f32(cfg.d_dropout);
    w.bool(cfg.g_batchnorm);
    w.usize(cfg.cnn_channels);
    w.u64(cfg.seed);
}

fn read_config(r: &mut Reader) -> Result<SynthesizerConfig, PersistError> {
    let network = match r.u8()? {
        0 => NetworkKind::Mlp,
        1 => NetworkKind::Lstm,
        2 => NetworkKind::Cnn,
        other => return Err(format!("unknown network tag {other}")),
    };
    let discriminator = match r.u8()? {
        0 => DiscriminatorKind::Mlp,
        1 => DiscriminatorKind::Lstm,
        2 => DiscriminatorKind::Cnn,
        other => return Err(format!("unknown discriminator tag {other}")),
    };
    let categorical = match r.u8()? {
        0 => CategoricalEncoding::Ordinal,
        1 => CategoricalEncoding::OneHot,
        other => return Err(format!("unknown encoding tag {other}")),
    };
    let numerical = match r.u8()? {
        0 => NumericalNormalization::Simple,
        1 => NumericalNormalization::Gmm,
        other => return Err(format!("unknown normalization tag {other}")),
    };
    let transform = TransformConfig {
        categorical,
        numerical,
        gmm_components: r.usize()?,
        gmm_iterations: r.usize()?,
    };
    let loss = match r.u8()? {
        0 => LossKind::Vanilla,
        1 => LossKind::Wasserstein,
        other => return Err(format!("unknown loss tag {other}")),
    };
    let conditional = r.bool()?;
    let label_aware = r.bool()?;
    let dp = if r.bool()? {
        Some(DpConfig {
            noise_scale: r.f32()?,
            grad_bound: r.f32()?,
        })
    } else {
        None
    };
    let train = TrainConfig {
        loss,
        conditional,
        label_aware,
        dp,
        kl_weight: r.f32()?,
        d_steps: r.usize()?,
        weight_clip: r.f32()?,
        iterations: r.usize()?,
        batch_size: r.usize()?,
        lr_g: r.f32()?,
        lr_d: r.f32()?,
        epochs: r.usize()?,
        pac: r.usize()?,
    };
    Ok(SynthesizerConfig {
        network,
        discriminator,
        transform,
        train,
        noise_dim: r.usize()?,
        g_hidden: r.usizes()?,
        d_hidden: r.usizes()?,
        simplified_d: r.bool()?,
        d_dropout: r.f32()?,
        g_batchnorm: r.bool()?,
        cnn_channels: r.usize()?,
        seed: r.u64()?,
    })
}

/// Canonical byte encoding of a configuration — the basis of the
/// checkpoint fingerprint ([`crate::checkpoint::config_fingerprint`]):
/// two configurations match exactly iff their bytes match.
pub(crate) fn config_bytes(cfg: &SynthesizerConfig) -> Vec<u8> {
    let mut w = Writer::default();
    write_config(&mut w, cfg);
    w.buf
}

/// Appends the whole-file integrity footer: `DAISYCRC` + CRC-64 of
/// every preceding byte.
fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let crc = crc64(&buf);
    buf.extend_from_slice(FOOTER_MAGIC);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Verifies and strips the integrity footer, returning the body.
fn unseal(bytes: &[u8]) -> Result<&[u8], PersistError> {
    if bytes.len() < FOOTER_MAGIC.len() + 8 {
        return Err("file too short to carry an integrity footer".to_string());
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_MAGIC.len() - 8);
    if &footer[..8] != FOOTER_MAGIC {
        return Err("integrity footer missing (truncated or foreign file)".to_string());
    }
    let stored = u64::from_le_bytes(footer[8..].try_into().unwrap());
    let actual = crc64(body);
    if stored != actual {
        return Err(format!(
            "file checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        ));
    }
    Ok(body)
}

// ---------------------------------------------------------------------
// FittedSynthesizer save / load
// ---------------------------------------------------------------------

impl FittedSynthesizer {
    /// Serializes the synthesizer (configuration, fitted codec, label
    /// metadata, and the currently loaded generator snapshot) to bytes,
    /// sealed with a whole-file checksum footer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC);
        write_config(&mut w, &self.config);
        match &self.codec {
            SampleCodec::Record(c) => {
                w.u8(0);
                write_schema(&mut w, c.schema());
                write_categories(&mut w, c.categories());
                w.usize(c.codecs().len());
                for codec in c.codecs() {
                    write_attribute_codec(&mut w, codec);
                }
            }
            SampleCodec::Matrix(c) => {
                w.u8(1);
                write_schema(&mut w, c.schema());
                write_categories(&mut w, c.categories());
                let cells = c.cell_params();
                w.usize(cells.len());
                for cell in &cells {
                    match cell {
                        MatrixCellParam::Ordinal { k } => {
                            w.u8(0);
                            w.usize(*k);
                        }
                        MatrixCellParam::Norm { min, max } => {
                            w.u8(1);
                            w.f64(*min);
                            w.f64(*max);
                        }
                    }
                }
            }
        }
        write_schema(&mut w, &self.output_schema);
        w.usize(self.label_categories.len());
        for c in &self.label_categories {
            w.str(c);
        }
        w.f64s(&self.label_dist);
        match self.label_col {
            Some(j) => {
                w.bool(true);
                w.usize(j);
            }
            None => w.bool(false),
        }
        // The currently loaded generator parameters plus non-parameter
        // state (batch-norm running statistics).
        let params = self.generator.params();
        w.usize(params.len());
        for p in &params {
            w.tensor(&p.value());
        }
        let state = self.generator.state();
        w.usize(state.len());
        for t in &state {
            w.tensor(t);
        }
        seal(w.buf)
    }

    /// Reconstructs a synthesizer from [`FittedSynthesizer::to_bytes`]
    /// output. The loaded model generates identically to the saved one.
    /// Any corruption — a flipped byte anywhere, truncation, a foreign
    /// file — is reported as a typed error, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<FittedSynthesizer, PersistError> {
        let body = unseal(bytes)?;
        let mut r = Reader::new(body);
        if r.take(8)? != MAGIC {
            return Err("not a daisy synthesizer file (bad magic)".to_string());
        }
        let config = read_config(&mut r)?;
        let codec = match r.u8()? {
            0 => {
                let schema = read_schema(&mut r)?;
                let categories = read_categories(&mut r)?;
                let n = r.len()?;
                let codecs: Result<Vec<AttributeCodec>, _> =
                    (0..n).map(|_| read_attribute_codec(&mut r)).collect();
                SampleCodec::Record(RecordCodec::from_parts(schema, categories, codecs?))
            }
            1 => {
                let schema = read_schema(&mut r)?;
                let categories = read_categories(&mut r)?;
                let n = r.len()?;
                let cells: Result<Vec<MatrixCellParam>, _> = (0..n)
                    .map(|_| {
                        Ok(match r.u8()? {
                            0 => MatrixCellParam::Ordinal { k: r.usize()? },
                            1 => MatrixCellParam::Norm {
                                min: r.f64()?,
                                max: r.f64()?,
                            },
                            other => return Err(format!("unknown cell tag {other}")),
                        })
                    })
                    .collect();
                SampleCodec::Matrix(MatrixCodec::from_parts(schema, categories, cells?))
            }
            other => return Err(format!("unknown codec tag {other}")),
        };
        let output_schema = read_schema(&mut r)?;
        let n = r.len()?;
        let label_categories: Result<Vec<String>, _> = (0..n).map(|_| r.str()).collect();
        let label_categories = label_categories?;
        let label_dist = r.f64s()?;
        let label_col = if r.bool()? { Some(r.usize()?) } else { None };
        let n_params = r.len()?;
        let saved: Result<Vec<Tensor>, _> = (0..n_params).map(|_| r.tensor()).collect();
        let saved = saved?;
        let n_state = r.len()?;
        let state: Result<Vec<Tensor>, _> = (0..n_state).map(|_| r.tensor()).collect();
        let state = state?;

        // Rebuild the generator architecture, then overwrite its weights.
        let cond_dim = if config.train.conditional {
            label_dist.len()
        } else {
            0
        };
        let blocks = match &codec {
            SampleCodec::Record(c) => c.output_blocks(),
            SampleCodec::Matrix(_) => Vec::new(),
        };
        let mut rng = Rng::seed_from_u64(config.seed);
        let g_bn = config.g_batchnorm && !config.train.conditional;
        let generator: Box<dyn Generator> = match config.network {
            NetworkKind::Mlp => Box::new(MlpGenerator::with_options(
                config.noise_dim,
                cond_dim,
                &config.g_hidden,
                blocks,
                g_bn,
                &mut rng,
            )),
            NetworkKind::Lstm => {
                let hidden = config.g_hidden.first().copied().unwrap_or(64);
                let f_dim = config.g_hidden.get(1).copied().unwrap_or(hidden / 2).max(4);
                Box::new(LstmGenerator::new(
                    config.noise_dim,
                    cond_dim,
                    hidden,
                    f_dim,
                    blocks,
                    &mut rng,
                ))
            }
            NetworkKind::Cnn => {
                let SampleCodec::Matrix(m) = &codec else {
                    return Err("CNN model without a matrix codec".to_string());
                };
                Box::new(CnnGenerator::new(
                    config.noise_dim,
                    config.cnn_channels,
                    m.side(),
                    &mut rng,
                ))
            }
        };
        let params = generator.params();
        if params.len() != saved.len() {
            return Err(format!(
                "parameter count mismatch: file has {}, architecture needs {}",
                saved.len(),
                params.len()
            ));
        }
        for (p, t) in params.iter().zip(&saved) {
            if p.shape() != t.shape() {
                return Err(format!(
                    "parameter shape mismatch: file {:?}, architecture {:?}",
                    t.shape(),
                    p.shape()
                ));
            }
        }
        restore(&params, &saved);
        if generator.state().len() != state.len() {
            return Err(format!(
                "state count mismatch: file has {}, architecture needs {}",
                state.len(),
                generator.state().len()
            ));
        }
        generator.set_state(&state);

        Ok(FittedSynthesizer {
            codec,
            generator,
            config,
            label_dist,
            label_col,
            output_schema,
            label_categories,
            run: TrainingRun {
                snapshots: vec![saved],
                history: Vec::new(),
            },
            selected_epoch: 0,
            // The file stores only the selected snapshot; the training
            // health report is not persisted.
            outcome: crate::guard::TrainOutcome::default(),
        })
    }

    /// Saves the synthesizer to a file via write-to-temp → fsync →
    /// atomic rename: a crash mid-save leaves the previous file (or no
    /// file) intact, never a torn one.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| format!("write failed: {e}"))
    }

    /// Loads a synthesizer saved with [`FittedSynthesizer::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<FittedSynthesizer, PersistError> {
        let bytes = std::fs::read(path).map_err(|e| format!("read failed: {e}"))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::scratch_path;
    use crate::generator::test_support::tiny_table;
    use crate::synthesizer::Synthesizer;

    fn quick(network: NetworkKind, conditional: bool) -> SynthesizerConfig {
        let mut tc = if conditional {
            TrainConfig::ctrain(40)
        } else {
            TrainConfig::vtrain(40)
        };
        tc.batch_size = 16;
        tc.epochs = 2;
        let mut cfg = SynthesizerConfig::new(network, tc);
        cfg.g_hidden = vec![24];
        cfg.d_hidden = vec![24];
        cfg.noise_dim = 8;
        cfg.cnn_channels = 4;
        cfg
    }

    fn roundtrip(network: NetworkKind, conditional: bool, seed: u64) {
        let table = tiny_table(200, seed);
        let fitted = Synthesizer::fit(&table, &quick(network, conditional));
        let bytes = fitted.to_bytes();
        let loaded = FittedSynthesizer::from_bytes(&bytes).expect("load");
        // Identical generation from the same RNG stream.
        let a = fitted.generate(25, &mut Rng::seed_from_u64(99));
        let b = loaded.generate(25, &mut Rng::seed_from_u64(99));
        assert_eq!(a, b, "{network:?} conditional={conditional}");
    }

    #[test]
    fn roundtrip_mlp() {
        roundtrip(NetworkKind::Mlp, false, 1);
    }

    #[test]
    fn roundtrip_mlp_conditional() {
        roundtrip(NetworkKind::Mlp, true, 2);
    }

    #[test]
    fn roundtrip_lstm() {
        roundtrip(NetworkKind::Lstm, false, 3);
    }

    #[test]
    fn roundtrip_cnn() {
        roundtrip(NetworkKind::Cnn, false, 4);
    }

    #[test]
    fn save_load_file() {
        let table = tiny_table(150, 5);
        let fitted = Synthesizer::fit(&table, &quick(NetworkKind::Mlp, false));
        let path = scratch_path("persist");
        fitted.save(&path).unwrap();
        let loaded = FittedSynthesizer::load(&path).unwrap();
        let a = fitted.generate(10, &mut Rng::seed_from_u64(7));
        let b = loaded.generate(10, &mut Rng::seed_from_u64(7));
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(FittedSynthesizer::from_bytes(b"not a model").is_err());
        assert!(FittedSynthesizer::from_bytes(b"DAISYSY1").is_err()); // truncated
        // Truncate mid-file: must error, not panic.
        let table = tiny_table(100, 6);
        let fitted = Synthesizer::fit(&table, &quick(NetworkKind::Mlp, false));
        let mut bytes = fitted.to_bytes();
        let mid = bytes.len() / 3;
        bytes.truncate(mid);
        assert!(FittedSynthesizer::from_bytes(&bytes).is_err());
    }

    #[test]
    fn every_single_byte_corruption_detected() {
        // Exhaustive bit-flip fuzz: flipping any byte of a small saved
        // model must yield a typed error — never a panic, never a
        // silently-accepted altered model.
        let table = tiny_table(60, 7);
        let mut cfg = quick(NetworkKind::Mlp, false);
        cfg.g_hidden = vec![6];
        cfg.d_hidden = vec![6];
        cfg.noise_dim = 3;
        cfg.train.iterations = 4;
        cfg.train.epochs = 1;
        let fitted = Synthesizer::fit(&table, &cfg);
        let bytes = fitted.to_bytes();
        let mut corrupted = bytes.clone();
        for i in 0..corrupted.len() {
            corrupted[i] ^= 0x40;
            assert!(
                FittedSynthesizer::from_bytes(&corrupted).is_err(),
                "flip at byte {i} of {} went undetected",
                corrupted.len()
            );
            corrupted[i] ^= 0x40;
        }
        assert!(FittedSynthesizer::from_bytes(&corrupted).is_ok());
    }
}
