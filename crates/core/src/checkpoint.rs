//! Durable training checkpoints and crash-safe resume.
//!
//! A design-space sweep (the paper runs hundreds of
//! configuration-cells, §7) can be killed at any moment — an OOM kill,
//! a preempted spot instance, a plain Ctrl-C. This module makes that
//! survivable without giving up the repo's determinism contract: a
//! [`TrainCheckpoint`] captures the *complete* training state at a
//! clean epoch boundary — model weights, optimizer moments, the main
//! RNG stream and every dropout stream, the guard's loss envelope, the
//! fault-plan arming state, loss history, and the epoch-snapshot ring —
//! so a resumed run replays the remaining steps bit-identically to a
//! run that was never interrupted.
//!
//! Durability comes from the classic write-to-temp → fsync → atomic
//! rename discipline (`wire::atomic_write`'s protocol, plus a
//! last-good rotation): the previous checkpoint is renamed to `.prev`
//! before the new one lands, so at every instant the disk holds at
//! least one complete, verifiable checkpoint. Every section of the file
//! is CRC-64 framed; a torn or bit-rotted file is detected at load,
//! reported as a typed [`CheckpointError`], quarantined as
//! `.corrupt-N`, and skipped in favour of its predecessor — never a
//! panic, never a silently-wrong resume.
//!
//! The write path is fault-injectable ([`IoFaultPlan`]) with the same
//! deterministic fire-once semantics as [`crate::fault`]'s training
//! faults, so the recovery behaviour above is exercised by tests rather
//! than asserted in comments.

use crate::config::{LossKind, SynthesizerConfig};
use crate::fault::{ArmedIoFaults, IoFault, IoFaultPlan};
use crate::guard::{RecoveryAction, RecoveryEvent, TrainOutcome, TripReason};
use crate::train::EpochStats;
use crate::wire::{self, Reader, WireError, Writer};
use daisy_telemetry::{field, schema};
use daisy_tensor::{RngState, Tensor};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use daisy_wire::magic::CHECKPOINT as MAGIC;

/// Why a checkpoint operation failed. All variants are recoverable:
/// training continues without the failed save, and a corrupt load falls
/// back to the predecessor checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying write/rename failed (disk full, permissions, an
    /// injected I/O fault).
    Io(String),
    /// The file exists but fails validation — bad magic, torn tail,
    /// checksum mismatch, or an implausible length.
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint i/o failure: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A unique scratch-file path in the system temp directory: tagged,
/// per-process, per-call. Tests across the workspace use this instead
/// of fixed filenames so concurrent test binaries (or threads) never
/// race on the same file.
pub fn scratch_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("daisy-{tag}-{}-{n}", std::process::id()))
}

/// Fingerprint of a full synthesizer configuration (CRC-64 of its
/// canonical byte encoding, [`crate::persist`]'s `write_config`). A
/// checkpoint records the fingerprint of the configuration that
/// produced it; resume ignores checkpoints whose fingerprint differs —
/// a stale file from an earlier sweep must not hijack a new cell.
pub fn config_fingerprint(cfg: &SynthesizerConfig) -> u64 {
    wire::crc64(&crate::persist::config_bytes(cfg))
}

fn every_from_env() -> usize {
    daisy_telemetry::knobs::raw("DAISY_CKPT_EVERY")
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

/// Checkpointing policy for one training run.
#[derive(Debug, Clone, Default)]
pub struct CheckpointPlan {
    /// Checkpoint file path; `None` disables checkpointing entirely.
    /// The store also uses `<path>.prev` (last-good), `<path>.tmp`
    /// (in-flight write) and `<path>.corrupt-N` (quarantine).
    pub path: Option<PathBuf>,
    /// Write a checkpoint every `every`-th clean epoch boundary
    /// (default 1 = every epoch; the `DAISY_CKPT_EVERY` environment
    /// variable sets the default for [`CheckpointPlan::at`]).
    pub every: usize,
    /// Abort training with [`crate::TrainError::Interrupted`] *before*
    /// executing this step — a deterministic stand-in for SIGKILL used
    /// by the resume tests. `None` in production.
    pub kill_at_step: Option<usize>,
    /// Configuration fingerprint stamped into every checkpoint and
    /// required of every loaded one. Filled in by the synthesizer
    /// (`config_fingerprint`); leave 0 when driving the trainer
    /// directly without resume-safety concerns.
    pub fingerprint: u64,
    /// Injected I/O faults for the write path (empty in production).
    pub io_faults: IoFaultPlan,
}

impl CheckpointPlan {
    /// No checkpointing, no kill: the plain training path.
    pub fn disabled() -> Self {
        CheckpointPlan {
            every: 1,
            ..Default::default()
        }
    }

    /// Checkpoints to `path`, with the cadence taken from
    /// `DAISY_CKPT_EVERY` (default: every epoch).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        CheckpointPlan {
            path: Some(path.into()),
            every: every_from_env(),
            ..Default::default()
        }
    }

    /// True when a checkpoint path is configured.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Schedules the deterministic kill at `step`.
    pub fn kill_at(mut self, step: usize) -> Self {
        self.kill_at_step = Some(step);
        self
    }

    /// Overrides the checkpoint cadence (clamped to ≥ 1).
    pub fn with_every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }

    /// Attaches an I/O fault schedule to the write path.
    pub fn with_io_faults(mut self, faults: IoFaultPlan) -> Self {
        self.io_faults = faults;
        self
    }
}

// ---------------------------------------------------------------------
// the checkpoint payload
// ---------------------------------------------------------------------

/// The complete training state at a clean epoch boundary. Restoring
/// every field listed here — and nothing less — is what makes resume
/// bit-exact: weights and optimizer moments alone would replay a
/// *different* (if plausible) trajectory because the noise stream,
/// dropout masks, guard envelope and fault arming would restart.
pub struct TrainCheckpoint {
    pub(crate) fingerprint: u64,
    /// Next step to execute (the boundary's `t + 1`).
    pub(crate) t: usize,
    pub(crate) epochs_done: usize,
    /// Loss family the optimizer moments belong to (tracks the WTrain
    /// escalation).
    pub(crate) loss: LossKind,
    pub(crate) d_steps: usize,
    pub(crate) lr_scale: f32,
    pub(crate) plain_rollbacks: usize,
    /// Guard loss envelope `(ema_d, ema_g, steps_seen)`.
    pub(crate) ema: (f32, f32, usize),
    /// Main training RNG stream position.
    pub(crate) rng: RngState,
    /// Fault-plan arming flags ([`crate::fault::FaultPlan`]).
    pub(crate) fired: Vec<bool>,
    pub(crate) outcome: TrainOutcome,
    pub(crate) g_params: Vec<Tensor>,
    /// Generator non-parameter state (batch-norm running statistics).
    pub(crate) g_state: Vec<Tensor>,
    pub(crate) d_params: Vec<Tensor>,
    pub(crate) d_state: Vec<Tensor>,
    /// Discriminator-internal RNG streams (dropout mask generators).
    pub(crate) d_rng: Vec<RngState>,
    pub(crate) opt_g: Vec<Tensor>,
    pub(crate) opt_d: Vec<Tensor>,
    pub(crate) history: Vec<EpochStats>,
    /// Per-epoch generator snapshots accumulated so far (model
    /// selection needs all of them, not just the latest weights).
    pub(crate) snapshots: Vec<Vec<Tensor>>,
}

fn write_rng(w: &mut Writer, s: &RngState) {
    for &word in &s.words {
        w.u64(word);
    }
    match s.gauss_spare {
        Some(v) => {
            w.bool(true);
            w.f64(v);
        }
        None => w.bool(false),
    }
}

fn read_rng(r: &mut Reader) -> Result<RngState, WireError> {
    let mut words = [0u64; 4];
    for word in &mut words {
        *word = r.u64()?;
    }
    let gauss_spare = if r.bool()? { Some(r.f64()?) } else { None };
    Ok(RngState { words, gauss_spare })
}

fn write_reason(w: &mut Writer, reason: &TripReason) {
    match *reason {
        TripReason::NonFiniteLoss { d_loss, g_loss } => {
            w.u8(0);
            w.f32(d_loss);
            w.f32(g_loss);
        }
        TripReason::NonFiniteWeights => w.u8(1),
        TripReason::Divergence { loss, ema } => {
            w.u8(2);
            w.f32(loss);
            w.f32(ema);
        }
        TripReason::ModeCollapse { duplicate_fraction } => {
            w.u8(3);
            w.f64(duplicate_fraction);
        }
    }
}

fn read_reason(r: &mut Reader) -> Result<TripReason, WireError> {
    Ok(match r.u8()? {
        0 => TripReason::NonFiniteLoss {
            d_loss: r.f32()?,
            g_loss: r.f32()?,
        },
        1 => TripReason::NonFiniteWeights,
        2 => TripReason::Divergence {
            loss: r.f32()?,
            ema: r.f32()?,
        },
        3 => TripReason::ModeCollapse {
            duplicate_fraction: r.f64()?,
        },
        other => return Err(format!("unknown trip-reason tag {other}")),
    })
}

fn write_action(w: &mut Writer, action: &RecoveryAction) {
    match *action {
        RecoveryAction::Rollback { lr_scale } => {
            w.u8(0);
            w.f32(lr_scale);
        }
        RecoveryAction::SwitchToWTrain { lr_scale } => {
            w.u8(1);
            w.f32(lr_scale);
        }
        RecoveryAction::Degrade => w.u8(2),
    }
}

fn read_action(r: &mut Reader) -> Result<RecoveryAction, WireError> {
    Ok(match r.u8()? {
        0 => RecoveryAction::Rollback { lr_scale: r.f32()? },
        1 => RecoveryAction::SwitchToWTrain { lr_scale: r.f32()? },
        2 => RecoveryAction::Degrade,
        other => return Err(format!("unknown recovery-action tag {other}")),
    })
}

fn write_outcome(w: &mut Writer, o: &TrainOutcome) {
    w.usize(o.recoveries.len());
    for ev in &o.recoveries {
        w.usize(ev.step);
        w.usize(ev.epoch);
        write_reason(w, &ev.reason);
        write_action(w, &ev.action);
    }
    w.bool(o.degraded);
    w.usize(o.completed_epochs);
    w.bool(o.escalated_wtrain);
    w.bool(o.escalated_simplified_d);
}

fn read_outcome(r: &mut Reader) -> Result<TrainOutcome, WireError> {
    let n = r.len()?;
    let mut recoveries = Vec::with_capacity(n);
    for _ in 0..n {
        recoveries.push(RecoveryEvent {
            step: r.usize()?,
            epoch: r.usize()?,
            reason: read_reason(r)?,
            action: read_action(r)?,
        });
    }
    Ok(TrainOutcome {
        recoveries,
        degraded: r.bool()?,
        completed_epochs: r.usize()?,
        escalated_wtrain: r.bool()?,
        escalated_simplified_d: r.bool()?,
    })
}

impl TrainCheckpoint {
    /// Serializes the checkpoint: magic, then four CRC-framed sections
    /// (meta, model, optimizer, history).
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC);

        let mut meta = Writer::default();
        meta.u64(self.fingerprint);
        meta.usize(self.t);
        meta.usize(self.epochs_done);
        meta.u8(match self.loss {
            LossKind::Vanilla => 0,
            LossKind::Wasserstein => 1,
        });
        meta.usize(self.d_steps);
        meta.f32(self.lr_scale);
        meta.usize(self.plain_rollbacks);
        meta.f32(self.ema.0);
        meta.f32(self.ema.1);
        meta.usize(self.ema.2);
        write_rng(&mut meta, &self.rng);
        meta.usize(self.fired.len());
        for &b in &self.fired {
            meta.bool(b);
        }
        write_outcome(&mut meta, &self.outcome);
        w.section(&meta);

        let mut model = Writer::default();
        model.tensors(&self.g_params);
        model.tensors(&self.g_state);
        model.tensors(&self.d_params);
        model.tensors(&self.d_state);
        model.usize(self.d_rng.len());
        for s in &self.d_rng {
            write_rng(&mut model, s);
        }
        w.section(&model);

        let mut opt = Writer::default();
        opt.tensors(&self.opt_g);
        opt.tensors(&self.opt_d);
        w.section(&opt);

        let mut hist = Writer::default();
        hist.usize(self.history.len());
        for e in &self.history {
            hist.usize(e.epoch);
            hist.f32(e.d_loss);
            hist.f32(e.g_loss);
            hist.f32(e.kl);
        }
        hist.usize(self.snapshots.len());
        for snap in &self.snapshots {
            hist.tensors(snap);
        }
        w.section(&hist);

        w.buf
    }

    /// Parses and validates checkpoint bytes. Every failure mode —
    /// foreign file, truncation, any single corrupted byte — yields
    /// [`CheckpointError::Corrupt`]; this function never panics on
    /// arbitrary input.
    pub(crate) fn from_bytes(bytes: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
        let bad = CheckpointError::Corrupt;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(bad("not a daisy checkpoint file (bad magic)".to_string()));
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..]);

        let mut meta = r.section().map_err(bad)?;
        let fingerprint = meta.u64().map_err(bad)?;
        let t = meta.usize().map_err(bad)?;
        let epochs_done = meta.usize().map_err(bad)?;
        let loss = match meta.u8().map_err(bad)? {
            0 => LossKind::Vanilla,
            1 => LossKind::Wasserstein,
            other => return Err(bad(format!("unknown loss tag {other}"))),
        };
        let d_steps = meta.usize().map_err(bad)?;
        let lr_scale = meta.f32().map_err(bad)?;
        let plain_rollbacks = meta.usize().map_err(bad)?;
        let ema = (
            meta.f32().map_err(bad)?,
            meta.f32().map_err(bad)?,
            meta.usize().map_err(bad)?,
        );
        let rng = read_rng(&mut meta).map_err(bad)?;
        let n_fired = meta.len().map_err(bad)?;
        let mut fired = Vec::with_capacity(n_fired);
        for _ in 0..n_fired {
            fired.push(meta.bool().map_err(bad)?);
        }
        let outcome = read_outcome(&mut meta).map_err(bad)?;

        let mut model = r.section().map_err(bad)?;
        let g_params = model.tensors().map_err(bad)?;
        let g_state = model.tensors().map_err(bad)?;
        let d_params = model.tensors().map_err(bad)?;
        let d_state = model.tensors().map_err(bad)?;
        let n_rng = model.len().map_err(bad)?;
        let mut d_rng = Vec::with_capacity(n_rng);
        for _ in 0..n_rng {
            d_rng.push(read_rng(&mut model).map_err(bad)?);
        }

        let mut opt = r.section().map_err(bad)?;
        let opt_g = opt.tensors().map_err(bad)?;
        let opt_d = opt.tensors().map_err(bad)?;

        let mut hist = r.section().map_err(bad)?;
        let n_hist = hist.len().map_err(bad)?;
        let mut history = Vec::with_capacity(n_hist);
        for _ in 0..n_hist {
            history.push(EpochStats {
                epoch: hist.usize().map_err(bad)?,
                d_loss: hist.f32().map_err(bad)?,
                g_loss: hist.f32().map_err(bad)?,
                kl: hist.f32().map_err(bad)?,
            });
        }
        let n_snap = hist.len().map_err(bad)?;
        let mut snapshots = Vec::with_capacity(n_snap);
        for _ in 0..n_snap {
            snapshots.push(hist.tensors().map_err(bad)?);
        }

        if !r.is_empty() {
            return Err(bad("trailing bytes after final section".to_string()));
        }
        Ok(TrainCheckpoint {
            fingerprint,
            t,
            epochs_done,
            loss,
            d_steps,
            lr_scale,
            plain_rollbacks,
            ema,
            rng,
            fired,
            outcome,
            g_params,
            g_state,
            d_params,
            d_state,
            d_rng,
            opt_g,
            opt_d,
            history,
            snapshots,
        })
    }
}

// ---------------------------------------------------------------------
// the durable store
// ---------------------------------------------------------------------

/// Durable checkpoint storage at a fixed path with last-good rotation
/// and deterministic I/O fault injection.
pub(crate) struct CheckpointStore {
    path: PathBuf,
    armed: ArmedIoFaults,
    saves: usize,
}

impl CheckpointStore {
    pub(crate) fn new(path: PathBuf, faults: &IoFaultPlan) -> Self {
        CheckpointStore {
            path,
            armed: ArmedIoFaults::new(faults),
            saves: 0,
        }
    }

    /// Writes `ckpt` durably: temp file + fsync, rotate the current
    /// file to `.prev`, atomic rename, fsync the directory. Returns the
    /// payload size. Scheduled I/O faults fire here (once each, with
    /// one `fault_fired` telemetry event per firing); on any failure
    /// the previously-saved checkpoint remains intact and loadable.
    pub(crate) fn save(&mut self, ckpt: &TrainCheckpoint) -> Result<usize, CheckpointError> {
        let idx = self.saves;
        self.saves += 1;
        let bytes = ckpt.to_bytes();

        let due = self.armed.take(idx);
        for f in &due {
            if daisy_telemetry::enabled() {
                daisy_telemetry::emit(
                    schema::FAULT_FIRED,
                    vec![field("kind", f.kind()), field("save", idx)],
                );
            }
        }
        let mut torn = None;
        let mut flip = None;
        let mut rename_fails = false;
        for f in due {
            match f {
                IoFault::DiskFull { .. } => {
                    return Err(CheckpointError::Io("disk full (injected)".to_string()));
                }
                IoFault::TornWrite { offset, .. } => torn = Some(offset),
                IoFault::RenameFail { .. } => rename_fails = true,
                IoFault::BitFlip { offset, .. } => flip = Some(offset),
            }
        }

        let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
        let tmp = wire::sibling(&self.path, "tmp");
        if let Some(offset) = torn {
            // The crash happens mid-write: a prefix of the temp file
            // lands, the rename never runs, the main file is untouched.
            let cut = offset as usize % bytes.len().max(1);
            let _ = std::fs::write(&tmp, &bytes[..cut]);
            return Err(CheckpointError::Io(format!(
                "torn write after {cut} bytes (injected)"
            )));
        }
        {
            let mut f = std::fs::File::create(&tmp).map_err(io)?;
            f.write_all(&bytes).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        if rename_fails {
            return Err(CheckpointError::Io("rename failed (injected)".to_string()));
        }
        // Last-good rotation: the current checkpoint survives as
        // `.prev` until the *next* save rotates it out, so a bit-rotted
        // primary always has a verified predecessor to fall back to.
        if self.path.exists() {
            std::fs::rename(&self.path, wire::sibling(&self.path, "prev")).map_err(io)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io)?;
        wire::sync_parent_dir(&self.path);
        if let Some(offset) = flip {
            // Silent corruption after a successful save: the caller
            // sees success; only the next load's checksum notices.
            if let Ok(mut cur) = std::fs::read(&self.path) {
                if !cur.is_empty() {
                    let i = offset as usize % cur.len();
                    cur[i] ^= 0x01;
                    let _ = std::fs::write(&self.path, cur);
                }
            }
        }
        Ok(bytes.len())
    }

    /// Loads the freshest valid checkpoint with the expected
    /// fingerprint: the primary file first, then `.prev`. A corrupt
    /// candidate is quarantined (renamed `.corrupt-N`) and reported via
    /// one `checkpoint_corrupt_skipped` event; a valid checkpoint with
    /// a foreign fingerprint (stale sweep, different cell) is ignored
    /// silently. Returns `None` when nothing usable exists — the caller
    /// trains from scratch.
    pub(crate) fn load_latest(&self, fingerprint: u64) -> Option<TrainCheckpoint> {
        let candidates = [
            ("primary", self.path.clone()),
            ("previous", wire::sibling(&self.path, "prev")),
        ];
        for (slot, path) in candidates {
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            match TrainCheckpoint::from_bytes(&bytes) {
                Ok(ckpt) if ckpt.fingerprint == fingerprint => return Some(ckpt),
                Ok(_) => {} // stale configuration: not ours to resume
                Err(err) => {
                    quarantine(&path);
                    if daisy_telemetry::enabled() {
                        daisy_telemetry::emit(
                            schema::CHECKPOINT_CORRUPT_SKIPPED,
                            vec![field("slot", slot), field("error", err.to_string())],
                        );
                    }
                }
            }
        }
        None
    }
}

/// Moves a corrupt checkpoint aside as `<path>.corrupt-N` (first free
/// N) so it stays available for post-mortem without ever being loaded
/// again.
fn quarantine(path: &Path) {
    for n in 0..10_000u32 {
        let dest = wire::sibling(path, &format!("corrupt-{n}"));
        if !dest.exists() {
            let _ = std::fs::rename(path, dest);
            return;
        }
    }
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::Rng;

    fn dummy(fingerprint: u64, t: usize) -> TrainCheckpoint {
        let mut rng = Rng::seed_from_u64(t as u64);
        let _ = rng.normal(); // populate the Box–Muller spare
        TrainCheckpoint {
            fingerprint,
            t,
            epochs_done: 1,
            loss: LossKind::Wasserstein,
            d_steps: 3,
            lr_scale: 0.5,
            plain_rollbacks: 2,
            ema: (0.25, -1.5, 7),
            rng: rng.state(),
            fired: vec![true, false, true],
            outcome: TrainOutcome {
                recoveries: vec![RecoveryEvent {
                    step: 4,
                    epoch: 0,
                    reason: TripReason::Divergence { loss: 9.0, ema: 1.0 },
                    action: RecoveryAction::SwitchToWTrain { lr_scale: 0.5 },
                }],
                degraded: false,
                completed_epochs: 1,
                escalated_wtrain: true,
                escalated_simplified_d: false,
            },
            g_params: vec![Tensor::from_slice(&[1.0, 2.0, 3.0])],
            g_state: vec![Tensor::from_slice(&[0.0, 1.0])],
            d_params: vec![Tensor::from_slice(&[-1.0])],
            d_state: Vec::new(),
            d_rng: vec![Rng::seed_from_u64(9).state()],
            opt_g: vec![Tensor::from_slice(&[0.5])],
            opt_d: vec![Tensor::from_slice(&[0.1, 0.2])],
            history: vec![EpochStats {
                epoch: 0,
                d_loss: 0.3,
                g_loss: 0.6,
                kl: 0.05,
            }],
            snapshots: vec![vec![Tensor::from_slice(&[1.0, 2.0, 3.0])]],
        }
    }

    fn assert_same(a: &TrainCheckpoint, b: &TrainCheckpoint) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.t, b.t);
        assert_eq!(a.epochs_done, b.epochs_done);
        assert_eq!(a.loss, b.loss);
        assert_eq!(a.d_steps, b.d_steps);
        assert_eq!(a.lr_scale, b.lr_scale);
        assert_eq!(a.plain_rollbacks, b.plain_rollbacks);
        assert_eq!(a.ema, b.ema);
        assert_eq!(a.rng, b.rng);
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.g_params, b.g_params);
        assert_eq!(a.g_state, b.g_state);
        assert_eq!(a.d_params, b.d_params);
        assert_eq!(a.d_state, b.d_state);
        assert_eq!(a.d_rng, b.d_rng);
        assert_eq!(a.opt_g, b.opt_g);
        assert_eq!(a.opt_d, b.opt_d);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!((x.epoch, x.d_loss, x.g_loss, x.kl), (y.epoch, y.d_loss, y.g_loss, y.kl));
        }
        assert_eq!(a.snapshots, b.snapshots);
    }

    #[test]
    fn roundtrip_is_lossless() {
        let ckpt = dummy(0xdead_beef, 12);
        let loaded = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).expect("roundtrip");
        assert_same(&ckpt, &loaded);
    }

    #[test]
    fn every_single_byte_corruption_is_a_typed_error() {
        // The satellite fuzz pass: flipping any byte of a checkpoint
        // must produce CheckpointError::Corrupt — never a panic, never
        // a silently accepted altered checkpoint.
        let bytes = dummy(7, 3).to_bytes();
        let mut corrupted = bytes.clone();
        for i in 0..corrupted.len() {
            for flip in [0x01u8, 0x80] {
                corrupted[i] ^= flip;
                match TrainCheckpoint::from_bytes(&corrupted) {
                    Err(CheckpointError::Corrupt(_)) => {}
                    Err(other) => panic!("byte {i}: wrong error class {other}"),
                    Ok(_) => panic!("flip at byte {i} of {} accepted", corrupted.len()),
                }
                corrupted[i] ^= flip;
            }
        }
        assert!(TrainCheckpoint::from_bytes(&corrupted).is_ok());
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let bytes = dummy(1, 1).to_bytes();
        for cut in [0, 4, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                TrainCheckpoint::from_bytes(&bytes[..cut]),
                Err(CheckpointError::Corrupt(_))
            ));
        }
        assert!(TrainCheckpoint::from_bytes(b"DAISYSY1 not a checkpoint").is_err());
    }

    #[test]
    fn store_rotates_and_prefers_the_primary() {
        let path = scratch_path("ckpt-rotate");
        let mut store = CheckpointStore::new(path.clone(), &IoFaultPlan::none());
        store.save(&dummy(42, 3)).unwrap();
        store.save(&dummy(42, 6)).unwrap();
        assert!(wire::sibling(&path, "prev").exists());
        let latest = store.load_latest(42).expect("latest");
        assert_eq!(latest.t, 6);
        cleanup(&path);
    }

    #[test]
    fn corrupt_primary_falls_back_to_prev_and_quarantines() {
        let path = scratch_path("ckpt-fallback");
        let mut store = CheckpointStore::new(path.clone(), &IoFaultPlan::none());
        store.save(&dummy(42, 3)).unwrap();
        store.save(&dummy(42, 6)).unwrap();
        // Rot a byte of the primary.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, bytes).unwrap();
        let recovered = store.load_latest(42).expect("fallback to .prev");
        assert_eq!(recovered.t, 3, "must resume from the last-good file");
        assert!(!path.exists(), "corrupt primary must be moved aside");
        assert!(wire::sibling(&path, "corrupt-0").exists());
        cleanup(&path);
    }

    #[test]
    fn stale_fingerprint_is_ignored_without_quarantine() {
        let path = scratch_path("ckpt-stale");
        let mut store = CheckpointStore::new(path.clone(), &IoFaultPlan::none());
        store.save(&dummy(1, 3)).unwrap();
        assert!(store.load_latest(2).is_none());
        assert!(path.exists(), "a valid foreign checkpoint is left alone");
        assert!(!wire::sibling(&path, "corrupt-0").exists());
        cleanup(&path);
    }

    #[test]
    fn io_faults_fail_the_save_but_never_the_last_good_file() {
        for plan in [
            IoFaultPlan::torn_write_at(1, 37),
            IoFaultPlan::rename_fail_at(1),
            IoFaultPlan::disk_full_at(1),
        ] {
            let path = scratch_path("ckpt-iofault");
            let mut store = CheckpointStore::new(path.clone(), &plan);
            store.save(&dummy(5, 3)).unwrap();
            let err = store.save(&dummy(5, 6)).expect_err("fault must fail the save");
            assert!(matches!(err, CheckpointError::Io(_)), "{plan:?}: {err}");
            let survivor = store.load_latest(5).expect("last-good checkpoint");
            assert_eq!(survivor.t, 3, "{plan:?} must leave the old checkpoint");
            // The fault fired once: the same save index stays quiet now.
            store.save(&dummy(5, 9)).unwrap();
            assert_eq!(store.load_latest(5).unwrap().t, 9);
            cleanup(&path);
        }
    }

    #[test]
    fn bit_flip_is_silent_at_save_and_caught_at_load() {
        let path = scratch_path("ckpt-bitflip");
        let mut store = CheckpointStore::new(path.clone(), &IoFaultPlan::bit_flip_at(1, 91));
        store.save(&dummy(5, 3)).unwrap();
        store.save(&dummy(5, 6)).expect("bit flip is silent at save time");
        let recovered = store.load_latest(5).expect("fallback");
        assert_eq!(recovered.t, 3, "checksum must reject the flipped primary");
        assert!(wire::sibling(&path, "corrupt-0").exists());
        cleanup(&path);
    }

    fn cleanup(path: &Path) {
        for ext in ["tmp", "prev", "corrupt-0", "corrupt-1"] {
            let _ = std::fs::remove_file(wire::sibling(path, ext));
        }
        let _ = std::fs::remove_file(path);
    }
}
