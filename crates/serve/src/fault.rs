//! Deterministic network-fault injection for the serving plane.
//!
//! The chaos tests (`tests/serve_chaos.rs`, the CI chaos smoke) need
//! the network's real failure modes — torn frames, stalled peers,
//! mid-stream resets, a reload racing a stream, a full disk under
//! quarantine — but reproducibly, on demand, without flaky timing.
//! [`ChaosProxy`] provides them: a TCP proxy between client and server
//! that executes a [`FaultPlan`], a scripted queue of [`ServeFault`]s
//! consumed one per proxied connection. When the queue runs dry every
//! further connection passes through clean, so a retrying client
//! always converges once the scripted faults are spent.
//!
//! The proxy is frame-aware on the response path (it re-encodes whole
//! `daisy-wire` frames before deciding where to cut), which is what
//! makes the faults *typed*: a torn frame lands mid-frame by
//! construction, a reset lands exactly on a frame boundary, and a
//! reload fires after an exact number of delivered frames — no
//! sleep-and-hope.

use crate::proto::{read_frame, write_frame, MAX_RESPONSE_FRAME};
use crate::server::SharedModel;
use daisy_telemetry::sleep_ms;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How often a parked (stalling) pump re-checks whether its
/// connection is finished.
const PARK_POLL_MS: u64 = 5;

/// One scripted network failure, applied to one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Forward `after_frames` complete response frames, then half of
    /// the next frame's bytes, then close — the client sees a
    /// mid-frame truncation (a typed protocol error).
    TornFrame {
        /// Complete response frames delivered before the tear.
        after_frames: u64,
    },
    /// Forward only `after_bytes` of the client's request, then stall
    /// — holding the server-side write half *open* — until the server
    /// gives up. This is the slow-loris shape: the server's
    /// per-connection read deadline, not a truncation error, must end
    /// it.
    StalledRead {
        /// Request bytes delivered before the stall.
        after_bytes: u64,
    },
    /// Forward `after_frames` complete response frames, then close
    /// abruptly — the client sees a stream with no end frame.
    MidStreamReset {
        /// Complete response frames delivered before the reset.
        after_frames: u64,
    },
    /// After `after_frames` response frames, trigger a hot model
    /// reload on the [`SharedModel`] handle given to
    /// [`ChaosProxy::spawn`], then keep proxying clean — the in-flight
    /// stream must finish on the old model, byte-exact.
    ReloadDuringStream {
        /// Complete response frames delivered before the reload fires.
        after_frames: u64,
    },
    /// Arm the disk-full fault on the [`SharedModel`] handle: the next
    /// *failed* reload reports `quarantined: None` (the rename
    /// "failed") while the old model keeps serving. Consumed at
    /// [`ChaosProxy::spawn`], not per connection — it scripts reload
    /// behavior, not stream behavior.
    DiskFullOnQuarantine,
}

/// A scripted queue of faults, consumed front-to-back, one per proxied
/// connection. Shared (`Arc`) between the test and the proxy so tests
/// can append faults or watch the queue drain.
#[derive(Debug, Default)]
pub struct FaultPlan {
    queue: Mutex<VecDeque<ServeFault>>,
}

impl FaultPlan {
    /// A plan executing `faults` in order.
    pub fn new(faults: Vec<ServeFault>) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            queue: Mutex::new(faults.into()),
        })
    }

    /// Appends one more fault to the script.
    pub fn push(&self, fault: ServeFault) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(fault);
    }

    /// Faults not yet consumed.
    pub fn remaining(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn next(&self) -> Option<ServeFault> {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// Removes and counts every [`ServeFault::DiskFullOnQuarantine`]
    /// (they arm at spawn, not per connection).
    fn take_quarantine_faults(&self) -> usize {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let before = queue.len();
        queue.retain(|f| *f != ServeFault::DiskFullOnQuarantine);
        before - queue.len()
    }
}

/// A fault-injecting TCP proxy in front of a `daisy serve` endpoint.
/// Clients connect to [`ChaosProxy::addr`]; each connection consumes
/// the next scripted fault (clean pass-through once the plan is dry).
pub struct ChaosProxy {
    addr: SocketAddr,
    plan: Arc<FaultPlan>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and detaches the accept loop.
    /// `reload` is the handle [`ServeFault::ReloadDuringStream`] and
    /// [`ServeFault::DiskFullOnQuarantine`] act on; pass `None` when
    /// the plan scripts neither.
    pub fn spawn(
        upstream: SocketAddr,
        plan: Arc<FaultPlan>,
        reload: Option<Arc<SharedModel>>,
    ) -> std::io::Result<ChaosProxy> {
        if plan.take_quarantine_faults() > 0 {
            if let Some(model) = &reload {
                model.arm_quarantine_failure();
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let accept_plan = Arc::clone(&plan);
        // daisy-lint: allow(D003) -- test-only chaos proxy; faults are scripted, not scheduled
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(client) = stream else { continue };
                let fault = accept_plan.next();
                let reload = reload.clone();
                // daisy-lint: allow(D003) -- one proxied connection; its fault is scripted, not scheduled
                std::thread::spawn(move || proxy_connection(client, upstream, fault, reload));
            }
        });
        Ok(ChaosProxy { addr, plan })
    }

    /// The address clients should connect to instead of the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared fault script.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

/// Proxies one connection under (at most) one scripted fault.
fn proxy_connection(
    client: TcpStream,
    upstream_addr: SocketAddr,
    fault: Option<ServeFault>,
    reload: Option<Arc<SharedModel>>,
) {
    let Ok(upstream) = TcpStream::connect(upstream_addr) else {
        return;
    };
    let stall = match fault {
        Some(ServeFault::StalledRead { after_bytes }) => Some(after_bytes),
        _ => None,
    };
    let done = Arc::new(AtomicBool::new(false));
    {
        let client = match client.try_clone() {
            Ok(c) => c,
            Err(_) => return,
        };
        let upstream = match upstream.try_clone() {
            Ok(u) => u,
            Err(_) => return,
        };
        let done = Arc::clone(&done);
        // daisy-lint: allow(D003) -- request pump of one proxied connection; scripted, not scheduled
        std::thread::spawn(move || pump_request(client, upstream, stall, &done));
    }
    pump_response(upstream, client, fault, reload.as_deref());
    // Unpark a stalled request pump; both halves are finished.
    done.store(true, Ordering::Relaxed);
}

/// Client → server: raw byte copy, optionally stalling after a byte
/// budget. The stall holds the upstream write half open on purpose —
/// the server must experience *no progress*, not a truncation, so its
/// read deadline is what ends the connection.
fn pump_request(
    mut client: TcpStream,
    mut upstream: TcpStream,
    stall: Option<u64>,
    done: &AtomicBool,
) {
    let mut budget = stall;
    let mut chunk = [0u8; 4096];
    loop {
        let n = match client.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut slice = &chunk[..n];
        if let Some(b) = &mut budget {
            if (*b as usize) < slice.len() {
                slice = &slice[..*b as usize];
                let _ = upstream.write_all(slice);
                let _ = upstream.flush();
                while !done.load(Ordering::Relaxed) {
                    sleep_ms(PARK_POLL_MS);
                }
                return;
            }
            *b -= slice.len() as u64;
        }
        if upstream.write_all(slice).is_err() {
            break;
        }
    }
    let _ = upstream.shutdown(Shutdown::Write);
}

/// Server → client: frame-aware copy applying the response-path
/// faults. Returning closes both streams (the pump owns them), which
/// is how tears and resets terminate the connection.
fn pump_response(
    upstream: TcpStream,
    mut client: TcpStream,
    mut fault: Option<ServeFault>,
    reload: Option<&SharedModel>,
) {
    let mut upstream_reader = upstream;
    let mut forwarded = 0u64;
    loop {
        let body = match read_frame(&mut upstream_reader, MAX_RESPONSE_FRAME) {
            Ok(Some(body)) => body,
            // Upstream EOF or violation: nothing more to forward.
            Ok(None) | Err(_) => return,
        };
        let mut encoded = Vec::with_capacity(body.len() + 16);
        // Writing into a Vec cannot fail.
        let _ = write_frame(&mut encoded, &body);
        match fault {
            Some(ServeFault::TornFrame { after_frames }) if forwarded == after_frames => {
                let _ = client.write_all(&encoded[..encoded.len() / 2]);
                let _ = client.flush();
                return;
            }
            Some(ServeFault::MidStreamReset { after_frames }) if forwarded == after_frames => {
                return;
            }
            Some(ServeFault::ReloadDuringStream { after_frames }) if forwarded == after_frames => {
                if let Some(model) = reload {
                    let _ = model.reload();
                }
                fault = None;
            }
            _ => {}
        }
        if client.write_all(&encoded).is_err() {
            return;
        }
        forwarded += 1;
    }
}
