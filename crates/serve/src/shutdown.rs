//! SIGTERM observation for graceful drain.
//!
//! The serving plane's drain sequence ([`crate::Server::run`]) needs
//! to *see* SIGTERM rather than die from it: stop accepting, let
//! in-flight streams finish up to `DAISY_SERVE_DRAIN_MS`, seal
//! stragglers with a typed draining end frame, then exit with the
//! documented code. `std` exposes no signal API and the workspace is
//! dependency-free, so this module carries the one audited `unsafe`
//! block in the crate: a `libc`-free `signal(2)` declaration whose
//! handler does the only async-signal-safe thing possible — set a
//! relaxed [`AtomicBool`] the accept loop polls.
//!
//! On non-Unix targets [`install_sigterm_handler`] is a no-op and the
//! process keeps the platform's default termination behavior.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler (or [`request_drain_for_tests`]); polled
/// by the accept loop.
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM has been observed (or a test requested a drain).
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::Relaxed)
}

/// Sets the drain flag without a signal — how tests and the in-process
/// API trigger the same drain sequence SIGTERM does.
pub fn request_drain_for_tests() {
    SIGTERM.store(true, Ordering::Relaxed);
}

/// Installs the SIGTERM handler. Idempotent; call before
/// [`crate::Server::run`]. Returns whether a handler is actually
/// installed (always `false` off Unix, where the default disposition —
/// immediate termination — remains).
pub fn install_sigterm_handler() -> bool {
    sys::install()
}

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    /// `SIGTERM` on every Unix the workspace targets.
    const SIGTERM_NO: i32 = 15;

    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            /// POSIX `signal(2)`. `sighandler_t` is a code pointer;
            /// `usize` matches its ABI on all supported targets and we
            /// never call the returned previous handler.
            pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }

        /// Installs `handler` for `signum`. The only unsafe operation
        /// in the crate: a direct FFI call with no memory arguments.
        pub fn install(signum: i32, handler: extern "C" fn(i32)) {
            unsafe {
                signal(signum, handler);
            }
        }
    }

    /// Async-signal-safe by construction: one relaxed atomic store.
    extern "C" fn on_sigterm(_signum: i32) {
        super::SIGTERM.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        ffi::install(SIGTERM_NO, on_sigterm);
        true
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() -> bool {
        false
    }
}
