//! The serving wire protocol: CRC-framed requests and responses.
//!
//! Every protocol unit is one **frame** in the `daisy-wire` section
//! discipline — `[len: u64 LE][crc64: u64 LE][body: len bytes]` — so a
//! flipped bit anywhere surfaces as a typed checksum error, exactly as
//! in the model and chunk-store formats. Frame bodies open with a
//! 4-byte magic:
//!
//! | magic  | frame | layout after the magic |
//! |--------|-------|------------------------|
//! | `DSRQ` | request | `version u8, seed u64, n_rows u64, start_row u64, has_condition u8, [condition str]` |
//! | `DSRH` | response header | `version u8, ok u8` then the accepted/rejected layout below |
//! | `DSRD` | response data | `first_row u64, n_rows u64, n_rows × row payload` |
//! | `DSRE` | response end | `end_row u64, payload_crc64 u64, flags u8` |
//!
//! Accepted header (`ok = 1`): `seed u64, n_rows u64, start_row u64,
//! has_condition u8, [condition str], n_columns u64`, then per column a
//! [`ColumnSpec`]: `kind u8` (0 numerical, 1 categorical), `name str`,
//! and for categorical columns `n_categories u64` + that many `str`s.
//! Rejected header (`ok = 0`): a single `str` with the reason.
//!
//! A **row payload** is one cell per column in schema order:
//! numerical cells are `f64 LE`, categorical cells are `u32 LE` codes
//! into the header's category list. `str` is the `daisy-wire`
//! length-prefixed UTF-8 encoding.
//!
//! Row positions on the wire are **absolute**: a request with
//! `start_row = k` resumes the logical `n_rows`-row stream at row `k`,
//! data frames carry their absolute `first_row`, and the end frame's
//! `end_row` is the absolute row reached. The end frame's
//! `payload_crc64` seals the concatenated row payloads of *this
//! response's* data frames, and its `flags` distinguish a complete
//! stream (`0`) from one truncated by a server drain
//! ([`END_FLAG_DRAINING`]) — the typed signal a resuming client acts
//! on.
//!
//! The response layout is a *pure function of the request and the
//! model*: batch boundaries stay on the `GENERATION_BATCH` grid
//! anchored at row 0 no matter where a resume starts, so the
//! concatenated row payloads of any split of `[0, n)` into resumed
//! fetches are byte-identical to one uninterrupted fetch — the
//! contract `tests/serve_stream.rs` and `tests/serve_chaos.rs`
//! enforce.

use crate::ServeError;
use daisy_core::synthesizer::GENERATION_BATCH;
use daisy_wire::{crc64, Reader, Writer};
use std::io::{Read, Write};

/// Protocol version, first body byte after every magic. Bumped on any
/// layout change so stale clients fail with a typed error instead of
/// misparsing. Version 2 added resumable offsets: `start_row` in the
/// request and accepted header, and the end frame's `flags` byte.
pub const PROTOCOL_VERSION: u8 = 2;

/// End-frame flag: the stream was truncated by a graceful drain before
/// reaching `n_rows`; `end_row` is the first row the client still
/// needs. Resume with a `start_row = end_row` request elsewhere.
pub const END_FLAG_DRAINING: u8 = 1;

/// Hard cap on request frame bodies: a request is a few dozen bytes,
/// so anything larger is a protocol violation, not a big request.
pub const MAX_REQUEST_FRAME: usize = 1 << 16;

/// Hard cap on response frame bodies: a data frame is at most
/// `GENERATION_BATCH` rows of 8-byte cells over a few thousand
/// columns; 64 MiB is comfortably past any legal frame.
pub const MAX_RESPONSE_FRAME: usize = 1 << 26;

pub(crate) use daisy_wire::magic::{
    SERVE_DATA as MAGIC_DATA, SERVE_END as MAGIC_END, SERVE_HEADER as MAGIC_HEADER,
    SERVE_REQUEST as MAGIC_REQUEST,
};

/// Rows per response data frame (re-exported constant of the core
/// generation loop, so the frame layout is pinned to the batch size
/// the RNG contract already fixes).
pub(crate) const FRAME_ROWS: usize = GENERATION_BATCH;

/// Writes one CRC-sealed frame (`[len][crc64][body]`) to `w`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u64).to_le_bytes())?;
    w.write_all(&crc64(body).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one CRC-sealed frame body from `r`, enforcing `max` on the
/// declared length. Returns `Ok(None)` on clean end-of-stream (EOF
/// before the first length byte); a mid-frame EOF, an oversized
/// declaration, or a checksum mismatch is a [`ServeError::Protocol`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, ServeError> {
    let mut len_buf = [0u8; 8];
    let mut got = 0;
    while got < 8 {
        let n = r.read(&mut len_buf[got..]).map_err(ServeError::Io)?;
        if n == 0 {
            if got == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(ServeError::Protocol("truncated frame length".to_string()));
        }
        got += n;
    }
    let len = u64::from_le_bytes(len_buf);
    if len > max as u64 {
        return Err(ServeError::Protocol(format!(
            "frame of {len} bytes exceeds the {max}-byte cap"
        )));
    }
    let mut crc_buf = [0u8; 8];
    r.read_exact(&mut crc_buf).map_err(io_as_truncation)?;
    let stored = u64::from_le_bytes(crc_buf);
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(io_as_truncation)?;
    let actual = crc64(&body);
    if actual != stored {
        return Err(ServeError::Protocol(format!(
            "frame checksum mismatch (stored {stored:016x}, computed {actual:016x})"
        )));
    }
    Ok(Some(body))
}

/// A mid-frame EOF is a protocol violation (torn stream), not an I/O
/// environment failure; other read errors pass through as I/O.
fn io_as_truncation(e: std::io::Error) -> ServeError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ServeError::Protocol("truncated frame".to_string())
    } else {
        ServeError::Io(e)
    }
}

/// A generation request: the complete identity of a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Seed of the request's private RNG stream.
    pub seed: u64,
    /// Total rows of the logical stream. A resume still names the full
    /// total; `start_row` picks where in it this response begins.
    pub n_rows: u64,
    /// First row of the logical stream to send (0 for a fresh fetch).
    /// Rows `[start_row, n_rows)` are streamed; earlier rows are
    /// fast-forwarded over without being encoded.
    pub start_row: u64,
    /// Optional label category every row must be conditioned on
    /// (conditional models only).
    pub condition: Option<String>,
}

impl Request {
    /// An unconditioned request.
    pub fn new(seed: u64, n_rows: u64) -> Request {
        Request {
            seed,
            n_rows,
            start_row: 0,
            condition: None,
        }
    }

    /// A request conditioned on the label category `condition`.
    pub fn conditioned(seed: u64, n_rows: u64, condition: &str) -> Request {
        Request {
            seed,
            n_rows,
            start_row: 0,
            condition: Some(condition.to_string()),
        }
    }

    /// The same logical request, resuming at `start_row` — what a
    /// retrying client sends after validating `start_row` rows.
    pub fn resuming_at(&self, start_row: u64) -> Request {
        Request {
            start_row,
            ..self.clone()
        }
    }

    /// Encodes the request frame body (`DSRQ` layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC_REQUEST);
        w.u8(PROTOCOL_VERSION);
        w.u64(self.seed);
        w.u64(self.n_rows);
        w.u64(self.start_row);
        match &self.condition {
            Some(c) => {
                w.bool(true);
                w.str(c);
            }
            None => w.bool(false),
        }
        w.buf
    }

    /// Decodes a request frame body.
    pub fn decode(body: &[u8]) -> Result<Request, ServeError> {
        let mut r = Reader::new(body);
        if r.take(4).map_err(ServeError::Protocol)? != MAGIC_REQUEST {
            return Err(ServeError::Protocol("not a request frame".to_string()));
        }
        let version = r.u8().map_err(ServeError::Protocol)?;
        if version != PROTOCOL_VERSION {
            return Err(ServeError::Protocol(format!(
                "protocol version {version} unsupported (expected {PROTOCOL_VERSION})"
            )));
        }
        let seed = r.u64().map_err(ServeError::Protocol)?;
        let n_rows = r.u64().map_err(ServeError::Protocol)?;
        let start_row = r.u64().map_err(ServeError::Protocol)?;
        let condition = if r.bool().map_err(ServeError::Protocol)? {
            Some(r.str().map_err(ServeError::Protocol)?)
        } else {
            None
        };
        if !r.is_empty() {
            return Err(ServeError::Protocol(
                "trailing bytes after request".to_string(),
            ));
        }
        Ok(Request {
            seed,
            n_rows,
            start_row,
            condition,
        })
    }
}

/// The decoded `DSRE` end frame sealing a response stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndFrame {
    /// Absolute row the stream reached: `n_rows` for a complete
    /// response, the first still-needed row for a drained one.
    pub end_row: u64,
    /// CRC-64 over the concatenated row payloads of this response's
    /// data frames.
    pub payload_crc: u64,
    /// `0` for a complete stream, [`END_FLAG_DRAINING`] when the
    /// server truncated it to drain.
    pub flags: u8,
}

impl EndFrame {
    /// True when the server truncated the stream to drain.
    pub fn draining(&self) -> bool {
        self.flags & END_FLAG_DRAINING != 0
    }

    /// Encodes the end frame body (`DSRE` layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC_END);
        w.u64(self.end_row);
        w.u64(self.payload_crc);
        w.u8(self.flags);
        w.buf
    }

    /// Decodes an end frame body.
    pub fn decode(body: &[u8]) -> Result<EndFrame, ServeError> {
        let mut r = Reader::new(body);
        if r.take(4).map_err(ServeError::Protocol)? != MAGIC_END {
            return Err(ServeError::Protocol("not an end frame".to_string()));
        }
        let end_row = r.u64().map_err(ServeError::Protocol)?;
        let payload_crc = r.u64().map_err(ServeError::Protocol)?;
        let flags = r.u8().map_err(ServeError::Protocol)?;
        if !r.is_empty() {
            return Err(ServeError::Protocol(
                "trailing bytes after end frame".to_string(),
            ));
        }
        Ok(EndFrame {
            end_row,
            payload_crc,
            flags,
        })
    }
}

/// One output column as advertised in an accepted response header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnSpec {
    /// A numerical attribute; cells are `f64 LE`.
    Num {
        /// Attribute name.
        name: String,
    },
    /// A categorical attribute; cells are `u32 LE` codes into
    /// `categories`.
    Cat {
        /// Attribute name.
        name: String,
        /// Category display names, in code order.
        categories: Vec<String>,
    },
}

impl ColumnSpec {
    /// The attribute name.
    pub fn name(&self) -> &str {
        match self {
            ColumnSpec::Num { name } | ColumnSpec::Cat { name, .. } => name,
        }
    }

    /// Bytes one cell of this column occupies in a row payload.
    pub fn cell_bytes(&self) -> usize {
        match self {
            ColumnSpec::Num { .. } => 8,
            ColumnSpec::Cat { .. } => 4,
        }
    }
}

/// A decoded response header: either the accepted echo of the request
/// plus the column contract, or a rejection reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Header {
    /// The request was accepted; data frames follow.
    Accepted {
        /// Echo of the request seed.
        seed: u64,
        /// Echo of the requested row count.
        n_rows: u64,
        /// Echo of the resume offset (0 for a fresh fetch).
        start_row: u64,
        /// Echo of the request condition.
        condition: Option<String>,
        /// The column contract for every row payload.
        columns: Vec<ColumnSpec>,
    },
    /// The request was rejected; the connection stays usable.
    Rejected {
        /// Why the server refused the request.
        reason: String,
    },
}

impl Header {
    /// Encodes the header frame body (`DSRH` layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC_HEADER);
        w.u8(PROTOCOL_VERSION);
        match self {
            Header::Rejected { reason } => {
                w.bool(false);
                w.str(reason);
            }
            Header::Accepted {
                seed,
                n_rows,
                start_row,
                condition,
                columns,
            } => {
                w.bool(true);
                w.u64(*seed);
                w.u64(*n_rows);
                w.u64(*start_row);
                match condition {
                    Some(c) => {
                        w.bool(true);
                        w.str(c);
                    }
                    None => w.bool(false),
                }
                w.u64(columns.len() as u64);
                for col in columns {
                    match col {
                        ColumnSpec::Num { name } => {
                            w.u8(0);
                            w.str(name);
                        }
                        ColumnSpec::Cat { name, categories } => {
                            w.u8(1);
                            w.str(name);
                            w.u64(categories.len() as u64);
                            for c in categories {
                                w.str(c);
                            }
                        }
                    }
                }
            }
        }
        w.buf
    }

    /// Decodes a header frame body.
    pub fn decode(body: &[u8]) -> Result<Header, ServeError> {
        let mut r = Reader::new(body);
        if r.take(4).map_err(ServeError::Protocol)? != MAGIC_HEADER {
            return Err(ServeError::Protocol("not a header frame".to_string()));
        }
        let version = r.u8().map_err(ServeError::Protocol)?;
        if version != PROTOCOL_VERSION {
            return Err(ServeError::Protocol(format!(
                "protocol version {version} unsupported (expected {PROTOCOL_VERSION})"
            )));
        }
        if !r.bool().map_err(ServeError::Protocol)? {
            let reason = r.str().map_err(ServeError::Protocol)?;
            return Ok(Header::Rejected { reason });
        }
        let seed = r.u64().map_err(ServeError::Protocol)?;
        let n_rows = r.u64().map_err(ServeError::Protocol)?;
        let start_row = r.u64().map_err(ServeError::Protocol)?;
        let condition = if r.bool().map_err(ServeError::Protocol)? {
            Some(r.str().map_err(ServeError::Protocol)?)
        } else {
            None
        };
        let n_cols = r.usize().map_err(ServeError::Protocol)?;
        let mut columns = Vec::with_capacity(n_cols.min(4096));
        for _ in 0..n_cols {
            let kind = r.u8().map_err(ServeError::Protocol)?;
            let name = r.str().map_err(ServeError::Protocol)?;
            match kind {
                0 => columns.push(ColumnSpec::Num { name }),
                1 => {
                    let k = r.usize().map_err(ServeError::Protocol)?;
                    let mut categories = Vec::with_capacity(k.min(4096));
                    for _ in 0..k {
                        categories.push(r.str().map_err(ServeError::Protocol)?);
                    }
                    columns.push(ColumnSpec::Cat { name, categories });
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unknown column kind {other}"
                    )))
                }
            }
        }
        if !r.is_empty() {
            return Err(ServeError::Protocol(
                "trailing bytes after header".to_string(),
            ));
        }
        Ok(Header::Accepted {
            seed,
            n_rows,
            start_row,
            condition,
            columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::new(42, 1000),
            Request::conditioned(7, 3, "yes"),
            Request::new(u64::MAX, 0),
            Request::new(42, 1000).resuming_at(300),
            Request::conditioned(7, 900, "yes").resuming_at(899),
        ] {
            let decoded = Request::decode(&req.encode()).expect("roundtrip");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn end_frame_roundtrip() {
        for end in [
            EndFrame {
                end_row: 1000,
                payload_crc: 0xdead_beef,
                flags: 0,
            },
            EndFrame {
                end_row: 300,
                payload_crc: 7,
                flags: END_FLAG_DRAINING,
            },
        ] {
            let decoded = EndFrame::decode(&end.encode()).expect("roundtrip");
            assert_eq!(decoded, end);
            assert_eq!(decoded.draining(), end.flags == END_FLAG_DRAINING);
        }
    }

    #[test]
    fn header_roundtrip() {
        let header = Header::Accepted {
            seed: 9,
            n_rows: 512,
            start_row: 256,
            condition: Some("a".to_string()),
            columns: vec![
                ColumnSpec::Num {
                    name: "x".to_string(),
                },
                ColumnSpec::Cat {
                    name: "c".to_string(),
                    categories: vec!["p".to_string(), "q".to_string()],
                },
            ],
        };
        assert_eq!(Header::decode(&header.encode()).expect("roundtrip"), header);
        let rejected = Header::Rejected {
            reason: "row cap".to_string(),
        };
        assert_eq!(
            Header::decode(&rejected.encode()).expect("roundtrip"),
            rejected
        );
    }

    #[test]
    fn frames_detect_corruption_and_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").expect("write");
        let body = read_frame(&mut buf.as_slice(), 1 << 10)
            .expect("read")
            .expect("one frame");
        assert_eq!(body, b"hello frame");

        // Clean EOF between frames is None, not an error.
        assert!(read_frame(&mut [].as_slice(), 1 << 10)
            .expect("clean eof")
            .is_none());

        // A flipped body byte is a checksum mismatch.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        let err = read_frame(&mut bad.as_slice(), 1 << 10).expect_err("corrupt");
        assert!(matches!(err, ServeError::Protocol(m) if m.contains("checksum")));

        // A torn tail is a truncation error.
        let torn = &buf[..buf.len() - 3];
        let err = read_frame(&mut &torn[..], 1 << 10).expect_err("torn");
        assert!(matches!(err, ServeError::Protocol(m) if m.contains("truncated")));

        // An oversized declaration is rejected before allocation.
        let err = read_frame(&mut buf.as_slice(), 4).expect_err("cap");
        assert!(matches!(err, ServeError::Protocol(m) if m.contains("cap")));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let err = Request::decode(b"XXXX rest").expect_err("magic");
        assert!(matches!(err, ServeError::Protocol(_)));
        let mut body = Request::new(1, 2).encode();
        body[4] = PROTOCOL_VERSION + 1;
        let err = Request::decode(&body).expect_err("version");
        assert!(matches!(err, ServeError::Protocol(m) if m.contains("version")));
    }
}
