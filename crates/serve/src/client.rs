//! The client side: send a request, validate and decode the response
//! stream — including resuming interrupted streams with deterministic
//! backoff.
//!
//! Three layers, each built on the one below:
//!
//! - [`StreamDecoder`] — incremental, frame-at-a-time validation
//!   (header echo, contiguous absolute row positions, per-frame sizes,
//!   the end frame's row total and payload CRC). The same decoder
//!   drives one-shot and resumed fetches, so there is exactly one
//!   definition of "valid response".
//! - [`fetch`] / [`decode_response`] — one connection, the whole
//!   stream, a materialized [`Response`].
//! - [`fetch_resumable`] — survives torn frames, resets, stalls, shed
//!   rejections, and server drains: every validated frame advances the
//!   resume point, transient failures back off deterministically
//!   ([`RetryPolicy`]), and the reassembled row payload is
//!   byte-identical to an uninterrupted fetch (the contract
//!   `tests/serve_chaos.rs` enforces).

use crate::proto::{
    read_frame, write_frame, ColumnSpec, EndFrame, Header, Request, MAGIC_DATA, MAGIC_END,
    MAGIC_HEADER, MAX_RESPONSE_FRAME,
};
use crate::ServeError;
use daisy_data::Value;
use daisy_telemetry::sleep_ms;
use daisy_wire::{Crc64, Reader};
use std::io::Read;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

/// A fully decoded, CRC-verified response to one accepted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request seed.
    pub seed: u64,
    /// Echo of the request condition.
    pub condition: Option<String>,
    /// The column contract the rows follow.
    pub columns: Vec<ColumnSpec>,
    /// Every streamed row, in order. Numerical cells are
    /// [`Value::Num`], categorical cells are [`Value::Cat`] codes into
    /// the matching [`ColumnSpec::Cat`] category list.
    pub rows: Vec<Vec<Value>>,
}

impl Response {
    /// Renders one cell for display/CSV: numerical cells as their
    /// shortest roundtrip form, categorical cells as their category
    /// name.
    pub fn render_cell(&self, col: usize, value: &Value) -> String {
        match (value, &self.columns[col]) {
            (Value::Num(x), _) => format!("{x}"),
            (Value::Cat(code), ColumnSpec::Cat { categories, .. }) => categories
                .get(*code as usize)
                .cloned()
                .unwrap_or_else(|| format!("<code {code}>")),
            (Value::Cat(code), ColumnSpec::Num { .. }) => format!("<code {code}>"),
        }
    }
}

/// What [`StreamDecoder::feed`] made of one frame body.
#[derive(Debug)]
pub enum StreamItem {
    /// The accepted response header; the column contract is now
    /// available via [`StreamDecoder::columns`].
    Header,
    /// One validated data frame.
    Rows {
        /// Absolute row index of the first row in `rows`.
        first_row: u64,
        /// The decoded rows, one [`Value`] per column.
        rows: Vec<Vec<Value>>,
        /// The raw row-payload bytes of this frame (already folded
        /// into the stream CRC). Concatenating these across frames —
        /// and across resumed fetches — reproduces the uninterrupted
        /// stream's payload exactly.
        payload: Vec<u8>,
    },
    /// The validated end frame sealing the stream. Check
    /// [`EndFrame::draining`] to distinguish a complete response from
    /// a drain-truncated one.
    End(EndFrame),
}

/// Incremental validator/decoder for one response stream. Feed it each
/// frame body as it arrives; it enforces the full protocol — header
/// first, contiguous absolute rows, exact payload sizes, and the end
/// frame's row total and CRC seal — without ever buffering more than
/// one frame.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    accepted: Option<AcceptedHeader>,
    row_bytes: usize,
    next_row: u64,
    payload_crc: Crc64,
    end: Option<EndFrame>,
}

#[derive(Debug)]
struct AcceptedHeader {
    seed: u64,
    n_rows: u64,
    start_row: u64,
    condition: Option<String>,
    columns: Vec<ColumnSpec>,
}

impl StreamDecoder {
    /// A decoder expecting a fresh response stream (header first).
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Validates one frame body in stream order. A rejection header
    /// surfaces as [`ServeError::Rejected`]; every protocol violation
    /// as [`ServeError::Protocol`].
    pub fn feed(&mut self, body: &[u8]) -> Result<StreamItem, ServeError> {
        if self.end.is_some() {
            return Err(ServeError::Protocol("data after the end frame".to_string()));
        }
        let Some(accepted) = &self.accepted else {
            if !body.starts_with(MAGIC_HEADER) {
                return Err(ServeError::Protocol(
                    "response does not start with a header frame".to_string(),
                ));
            }
            return match Header::decode(body)? {
                Header::Rejected { reason } => Err(ServeError::Rejected(reason)),
                Header::Accepted {
                    seed,
                    n_rows,
                    start_row,
                    condition,
                    columns,
                } => {
                    self.row_bytes = columns.iter().map(ColumnSpec::cell_bytes).sum();
                    self.next_row = start_row;
                    self.accepted = Some(AcceptedHeader {
                        seed,
                        n_rows,
                        start_row,
                        condition,
                        columns,
                    });
                    Ok(StreamItem::Header)
                }
            };
        };
        if body.starts_with(MAGIC_END) {
            let end = EndFrame::decode(body)?;
            if end.end_row != self.next_row {
                return Err(ServeError::Protocol(format!(
                    "end frame declares row {} but the stream reached row {}",
                    end.end_row, self.next_row
                )));
            }
            let actual = self.payload_crc.finish();
            if end.payload_crc != actual {
                return Err(ServeError::Protocol(format!(
                    "stream checksum mismatch (stored {:016x}, computed {actual:016x})",
                    end.payload_crc
                )));
            }
            if !end.draining() && end.end_row != accepted.n_rows {
                return Err(ServeError::Protocol(format!(
                    "stream sealed at row {} of {} without a draining flag",
                    end.end_row, accepted.n_rows
                )));
            }
            self.end = Some(end);
            return Ok(StreamItem::End(end));
        }
        if !body.starts_with(MAGIC_DATA) {
            return Err(ServeError::Protocol(
                "expected a data or end frame".to_string(),
            ));
        }
        let mut r = Reader::new(&body[4..]);
        let first_row = r.u64().map_err(ServeError::Protocol)?;
        let n = r.u64().map_err(ServeError::Protocol)? as usize;
        if first_row != self.next_row {
            return Err(ServeError::Protocol(format!(
                "data frame starts at row {first_row}, expected {}",
                self.next_row
            )));
        }
        let payload = r
            .take(n * self.row_bytes)
            .map_err(|e| ServeError::Protocol(format!("short data frame: {e}")))?;
        if !r.is_empty() {
            return Err(ServeError::Protocol(
                "trailing bytes after data frame payload".to_string(),
            ));
        }
        self.payload_crc.update(payload);
        let mut cells = Reader::new(payload);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(accepted.columns.len());
            for col in &accepted.columns {
                match col {
                    ColumnSpec::Num { .. } => {
                        row.push(Value::Num(cells.f64().map_err(ServeError::Protocol)?))
                    }
                    ColumnSpec::Cat { .. } => {
                        row.push(Value::Cat(cells.u32().map_err(ServeError::Protocol)?))
                    }
                }
            }
            rows.push(row);
        }
        let payload = payload.to_vec();
        self.next_row += n as u64;
        Ok(StreamItem::Rows {
            first_row,
            rows,
            payload,
        })
    }

    /// The column contract, once the header has been fed.
    pub fn columns(&self) -> &[ColumnSpec] {
        self.accepted.as_ref().map(|a| &a.columns[..]).unwrap_or(&[])
    }

    /// The header's echoed `(seed, n_rows, start_row)`, once fed.
    pub fn echo(&self) -> Option<(u64, u64, u64)> {
        self.accepted
            .as_ref()
            .map(|a| (a.seed, a.n_rows, a.start_row))
    }

    /// The header's echoed condition, once fed.
    pub fn condition(&self) -> Option<&str> {
        self.accepted.as_ref().and_then(|a| a.condition.as_deref())
    }

    /// The absolute row the next data frame must start at — after a
    /// truncated stream, the resume point a retrying client asks for.
    pub fn next_row(&self) -> u64 {
        self.next_row
    }

    /// The validated end frame, once the stream is sealed.
    pub fn end(&self) -> Option<&EndFrame> {
        self.end.as_ref()
    }

    /// True when the stream is sealed *and* reached `n_rows` (a
    /// drain-truncated stream is validly sealed but not complete).
    pub fn complete(&self) -> bool {
        match (&self.accepted, &self.end) {
            (Some(a), Some(e)) => e.end_row == a.n_rows && !e.draining(),
            _ => false,
        }
    }
}

/// Sends `request` to a `daisy serve` endpoint and returns the raw
/// response bytes, unparsed. The byte-identity tests and the
/// reproducibility smoke compare these buffers directly; [`fetch`]
/// layers decoding on top.
pub fn fetch_raw(addr: impl ToSocketAddrs, request: &Request) -> Result<Vec<u8>, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &request.encode())?;
    // Half-close: the server's request loop sees EOF after this
    // request and ends the connection once the response is flushed.
    stream.shutdown(Shutdown::Write)?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Sends `request` and decodes the response. A server-side rejection
/// surfaces as [`ServeError::Rejected`]; a drain-truncated stream as a
/// `draining`-prefixed rejection naming the resume point (use
/// [`fetch_resumable`] to follow it automatically).
pub fn fetch(addr: impl ToSocketAddrs, request: &Request) -> Result<Response, ServeError> {
    decode_response(&fetch_raw(addr, request)?)
}

/// Decodes and verifies one complete response byte stream through
/// [`StreamDecoder`]. A validly sealed but drain-truncated stream is
/// reported as [`ServeError::Rejected`] with the resume point.
pub fn decode_response(bytes: &[u8]) -> Result<Response, ServeError> {
    let mut input = bytes;
    let mut decoder = StreamDecoder::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    while let Some(body) = read_frame(&mut input, MAX_RESPONSE_FRAME)? {
        if let StreamItem::Rows { rows: batch, .. } = decoder.feed(&body)? {
            rows.extend(batch);
        }
    }
    let Some(end) = decoder.end() else {
        return Err(ServeError::Protocol(
            "response ended without an end frame".to_string(),
        ));
    };
    if end.draining() {
        return Err(ServeError::Rejected(format!(
            "draining: stream truncated at row {}; resume with start_row={}",
            end.end_row, end.end_row
        )));
    }
    let Some((seed, _, _)) = decoder.echo() else {
        return Err(ServeError::Protocol("response had no header".to_string()));
    };
    let condition = decoder.condition().map(str::to_string);
    Ok(Response {
        seed,
        condition,
        columns: decoder.columns().to_vec(),
        rows,
    })
}

/// Deterministic exponential backoff with seeded jitter. Two clients
/// built with the same policy back off identically — retry behavior is
/// as reproducible as the streams being retried.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connection attempts, the first included (so 1 = never
    /// retry). Transient failures past this surface as errors.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds; doubles every
    /// retry after that.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed of the jitter stream. Jitter decorrelates replicas that
    /// fail together without sacrificing reproducibility: same seed,
    /// same delays.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            jitter_seed: 0xDA15,
        }
    }
}

impl RetryPolicy {
    /// A policy that fails on the first transient error (attempt 1 is
    /// the only attempt).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `retry` (0-based): the capped
    /// exponential `min(base·2^retry, max)`, jittered into its upper
    /// half `[d/2, d]` by a hash of `(jitter_seed, retry)`.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << retry.min(20) as u64)
            .min(self.max_backoff_ms)
            .max(1);
        let half = exp / 2;
        half + splitmix64(self.jitter_seed ^ u64::from(retry).wrapping_mul(0x9E37_79B9)) % (exp - half + 1)
    }
}

/// SplitMix64 finalizer — the jitter hash. Dependency-free and stable
/// across platforms, which is all the jitter needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One delivery from [`fetch_with_retry`]: a validated batch of rows
/// (empty on the initial header notification).
#[derive(Debug)]
pub struct Progress<'a> {
    /// The column contract (available from the first delivery on).
    pub columns: &'a [ColumnSpec],
    /// Absolute row index of the first row in `rows`.
    pub first_row: u64,
    /// The validated rows of this batch; empty for the one-time header
    /// notification.
    pub rows: &'a [Vec<Value>],
    /// The raw validated row-payload bytes of this batch.
    pub payload: &'a [u8],
    /// Total rows of the logical stream.
    pub n_rows: u64,
    /// 1-based connection attempt that delivered this batch.
    pub attempt: u32,
}

/// What a resumable fetch did to deliver the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchReport {
    /// Connection attempts used (1 = the stream survived intact).
    pub attempts: u32,
    /// Concatenated CRC-validated row-payload bytes across every
    /// attempt — byte-identical to the payload of one uninterrupted
    /// fetch of the same request (the resumability contract).
    pub payload: Vec<u8>,
}

/// True for failures worth retrying: transport errors, protocol
/// violations (a torn or corrupted stream says nothing about the
/// request), and the two transient rejections the server types out
/// (`overloaded` under shed, `draining` during shutdown). Permanent
/// rejections — bad condition, row cap — fail immediately.
fn retryable(e: &ServeError) -> bool {
    match e {
        ServeError::Io(_) | ServeError::Protocol(_) => true,
        ServeError::Rejected(reason) => {
            reason.starts_with("overloaded") || reason.starts_with("draining")
        }
        ServeError::CorruptModel { .. } => false,
    }
}

/// Streams `request`, surviving interruptions: each validated frame is
/// handed to `on_batch` exactly once, in row order, and on any
/// transient failure the fetch backs off per `policy` and resumes at
/// the first unvalidated row (`start_row` on the wire). Nothing is
/// ever delivered twice and nothing unvalidated is delivered at all.
///
/// Returns the attempts used. Memory stays bounded by one frame —
/// accumulate in `on_batch` only if you want materialization (that is
/// what [`fetch_resumable`] does).
pub fn fetch_with_retry(
    addr: impl ToSocketAddrs,
    request: &Request,
    policy: &RetryPolicy,
    mut on_batch: impl FnMut(Progress<'_>),
) -> Result<u32, ServeError> {
    let mut next_start = request.start_row;
    let mut header_notified = false;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match fetch_once(
            &addr,
            &request.resuming_at(next_start),
            attempt,
            &mut header_notified,
            &mut on_batch,
            &mut next_start,
        ) {
            Ok(()) => return Ok(attempt),
            Err(e) if retryable(&e) && attempt < policy.max_attempts => {
                sleep_ms(policy.backoff_ms(attempt - 1));
            }
            Err(e) => return Err(e),
        }
    }
}

/// One connection's worth of [`fetch_with_retry`]: stream frames,
/// validate incrementally, advance `next_start` past every validated
/// row. `Ok(())` only when the stream sealed complete.
fn fetch_once(
    addr: &impl ToSocketAddrs,
    request: &Request,
    attempt: u32,
    header_notified: &mut bool,
    on_batch: &mut impl FnMut(Progress<'_>),
    next_start: &mut u64,
) -> Result<(), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &request.encode())?;
    stream.shutdown(Shutdown::Write)?;
    let mut decoder = StreamDecoder::new();
    loop {
        let Some(body) = read_frame(&mut stream, MAX_RESPONSE_FRAME)? else {
            return Err(ServeError::Protocol(
                "response ended without an end frame".to_string(),
            ));
        };
        match decoder.feed(&body)? {
            StreamItem::Header => {
                let Some((seed, n_rows, start_row)) = decoder.echo() else {
                    continue;
                };
                if seed != request.seed || n_rows != request.n_rows || start_row != request.start_row
                {
                    return Err(ServeError::Protocol(format!(
                        "header echo mismatch: got (seed {seed}, n_rows {n_rows}, start_row {start_row})"
                    )));
                }
                if !*header_notified {
                    *header_notified = true;
                    on_batch(Progress {
                        columns: decoder.columns(),
                        first_row: start_row,
                        rows: &[],
                        payload: &[],
                        n_rows,
                        attempt,
                    });
                }
            }
            StreamItem::Rows {
                first_row,
                rows,
                payload,
            } => {
                on_batch(Progress {
                    columns: decoder.columns(),
                    first_row,
                    rows: &rows,
                    payload: &payload,
                    n_rows: request.n_rows,
                    attempt,
                });
                *next_start = decoder.next_row();
            }
            StreamItem::End(end) => {
                *next_start = end.end_row;
                if end.draining() {
                    return Err(ServeError::Rejected(format!(
                        "draining: stream truncated at row {}; resuming",
                        end.end_row
                    )));
                }
                return Ok(());
            }
        }
    }
}

/// [`fetch_with_retry`] with materialization: returns the complete
/// [`Response`] plus a [`FetchReport`] carrying the attempts used and
/// the reassembled payload bytes for byte-identity checks.
pub fn fetch_resumable(
    addr: impl ToSocketAddrs,
    request: &Request,
    policy: &RetryPolicy,
) -> Result<(Response, FetchReport), ServeError> {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut columns: Vec<ColumnSpec> = Vec::new();
    let attempts = fetch_with_retry(&addr, request, policy, |p| {
        if columns.is_empty() {
            columns = p.columns.to_vec();
        }
        rows.extend(p.rows.iter().cloned());
        payload.extend_from_slice(p.payload);
    })?;
    Ok((
        Response {
            seed: request.seed,
            condition: request.condition.clone(),
            columns,
            rows,
        },
        FetchReport { attempts, payload },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let policy = RetryPolicy::default();
        let a: Vec<u64> = (0..8).map(|r| policy.backoff_ms(r)).collect();
        let b: Vec<u64> = (0..8).map(|r| policy.backoff_ms(r)).collect();
        assert_eq!(a, b, "same policy, same delays");
        for (r, d) in a.iter().enumerate() {
            let exp = (policy.base_backoff_ms << r).min(policy.max_backoff_ms);
            assert!(*d >= exp / 2 && *d <= exp, "retry {r}: {d} outside [{}, {exp}]", exp / 2);
        }
        // Distinct seeds decorrelate.
        let other = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        assert_ne!(
            (0..8).map(|r| policy.backoff_ms(r)).collect::<Vec<_>>(),
            (0..8).map(|r| other.backoff_ms(r)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn retryable_classification() {
        assert!(retryable(&ServeError::Protocol("torn".into())));
        assert!(retryable(&ServeError::Io(std::io::Error::other("reset"))));
        assert!(retryable(&ServeError::Rejected("overloaded: busy".into())));
        assert!(retryable(&ServeError::Rejected("draining: bye".into())));
        assert!(!retryable(&ServeError::Rejected("unknown condition".into())));
        assert!(!retryable(&ServeError::CorruptModel {
            error: "x".into(),
            quarantined: None
        }));
    }
}
