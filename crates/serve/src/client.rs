//! The client side: send one request, validate and decode the
//! response stream.

use crate::proto::{
    read_frame, write_frame, ColumnSpec, Header, Request, MAGIC_DATA, MAGIC_END, MAGIC_HEADER,
    MAX_RESPONSE_FRAME,
};
use crate::ServeError;
use daisy_data::Value;
use daisy_wire::{Crc64, Reader};
use std::io::Read;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

/// A fully decoded, CRC-verified response to one accepted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request seed.
    pub seed: u64,
    /// Echo of the request condition.
    pub condition: Option<String>,
    /// The column contract the rows follow.
    pub columns: Vec<ColumnSpec>,
    /// Every streamed row, in order. Numerical cells are
    /// [`Value::Num`], categorical cells are [`Value::Cat`] codes into
    /// the matching [`ColumnSpec::Cat`] category list.
    pub rows: Vec<Vec<Value>>,
}

impl Response {
    /// Renders one cell for display/CSV: numerical cells as their
    /// shortest roundtrip form, categorical cells as their category
    /// name.
    pub fn render_cell(&self, col: usize, value: &Value) -> String {
        match (value, &self.columns[col]) {
            (Value::Num(x), _) => format!("{x}"),
            (Value::Cat(code), ColumnSpec::Cat { categories, .. }) => categories
                .get(*code as usize)
                .cloned()
                .unwrap_or_else(|| format!("<code {code}>")),
            (Value::Cat(code), ColumnSpec::Num { .. }) => format!("<code {code}>"),
        }
    }
}

/// Sends `request` to a `daisy serve` endpoint and returns the raw
/// response bytes, unparsed. The byte-identity tests and the
/// reproducibility smoke compare these buffers directly; [`fetch`]
/// layers decoding on top.
pub fn fetch_raw(addr: impl ToSocketAddrs, request: &Request) -> Result<Vec<u8>, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &request.encode())?;
    // Half-close: the server's request loop sees EOF after this
    // request and ends the connection once the response is flushed.
    stream.shutdown(Shutdown::Write)?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Sends `request` and decodes the response. A server-side rejection
/// surfaces as [`ServeError::Rejected`].
pub fn fetch(addr: impl ToSocketAddrs, request: &Request) -> Result<Response, ServeError> {
    decode_response(&fetch_raw(addr, request)?)
}

/// Decodes and verifies one complete response byte stream: header,
/// data frames (contiguous `first_row` ordering, cell-exact sizes),
/// and the end frame whose row total and payload CRC must match what
/// was streamed.
pub fn decode_response(bytes: &[u8]) -> Result<Response, ServeError> {
    let mut input = bytes;
    let header_body = read_frame(&mut input, MAX_RESPONSE_FRAME)?
        .ok_or_else(|| ServeError::Protocol("empty response".to_string()))?;
    if !header_body.starts_with(MAGIC_HEADER) {
        return Err(ServeError::Protocol(
            "response does not start with a header frame".to_string(),
        ));
    }
    let (seed, n_rows, condition, columns) = match Header::decode(&header_body)? {
        Header::Rejected { reason } => return Err(ServeError::Rejected(reason)),
        Header::Accepted {
            seed,
            n_rows,
            condition,
            columns,
        } => (seed, n_rows, condition, columns),
    };
    let row_bytes: usize = columns.iter().map(ColumnSpec::cell_bytes).sum();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut payload_crc = Crc64::new();
    let mut sealed = false;
    while let Some(body) = read_frame(&mut input, MAX_RESPONSE_FRAME)? {
        if body.starts_with(MAGIC_END) {
            let mut r = Reader::new(&body[4..]);
            let total = r.u64().map_err(ServeError::Protocol)?;
            let stored_crc = r.u64().map_err(ServeError::Protocol)?;
            if total != rows.len() as u64 {
                return Err(ServeError::Protocol(format!(
                    "end frame declares {total} rows but {} were streamed",
                    rows.len()
                )));
            }
            let actual = payload_crc.finish();
            if stored_crc != actual {
                return Err(ServeError::Protocol(format!(
                    "stream checksum mismatch (stored {stored_crc:016x}, computed {actual:016x})"
                )));
            }
            sealed = true;
            continue;
        }
        if sealed {
            return Err(ServeError::Protocol(
                "data after the end frame".to_string(),
            ));
        }
        if !body.starts_with(MAGIC_DATA) {
            return Err(ServeError::Protocol(
                "expected a data or end frame".to_string(),
            ));
        }
        let mut r = Reader::new(&body[4..]);
        let first_row = r.u64().map_err(ServeError::Protocol)?;
        let n = r.u64().map_err(ServeError::Protocol)? as usize;
        if first_row != rows.len() as u64 {
            return Err(ServeError::Protocol(format!(
                "data frame starts at row {first_row}, expected {}",
                rows.len()
            )));
        }
        let payload = r
            .take(n * row_bytes)
            .map_err(|e| ServeError::Protocol(format!("short data frame: {e}")))?;
        if !r.is_empty() {
            return Err(ServeError::Protocol(
                "trailing bytes after data frame payload".to_string(),
            ));
        }
        payload_crc.update(payload);
        let mut cells = Reader::new(payload);
        for _ in 0..n {
            let mut row = Vec::with_capacity(columns.len());
            for col in &columns {
                match col {
                    ColumnSpec::Num { .. } => {
                        row.push(Value::Num(cells.f64().map_err(ServeError::Protocol)?))
                    }
                    ColumnSpec::Cat { .. } => {
                        row.push(Value::Cat(cells.u32().map_err(ServeError::Protocol)?))
                    }
                }
            }
            rows.push(row);
        }
    }
    if !sealed {
        return Err(ServeError::Protocol(
            "response ended without an end frame".to_string(),
        ));
    }
    if rows.len() as u64 != n_rows {
        return Err(ServeError::Protocol(format!(
            "header promised {n_rows} rows, stream delivered {}",
            rows.len()
        )));
    }
    Ok(Response {
        seed,
        condition,
        columns,
        rows,
    })
}
