//! The admin plane: a read-only introspection listener beside the
//! serving listener.
//!
//! When `DAISY_SERVE_ADMIN=<addr>` is set, [`crate::Server::bind`]
//! opens a second TCP listener that answers plain-text HTTP `GET`s:
//!
//! - `/healthz` — model fingerprint (CRC-64 of the sealed file),
//!   uptime in logical terms (requests and rows served) and wall
//!   terms, and active connections against the slot cap.
//! - `/metrics` — Prometheus-style text exposition of the metrics
//!   registry plus the phase profiler
//!   ([`daisy_telemetry::expose::render`]).
//! - `/profile` — the hottest phases by self time, human-ordered.
//!
//! The plane is deliberately inert: it never touches the model, takes
//! no connection slot, and only *reads* atomics — so it stays
//! responsive when every serving slot is busy, and it cannot perturb
//! the reproducibility contract. It speaks just enough HTTP/1.0 for
//! `curl` and `daisy top`: one request per connection, then close.

use crate::ServeError;
use daisy_telemetry::{expose, metrics, profile, Stopwatch};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Largest admin request we will buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How many phases `/profile` lists.
const PROFILE_TOP_N: usize = 20;

/// Immutable facts about the serving process, captured at bind time
/// for `/healthz`.
#[derive(Debug)]
pub struct AdminInfo {
    /// CRC-64 of the sealed model file's bytes — the model identity a
    /// fleet operator compares across replicas.
    pub fingerprint: u64,
    /// Trainable parameter count of the served model.
    pub params: usize,
    /// Parameter bytes of the served model.
    pub bytes: usize,
    /// Output columns of the served model.
    pub columns: usize,
    /// Whether the model accepts conditioned requests.
    pub conditional: bool,
    /// The connection-slot cap ([`crate::ServeConfig::max_conn`]).
    pub max_conn: usize,
    started: Stopwatch,
}

impl AdminInfo {
    /// Captures the facts, starting the uptime clock now.
    pub fn new(
        fingerprint: u64,
        params: usize,
        bytes: usize,
        columns: usize,
        conditional: bool,
        max_conn: usize,
    ) -> AdminInfo {
        AdminInfo {
            fingerprint,
            params,
            bytes,
            columns,
            conditional,
            max_conn,
            started: Stopwatch::start(),
        }
    }
}

/// The admin listener. Created by [`AdminServer::bind`]; serves until
/// the process exits once [`AdminServer::spawn`] detaches it.
pub struct AdminServer {
    listener: TcpListener,
    info: Arc<AdminInfo>,
}

impl AdminServer {
    /// Binds the admin address (port 0 for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs, info: AdminInfo) -> std::io::Result<AdminServer> {
        Ok(AdminServer {
            listener: TcpListener::bind(addr)?,
            info: Arc::new(info),
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Detaches the accept loop onto its own thread and returns the
    /// bound address. Requests are answered serially — admin traffic
    /// is a human or a scraper, not a fleet — so a slow reader can
    /// never pile up introspection threads.
    pub fn spawn(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        // daisy-lint: allow(D003) -- admin listener thread; read-only introspection off the serving path
        std::thread::spawn(move || {
            for stream in self.listener.incoming() {
                match stream {
                    Ok(stream) => handle(stream, &self.info),
                    Err(_) => continue,
                }
            }
        });
        Ok(addr)
    }
}

/// Answers one admin connection: read one request, write one response,
/// close. All errors are swallowed — a broken scraper must never touch
/// the serving process.
fn handle(mut stream: TcpStream, info: &AdminInfo) {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let path = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_REQUEST_BYTES {
                    break None;
                }
                // Headers complete. A bare "GET /x\n" with a closed
                // write half instead ends at Ok(0) and is parsed from
                // whatever arrived.
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    break parse_request_path(&buf);
                }
            }
            Err(_) => break None,
        }
    }
    .or_else(|| parse_request_path(&buf));
    let (status, body) = match path.as_deref() {
        Some(path) => respond(path, info),
        None => (400, "bad request\n".to_string()),
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Bad Request",
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Extracts the request path from raw request bytes; `None` until a
/// full request line is present or when the method is not `GET`.
fn parse_request_path(buf: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(buf).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return Some(String::new()); // answered as 405 below
    }
    let path = parts.next()?;
    // Strip any query string; the endpoints take no parameters.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

/// Routes one admin path to its `(status, body)`. Pure except for
/// reading live metrics/profiler atomics — the testable core of the
/// endpoint.
pub fn respond(path: &str, info: &AdminInfo) -> (u16, String) {
    match path {
        "/healthz" => (200, healthz_body(info)),
        "/metrics" => (200, expose::render()),
        "/profile" => (200, profile_body()),
        "" => (405, "only GET is supported\n".to_string()),
        _ => (
            404,
            "not found; try /healthz, /metrics, or /profile\n".to_string(),
        ),
    }
}

/// The `/healthz` body: identity, uptime (logical and wall), and load.
fn healthz_body(info: &AdminInfo) -> String {
    let requests = metrics::counter("serve.requests").get();
    let rows = metrics::counter("serve.rows").get();
    let active = metrics::gauge("serve.active_conns").get();
    format!(
        "ok\n\
         fingerprint 0x{:016x}\n\
         model params={} bytes={} columns={} conditional={}\n\
         uptime_ms {:.0}\n\
         logical requests={} rows={}\n\
         active_conns {:.0}/{}\n",
        info.fingerprint,
        info.params,
        info.bytes,
        info.columns,
        info.conditional,
        info.started.elapsed_ms(),
        requests,
        rows,
        active,
        info.max_conn,
    )
}

/// The `/profile` body: hottest phases by self time.
fn profile_body() -> String {
    let mut out = format!(
        "phases by self time (profiling {})\n",
        if profile::profiling_enabled() {
            "on"
        } else {
            "off — set DAISY_PROFILE=1"
        }
    );
    let top = profile::top_by_self_time(PROFILE_TOP_N);
    if top.is_empty() {
        out.push_str("no phases recorded\n");
        return out;
    }
    out.push_str("     self_ms     total_ms      calls  phase\n");
    for p in top {
        out.push_str(&format!(
            "{:>12.1} {:>12.1} {:>10}  {}\n",
            p.self_ns as f64 / 1e6,
            p.total_ns as f64 / 1e6,
            p.calls,
            p.path
        ));
    }
    out
}

/// Fetches one admin endpoint as `daisy top`, tests, and scripts do:
/// connect, send a minimal `GET`, return the body of a 200 response.
/// Non-200 statuses are [`ServeError::Rejected`] with the status line.
pub fn fetch_admin(addr: impl ToSocketAddrs, path: &str) -> Result<String, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| ServeError::Protocol("admin response has no header/body split".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    if status_line.split_whitespace().nth(1) != Some("200") {
        return Err(ServeError::Rejected(format!(
            "admin request {path} failed: {status_line}"
        )));
    }
    Ok(body.to_string())
}
