//! The admin plane: an introspection-and-operations listener beside
//! the serving listener.
//!
//! When `DAISY_SERVE_ADMIN=<addr>` is set, [`crate::Server::bind`]
//! opens a second TCP listener that answers plain-text HTTP:
//!
//! - `GET /healthz` — the *active* model fingerprint (CRC-64 of the
//!   sealed file), reload generation, drain state, uptime in logical
//!   terms (requests and rows served) and wall terms, and active
//!   connections against the slot cap.
//! - `GET /metrics` — Prometheus-style text exposition of the metrics
//!   registry plus the phase profiler
//!   ([`daisy_telemetry::expose::render`]).
//! - `GET /profile` — the hottest phases by self time, human-ordered.
//! - `POST /reload` — revalidate the model file and hot-swap it in
//!   ([`crate::SharedModel::reload`]): in-flight streams finish on the
//!   old model, new connections decode the new one. A corrupt
//!   replacement is quarantined and answered with a 500 while the old
//!   model keeps serving.
//!
//! Reads never touch the model and take no connection slot — `GET`s
//! stay responsive when every serving slot is busy, and they cannot
//! perturb the reproducibility contract. The one mutation, `/reload`,
//! is atomic by construction (an `Arc` swap). The plane speaks just
//! enough HTTP/1.0 for `curl` and `daisy top`: one request per
//! connection, then close.

use crate::server::{ServeState, SharedModel};
use crate::ServeError;
use daisy_telemetry::{expose, metrics, profile, Stopwatch};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Largest admin request we will buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How many phases `/profile` lists.
const PROFILE_TOP_N: usize = 20;

/// The serving process's live state as the admin plane sees it: the
/// hot-swappable model, the drain lifecycle, and the slot cap.
#[derive(Debug)]
pub struct AdminInfo {
    model: Arc<SharedModel>,
    state: Arc<ServeState>,
    max_conn: usize,
    started: Stopwatch,
}

impl AdminInfo {
    /// Captures the handles, starting the uptime clock now.
    pub fn new(model: Arc<SharedModel>, state: Arc<ServeState>, max_conn: usize) -> AdminInfo {
        AdminInfo {
            model,
            state,
            max_conn,
            started: Stopwatch::start(),
        }
    }
}

/// The admin listener. Created by [`AdminServer::bind`]; serves until
/// the process exits once [`AdminServer::spawn`] detaches it.
pub struct AdminServer {
    listener: TcpListener,
    info: Arc<AdminInfo>,
}

impl AdminServer {
    /// Binds the admin address (port 0 for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs, info: AdminInfo) -> std::io::Result<AdminServer> {
        Ok(AdminServer {
            listener: TcpListener::bind(addr)?,
            info: Arc::new(info),
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Detaches the accept loop onto its own thread and returns the
    /// bound address. Requests are answered serially — admin traffic
    /// is a human or a scraper, not a fleet — so a slow reader can
    /// never pile up introspection threads.
    pub fn spawn(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        // daisy-lint: allow(D003) -- admin listener thread; introspection and reload off the serving path
        std::thread::spawn(move || {
            for stream in self.listener.incoming() {
                match stream {
                    Ok(stream) => handle(stream, &self.info),
                    Err(_) => continue,
                }
            }
        });
        Ok(addr)
    }
}

/// Answers one admin connection: read one request, write one response,
/// close. All errors are swallowed — a broken scraper must never touch
/// the serving process.
fn handle(mut stream: TcpStream, info: &AdminInfo) {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let request = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_REQUEST_BYTES {
                    break None;
                }
                // Headers complete. A bare "GET /x\n" with a closed
                // write half instead ends at Ok(0) and is parsed from
                // whatever arrived.
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    break parse_request_line(&buf);
                }
            }
            Err(_) => break None,
        }
    }
    .or_else(|| parse_request_line(&buf));
    let (status, body) = match request {
        Some((method, path)) => respond(&method, &path, info),
        None => (400, "bad request\n".to_string()),
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Bad Request",
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Extracts `(method, path)` from raw request bytes; `None` until a
/// full request line is present.
fn parse_request_line(buf: &[u8]) -> Option<(String, String)> {
    let text = std::str::from_utf8(buf).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?;
    // Strip any query string; the endpoints take no parameters.
    let path = path.split('?').next().unwrap_or(path).to_string();
    Some((method, path))
}

/// Routes one admin request to its `(status, body)` — the testable
/// core of the endpoint. Reads are pure except for live
/// metrics/profiler atomics; `POST /reload` is the one mutation.
pub fn respond(method: &str, path: &str, info: &AdminInfo) -> (u16, String) {
    match (method, path) {
        ("GET", "/healthz") => (200, healthz_body(info)),
        ("GET", "/metrics") => (200, expose::render()),
        ("GET", "/profile") => (200, profile_body()),
        ("POST", "/reload") => reload_body(info),
        ("GET", "/reload") => (405, "reload requires POST\n".to_string()),
        ("GET", _) => (
            404,
            "not found; try /healthz, /metrics, or /profile\n".to_string(),
        ),
        _ => (405, "only GET (and POST /reload) is supported\n".to_string()),
    }
}

/// The `/healthz` body: identity (live — reflects reloads), lifecycle,
/// uptime (logical and wall), and load.
fn healthz_body(info: &AdminInfo) -> String {
    let facts = info.model.facts();
    let requests = metrics::counter("serve.requests").get();
    let rows = metrics::counter("serve.rows").get();
    let active = metrics::gauge("serve.active_conns").get();
    format!(
        "ok\n\
         fingerprint 0x{:016x}\n\
         generation {}\n\
         draining {}\n\
         model params={} bytes={} columns={} conditional={}\n\
         uptime_ms {:.0}\n\
         logical requests={} rows={}\n\
         active_conns {:.0}/{}\n",
        facts.fingerprint,
        info.model.generation(),
        info.state.draining(),
        facts.params,
        facts.bytes,
        facts.columns,
        facts.conditional,
        info.started.elapsed_ms(),
        requests,
        rows,
        active,
        info.max_conn,
    )
}

/// The `POST /reload` body: swap outcome plus the now-active identity.
fn reload_body(info: &AdminInfo) -> (u16, String) {
    match info.model.reload() {
        Ok(report) => (
            200,
            format!(
                "reloaded\nfingerprint 0x{:016x}\ngeneration {}\nparams {}\n",
                report.fingerprint, report.generation, report.params
            ),
        ),
        Err(e) => (500, format!("reload failed: {e}\nold model still serving\n")),
    }
}

/// The `/profile` body: hottest phases by self time.
fn profile_body() -> String {
    let mut out = format!(
        "phases by self time (profiling {})\n",
        if profile::profiling_enabled() {
            "on"
        } else {
            "off — set DAISY_PROFILE=1"
        }
    );
    let top = profile::top_by_self_time(PROFILE_TOP_N);
    if top.is_empty() {
        out.push_str("no phases recorded\n");
        return out;
    }
    out.push_str("     self_ms     total_ms      calls  phase\n");
    for p in top {
        out.push_str(&format!(
            "{:>12.1} {:>12.1} {:>10}  {}\n",
            p.self_ns as f64 / 1e6,
            p.total_ns as f64 / 1e6,
            p.calls,
            p.path
        ));
    }
    out
}

/// Issues one admin request and returns the body of a 200 response.
/// Non-200 statuses are [`ServeError::Rejected`] with the status line
/// and body.
fn admin_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
) -> Result<String, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "{method} {path} HTTP/1.0\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| ServeError::Protocol("admin response has no header/body split".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    if status_line.split_whitespace().nth(1) != Some("200") {
        return Err(ServeError::Rejected(format!(
            "admin request {path} failed: {status_line}: {}",
            body.trim()
        )));
    }
    Ok(body.to_string())
}

/// Fetches one admin endpoint as `daisy top`, tests, and scripts do:
/// connect, send a minimal `GET`, return the body of a 200 response.
pub fn fetch_admin(addr: impl ToSocketAddrs, path: &str) -> Result<String, ServeError> {
    admin_request(addr, "GET", path)
}

/// `POST`s one admin endpoint — how `daisy reload` triggers a hot
/// model swap. Returns the body of a 200 response.
pub fn post_admin(addr: impl ToSocketAddrs, path: &str) -> Result<String, ServeError> {
    admin_request(addr, "POST", path)
}
