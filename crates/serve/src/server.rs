//! The server side: model loading with quarantine, hot reload, the
//! per-connection request loop, and the TCP accept loop with
//! slot-based backpressure, per-connection deadlines, and graceful
//! drain.

use crate::admin::{AdminInfo, AdminServer};
use crate::proto::{
    read_frame, write_frame, ColumnSpec, EndFrame, Header, Request, END_FLAG_DRAINING, FRAME_ROWS,
    MAGIC_DATA, MAX_REQUEST_FRAME,
};
use crate::shutdown;
use crate::ServeError;
use daisy_core::FittedSynthesizer;
use daisy_data::Column;
use daisy_telemetry::{
    duration_ms, emit_event, enabled, field, knobs, metrics, profile, schema, sleep_ms, Event,
    Stopwatch,
};
use daisy_wire::{crc64, quarantine, Crc64, Writer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Accept-loop poll interval: how often the nonblocking listener
/// re-checks for connections, free slots, and the drain flag.
const ACCEPT_POLL_MS: u64 = 5;

/// After the drain window expires, how long the accept loop waits for
/// connection threads to seal their streams with draining end frames
/// before giving up on them.
const DRAIN_STRAGGLER_GRACE_MS: f64 = 500.0;

/// Serving knobs, all overridable from the environment (see
/// `docs/SERVING.md`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent connection slots (`DAISY_SERVE_MAX_CONN`, default 4).
    /// Each slot costs one decoded model replica plus one generation
    /// batch of buffers; slots are acquired before `accept`, so excess
    /// clients wait in the TCP backlog (or are shed, see
    /// [`ServeConfig::shed`]).
    pub max_conn: usize,
    /// Per-request row cap (`DAISY_SERVE_MAX_ROWS`, default 100
    /// million). Requests above it are rejected with a typed error
    /// header; streaming keeps memory flat regardless, the cap only
    /// bounds how long one request can monopolize a slot.
    pub max_rows: u64,
    /// Per-connection socket deadline in milliseconds
    /// (`DAISY_SERVE_TIMEOUT_MS`, default 30 000; 0 disables). Applied
    /// as both read and write timeout on every accepted connection: a
    /// peer that makes no progress for this long — a slow-loris
    /// request, a stalled reader — gets a timeout error, its slot
    /// frees, and `serve.timeouts` counts the eviction.
    pub timeout_ms: u64,
    /// Graceful-drain window in milliseconds (`DAISY_SERVE_DRAIN_MS`,
    /// default 5 000). On SIGTERM the accept loop stops and in-flight
    /// requests get this long to finish; streams still running when it
    /// expires are sealed with a typed draining end frame
    /// ([`END_FLAG_DRAINING`]) telling the client exactly where to
    /// resume.
    pub drain_ms: u64,
    /// Load-shedding mode (`DAISY_SERVE_SHED=1`, default off). When
    /// every slot is busy, accept anyway and answer with a typed
    /// `overloaded` rejection header instead of parking the client in
    /// the TCP backlog; `serve.shed_requests` counts the rejections.
    pub shed: bool,
    /// Address for the read-only admin listener (`DAISY_SERVE_ADMIN`,
    /// default none). When set, [`Server::bind`] opens a second
    /// listener answering `/healthz`, `/metrics`, `/profile`, and
    /// `POST /reload` — see [`crate::admin`].
    pub admin_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_conn: 4,
            max_rows: 100_000_000,
            timeout_ms: 30_000,
            drain_ms: 5_000,
            shed: false,
            admin_addr: None,
        }
    }
}

impl ServeConfig {
    /// The defaults overridden by `DAISY_SERVE_MAX_CONN` /
    /// `DAISY_SERVE_MAX_ROWS` / `DAISY_SERVE_TIMEOUT_MS` /
    /// `DAISY_SERVE_DRAIN_MS` / `DAISY_SERVE_SHED` /
    /// `DAISY_SERVE_ADMIN`. Malformed numeric values warn on stderr
    /// and keep the default, matching the `DAISY_THREADS` convention
    /// (`DAISY_SERVE_TIMEOUT_MS=0` is legal: it disables the
    /// deadline).
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(v) = parse_env("DAISY_SERVE_MAX_CONN") {
            cfg.max_conn = v as usize;
        }
        if let Some(v) = parse_env("DAISY_SERVE_MAX_ROWS") {
            cfg.max_rows = v;
        }
        if let Some(v) = parse_env_allow_zero("DAISY_SERVE_TIMEOUT_MS") {
            cfg.timeout_ms = v;
        }
        if let Some(v) = parse_env("DAISY_SERVE_DRAIN_MS") {
            cfg.drain_ms = v;
        }
        if let Some(v) = knobs::raw("DAISY_SERVE_SHED") {
            cfg.shed = v == "1";
        }
        if let Some(addr) = knobs::raw("DAISY_SERVE_ADMIN") {
            if !addr.is_empty() {
                cfg.admin_addr = Some(addr);
            }
        }
        cfg
    }
}

/// Parses a positive integer from the environment; warns and returns
/// `None` on anything else.
fn parse_env(name: &str) -> Option<u64> {
    let raw = knobs::raw(name)?;
    match raw.parse::<u64>() {
        Ok(v) if v > 0 => Some(v),
        _ => {
            eprintln!("warning: {name}={raw} is not a positive integer; using the default");
            None
        }
    }
}

/// Parses a non-negative integer from the environment (0 is a legal
/// "disabled" value); warns and returns `None` on anything else.
fn parse_env_allow_zero(name: &str) -> Option<u64> {
    let raw = knobs::raw(name)?;
    match raw.parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: {name}={raw} is not an integer; using the default");
            None
        }
    }
}

/// Reads and validates a sealed model file. On any validation failure
/// the file is quarantined (renamed `*.corrupt-N`, bytes preserved for
/// forensics) and the error is returned typed — a serve process never
/// starts on, or panics over, a rotten model.
///
/// Returns the raw validated bytes alongside the decoded synthesizer:
/// the accept loop shares the bytes (`Arc<Vec<u8>>`) across
/// connections and each connection decodes its own replica, because
/// decoded models hold `Rc`-based parameters that must stay
/// thread-local.
pub fn load_model(path: &Path) -> Result<(Vec<u8>, FittedSynthesizer), ServeError> {
    let bytes = std::fs::read(path)?;
    match FittedSynthesizer::from_bytes(&bytes) {
        Ok(model) => Ok((bytes, model)),
        Err(error) => Err(ServeError::CorruptModel {
            error,
            quarantined: quarantine(path),
        }),
    }
}

/// Cross-connection serving state: the drain lifecycle flags every
/// request loop consults. One instance is shared by the accept loop,
/// every connection thread, and the admin plane; transports without a
/// lifecycle (stdio, in-memory tests) use an inert
/// [`ServeState::default`].
#[derive(Debug, Default)]
pub struct ServeState {
    draining: AtomicBool,
    drain_expired: AtomicBool,
}

impl ServeState {
    /// Enters the draining phase: the accept loop stops taking
    /// connections and every *new* request is rejected with a typed
    /// `draining` header, while requests already streaming continue.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// True once a drain has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Marks the drain window expired: in-flight streams seal
    /// themselves with a draining end frame at the next batch
    /// boundary.
    pub fn expire_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.drain_expired.store(true, Ordering::Relaxed);
    }

    /// True once the drain window has expired.
    pub fn drain_expired(&self) -> bool {
        self.drain_expired.load(Ordering::Relaxed)
    }
}

/// Identity of the model a [`SharedModel`] currently serves.
#[derive(Debug, Clone, Copy)]
pub struct ModelFacts {
    /// CRC-64 of the sealed model file's bytes.
    pub fingerprint: u64,
    /// Trainable parameter count.
    pub params: usize,
    /// Parameter bytes (one decoded replica's weight cost).
    pub bytes: usize,
    /// Output columns.
    pub columns: usize,
    /// Whether the model honors conditioned requests.
    pub conditional: bool,
}

fn model_facts(bytes: &[u8], model: &FittedSynthesizer) -> ModelFacts {
    ModelFacts {
        fingerprint: crc64(bytes),
        params: model.param_count(),
        bytes: model.param_bytes(),
        columns: model.output_template().n_attrs(),
        conditional: model.is_conditional(),
    }
}

/// The `Arc`'d model bytes behind the accept loop, swappable at
/// runtime: `POST /reload` on the admin plane (or
/// [`SharedModel::reload`] directly) revalidates the model file and
/// atomically replaces the bytes new connections decode. Connections
/// already serving keep their clone of the old `Arc`, so in-flight
/// streams finish on the model they started with — the response stays
/// a pure function of (model, request) even across a reload.
#[derive(Debug)]
pub struct SharedModel {
    path: PathBuf,
    bytes: Mutex<Arc<Vec<u8>>>,
    facts: Mutex<ModelFacts>,
    generation: AtomicU64,
    /// Armed by the fault plan: the next reload-failure quarantine
    /// behaves as if the rename failed (disk full), exercising the
    /// `quarantined: None` path without touching the filesystem.
    quarantine_fault: AtomicBool,
}

/// What a successful [`SharedModel::reload`] swapped in.
#[derive(Debug, Clone, Copy)]
pub struct ReloadReport {
    /// Fingerprint of the newly active model.
    pub fingerprint: u64,
    /// Reload generation after the swap (0 = the model served since
    /// bind; each successful reload increments it).
    pub generation: u64,
    /// Parameter count of the newly active model.
    pub params: usize,
}

impl SharedModel {
    /// Loads and validates `path` (quarantining a corrupt file, see
    /// [`load_model`]) into a swappable shared model.
    pub fn load(path: &Path) -> Result<(Arc<SharedModel>, FittedSynthesizer), ServeError> {
        let (bytes, model) = load_model(path)?;
        let facts = model_facts(&bytes, &model);
        Ok((
            Arc::new(SharedModel {
                path: path.to_path_buf(),
                bytes: Mutex::new(Arc::new(bytes)),
                facts: Mutex::new(facts),
                generation: AtomicU64::new(0),
                quarantine_fault: AtomicBool::new(false),
            }),
            model,
        ))
    }

    /// The currently active model bytes. Connections clone this `Arc`
    /// once at accept, pinning their replica across any later reload.
    pub fn current(&self) -> Arc<Vec<u8>> {
        Arc::clone(&self.bytes.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Identity of the currently active model.
    pub fn facts(&self) -> ModelFacts {
        *self.facts.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Successful reloads since bind.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The model file path this shared model reloads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Arms the disk-full-on-quarantine fault: the next failed reload
    /// reports `quarantined: None` instead of renaming the file.
    pub fn arm_quarantine_failure(&self) {
        self.quarantine_fault.store(true, Ordering::Relaxed);
    }

    /// Re-reads and revalidates the model file, atomically swapping it
    /// in on success. On a corrupt replacement the file is quarantined
    /// (`*.corrupt-N`) and the **old model keeps serving** — a bad
    /// push can cost at most the reload attempt, never the fleet.
    /// Either way the attempt is recorded (`serve.reloads` /
    /// [`schema::SERVE_RELOAD`]).
    pub fn reload(&self) -> Result<ReloadReport, ServeError> {
        let outcome = std::fs::read(&self.path)
            .map_err(ServeError::Io)
            .and_then(|bytes| match FittedSynthesizer::from_bytes(&bytes) {
                Ok(model) => Ok((bytes, model)),
                Err(error) => Err(ServeError::CorruptModel {
                    error,
                    quarantined: if self.quarantine_fault.swap(false, Ordering::Relaxed) {
                        None
                    } else {
                        quarantine(&self.path)
                    },
                }),
            });
        let report = match outcome {
            Ok((bytes, model)) => {
                let facts = model_facts(&bytes, &model);
                *self.bytes.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(bytes);
                *self.facts.lock().unwrap_or_else(|e| e.into_inner()) = facts;
                let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
                metrics::counter("serve.reloads").add(1);
                Ok(ReloadReport {
                    fingerprint: facts.fingerprint,
                    generation,
                    params: facts.params,
                })
            }
            Err(e) => Err(e),
        };
        if enabled() {
            let facts = self.facts();
            emit_event(
                Event::new(
                    schema::SERVE_RELOAD,
                    vec![
                        field("ok", report.is_ok()),
                        field("generation", self.generation()),
                        field("fingerprint", facts.fingerprint),
                        field(
                            "error",
                            report
                                .as_ref()
                                .err()
                                .map(|e| e.to_string())
                                .unwrap_or_else(|| "-".to_string()),
                        ),
                    ],
                )
                .non_deterministic(),
            );
            daisy_telemetry::emit_metrics_snapshot();
        }
        report
    }
}

/// The column contract of `model`'s output, in wire form.
fn column_specs(model: &FittedSynthesizer) -> Vec<ColumnSpec> {
    let template = model.output_template();
    template
        .schema()
        .attrs()
        .iter()
        .zip(template.columns())
        .map(|(attr, col)| match col {
            Column::Num(_) => ColumnSpec::Num {
                name: attr.name.clone(),
            },
            Column::Cat { categories, .. } => ColumnSpec::Cat {
                name: attr.name.clone(),
                categories: categories.clone(),
            },
        })
        .collect()
}

/// Serves one connection: a loop of `request frame → response frames`
/// until the peer closes its write half, a deadline fires, or a drain
/// truncates the stream. Returns the total rows streamed over the
/// connection's lifetime.
///
/// This is the whole data path — the TCP accept loop, the stdio mode,
/// and the in-memory tests all call it, so every transport shares one
/// byte-exact implementation. `conn` only labels telemetry; nothing
/// connection-specific enters the response bytes. `state` carries the
/// drain lifecycle (pass an inert default for transports without
/// one).
pub fn serve_connection(
    model: &FittedSynthesizer,
    conn: u64,
    cfg: &ServeConfig,
    state: &ServeState,
    input: &mut impl Read,
    output: &mut impl Write,
) -> Result<u64, ServeError> {
    register_serve_metrics();
    let mut tally = ConnTally { requests: 0 };
    let mut total_rows = 0u64;
    while let Some(body) = read_frame(input, MAX_REQUEST_FRAME)? {
        let request = Request::decode(&body)?;
        tally.requests += 1;
        let watch = Stopwatch::start();
        if enabled() {
            emit_event(
                Event::new(
                    schema::SERVE_REQUEST_START,
                    vec![
                        field("conn", conn),
                        field("seed", request.seed),
                        field("n_rows", request.n_rows),
                        field("start_row", request.start_row),
                        field(
                            "condition",
                            request.condition.as_deref().unwrap_or("-").to_string(),
                        ),
                    ],
                )
                .non_deterministic(),
            );
        }
        let answered = {
            daisy_telemetry::phase_scope!("serve_request");
            answer_request(model, cfg, state, &request, output)
        };
        metrics::counter("serve.requests").add(1);
        metrics::histogram("serve.request_us").observe((watch.elapsed_ms() * 1000.0) as u64);
        if let Ok(answer) = &answered {
            metrics::counter("serve.rows").add(answer.rows);
            metrics::histogram("serve.rows_per_request").observe(answer.rows);
            total_rows += answer.rows;
        }
        if enabled() {
            emit_event(
                Event::new(
                    schema::SERVE_REQUEST_END,
                    vec![
                        field("conn", conn),
                        field("rows", answered.as_ref().map(|a| a.rows).unwrap_or(0)),
                        field("ok", answered.is_ok()),
                    ],
                )
                .non_deterministic()
                .with_wall(vec![field("ms", watch.elapsed_ms())]),
            );
            // The server runs until it is terminated, so there is no
            // end-of-run flush: snapshot the serve.* metrics after every
            // request to keep the trace's last snapshot current.
            daisy_telemetry::emit_metrics_snapshot();
            if profile::profiling_enabled() {
                daisy_telemetry::emit_profile_snapshot();
            }
        }
        let answer = answered?;
        output.flush()?;
        if answer.truncated {
            // The stream was sealed with a draining end frame; the
            // connection is done — the client resumes elsewhere.
            break;
        }
    }
    Ok(total_rows)
}

/// Interns every `serve.*` metric so snapshots and the `/metrics`
/// exposition list them (at zero) from the first request on, whichever
/// transport — TCP, stdio, or in-memory — touched the data path first.
fn register_serve_metrics() {
    metrics::counter("serve.requests");
    metrics::counter("serve.rows");
    metrics::counter("serve.timeouts");
    metrics::counter("serve.drained");
    metrics::counter("serve.reloads");
    metrics::counter("serve.resumed_requests");
    metrics::counter("serve.shed_requests");
    metrics::gauge("serve.active_conns");
    metrics::histogram("serve.rows_per_request");
    metrics::histogram("serve.request_us");
    metrics::histogram("serve.requests_per_conn");
}

/// Observes the request-pipelining depth — how many requests one
/// client issued over its connection's lifetime — when the connection
/// ends for any reason, including protocol errors and disconnects.
struct ConnTally {
    requests: u64,
}

impl Drop for ConnTally {
    fn drop(&mut self) {
        metrics::histogram("serve.requests_per_conn").observe(self.requests);
        if enabled() {
            daisy_telemetry::emit_metrics_snapshot();
        }
    }
}

/// What [`answer_request`] did with one request.
struct Answer {
    /// Rows streamed (0 for rejections).
    rows: u64,
    /// The stream was sealed early with a draining end frame; the
    /// connection should close.
    truncated: bool,
}

/// Answers one decoded request: a rejection header, or an accepted
/// header followed by data frames and the sealing end frame.
fn answer_request(
    model: &FittedSynthesizer,
    cfg: &ServeConfig,
    state: &ServeState,
    request: &Request,
    output: &mut impl Write,
) -> Result<Answer, ServeError> {
    fn reject(output: &mut impl Write, reason: String) -> Result<Answer, ServeError> {
        write_frame(output, &Header::Rejected { reason }.encode())?;
        output.flush()?;
        Ok(Answer {
            rows: 0,
            truncated: false,
        })
    }
    if state.draining() {
        // Requests already streaming finish (they never re-enter
        // here); new ones are told to go elsewhere, typed.
        return reject(
            output,
            "draining: server is shutting down; resume against another replica".to_string(),
        );
    }
    if request.n_rows > cfg.max_rows {
        return reject(
            output,
            format!(
                "{} rows exceeds the per-request cap of {} (DAISY_SERVE_MAX_ROWS)",
                request.n_rows, cfg.max_rows
            ),
        );
    }
    if request.start_row > request.n_rows {
        return reject(
            output,
            format!(
                "start_row {} is past the end of the {}-row stream",
                request.start_row, request.n_rows
            ),
        );
    }
    let mut stream = match model.try_stream_rows(
        request.n_rows as usize,
        request.seed,
        request.condition.as_deref(),
    ) {
        Ok(stream) => stream,
        Err(reason) => return reject(output, reason),
    };
    if request.start_row > 0 {
        stream.fast_forward(request.start_row as usize);
        metrics::counter("serve.resumed_requests").add(1);
    }
    let header = Header::Accepted {
        seed: request.seed,
        n_rows: request.n_rows,
        start_row: request.start_row,
        condition: request.condition.clone(),
        columns: column_specs(model),
    };
    write_frame(output, &header.encode())?;

    // Data frames: one per generation batch, never a whole table. The
    // incremental CRC seals the concatenated row payloads so the
    // client can verify the stream end to end without buffering it.
    // Row positions are absolute: a resumed stream picks up exactly
    // where `start_row` says, on the same batch grid as a fresh one.
    let mut payload_crc = Crc64::new();
    let mut next_row = request.start_row;
    loop {
        if state.drain_expired() {
            // The drain window closed mid-stream: seal what was sent
            // with a typed draining end frame so the client can verify
            // every delivered frame and resume at `next_row`.
            let end = EndFrame {
                end_row: next_row,
                payload_crc: payload_crc.finish(),
                flags: END_FLAG_DRAINING,
            };
            write_frame(output, &end.encode())?;
            output.flush()?;
            metrics::counter("serve.drained").add(1);
            return Ok(Answer {
                rows: next_row - request.start_row,
                truncated: true,
            });
        }
        let Some(batch) = stream.next_batch() else {
            break;
        };
        let n = batch.n_rows();
        debug_assert!(n <= FRAME_ROWS);
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC_DATA);
        w.u64(next_row);
        w.u64(n as u64);
        let payload_start = w.buf.len();
        for i in 0..n {
            for col in batch.columns() {
                match col {
                    Column::Num(v) => w.f64(v[i]),
                    Column::Cat { codes, .. } => w.u32(codes[i]),
                }
            }
        }
        payload_crc.update(&w.buf[payload_start..]);
        write_frame(output, &w.buf)?;
        next_row += n as u64;
    }
    let end = EndFrame {
        end_row: next_row,
        payload_crc: payload_crc.finish(),
        flags: 0,
    };
    write_frame(output, &end.encode())?;
    output.flush()?;
    Ok(Answer {
        rows: next_row - request.start_row,
        truncated: false,
    })
}

/// A long-lived TCP serving process over one sealed model file.
pub struct Server {
    listener: TcpListener,
    model: Arc<SharedModel>,
    cfg: ServeConfig,
    admin_addr: Option<SocketAddr>,
    state: Arc<ServeState>,
    slots: Arc<Mutex<usize>>,
}

impl Server {
    /// Loads and validates the model (corrupt files are quarantined,
    /// see [`load_model`]), binds `addr` (use port 0 for an ephemeral
    /// port) and reports readiness via a [`schema::SERVE_START`]
    /// event. When [`ServeConfig::admin_addr`] is set, the read-only
    /// admin listener ([`crate::admin`]) is bound and spawned here too,
    /// so `/healthz` answers even before [`Server::run`] accepts
    /// serving traffic. The server does not accept serving connections
    /// until [`Server::run`].
    pub fn bind(
        model_path: impl AsRef<Path>,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> Result<Server, ServeError> {
        let (shared, model) = SharedModel::load(model_path.as_ref())?;
        let listener = TcpListener::bind(addr)?;
        register_serve_metrics();
        let state = Arc::new(ServeState::default());
        let admin_addr = match &cfg.admin_addr {
            Some(admin) => {
                let info = AdminInfo::new(Arc::clone(&shared), Arc::clone(&state), cfg.max_conn);
                // daisy-lint: allow(D003) -- admin listener thread; read-only introspection off the serving path
                Some(AdminServer::bind(admin.as_str(), info)?.spawn()?)
            }
            None => None,
        };
        if enabled() {
            emit_event(
                Event::new(
                    schema::SERVE_START,
                    vec![
                        field("params", model.param_count()),
                        field("bytes", model.param_bytes()),
                        field("columns", model.output_template().n_attrs()),
                        field("conditional", model.is_conditional()),
                        field("max_conn", cfg.max_conn),
                        field("max_rows", cfg.max_rows),
                    ],
                )
                .non_deterministic(),
            );
        }
        Ok(Server {
            listener,
            model: shared,
            cfg,
            admin_addr,
            state,
            slots: Arc::new(Mutex::new(0)),
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound admin address, when [`ServeConfig::admin_addr`] was
    /// set (the real port when bound with port 0).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The hot-swappable model behind the accept loop — reload it via
    /// [`SharedModel::reload`] or the admin plane's `POST /reload`.
    pub fn shared_model(&self) -> Arc<SharedModel> {
        Arc::clone(&self.model)
    }

    /// The drain lifecycle shared with every connection.
    /// [`ServeState::begin_drain`] triggers the same graceful sequence
    /// SIGTERM does — how tests drive the drain in-process.
    pub fn drain_handle(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Connections currently holding slots on *this* server (the
    /// `serve.active_conns` gauge is process-global; this count is
    /// per-instance, which is what leak tests want).
    pub fn active_connections(&self) -> usize {
        *self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Accepts and serves connections until the listener fails or a
    /// drain is requested (SIGTERM via
    /// [`shutdown::install_sigterm_handler`], or
    /// [`ServeState::begin_drain`]).
    ///
    /// Backpressure: `accept` waits for a free connection slot, so at
    /// most `max_conn` connections are ever live — each holding
    /// one decoded model replica — and excess clients queue in the
    /// kernel's TCP backlog at zero heap cost (with
    /// [`ServeConfig::shed`], they are instead answered with a typed
    /// `overloaded` rejection). A slot is released when its connection
    /// thread finishes, including on client disconnect, deadline
    /// expiry, or protocol error.
    ///
    /// On drain: in-flight requests get [`ServeConfig::drain_ms`] to
    /// finish, stragglers seal their streams with a draining end
    /// frame, and `run` returns `Ok(())` — the CLI then exits with the
    /// documented code (143).
    pub fn run(&self) -> Result<(), ServeError> {
        self.listener.set_nonblocking(true)?;
        let mut conn_id = 0u64;
        'accept: loop {
            // Slot-gated mode parks excess clients in the TCP backlog:
            // wait until a slot is free before accepting (the slot
            // itself is acquired after accept — this loop is the sole
            // acquirer, so the observed capacity cannot be stolen).
            // Holding no slot while parked keeps `serve.active_conns`
            // equal to live connections, not live + one idle acceptor.
            // Shed mode accepts immediately and rejects when no slot
            // frees instantly.
            if !self.cfg.shed {
                loop {
                    if self.drain_requested() {
                        break 'accept;
                    }
                    if self.active_connections() < self.cfg.max_conn {
                        break;
                    }
                    sleep_ms(ACCEPT_POLL_MS);
                }
            }
            let stream = loop {
                if self.drain_requested() {
                    break 'accept;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => break stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        sleep_ms(ACCEPT_POLL_MS)
                    }
                    Err(e) => return Err(ServeError::Io(e)),
                }
            };
            // The listener is nonblocking; the accepted stream must not
            // inherit that (reads would spin instead of block).
            stream.set_nonblocking(false)?;
            if self.cfg.timeout_ms > 0 {
                let deadline = Some(duration_ms(self.cfg.timeout_ms));
                stream.set_read_timeout(deadline)?;
                stream.set_write_timeout(deadline)?;
            }
            let guard = match self.try_acquire_slot() {
                Some(guard) => guard,
                None if self.cfg.shed => {
                    shed_connection(stream, &self.cfg);
                    continue;
                }
                // Unreachable in practice — capacity was observed just
                // above and this loop is the only acquirer — but if it
                // ever happens, park like the backlog would have.
                None => loop {
                    if self.drain_requested() {
                        break 'accept; // drops the accepted stream
                    }
                    match self.try_acquire_slot() {
                        Some(guard) => break guard,
                        None => sleep_ms(ACCEPT_POLL_MS),
                    }
                },
            };
            let model_bytes = self.model.current();
            let cfg = self.cfg.clone();
            let state = Arc::clone(&self.state);
            let conn = conn_id;
            conn_id += 1;
            // The serving plane is explicitly off the deterministic
            // compute path: responses are per-request reproducible by
            // seeding, not by scheduling.
            // daisy-lint: allow(D003) -- connection threads; responses are reproducible by per-request seeding, not scheduling
            std::thread::spawn(move || {
                let _guard = guard;
                serve_tcp_connection(&model_bytes, conn, &cfg, &state, stream);
            });
        }
        self.drain();
        Ok(())
    }

    /// Lets in-flight connections finish inside the drain window, then
    /// expires the window (streams seal themselves with draining end
    /// frames) and gives stragglers a short grace to do so.
    fn drain(&self) {
        self.state.begin_drain();
        let active = self.active_connections();
        if enabled() {
            emit_event(
                Event::new(
                    schema::SERVE_DRAIN,
                    vec![
                        field("active", active),
                        field("drain_ms", self.cfg.drain_ms),
                    ],
                )
                .non_deterministic(),
            );
        }
        let watch = Stopwatch::start();
        while self.active_connections() > 0 && watch.elapsed_ms() < self.cfg.drain_ms as f64 {
            sleep_ms(ACCEPT_POLL_MS);
        }
        self.state.expire_drain();
        let grace = Stopwatch::start();
        while self.active_connections() > 0 && grace.elapsed_ms() < DRAIN_STRAGGLER_GRACE_MS {
            sleep_ms(ACCEPT_POLL_MS);
        }
        if enabled() {
            daisy_telemetry::emit_metrics_snapshot();
        }
    }

    fn drain_requested(&self) -> bool {
        if shutdown::sigterm_received() {
            // Propagate the signal into the shared state so connection
            // threads and the admin plane see it too.
            self.state.begin_drain();
        }
        self.state.draining()
    }

    fn try_acquire_slot(&self) -> Option<SlotGuard> {
        let mut held = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if *held >= self.cfg.max_conn {
            return None;
        }
        *held += 1;
        metrics::gauge("serve.active_conns").set(*held as f64);
        Some(SlotGuard {
            slots: Arc::clone(&self.slots),
        })
    }
}

/// Answers an accepted-but-unserveable connection in shed mode: a
/// typed `overloaded` rejection header, counted, then close. The
/// request frame (if any) is never read — the client learns to back
/// off in one round trip.
fn shed_connection(mut stream: TcpStream, cfg: &ServeConfig) {
    metrics::counter("serve.shed_requests").add(1);
    let reason = format!(
        "overloaded: all {} connection slots are busy; retry with backoff",
        cfg.max_conn
    );
    let _ = write_frame(&mut stream, &Header::Rejected { reason }.encode());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain whatever request bytes the client already sent before
    // closing. Dropping the socket with unread data makes the kernel
    // send RST, which can destroy the rejection header before the
    // client reads it — the client would see "connection reset"
    // instead of the typed "overloaded" answer. The read deadline set
    // at accept bounds this drain against peers that never hang up.
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Releases a connection slot (and updates the active-connections
/// gauge) when the connection thread exits for any reason — normal
/// completion, client disconnect, deadline expiry, protocol error, or
/// panic.
struct SlotGuard {
    slots: Arc<Mutex<usize>>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let mut held = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        *held = held.saturating_sub(1);
        metrics::gauge("serve.active_conns").set(*held as f64);
    }
}

/// True when `e` is a socket-deadline expiry (the two kinds Unix read/
/// write timeouts surface as).
fn is_deadline(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

/// Decodes a thread-local model replica and runs the request loop on
/// one TCP connection. Errors end the connection (the slot frees via
/// the caller's guard), never the server.
fn serve_tcp_connection(
    model_bytes: &[u8],
    conn: u64,
    cfg: &ServeConfig,
    state: &ServeState,
    stream: TcpStream,
) {
    let model = match FittedSynthesizer::from_bytes(model_bytes) {
        Ok(model) => model,
        // Unreachable in practice: the bytes were validated at bind or
        // reload.
        Err(e) => {
            eprintln!("connection {conn}: model replica decode failed: {e}");
            return;
        }
    };
    let mut reader = &stream;
    let mut writer = &stream;
    if let Err(e) = serve_connection(&model, conn, cfg, state, &mut reader, &mut writer) {
        if is_deadline(&e) {
            // A stalled peer hit the per-connection deadline: count the
            // eviction — the slot frees right after this returns.
            metrics::counter("serve.timeouts").add(1);
            eprintln!(
                "connection {conn}: deadline of {} ms expired; connection evicted",
                cfg.timeout_ms
            );
        } else if !matches!(&e, ServeError::Io(io) if io.kind() == std::io::ErrorKind::BrokenPipe) {
            // A vanished client is normal churn; anything else is logged.
            eprintln!("connection {conn}: {e}");
        }
    }
}

/// Serves exactly one connection over stdin/stdout — the `daisy serve
/// --stdio` mode for pipeline use (one process per client, no socket).
/// No deadlines or drain lifecycle apply: the pipe's lifetime is the
/// process's.
pub fn serve_stdio(model_path: impl AsRef<Path>, cfg: &ServeConfig) -> Result<u64, ServeError> {
    let (_bytes, model) = load_model(model_path.as_ref())?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    serve_connection(&model, 0, cfg, &ServeState::default(), &mut input, &mut output)
}
