//! The server side: model loading with quarantine, the per-connection
//! request loop, and the TCP accept loop with slot-based backpressure.

use crate::proto::{
    read_frame, write_frame, ColumnSpec, Header, Request, FRAME_ROWS, MAGIC_DATA, MAGIC_END,
    MAX_REQUEST_FRAME,
};
use crate::admin::{AdminInfo, AdminServer};
use crate::ServeError;
use daisy_core::FittedSynthesizer;
use daisy_data::Column;
use daisy_telemetry::{emit_event, enabled, field, metrics, profile, schema, Event, Stopwatch};
use daisy_wire::{crc64, quarantine, Crc64, Writer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

/// Serving knobs, all overridable from the environment (see
/// `docs/SERVING.md`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent connection slots (`DAISY_SERVE_MAX_CONN`, default 4).
    /// Each slot costs one decoded model replica plus one generation
    /// batch of buffers; slots are acquired before `accept`, so excess
    /// clients wait in the TCP backlog.
    pub max_conn: usize,
    /// Per-request row cap (`DAISY_SERVE_MAX_ROWS`, default 100
    /// million). Requests above it are rejected with a typed error
    /// header; streaming keeps memory flat regardless, the cap only
    /// bounds how long one request can monopolize a slot.
    pub max_rows: u64,
    /// Address for the read-only admin listener (`DAISY_SERVE_ADMIN`,
    /// default none). When set, [`Server::bind`] opens a second
    /// listener answering `/healthz`, `/metrics`, and `/profile` —
    /// see [`crate::admin`].
    pub admin_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_conn: 4,
            max_rows: 100_000_000,
            admin_addr: None,
        }
    }
}

impl ServeConfig {
    /// The defaults overridden by `DAISY_SERVE_MAX_CONN` /
    /// `DAISY_SERVE_MAX_ROWS` / `DAISY_SERVE_ADMIN`. Malformed or zero
    /// numeric values warn on stderr and keep the default, matching
    /// the `DAISY_THREADS` convention.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(v) = parse_env("DAISY_SERVE_MAX_CONN") {
            cfg.max_conn = v as usize;
        }
        if let Some(v) = parse_env("DAISY_SERVE_MAX_ROWS") {
            cfg.max_rows = v;
        }
        if let Ok(addr) = std::env::var("DAISY_SERVE_ADMIN") {
            if !addr.is_empty() {
                cfg.admin_addr = Some(addr);
            }
        }
        cfg
    }
}

/// Parses a positive integer from the environment; warns and returns
/// `None` on anything else.
fn parse_env(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.parse::<u64>() {
        Ok(v) if v > 0 => Some(v),
        _ => {
            eprintln!("warning: {name}={raw} is not a positive integer; using the default");
            None
        }
    }
}

/// Reads and validates a sealed model file. On any validation failure
/// the file is quarantined (renamed `*.corrupt-N`, bytes preserved for
/// forensics) and the error is returned typed — a serve process never
/// starts on, or panics over, a rotten model.
///
/// Returns the raw validated bytes alongside the decoded synthesizer:
/// the accept loop shares the bytes (`Arc<Vec<u8>>`) across
/// connections and each connection decodes its own replica, because
/// decoded models hold `Rc`-based parameters that must stay
/// thread-local.
pub fn load_model(path: &Path) -> Result<(Vec<u8>, FittedSynthesizer), ServeError> {
    let bytes = std::fs::read(path)?;
    match FittedSynthesizer::from_bytes(&bytes) {
        Ok(model) => Ok((bytes, model)),
        Err(error) => Err(ServeError::CorruptModel {
            error,
            quarantined: quarantine(path),
        }),
    }
}

/// The column contract of `model`'s output, in wire form.
fn column_specs(model: &FittedSynthesizer) -> Vec<ColumnSpec> {
    let template = model.output_template();
    template
        .schema()
        .attrs()
        .iter()
        .zip(template.columns())
        .map(|(attr, col)| match col {
            Column::Num(_) => ColumnSpec::Num {
                name: attr.name.clone(),
            },
            Column::Cat { categories, .. } => ColumnSpec::Cat {
                name: attr.name.clone(),
                categories: categories.clone(),
            },
        })
        .collect()
}

/// Serves one connection: a loop of `request frame → response frames`
/// until the peer closes its write half. Returns the total rows
/// streamed over the connection's lifetime.
///
/// This is the whole data path — the TCP accept loop, the stdio mode,
/// and the in-memory tests all call it, so every transport shares one
/// byte-exact implementation. `conn` only labels telemetry; nothing
/// connection-specific enters the response bytes.
pub fn serve_connection(
    model: &FittedSynthesizer,
    conn: u64,
    cfg: &ServeConfig,
    input: &mut impl Read,
    output: &mut impl Write,
) -> Result<u64, ServeError> {
    register_serve_metrics();
    let mut tally = ConnTally { requests: 0 };
    let mut total_rows = 0u64;
    while let Some(body) = read_frame(input, MAX_REQUEST_FRAME)? {
        let request = Request::decode(&body)?;
        tally.requests += 1;
        let watch = Stopwatch::start();
        if enabled() {
            emit_event(
                Event::new(
                    schema::SERVE_REQUEST_START,
                    vec![
                        field("conn", conn),
                        field("seed", request.seed),
                        field("n_rows", request.n_rows),
                        field(
                            "condition",
                            request.condition.as_deref().unwrap_or("-").to_string(),
                        ),
                    ],
                )
                .non_deterministic(),
            );
        }
        let streamed = {
            daisy_telemetry::phase_scope!("serve_request");
            answer_request(model, cfg, &request, output)
        };
        metrics::counter("serve.requests").add(1);
        metrics::histogram("serve.request_us").observe((watch.elapsed_ms() * 1000.0) as u64);
        if let Ok(rows) = &streamed {
            metrics::counter("serve.rows").add(*rows);
            metrics::histogram("serve.rows_per_request").observe(*rows);
            total_rows += *rows;
        }
        if enabled() {
            emit_event(
                Event::new(
                    schema::SERVE_REQUEST_END,
                    vec![
                        field("conn", conn),
                        field("rows", *streamed.as_ref().unwrap_or(&0)),
                        field("ok", streamed.is_ok()),
                    ],
                )
                .non_deterministic()
                .with_wall(vec![field("ms", watch.elapsed_ms())]),
            );
            // The server runs until it is terminated, so there is no
            // end-of-run flush: snapshot the serve.* metrics after every
            // request to keep the trace's last snapshot current.
            daisy_telemetry::emit_metrics_snapshot();
            if profile::profiling_enabled() {
                daisy_telemetry::emit_profile_snapshot();
            }
        }
        streamed?;
        output.flush()?;
    }
    Ok(total_rows)
}

/// Interns every `serve.*` metric so snapshots and the `/metrics`
/// exposition list them (at zero) from the first request on, whichever
/// transport — TCP, stdio, or in-memory — touched the data path first.
fn register_serve_metrics() {
    metrics::counter("serve.requests");
    metrics::counter("serve.rows");
    metrics::gauge("serve.active_conns");
    metrics::histogram("serve.rows_per_request");
    metrics::histogram("serve.request_us");
    metrics::histogram("serve.requests_per_conn");
}

/// Observes the request-pipelining depth — how many requests one
/// client issued over its connection's lifetime — when the connection
/// ends for any reason, including protocol errors and disconnects.
struct ConnTally {
    requests: u64,
}

impl Drop for ConnTally {
    fn drop(&mut self) {
        metrics::histogram("serve.requests_per_conn").observe(self.requests);
        if enabled() {
            daisy_telemetry::emit_metrics_snapshot();
        }
    }
}

/// Answers one decoded request: a rejection header, or an accepted
/// header followed by data frames and the sealing end frame. Returns
/// the rows streamed (0 for rejections).
fn answer_request(
    model: &FittedSynthesizer,
    cfg: &ServeConfig,
    request: &Request,
    output: &mut impl Write,
) -> Result<u64, ServeError> {
    if request.n_rows > cfg.max_rows {
        let reason = format!(
            "{} rows exceeds the per-request cap of {} (DAISY_SERVE_MAX_ROWS)",
            request.n_rows, cfg.max_rows
        );
        write_frame(output, &Header::Rejected { reason }.encode())?;
        output.flush()?;
        return Ok(0);
    }
    let mut stream = match model.try_stream_rows(
        request.n_rows as usize,
        request.seed,
        request.condition.as_deref(),
    ) {
        Ok(stream) => stream,
        Err(reason) => {
            write_frame(output, &Header::Rejected { reason }.encode())?;
            output.flush()?;
            return Ok(0);
        }
    };
    let header = Header::Accepted {
        seed: request.seed,
        n_rows: request.n_rows,
        condition: request.condition.clone(),
        columns: column_specs(model),
    };
    write_frame(output, &header.encode())?;

    // Data frames: one per generation batch, never a whole table. The
    // incremental CRC seals the concatenated row payloads so the
    // client can verify the stream end to end without buffering it.
    let mut payload_crc = Crc64::new();
    let mut first_row = 0u64;
    while let Some(batch) = stream.next_batch() {
        let n = batch.n_rows();
        debug_assert!(n <= FRAME_ROWS);
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC_DATA);
        w.u64(first_row);
        w.u64(n as u64);
        let payload_start = w.buf.len();
        for i in 0..n {
            for col in batch.columns() {
                match col {
                    Column::Num(v) => w.f64(v[i]),
                    Column::Cat { codes, .. } => w.u32(codes[i]),
                }
            }
        }
        payload_crc.update(&w.buf[payload_start..]);
        write_frame(output, &w.buf)?;
        first_row += n as u64;
    }
    let mut end = Writer::default();
    end.buf.extend_from_slice(MAGIC_END);
    end.u64(first_row);
    end.u64(payload_crc.finish());
    write_frame(output, &end.buf)?;
    output.flush()?;
    Ok(first_row)
}

/// A long-lived TCP serving process over one sealed model file.
pub struct Server {
    listener: TcpListener,
    model_bytes: Arc<Vec<u8>>,
    cfg: ServeConfig,
    admin_addr: Option<SocketAddr>,
}

impl Server {
    /// Loads and validates the model (corrupt files are quarantined,
    /// see [`load_model`]), binds `addr` (use port 0 for an ephemeral
    /// port) and reports readiness via a [`schema::SERVE_START`]
    /// event. When [`ServeConfig::admin_addr`] is set, the read-only
    /// admin listener ([`crate::admin`]) is bound and spawned here too,
    /// so `/healthz` answers even before [`Server::run`] accepts
    /// serving traffic. The server does not accept serving connections
    /// until [`Server::run`].
    pub fn bind(
        model_path: impl AsRef<Path>,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> Result<Server, ServeError> {
        let (bytes, model) = load_model(model_path.as_ref())?;
        let listener = TcpListener::bind(addr)?;
        register_serve_metrics();
        let admin_addr = match &cfg.admin_addr {
            Some(admin) => {
                let info = AdminInfo::new(
                    crc64(&bytes),
                    model.param_count(),
                    model.param_bytes(),
                    model.output_template().n_attrs(),
                    model.is_conditional(),
                    cfg.max_conn,
                );
                // daisy-lint: allow(D003) -- admin listener thread; read-only introspection off the serving path
                Some(AdminServer::bind(admin.as_str(), info)?.spawn()?)
            }
            None => None,
        };
        if enabled() {
            emit_event(
                Event::new(
                    schema::SERVE_START,
                    vec![
                        field("params", model.param_count()),
                        field("bytes", model.param_bytes()),
                        field("columns", model.output_template().n_attrs()),
                        field("conditional", model.is_conditional()),
                        field("max_conn", cfg.max_conn),
                        field("max_rows", cfg.max_rows),
                    ],
                )
                .non_deterministic(),
            );
        }
        Ok(Server {
            listener,
            model_bytes: Arc::new(bytes),
            cfg,
            admin_addr,
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound admin address, when [`ServeConfig::admin_addr`] was
    /// set (the real port when bound with port 0).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// Accepts and serves connections forever (until the process is
    /// terminated or the listener fails).
    ///
    /// Backpressure: a connection slot is acquired *before* `accept`,
    /// so at most `max_conn` connections are ever live — each holding
    /// one decoded model replica — and excess clients queue in the
    /// kernel's TCP backlog at zero heap cost. A slot is released when
    /// its connection thread finishes, including on client disconnect
    /// or protocol error.
    pub fn run(&self) -> Result<(), ServeError> {
        let slots = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut conn_id = 0u64;
        loop {
            {
                let (lock, cvar) = &*slots;
                let mut held = lock.lock().unwrap_or_else(|e| e.into_inner());
                while *held >= self.cfg.max_conn {
                    held = cvar.wait(held).unwrap_or_else(|e| e.into_inner());
                }
                *held += 1;
                metrics::gauge("serve.active_conns").set(*held as f64);
            }
            let guard = SlotGuard {
                slots: Arc::clone(&slots),
            };
            let (stream, _peer) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) => {
                    drop(guard);
                    return Err(ServeError::Io(e));
                }
            };
            let model_bytes = Arc::clone(&self.model_bytes);
            let cfg = self.cfg.clone();
            let conn = conn_id;
            conn_id += 1;
            // The serving plane is explicitly off the deterministic
            // compute path: responses are per-request reproducible by
            // seeding, not by scheduling.
            // daisy-lint: allow(D003) -- connection threads; responses are reproducible by per-request seeding, not scheduling
            std::thread::spawn(move || {
                let _guard = guard;
                serve_tcp_connection(&model_bytes, conn, &cfg, stream);
            });
        }
    }
}

/// Releases a connection slot (and updates the active-connections
/// gauge) when the connection thread exits for any reason — normal
/// completion, client disconnect, protocol error, or panic.
struct SlotGuard {
    slots: Arc<(Mutex<usize>, Condvar)>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.slots;
        let mut held = lock.lock().unwrap_or_else(|e| e.into_inner());
        *held = held.saturating_sub(1);
        metrics::gauge("serve.active_conns").set(*held as f64);
        cvar.notify_one();
    }
}

/// Decodes a thread-local model replica and runs the request loop on
/// one TCP connection. Errors end the connection (the slot frees via
/// the caller's guard), never the server.
fn serve_tcp_connection(model_bytes: &[u8], conn: u64, cfg: &ServeConfig, stream: TcpStream) {
    let model = match FittedSynthesizer::from_bytes(model_bytes) {
        Ok(model) => model,
        // Unreachable in practice: the bytes were validated at bind.
        Err(e) => {
            eprintln!("connection {conn}: model replica decode failed: {e}");
            return;
        }
    };
    let mut reader = &stream;
    let mut writer = &stream;
    if let Err(e) = serve_connection(&model, conn, cfg, &mut reader, &mut writer) {
        // A vanished client is normal churn; anything else is logged.
        if !matches!(&e, ServeError::Io(io) if io.kind() == std::io::ErrorKind::BrokenPipe) {
            eprintln!("connection {conn}: {e}");
        }
    }
}

/// Serves exactly one connection over stdin/stdout — the `daisy serve
/// --stdio` mode for pipeline use (one process per client, no socket).
pub fn serve_stdio(model_path: impl AsRef<Path>, cfg: &ServeConfig) -> Result<u64, ServeError> {
    let (_bytes, model) = load_model(model_path.as_ref())?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    serve_connection(&model, 0, cfg, &mut input, &mut output)
}
