//! # daisy-serve
//!
//! The serving plane: a long-lived process that loads one sealed model
//! file (`core::persist`) and streams synthetic rows to concurrent
//! clients over a length-prefixed binary protocol (TCP or stdio),
//! using [`daisy_core::RowStream`] so memory stays bounded by one
//! generation batch per connection no matter how many rows a request
//! asks for.
//!
//! Four contracts define the plane (see `docs/SERVING.md` for the
//! full runbook):
//!
//! - **Reproducibility.** A request is `{seed, n_rows, start_row,
//!   condition?}` and every response byte is a pure function of the
//!   request and the model file: replaying a request — against the
//!   same server, a restarted server, or a server under any
//!   `DAISY_THREADS` setting — yields the identical byte stream. No
//!   timestamps, connection ids, or negotiated parameters ever enter
//!   the response. `start_row` makes the contract *resumable*: the
//!   concatenated row payloads of any split of a stream into resumed
//!   fetches equal one uninterrupted fetch.
//! - **Bounded memory.** The server never materializes a table. Each
//!   connection holds one decoded model replica plus one
//!   `GENERATION_BATCH`-row frame; concurrency is capped by
//!   `DAISY_SERVE_MAX_CONN` slots acquired *before* `accept`, so
//!   excess clients queue in the TCP backlog instead of growing the
//!   heap (or, with `DAISY_SERVE_SHED=1`, are rejected with a typed
//!   "overloaded" header).
//! - **Typed failure.** A corrupt model file is quarantined
//!   (`*.corrupt-N`) and reported as [`ServeError::CorruptModel`];
//!   an invalid request is answered with an error header on the wire,
//!   never a panic, and the connection stays usable.
//! - **Graceful lifecycle.** Slow or stalled peers hit per-connection
//!   deadlines (`DAISY_SERVE_TIMEOUT_MS`) instead of pinning slots,
//!   SIGTERM drains in-flight streams (`DAISY_SERVE_DRAIN_MS`) and
//!   seals stragglers with a typed "draining" end frame, and the model
//!   can be hot-swapped via the admin plane ([`crate::admin`]) with
//!   in-flight requests finishing on the old model. The [`fault`]
//!   module injects the network's failure modes deterministically so
//!   every one of those paths is testable.
//!
//! ```no_run
//! use daisy_serve::{Request, Server, ServeConfig};
//!
//! let server = Server::bind("model.daisy", "127.0.0.1:0", ServeConfig::from_env())?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//! let response = daisy_serve::fetch(&addr.to_string(), &Request::new(42, 1000))?;
//! assert_eq!(response.rows.len(), 1000);
//! # Ok::<(), daisy_serve::ServeError>(())
//! ```

// `deny` rather than `forbid`: the one audited exception is the
// SIGTERM flag in `shutdown` (std exposes no signal API), which opts
// back in locally — everywhere else unsafe stays a hard error.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
mod client;
pub mod fault;
mod proto;
mod server;
pub mod shutdown;

pub use admin::{fetch_admin, post_admin};
pub use client::{
    decode_response, fetch, fetch_raw, fetch_resumable, fetch_with_retry, FetchReport, Progress,
    RetryPolicy, StreamDecoder, StreamItem,
};
pub use client::Response;
pub use proto::{
    read_frame, write_frame, ColumnSpec, EndFrame, Header, Request, END_FLAG_DRAINING,
    MAX_REQUEST_FRAME, PROTOCOL_VERSION,
};
pub use server::{
    load_model, serve_connection, serve_stdio, ServeConfig, ServeState, Server, SharedModel,
};

/// Everything that can go wrong on the serving plane.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// The peer violated the wire protocol (bad magic, bad CRC,
    /// oversized frame, truncated stream).
    Protocol(String),
    /// The model file failed validation and was quarantined.
    CorruptModel {
        /// The persistence layer's diagnosis.
        error: String,
        /// Where the bad file was moved (`None` if the rename failed).
        quarantined: Option<std::path::PathBuf>,
    },
    /// The server rejected a well-formed request (row cap exceeded,
    /// unknown condition, condition on a non-conditional model,
    /// "overloaded" under shed mode, "draining" during shutdown).
    /// Reasons prefixed `overloaded` or `draining` are transient — the
    /// retrying client backs off and resends; everything else is
    /// permanent.
    Rejected(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::CorruptModel { error, quarantined } => match quarantined {
                Some(path) => write!(
                    f,
                    "corrupt model file ({error}); quarantined as {}",
                    path.display()
                ),
                None => write!(f, "corrupt model file ({error}); quarantine failed"),
            },
            ServeError::Rejected(msg) => write!(f, "request rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
