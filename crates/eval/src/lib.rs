//! # daisy-eval
//!
//! The evaluation machinery of the paper's §6.2: classification utility
//! (`Diff` of F1/AUC across the DT/RF/AdaBoost/LR suite), clustering
//! utility (K-Means + NMI), AQP utility (aggregate-query workloads and
//! relative-error differences), privacy risk (hitting rate, DCR), and
//! per-attribute distribution fidelity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aqp;
pub mod classifiers;
pub mod cluster;
pub mod correlation;
pub mod distribution;
pub mod fd;
pub mod features;
pub mod metrics;
pub mod privacy;
pub mod utility;

pub use aqp::{aqp_utility, execute, generate_workload, workload_error, Agg, Predicate, Query};
pub use classifiers::{
    classifier_zoo, AdaBoost, Classifier, DecisionTree, LogisticRegression, RandomForest,
};
pub use cluster::{clustering_utility, kmeans_nmi, nmi, KMeans};
pub use correlation::{
    association, association_matrix, correlation_fidelity, correlation_ratio, cramers_v,
    pearson_abs,
};
pub use fd::{
    fd_confidence, fd_preservation_gap, fd_satisfaction, mine_fds, supports_fd_mining,
    FunctionalDependency,
};
pub use distribution::{
    attribute_fidelity, quantile_summary, total_variation, wasserstein1, AttributeFidelity,
    QuantileSummary,
};
pub use features::FeatureSpace;
pub use metrics::{accuracy, auc_binary, f1_score, precision, recall, target_class};
pub use privacy::{dcr, dcr_baseline, hitting_rate};
pub use utility::{classification_utility, f1_on_test, UtilityReport};
