//! CART decision trees with Gini impurity, depth caps, optional sample
//! weights (for AdaBoost) and optional per-split feature subsampling
//! (for random forests).

use crate::classifiers::Classifier;
use daisy_tensor::{Rng, Tensor};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        probs: Vec<f32>,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A CART decision tree (the paper's DT10/DT30 with depth 10/30).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    /// Features considered per split; `None` = all (plain CART),
    /// `Some(k)` = random subset of k (random-forest member trees).
    max_features: Option<usize>,
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// A tree with the given depth cap considering all features.
    pub fn new(max_depth: usize) -> Self {
        DecisionTree {
            max_depth,
            min_samples_split: 2,
            max_features: None,
            nodes: Vec::new(),
            n_classes: 0,
        }
    }

    /// Enables per-split random feature subsampling.
    pub fn with_max_features(mut self, k: usize) -> Self {
        self.max_features = Some(k.max(1));
        self
    }

    /// Trains with explicit non-negative sample weights.
    pub fn fit_weighted(
        &mut self,
        x: &Tensor,
        y: &[usize],
        weights: &[f64],
        n_classes: usize,
        rng: &mut Rng,
    ) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert_eq!(y.len(), weights.len(), "label/weight count mismatch");
        assert!(n_classes > 0, "need at least one class");
        assert!(x.rows() > 0, "cannot fit on zero samples");
        self.n_classes = n_classes;
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.rows()).collect();
        self.build(x, y, weights, idx, 0, rng);
    }

    /// Number of nodes (for tests / introspection).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn build(
        &mut self,
        x: &Tensor,
        y: &[usize],
        w: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let probs = class_probs(y, w, &idx, self.n_classes);
        let impurity = gini(&probs);
        let stop = depth >= self.max_depth
            || idx.len() < self.min_samples_split
            || impurity <= 1e-12;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(x, y, w, &idx, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| x.at2(i, feature) <= threshold);
                if !left_idx.is_empty() && !right_idx.is_empty() {
                    // Reserve the slot before recursing so child indices
                    // are stable.
                    let slot = self.nodes.len();
                    self.nodes.push(Node::Leaf { probs: Vec::new() });
                    let left = self.build(x, y, w, left_idx, depth + 1, rng);
                    let right = self.build(x, y, w, right_idx, depth + 1, rng);
                    self.nodes[slot] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return slot;
                }
            }
        }
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { probs });
        slot
    }

    /// Finds the split with the largest weighted Gini decrease by
    /// sorting each candidate feature and scanning boundaries.
    fn best_split(
        &self,
        x: &Tensor,
        y: &[usize],
        w: &[f64],
        idx: &[usize],
        rng: &mut Rng,
    ) -> Option<(usize, f32)> {
        let d = x.cols();
        let features: Vec<usize> = match self.max_features {
            Some(k) if k < d => rng.sample_indices(d, k),
            _ => (0..d).collect(),
        };
        let total_w: f64 = idx.iter().map(|&i| w[i]).sum();
        if total_w <= 0.0 {
            return None;
        }
        let parent_probs = class_probs(y, w, idx, self.n_classes);
        let parent_gini = gini(&parent_probs);

        let mut best: Option<(f64, usize, f32)> = None;
        let mut sorted = idx.to_vec();
        for &f in &features {
            sorted.sort_by(|&a, &b| {
                x.at2(a, f)
                    .partial_cmp(&x.at2(b, f))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Incremental class-weight tallies left of the scan point.
            let mut left_counts = vec![0.0f64; self.n_classes];
            let mut left_w = 0.0f64;
            let mut right_counts = vec![0.0f64; self.n_classes];
            for &i in sorted.iter() {
                right_counts[y[i]] += w[i];
            }
            for k in 0..sorted.len() - 1 {
                let i = sorted[k];
                left_counts[y[i]] += w[i];
                right_counts[y[i]] -= w[i];
                left_w += w[i];
                let v = x.at2(i, f);
                let v_next = x.at2(sorted[k + 1], f);
                if v_next <= v {
                    continue; // no boundary between equal values
                }
                let right_w = total_w - left_w;
                let gl = gini_from_counts(&left_counts, left_w);
                let gr = gini_from_counts(&right_counts, right_w);
                let weighted = (left_w * gl + right_w * gr) / total_w;
                let gain = parent_gini - weighted;
                let threshold = (v + v_next) / 2.0;
                // Zero-gain splits are accepted (as in scikit-learn's
                // CART): XOR-style interactions have zero marginal gain
                // at the root yet resolve perfectly one level deeper.
                if best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    fn leaf_probs(&self, row: &[f32]) -> &[f32] {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { probs } => return probs,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

fn class_probs(y: &[usize], w: &[f64], idx: &[usize], n_classes: usize) -> Vec<f32> {
    let mut counts = vec![0.0f64; n_classes];
    let mut total = 0.0f64;
    for &i in idx {
        counts[y[i]] += w[i];
        total += w[i];
    }
    if total <= 0.0 {
        return vec![1.0 / n_classes as f32; n_classes];
    }
    counts.iter().map(|&c| (c / total) as f32).collect()
}

fn gini(probs: &[f32]) -> f64 {
    1.0 - probs.iter().map(|&p| (p as f64) * (p as f64)).sum::<f64>()
}

fn gini_from_counts(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c / total;
            p * p
        })
        .sum::<f64>()
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Tensor, y: &[usize], n_classes: usize, rng: &mut Rng) {
        let weights = vec![1.0f64; y.len()];
        self.fit_weighted(x, y, &weights, n_classes, rng);
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        assert!(!self.nodes.is_empty(), "tree is not fitted");
        let mut out = Tensor::zeros(&[x.rows(), self.n_classes]);
        for i in 0..x.rows() {
            let probs = self.leaf_probs(x.row(i));
            out.row_mut(i).copy_from_slice(probs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::test_support::{blobs, xor};
    use crate::metrics::accuracy;

    #[test]
    fn learns_axis_aligned_split() {
        // x0 <= 0.5 → class 0; else class 1.
        let x = Tensor::from_vec(vec![0.0, 0.1, 0.2, 0.8, 0.9, 1.0], &[6, 1]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut tree = DecisionTree::new(3);
        let mut rng = Rng::seed_from_u64(0);
        tree.fit(&x, &y, 2, &mut rng);
        assert_eq!(tree.predict(&x), y);
        // One split and two leaves suffice.
        assert_eq!(tree.n_nodes(), 3);
    }

    #[test]
    fn solves_xor() {
        // Greedy CART needs extra depth on XOR: every single split has
        // ~zero marginal gain, so early levels burn depth on spurious
        // sliver splits before the two-level interaction resolves.
        let (x, y) = xor(400, 1);
        let (xt, yt) = xor(200, 2);
        let mut tree = DecisionTree::new(10);
        let mut rng = Rng::seed_from_u64(3);
        tree.fit(&x, &y, 2, &mut rng);
        assert!(accuracy(&yt, &tree.predict(&xt)) > 0.95);
    }

    #[test]
    fn depth_cap_limits_overfit() {
        let (x, y) = blobs(300, 4);
        let mut shallow = DecisionTree::new(1);
        let mut deep = DecisionTree::new(30);
        let mut rng = Rng::seed_from_u64(5);
        shallow.fit(&x, &y, 2, &mut rng);
        deep.fit(&x, &y, 2, &mut rng);
        assert!(shallow.n_nodes() <= 3);
        assert!(deep.n_nodes() > shallow.n_nodes());
        // Deep tree memorizes the training set.
        assert!(accuracy(&y, &deep.predict(&x)) > 0.99);
    }

    #[test]
    fn sample_weights_shift_the_decision() {
        // Conflicting points at the same x; weights decide the leaf.
        let x = Tensor::from_vec(vec![0.0, 0.0, 1.0], &[3, 1]);
        let y = vec![0, 1, 1];
        let mut tree = DecisionTree::new(2);
        let mut rng = Rng::seed_from_u64(6);
        tree.fit_weighted(&x, &y, &[10.0, 0.1, 1.0], 2, &mut rng);
        assert_eq!(tree.predict(&x)[0], 0);
        tree.fit_weighted(&x, &y, &[0.1, 10.0, 1.0], 2, &mut rng);
        assert_eq!(tree.predict(&x)[0], 1);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[4, 1]);
        let y = vec![1, 1, 1, 1];
        let mut tree = DecisionTree::new(10);
        let mut rng = Rng::seed_from_u64(7);
        tree.fit(&x, &y, 2, &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        let probs = tree.predict_proba(&x);
        assert_eq!(probs.at2(0, 1), 1.0);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Tensor::zeros(&[10, 3]);
        let y: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let mut tree = DecisionTree::new(5);
        let mut rng = Rng::seed_from_u64(8);
        tree.fit(&x, &y, 2, &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        let probs = tree.predict_proba(&x);
        assert!((probs.at2(0, 0) - 0.5).abs() < 1e-6);
    }
}
