//! Random forests: bootstrap-sampled CART trees with per-split feature
//! subsampling (√d), probability-averaged (the paper's RF10/RF20).

use crate::classifiers::tree::DecisionTree;
use crate::classifiers::Classifier;
use daisy_tensor::{Rng, Tensor};

/// A bagged ensemble of randomized decision trees.
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Creates a forest of `n_trees` trees with the given depth cap.
    pub fn new(n_trees: usize, max_depth: usize) -> Self {
        assert!(n_trees > 0, "need at least one tree");
        RandomForest {
            n_trees,
            max_depth,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Tensor, y: &[usize], n_classes: usize, rng: &mut Rng) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        self.n_classes = n_classes;
        self.trees.clear();
        let n = x.rows();
        let mtry = (x.cols() as f64).sqrt().ceil() as usize;
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let idx: Vec<usize> = (0..n).map(|_| rng.usize(n)).collect();
            let xb = x.gather_rows(&idx);
            let yb: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::new(self.max_depth).with_max_features(mtry);
            tree.fit(&xb, &yb, n_classes, rng);
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        assert!(!self.trees.is_empty(), "forest is not fitted");
        let mut total = Tensor::zeros(&[x.rows(), self.n_classes]);
        for tree in &self.trees {
            total.add_assign(&tree.predict_proba(x));
        }
        total.mul_scalar(1.0 / self.trees.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::test_support::{blobs, xor};
    use crate::metrics::accuracy;

    #[test]
    fn beats_chance_on_xor() {
        let (x, y) = xor(400, 0);
        let (xt, yt) = xor(200, 1);
        let mut rf = RandomForest::new(10, 6);
        let mut rng = Rng::seed_from_u64(2);
        rf.fit(&x, &y, 2, &mut rng);
        assert_eq!(rf.n_trees(), 10);
        assert!(accuracy(&yt, &rf.predict(&xt)) > 0.9);
    }

    #[test]
    fn probabilities_average_trees() {
        let (x, y) = blobs(200, 3);
        let mut rf = RandomForest::new(5, 4);
        let mut rng = Rng::seed_from_u64(4);
        rf.fit(&x, &y, 2, &mut rng);
        let proba = rf.predict_proba(&x);
        for r in 0..10 {
            let s: f32 = proba.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(150, 5);
        let run = || {
            let mut rf = RandomForest::new(4, 5);
            let mut rng = Rng::seed_from_u64(6);
            rf.fit(&x, &y, 2, &mut rng);
            rf.predict(&x)
        };
        assert_eq!(run(), run());
    }
}
