//! AdaBoost with the multi-class SAMME weighting (Zhu et al.) over
//! depth-2 decision stumps — "an iterative algorithm to train different
//! weak classifiers, then gathers them to form a stronger final
//! classifier" (§6.2).

use crate::classifiers::tree::DecisionTree;
use crate::classifiers::Classifier;
use daisy_tensor::{Rng, Tensor};

/// SAMME AdaBoost over shallow trees.
pub struct AdaBoost {
    n_estimators: usize,
    stump_depth: usize,
    stages: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Creates a booster with `n_estimators` weak learners.
    pub fn new(n_estimators: usize) -> Self {
        assert!(n_estimators > 0, "need at least one estimator");
        AdaBoost {
            n_estimators,
            stump_depth: 2,
            stages: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of fitted stages (may stop early on a perfect learner).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, x: &Tensor, y: &[usize], n_classes: usize, rng: &mut Rng) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        self.n_classes = n_classes;
        self.stages.clear();
        let n = x.rows();
        let mut w = vec![1.0 / n as f64; n];
        let k = n_classes as f64;
        for _ in 0..self.n_estimators {
            let mut stump = DecisionTree::new(self.stump_depth);
            stump.fit_weighted(x, y, &w, n_classes, rng);
            let pred = stump.predict(x);
            let err: f64 = w
                .iter()
                .zip(pred.iter().zip(y))
                .filter(|(_, (p, t))| p != t)
                .map(|(wi, _)| wi)
                .sum();
            if err <= 1e-12 {
                // Perfect learner dominates; finish with it.
                self.stages.push((stump, 1.0));
                break;
            }
            if err >= 1.0 - 1.0 / k {
                // Worse than chance under SAMME: stop (keep what we have;
                // fall back to this stump if it is the first).
                if self.stages.is_empty() {
                    self.stages.push((stump, 1.0));
                }
                break;
            }
            // SAMME stage weight: ln((1-err)/err) + ln(K-1).
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            for (wi, (p, t)) in w.iter_mut().zip(pred.iter().zip(y)) {
                if p != t {
                    *wi *= alpha.exp();
                }
            }
            let total: f64 = w.iter().sum();
            for wi in &mut w {
                *wi /= total;
            }
            self.stages.push((stump, alpha));
        }
    }

    #[allow(clippy::needless_range_loop)] // votes rows co-indexed with n
    fn predict_proba(&self, x: &Tensor) -> Tensor {
        assert!(!self.stages.is_empty(), "booster is not fitted");
        let n = x.rows();
        let mut votes = Tensor::zeros(&[n, self.n_classes]);
        for (stump, alpha) in &self.stages {
            let pred = stump.predict(x);
            for (i, &p) in pred.iter().enumerate() {
                *votes.at2_mut(i, p) += *alpha as f32;
            }
        }
        // Normalize vote mass into probabilities.
        for i in 0..n {
            let row = votes.row_mut(i);
            let total: f32 = row.iter().sum();
            if total > 0.0 {
                for v in row.iter_mut() {
                    *v /= total;
                }
            } else {
                row.fill(1.0 / row.len() as f32);
            }
        }
        votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::test_support::{blobs, three_blobs, xor};
    use crate::metrics::accuracy;

    #[test]
    fn boosting_beats_single_stump_on_xor() {
        let (x, y) = xor(400, 0);
        let (xt, yt) = xor(200, 1);
        let mut rng = Rng::seed_from_u64(2);

        let mut stump = DecisionTree::new(1);
        stump.fit(&x, &y, 2, &mut rng);
        let stump_acc = accuracy(&yt, &stump.predict(&xt));

        let mut ab = AdaBoost::new(30);
        ab.fit(&x, &y, 2, &mut rng);
        let ab_acc = accuracy(&yt, &ab.predict(&xt));
        assert!(
            ab_acc > stump_acc + 0.1,
            "boost {ab_acc} vs stump {stump_acc}"
        );
    }

    #[test]
    fn early_stop_on_separable_data() {
        let (x, y) = blobs(100, 3);
        // Widely separated blobs: a depth-2 tree is near-perfect, so the
        // booster should not need all 50 stages.
        let mut wide = Tensor::zeros(&[100, 2]);
        for (i, &yi) in y.iter().enumerate() {
            let c = if yi == 0 { -10.0 } else { 10.0 };
            wide.row_mut(i).copy_from_slice(&[c, c]);
        }
        let _ = x;
        let mut ab = AdaBoost::new(50);
        let mut rng = Rng::seed_from_u64(4);
        ab.fit(&wide, &y, 2, &mut rng);
        assert!(ab.n_stages() < 5);
        assert_eq!(accuracy(&y, &ab.predict(&wide)), 1.0);
    }

    #[test]
    fn samme_handles_three_classes() {
        let (x, y) = three_blobs(600, 5);
        let (xt, yt) = three_blobs(300, 6);
        let mut ab = AdaBoost::new(30);
        let mut rng = Rng::seed_from_u64(7);
        ab.fit(&x, &y, 3, &mut rng);
        assert!(accuracy(&yt, &ab.predict(&xt)) > 0.85);
    }
}
