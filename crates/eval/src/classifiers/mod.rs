//! The evaluation classifiers of §6.2: decision trees (depth 10/30),
//! random forests (depth 10/20), AdaBoost, and logistic regression.
//! They replace the paper's scikit-learn models; the utility metric
//! `Diff` only needs the *same* classifier applied to real and
//! synthetic training data, which these provide deterministically.

mod adaboost;
mod forest;
mod logistic;
mod tree;

pub use adaboost::AdaBoost;
pub use forest::RandomForest;
pub use logistic::LogisticRegression;
pub use tree::DecisionTree;

use daisy_tensor::{Rng, Tensor};

/// A deterministic multi-class classifier over dense feature matrices.
pub trait Classifier {
    /// Trains on features `x [n, d]` and labels `y` over `n_classes`.
    fn fit(&mut self, x: &Tensor, y: &[usize], n_classes: usize, rng: &mut Rng);

    /// Class-probability estimates `[n, k]`.
    fn predict_proba(&self, x: &Tensor) -> Tensor;

    /// Hard predictions (argmax of probabilities).
    fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }
}

/// A named classifier constructor.
pub type ClassifierFactory = fn() -> Box<dyn Classifier>;

/// The classifier suite of the paper's tables, as (name, constructor)
/// pairs: DT10, DT30, RF10, RF20, AB, LR.
pub fn classifier_zoo() -> Vec<(&'static str, ClassifierFactory)> {
    vec![
        ("DT10", || Box::new(DecisionTree::new(10))),
        ("DT30", || Box::new(DecisionTree::new(30))),
        ("RF10", || Box::new(RandomForest::new(16, 10))),
        ("RF20", || Box::new(RandomForest::new(16, 20))),
        ("AB", || Box::new(AdaBoost::new(30))),
        ("LR", || Box::new(LogisticRegression::new(200, 0.5))),
    ]
}

#[cfg(test)]
pub(crate) mod test_support {
    use daisy_tensor::{Rng, Tensor};

    /// Two Gaussian blobs (binary) with some class overlap.
    pub fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut x = Tensor::zeros(&[n, 2]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = rng.usize(2);
            let center = if label == 0 { -1.0 } else { 1.0 };
            x.row_mut(i)[0] = rng.normal_ms(center, 0.6) as f32;
            x.row_mut(i)[1] = rng.normal_ms(center, 0.6) as f32;
            y.push(label);
        }
        (x, y)
    }

    /// XOR data — linearly inseparable, easy for trees.
    pub fn xor(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut x = Tensor::zeros(&[n, 2]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.bool(0.5);
            let b = rng.bool(0.5);
            x.row_mut(i)[0] = if a { 1.0 } else { 0.0 } + rng.normal() as f32 * 0.1;
            x.row_mut(i)[1] = if b { 1.0 } else { 0.0 } + rng.normal() as f32 * 0.1;
            y.push(usize::from(a != b));
        }
        (x, y)
    }

    /// Three-class blobs for multi-class checks.
    pub fn three_blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let centers = [(-2.0, 0.0), (2.0, 0.0), (0.0, 3.0)];
        let mut x = Tensor::zeros(&[n, 2]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = rng.usize(3);
            x.row_mut(i)[0] = rng.normal_ms(centers[label].0, 0.5) as f32;
            x.row_mut(i)[1] = rng.normal_ms(centers[label].1, 0.5) as f32;
            y.push(label);
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn zoo_has_six_members() {
        let zoo = classifier_zoo();
        let names: Vec<_> = zoo.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["DT10", "DT30", "RF10", "RF20", "AB", "LR"]);
    }

    #[test]
    fn every_zoo_member_learns_blobs() {
        let (x, y) = blobs(400, 0);
        let (xt, yt) = blobs(200, 1);
        for (name, make) in classifier_zoo() {
            let mut clf = make();
            let mut rng = Rng::seed_from_u64(2);
            clf.fit(&x, &y, 2, &mut rng);
            let acc = accuracy(&yt, &clf.predict(&xt));
            assert!(acc > 0.85, "{name} accuracy {acc}");
        }
    }

    #[test]
    fn every_zoo_member_handles_multiclass() {
        let (x, y) = three_blobs(600, 3);
        let (xt, yt) = three_blobs(300, 4);
        for (name, make) in classifier_zoo() {
            let mut clf = make();
            let mut rng = Rng::seed_from_u64(5);
            clf.fit(&x, &y, 3, &mut rng);
            let acc = accuracy(&yt, &clf.predict(&xt));
            assert!(acc > 0.85, "{name} accuracy {acc}");
            let proba = clf.predict_proba(&xt);
            assert_eq!(proba.shape(), &[300, 3]);
            for r in 0..5 {
                let s: f32 = proba.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-3, "{name} probs sum to {s}");
            }
        }
    }
}
