//! Multinomial logistic regression trained by full-batch gradient
//! descent — "a generalized linear regression model which uses gradient
//! descent to optimize the classifier" (§6.2).

use crate::classifiers::Classifier;
use daisy_tensor::{Rng, Tensor};

/// Softmax regression with L2 regularization.
pub struct LogisticRegression {
    iterations: usize,
    lr: f32,
    l2: f32,
    /// `[d, k]` weights and `[k]` bias after fitting.
    weights: Option<(Tensor, Tensor)>,
}

impl LogisticRegression {
    /// Creates a model trained for `iterations` full-batch steps.
    pub fn new(iterations: usize, lr: f32) -> Self {
        LogisticRegression {
            iterations,
            lr,
            l2: 1e-4,
            weights: None,
        }
    }

    fn scores(&self, x: &Tensor) -> Tensor {
        let (w, b) = self.weights.as_ref().expect("model is not fitted");
        x.matmul(w).add_row(b)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Tensor, y: &[usize], n_classes: usize, _rng: &mut Rng) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        let (n, d) = (x.rows(), x.cols());
        let k = n_classes;
        let mut w = Tensor::zeros(&[d, k]);
        let mut b = Tensor::zeros(&[k]);
        // One-hot targets.
        let mut targets = Tensor::zeros(&[n, k]);
        for (i, &yi) in y.iter().enumerate() {
            *targets.at2_mut(i, yi) = 1.0;
        }
        let scale = 1.0 / n as f32;
        for _ in 0..self.iterations {
            // Softmax cross-entropy gradient: X^T (softmax(XW+b) - Y) / n.
            let probs = x.matmul(&w).add_row(&b).softmax_rows();
            let delta = probs.sub(&targets);
            let grad_w = x.matmul_tn(&delta).mul_scalar(scale);
            let grad_b = delta.sum_axis0().mul_scalar(scale);
            w = w
                .mul_scalar(1.0 - self.lr * self.l2)
                .sub(&grad_w.mul_scalar(self.lr));
            b = b.sub(&grad_b.mul_scalar(self.lr));
        }
        self.weights = Some((w, b));
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        self.scores(x).softmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::test_support::{blobs, three_blobs};
    use crate::metrics::{accuracy, auc_binary};

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(400, 0);
        let (xt, yt) = blobs(200, 1);
        let mut lr = LogisticRegression::new(200, 0.5);
        let mut rng = Rng::seed_from_u64(2);
        lr.fit(&x, &y, 2, &mut rng);
        assert!(accuracy(&yt, &lr.predict(&xt)) > 0.9);
        // AUC from probabilities beats chance comfortably.
        let proba = lr.predict_proba(&xt);
        let scores: Vec<f64> = (0..xt.rows()).map(|i| proba.at2(i, 1) as f64).collect();
        assert!(auc_binary(&yt, &scores, 1) > 0.95);
    }

    #[test]
    fn multiclass_softmax() {
        let (x, y) = three_blobs(600, 3);
        let mut lr = LogisticRegression::new(300, 0.5);
        let mut rng = Rng::seed_from_u64(4);
        lr.fit(&x, &y, 3, &mut rng);
        assert!(accuracy(&y, &lr.predict(&x)) > 0.9);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let lr = LogisticRegression::new(10, 0.1);
        let _ = lr.predict_proba(&Tensor::zeros(&[1, 2]));
    }
}
