//! Privacy-risk metrics (§6.2): hitting rate and distance to the
//! closest record (DCR), both estimating how re-identifiable the
//! original records are from the synthetic release.

use daisy_data::{Column, Table};
use daisy_tensor::Rng;

/// Per-column match context precomputed from the real table.
struct MatchContext {
    /// Numeric similarity thresholds: `range / divisor` per column
    /// (None for categorical columns).
    thresholds: Vec<Option<f64>>,
    /// Min–max ranges for distance normalization.
    ranges: Vec<Option<(f64, f64)>>,
}

fn match_context(real: &Table, divisor: f64) -> MatchContext {
    let mut thresholds = Vec::with_capacity(real.n_attrs());
    let mut ranges = Vec::with_capacity(real.n_attrs());
    for col in real.columns() {
        match col {
            Column::Num(v) => {
                let min = v.iter().copied().fold(f64::INFINITY, f64::min);
                let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                thresholds.push(Some((max - min) / divisor));
                ranges.push(Some((min, max)));
            }
            Column::Cat { .. } => {
                thresholds.push(None);
                ranges.push(None);
            }
        }
    }
    MatchContext { thresholds, ranges }
}

fn rows_similar(real: &Table, ri: usize, syn: &Table, si: usize, ctx: &MatchContext) -> bool {
    for j in 0..real.n_attrs() {
        match (&real.columns()[j], &syn.columns()[j]) {
            (Column::Cat { codes: rc, .. }, Column::Cat { codes: sc, .. }) => {
                if rc[ri] != sc[si] {
                    return false;
                }
            }
            (Column::Num(rv), Column::Num(sv)) => {
                let t = ctx.thresholds[j].unwrap();
                if (rv[ri] - sv[si]).abs() > t {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

/// Hitting rate (%): sample up to `n_sample` synthetic records; for
/// each, measure the proportion of real records "similar" to it (equal
/// categoricals, numerics within `range/30`); report the mean
/// proportion × 100. Lower = better privacy.
pub fn hitting_rate(real: &Table, synthetic: &Table, n_sample: usize, rng: &mut Rng) -> f64 {
    assert_eq!(real.schema(), synthetic.schema(), "schema mismatch");
    assert!(real.n_rows() > 0 && synthetic.n_rows() > 0, "empty table");
    let ctx = match_context(real, 30.0);
    let n = n_sample.min(synthetic.n_rows());
    let picks = rng.sample_indices(synthetic.n_rows(), n);
    let mut total = 0.0f64;
    for &si in &picks {
        let hits = (0..real.n_rows())
            .filter(|&ri| rows_similar(real, ri, synthetic, si, &ctx))
            .count();
        total += hits as f64 / real.n_rows() as f64;
    }
    100.0 * total / n as f64
}

/// Attribute-wise normalized distance between a real and a synthetic
/// record: numerics scale by the real table's range, categoricals are
/// 0/1 mismatch indicators; the Euclidean distance is divided by √m so
/// every attribute contributes equally and tables of different arity
/// are comparable.
fn record_distance(real: &Table, ri: usize, syn: &Table, si: usize, ctx: &MatchContext) -> f64 {
    let m = real.n_attrs() as f64;
    let mut total = 0.0;
    for j in 0..real.n_attrs() {
        let d = match (&real.columns()[j], &syn.columns()[j]) {
            (Column::Cat { codes: rc, .. }, Column::Cat { codes: sc, .. }) => {
                f64::from(rc[ri] != sc[si])
            }
            (Column::Num(rv), Column::Num(sv)) => {
                let (min, max) = ctx.ranges[j].unwrap();
                if max > min {
                    (((rv[ri] - sv[si]) / (max - min)).abs()).min(1.0)
                } else {
                    0.0
                }
            }
            _ => 1.0,
        };
        total += d * d;
    }
    (total / m).sqrt()
}

/// Distance to the closest record: sample up to `n_sample` real
/// records; for each find the nearest synthetic record under the
/// normalized distance; report the mean. DCR = 0 means the synthetic
/// table leaks records verbatim; larger is better privacy.
pub fn dcr(real: &Table, synthetic: &Table, n_sample: usize, rng: &mut Rng) -> f64 {
    assert_eq!(real.schema(), synthetic.schema(), "schema mismatch");
    assert!(real.n_rows() > 0 && synthetic.n_rows() > 0, "empty table");
    let ctx = match_context(real, 30.0);
    let n = n_sample.min(real.n_rows());
    let picks = rng.sample_indices(real.n_rows(), n);
    let mut total = 0.0;
    for &ri in &picks {
        let mut best = f64::INFINITY;
        for si in 0..synthetic.n_rows() {
            let d = record_distance(real, ri, synthetic, si, &ctx);
            if d < best {
                best = d;
            }
        }
        total += best;
    }
    total / n as f64
}

/// Reference DCR from a *real holdout*: the mean distance from sampled
/// training records to their nearest neighbour in a disjoint real
/// sample. A synthetic table whose DCR falls clearly below this
/// baseline sits closer to the training data than fresh draws from the
/// same population do — evidence of memorization rather than modeling.
pub fn dcr_baseline(train: &Table, holdout: &Table, n_sample: usize, rng: &mut Rng) -> f64 {
    dcr(train, holdout, n_sample, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};

    fn table(nums: Vec<f64>, cats: Vec<u32>) -> Table {
        Table::new(
            Schema::new(vec![
                Attribute::numerical("x"),
                Attribute::categorical("c"),
            ]),
            vec![Column::Num(nums), Column::cat_with_domain(cats, 3)],
        )
    }

    #[test]
    fn verbatim_copy_maximizes_risk() {
        let real = table(vec![1.0, 5.0, 9.0], vec![0, 1, 2]);
        let copy = real.clone();
        let mut rng = Rng::seed_from_u64(0);
        // Every synthetic record hits exactly its original (1/3 of rows).
        let hr = hitting_rate(&real, &copy, 3, &mut rng);
        assert!((hr - 100.0 / 3.0).abs() < 1e-9, "hr = {hr}");
        assert_eq!(dcr(&real, &copy, 3, &mut rng), 0.0);
    }

    #[test]
    fn distant_synthetic_minimizes_risk() {
        let real = table(vec![0.0, 1.0, 2.0], vec![0, 0, 0]);
        let far = table(vec![100.0, 200.0, 300.0], vec![2, 2, 2]);
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(hitting_rate(&real, &far, 3, &mut rng), 0.0);
        assert!(dcr(&real, &far, 3, &mut rng) > 0.5);
    }

    #[test]
    fn numeric_threshold_is_range_over_30() {
        // Range 0..30 → threshold 1. A synthetic value within 1 hits.
        let real = table(vec![0.0, 30.0], vec![0, 0]);
        let near = table(vec![0.9, 30.0], vec![0, 0]);
        let mut rng = Rng::seed_from_u64(2);
        let hr = hitting_rate(&real, &near, 2, &mut rng);
        assert!(hr > 0.0);
        let off = table(vec![1.1, 40.0], vec![0, 0]);
        let hr_first_only = hitting_rate(&real, &off, 2, &mut rng);
        assert!(hr_first_only < hr);
    }

    #[test]
    fn categorical_mismatch_blocks_hit() {
        let real = table(vec![1.0], vec![0]);
        let syn = table(vec![1.0], vec![1]);
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(hitting_rate(&real, &syn, 1, &mut rng), 0.0);
        // ...and contributes to DCR.
        assert!(dcr(&real, &syn, 1, &mut rng) > 0.5);
    }

    #[test]
    fn baseline_flags_memorization() {
        let mut rng = Rng::seed_from_u64(10);
        let n = 200;
        let draw = |rng: &mut Rng| {
            table(
                (0..n).map(|_| rng.normal_ms(0.0, 1.0)).collect(),
                (0..n).map(|_| rng.usize(3) as u32).collect(),
            )
        };
        let train = draw(&mut rng);
        let holdout = draw(&mut rng);
        let baseline = dcr_baseline(&train, &holdout, 100, &mut rng);
        // A verbatim copy has DCR 0 — far below the holdout baseline.
        let copy_dcr = dcr(&train, &train.clone(), 100, &mut rng);
        assert!(baseline > 0.0);
        assert!(copy_dcr < baseline / 2.0);
    }

    #[test]
    fn dcr_uses_nearest_record() {
        let real = table(vec![5.0], vec![0]);
        let syn = table(vec![5.0, 500.0], vec![0, 0]);
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(dcr(&real, &syn, 1, &mut rng), 0.0);
    }
}
