//! Clustering utility (§2.1, §6.2): K-Means over the feature space
//! (label excluded), scored against the gold-standard labels with
//! normalized mutual information; `DiffCST = |NMI(real) − NMI(syn)|`.

use crate::features::FeatureSpace;
use daisy_data::Table;
use daisy_tensor::{Rng, Tensor};

/// K-Means with k-means++ seeding.
pub struct KMeans {
    k: usize,
    max_iters: usize,
    centroids: Option<Tensor>,
}

impl KMeans {
    /// Creates a clusterer with `k` clusters.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one cluster");
        KMeans {
            k,
            max_iters: 50,
            centroids: None,
        }
    }

    /// Fits on `x [n, d]` and returns per-row cluster assignments.
    #[allow(clippy::needless_range_loop)] // co-indexing x, dist2, assign
    pub fn fit_predict(&mut self, x: &Tensor, rng: &mut Rng) -> Vec<usize> {
        let n = x.rows();
        assert!(n >= self.k, "fewer points than clusters");
        let d = x.cols();

        // k-means++ seeding.
        let mut centroids = Tensor::zeros(&[self.k, d]);
        let first = rng.usize(n);
        centroids.row_mut(0).copy_from_slice(x.row(first));
        let mut dist2: Vec<f64> = (0..n)
            .map(|i| sq_dist(x.row(i), centroids.row(0)))
            .collect();
        for c in 1..self.k {
            let total: f64 = dist2.iter().sum();
            let pick = if total > 0.0 {
                rng.weighted(&dist2)
            } else {
                rng.usize(n)
            };
            centroids.row_mut(c).copy_from_slice(x.row(pick));
            for i in 0..n {
                let nd = sq_dist(x.row(i), centroids.row(c));
                if nd < dist2[i] {
                    dist2[i] = nd;
                }
            }
        }

        // Lloyd iterations.
        let mut assign = vec![0usize; n];
        for _ in 0..self.max_iters {
            let mut changed = false;
            for i in 0..n {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for c in 0..self.k {
                    let dcur = sq_dist(x.row(i), centroids.row(c));
                    if dcur < best_d {
                        best_d = dcur;
                        best = c;
                    }
                }
                if assign[i] != best {
                    assign[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Recompute centroids; empty clusters keep their position.
            let mut sums = Tensor::zeros(&[self.k, d]);
            let mut counts = vec![0usize; self.k];
            for i in 0..n {
                let c = assign[i];
                counts[c] += 1;
                let row = x.row(i);
                let srow = sums.row_mut(c);
                for (s, &v) in srow.iter_mut().zip(row) {
                    *s += v;
                }
            }
            for c in 0..self.k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    let srow = sums.row(c).to_vec();
                    for (dst, s) in centroids.row_mut(c).iter_mut().zip(srow) {
                        *dst = s * inv;
                    }
                }
            }
        }
        self.centroids = Some(centroids);
        assign
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64) * ((x - y) as f64))
        .sum()
}

/// Normalized mutual information between two labelings, in `[0, 1]`
/// (arithmetic-mean normalization).
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labeling length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ka = a.iter().max().map_or(0, |&m| m + 1);
    let kb = b.iter().max().map_or(0, |&m| m + 1);
    let mut joint = vec![vec![0.0f64; kb]; ka];
    let mut pa = vec![0.0f64; ka];
    let mut pb = vec![0.0f64; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x][y] += 1.0;
        pa[x] += 1.0;
        pb[y] += 1.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for x in 0..ka {
        for y in 0..kb {
            let pxy = joint[x][y] / nf;
            if pxy > 0.0 {
                mi += pxy * (pxy / (pa[x] / nf * pb[y] / nf)).ln();
            }
        }
    }
    let ha = -pa
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| (p / nf) * (p / nf).ln())
        .sum::<f64>();
    let hb = -pb
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| (p / nf) * (p / nf).ln())
        .sum::<f64>();
    let denom = (ha + hb) / 2.0;
    if denom <= 0.0 {
        // Both labelings constant: identical partitions by convention.
        return 1.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

/// NMI of K-Means clusters (k = label cardinality) against the gold
/// labels, with the label excluded from the features — `Eval(C|T)`.
pub fn kmeans_nmi(table: &Table, rng: &mut Rng) -> f64 {
    let k = table.n_classes();
    let space = FeatureSpace::fit(table);
    let x = space.transform(table);
    let labels = FeatureSpace::labels(table);
    let clusters = KMeans::new(k.min(table.n_rows())).fit_predict(&x, rng);
    nmi(&labels, &clusters)
}

/// The paper's clustering utility:
/// `DiffCST = |Eval(C|T) − Eval(C'|T')|`.
pub fn clustering_utility(real: &Table, synthetic: &Table, rng: &mut Rng) -> f64 {
    let real_nmi = kmeans_nmi(real, rng);
    let syn_nmi = kmeans_nmi(synthetic, rng);
    (real_nmi - syn_nmi).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Column, Schema};

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let mut rng = Rng::seed_from_u64(0);
        let n = 300;
        let mut x = Tensor::zeros(&[n, 2]);
        let mut truth = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 3;
            truth.push(c);
            let (cx, cy) = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)][c];
            x.row_mut(i)[0] = rng.normal_ms(cx, 0.5) as f32;
            x.row_mut(i)[1] = rng.normal_ms(cy, 0.5) as f32;
        }
        let clusters = KMeans::new(3).fit_predict(&x, &mut rng);
        assert!(nmi(&truth, &clusters) > 0.95);
    }

    #[test]
    fn nmi_bounds_and_identity() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-9);
        // Permuted label names preserve NMI.
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-9);
        // Constant labeling carries no information about a varied one.
        let c = vec![0, 0, 0, 0, 0, 0];
        assert_eq!(nmi(&a, &c), 0.0);
    }

    #[test]
    fn nmi_of_independent_labelings_is_low() {
        let mut rng = Rng::seed_from_u64(1);
        let a: Vec<usize> = (0..2000).map(|_| rng.usize(4)).collect();
        let b: Vec<usize> = (0..2000).map(|_| rng.usize(4)).collect();
        assert!(nmi(&a, &b) < 0.02);
    }

    fn blob_table(n: usize, tight: bool, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let spread = if tight { 0.3 } else { 5.0 };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let c = rng.usize(2) as u32;
            labels.push(c);
            let center = if c == 0 { -3.0 } else { 3.0 };
            xs.push(rng.normal_ms(center, spread));
            ys.push(rng.normal_ms(center, spread));
        }
        Table::new(
            Schema::with_label(
                vec![
                    Attribute::numerical("x"),
                    Attribute::numerical("y"),
                    Attribute::categorical("label"),
                ],
                2,
            ),
            vec![
                Column::Num(xs),
                Column::Num(ys),
                Column::cat_with_domain(labels, 2),
            ],
        )
    }

    #[test]
    fn clustering_utility_prefers_faithful_synthetic() {
        let real = blob_table(300, true, 2);
        let faithful = blob_table(300, true, 3);
        let blurry = blob_table(300, false, 4);
        let mut rng = Rng::seed_from_u64(5);
        let good = clustering_utility(&real, &faithful, &mut rng);
        let bad = clustering_utility(&real, &blurry, &mut rng);
        assert!(good < bad, "faithful {good} vs blurry {bad}");
    }
}
