//! Feature extraction for the evaluation classifiers and K-Means: a
//! fixed featurization (min–max scaled numerics, one-hot categoricals)
//! fitted on the real training table and applied identically to real,
//! synthetic and test tables, so utility differences reflect the data,
//! not the featurizer.

use daisy_data::{Column, Schema, Table};
use daisy_tensor::Tensor;

#[derive(Debug, Clone)]
enum FeatureCol {
    Num { col: usize, min: f64, max: f64 },
    Cat { col: usize, k: usize },
}

/// A fitted feature space over a table's non-label attributes.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    schema: Schema,
    cols: Vec<FeatureCol>,
    width: usize,
}

impl FeatureSpace {
    /// Fits scaling parameters on `table` (typically the real training
    /// split). The label column, if designated, is excluded.
    pub fn fit(table: &Table) -> FeatureSpace {
        let mut cols = Vec::new();
        let mut width = 0;
        for j in table.schema().feature_indices() {
            match table.column(j) {
                Column::Num(v) => {
                    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    cols.push(FeatureCol::Num { col: j, min, max });
                    width += 1;
                }
                Column::Cat { categories, .. } => {
                    cols.push(FeatureCol::Cat {
                        col: j,
                        k: categories.len(),
                    });
                    width += categories.len();
                }
            }
        }
        FeatureSpace {
            schema: table.schema().clone(),
            cols,
            width,
        }
    }

    /// Width of the feature vector.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Transforms a table (with the fitted schema) into a `[n, width]`
    /// feature matrix.
    pub fn transform(&self, table: &Table) -> Tensor {
        assert_eq!(
            table.schema(),
            &self.schema,
            "table schema differs from the fitted schema"
        );
        let n = table.n_rows();
        let mut out = Tensor::zeros(&[n, self.width]);
        for i in 0..n {
            let row = out.row_mut(i);
            let mut off = 0;
            for fc in &self.cols {
                match *fc {
                    FeatureCol::Num { col, min, max } => {
                        let v = table.column(col).as_num()[i];
                        row[off] = if max > min {
                            (((v - min) / (max - min)).clamp(0.0, 1.0)) as f32
                        } else {
                            0.0
                        };
                        off += 1;
                    }
                    FeatureCol::Cat { col, k } => {
                        let c = table.column(col).as_cat()[i] as usize;
                        if c < k {
                            row[off + c] = 1.0;
                        }
                        off += k;
                    }
                }
            }
        }
        out
    }

    /// Label codes as `usize` (requires a designated label).
    pub fn labels(table: &Table) -> Vec<usize> {
        table.labels().iter().map(|&y| y as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};

    fn demo() -> Table {
        Table::new(
            Schema::with_label(
                vec![
                    Attribute::numerical("x"),
                    Attribute::categorical("c"),
                    Attribute::categorical("y"),
                ],
                2,
            ),
            vec![
                Column::Num(vec![0.0, 5.0, 10.0]),
                Column::cat_with_domain(vec![0, 2, 1], 3),
                Column::cat_with_domain(vec![0, 1, 0], 2),
            ],
        )
    }

    #[test]
    fn width_excludes_label() {
        let t = demo();
        let fs = FeatureSpace::fit(&t);
        assert_eq!(fs.width(), 1 + 3); // numeric + 3-way one-hot, label skipped
    }

    #[test]
    fn transform_scales_and_encodes() {
        let t = demo();
        let fs = FeatureSpace::fit(&t);
        let x = fs.transform(&t);
        assert_eq!(x.shape(), &[3, 4]);
        assert_eq!(x.row(0), &[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(x.row(1), &[0.5, 0.0, 0.0, 1.0]);
        assert_eq!(x.row(2), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let train = demo();
        let fs = FeatureSpace::fit(&train);
        let wild = Table::new(
            train.schema().clone(),
            vec![
                Column::Num(vec![-100.0, 100.0]),
                Column::cat_with_domain(vec![0, 0], 3),
                Column::cat_with_domain(vec![0, 0], 2),
            ],
        );
        let x = fs.transform(&wild);
        assert_eq!(x.at2(0, 0), 0.0);
        assert_eq!(x.at2(1, 0), 1.0);
    }

    #[test]
    fn labels_extracted() {
        assert_eq!(FeatureSpace::labels(&demo()), vec![0, 1, 0]);
    }
}
