//! Pairwise-correlation fidelity: does the synthetic table reproduce
//! the real table's attribute↔attribute association structure?
//!
//! Complements the per-attribute marginal fidelity of
//! [`crate::distribution`]: a synthesizer can nail every marginal while
//! destroying all correlations (the independent-marginals baseline does
//! exactly that), and the paper's whole LSTM-vs-MLP argument is about
//! capturing column correlation. Associations are measured uniformly in
//! `[0, 1]`: |Pearson| for numeric pairs, Cramér's V for categorical
//! pairs, and the correlation ratio `η` for mixed pairs.

use daisy_data::{Column, Table};

/// Absolute Pearson correlation of two numeric slices.
pub fn pearson_abs(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())).abs().min(1.0)
}

/// Cramér's V between two coded categorical slices over domains
/// `ka`, `kb`.
#[allow(clippy::needless_range_loop)] // contingency-table index algebra
pub fn cramers_v(a: &[u32], b: &[u32], ka: usize, kb: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n == 0 || ka < 2 || kb < 2 {
        return 0.0;
    }
    let mut joint = vec![0.0f64; ka * kb];
    let mut ra = vec![0.0f64; ka];
    let mut rb = vec![0.0f64; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x as usize * kb + y as usize] += 1.0;
        ra[x as usize] += 1.0;
        rb[y as usize] += 1.0;
    }
    let nf = n as f64;
    let mut chi2 = 0.0;
    for x in 0..ka {
        for y in 0..kb {
            let expected = ra[x] * rb[y] / nf;
            if expected > 0.0 {
                let d = joint[x * kb + y] - expected;
                chi2 += d * d / expected;
            }
        }
    }
    let denom = nf * (ka.min(kb) as f64 - 1.0);
    if denom <= 0.0 {
        return 0.0;
    }
    (chi2 / denom).sqrt().min(1.0)
}

/// Correlation ratio `η` of a numeric attribute across the groups of a
/// categorical attribute (square root of between-group variance over
/// total variance).
pub fn correlation_ratio(cat: &[u32], num: &[f64], k: usize) -> f64 {
    assert_eq!(cat.len(), num.len(), "length mismatch");
    let n = num.len();
    if n == 0 || k == 0 {
        return 0.0;
    }
    let grand = num.iter().sum::<f64>() / n as f64;
    let mut group_sum = vec![0.0f64; k];
    let mut group_n = vec![0usize; k];
    for (&c, &v) in cat.iter().zip(num) {
        group_sum[c as usize] += v;
        group_n[c as usize] += 1;
    }
    let mut between = 0.0;
    for g in 0..k {
        if group_n[g] > 0 {
            let mean = group_sum[g] / group_n[g] as f64;
            between += group_n[g] as f64 * (mean - grand) * (mean - grand);
        }
    }
    let total: f64 = num.iter().map(|&v| (v - grand) * (v - grand)).sum();
    if total <= 0.0 {
        return 0.0;
    }
    (between / total).sqrt().min(1.0)
}

/// Association of one attribute pair in `[0, 1]`.
pub fn association(table: &Table, i: usize, j: usize) -> f64 {
    match (&table.columns()[i], &table.columns()[j]) {
        (Column::Num(a), Column::Num(b)) => pearson_abs(a, b),
        (Column::Cat { codes: a, categories: ca }, Column::Cat { codes: b, categories: cb }) => {
            cramers_v(a, b, ca.len(), cb.len())
        }
        (Column::Cat { codes: c, categories }, Column::Num(v))
        | (Column::Num(v), Column::Cat { codes: c, categories }) => {
            correlation_ratio(c, v, categories.len())
        }
    }
}

/// The full association matrix (symmetric, unit diagonal).
#[allow(clippy::needless_range_loop)] // symmetric fill
pub fn association_matrix(table: &Table) -> Vec<Vec<f64>> {
    let m = table.n_attrs();
    let mut out = vec![vec![0.0; m]; m];
    for i in 0..m {
        out[i][i] = 1.0;
        for j in i + 1..m {
            let a = association(table, i, j);
            out[i][j] = a;
            out[j][i] = a;
        }
    }
    out
}

/// Correlation fidelity: mean absolute difference between the real and
/// synthetic association matrices over the strict upper triangle
/// (0 = association structure fully preserved).
pub fn correlation_fidelity(real: &Table, synthetic: &Table) -> f64 {
    assert_eq!(real.schema(), synthetic.schema(), "schema mismatch");
    let ra = association_matrix(real);
    let sa = association_matrix(synthetic);
    let m = real.n_attrs();
    if m < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..m {
        for j in i + 1..m {
            total += (ra[i][j] - sa[i][j]).abs();
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};
    use daisy_tensor::Rng;

    #[test]
    fn pearson_extremes() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson_abs(&a, &b) - 1.0).abs() < 1e-9);
        let anti: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson_abs(&a, &anti) - 1.0).abs() < 1e-9); // absolute value
        let constant = vec![5.0; 4];
        assert_eq!(pearson_abs(&a, &constant), 0.0);
    }

    #[test]
    fn cramers_v_extremes() {
        let a = vec![0u32, 1, 0, 1, 0, 1];
        assert!((cramers_v(&a, &a, 2, 2) - 1.0).abs() < 1e-9);
        let mut rng = Rng::seed_from_u64(0);
        let x: Vec<u32> = (0..20_000).map(|_| rng.usize(3) as u32).collect();
        let y: Vec<u32> = (0..20_000).map(|_| rng.usize(3) as u32).collect();
        assert!(cramers_v(&x, &y, 3, 3) < 0.03);
    }

    #[test]
    fn correlation_ratio_extremes() {
        // Perfect separation: group determines the value.
        let cat = vec![0u32, 0, 1, 1];
        let num = vec![1.0, 1.0, 5.0, 5.0];
        assert!((correlation_ratio(&cat, &num, 2) - 1.0).abs() < 1e-9);
        // Independence.
        let mut rng = Rng::seed_from_u64(1);
        let cat: Vec<u32> = (0..20_000).map(|_| rng.usize(4) as u32).collect();
        let num: Vec<f64> = (0..20_000).map(|_| rng.normal()).collect();
        assert!(correlation_ratio(&cat, &num, 4) < 0.03);
    }

    fn correlated_table(n: usize, correlated: bool, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        for _ in 0..n {
            let base = rng.normal();
            x.push(base);
            if correlated {
                y.push(base + rng.normal() * 0.3);
                c.push(u32::from(base > 0.0));
            } else {
                y.push(rng.normal());
                c.push(rng.usize(2) as u32);
            }
        }
        Table::new(
            Schema::new(vec![
                Attribute::numerical("x"),
                Attribute::numerical("y"),
                Attribute::categorical("c"),
            ]),
            vec![
                Column::Num(x),
                Column::Num(y),
                Column::cat_with_domain(c, 2),
            ],
        )
    }

    #[test]
    fn fidelity_detects_destroyed_correlations() {
        let real = correlated_table(4000, true, 2);
        let faithful = correlated_table(4000, true, 3);
        let destroyed = correlated_table(4000, false, 4);
        let good = correlation_fidelity(&real, &faithful);
        let bad = correlation_fidelity(&real, &destroyed);
        assert!(good < 0.05, "faithful fidelity {good}");
        assert!(bad > 0.3, "destroyed fidelity {bad}");
    }

    #[test]
    fn association_matrix_is_symmetric_with_unit_diagonal() {
        let t = correlated_table(500, true, 5);
        let m = association_matrix(&t);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, m[j][i]);
            }
        }
    }
}
