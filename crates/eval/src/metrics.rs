//! Classification metrics: F1 (the paper's primary utility metric),
//! precision/recall, accuracy, and binary AUC.

/// Accuracy over predicted vs. true labels.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(pred).filter(|(a, b)| a == b).count();
    hits as f64 / truth.len() as f64
}

/// Precision of one class: `TP / (TP + FP)`; 0 when nothing predicted.
pub fn precision(truth: &[usize], pred: &[usize], class: usize) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let tp = truth
        .iter()
        .zip(pred)
        .filter(|(t, p)| **p == class && **t == class)
        .count();
    let predicted = pred.iter().filter(|&&p| p == class).count();
    if predicted == 0 {
        0.0
    } else {
        tp as f64 / predicted as f64
    }
}

/// Recall of one class: `TP / (TP + FN)`; 0 when the class is absent.
pub fn recall(truth: &[usize], pred: &[usize], class: usize) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let tp = truth
        .iter()
        .zip(pred)
        .filter(|(t, p)| **p == class && **t == class)
        .count();
    let actual = truth.iter().filter(|&&t| t == class).count();
    if actual == 0 {
        0.0
    } else {
        tp as f64 / actual as f64
    }
}

/// F1 score of one class — the harmonic mean of precision and recall.
/// The paper evaluates the positive label on binary tasks and the rare
/// label on multi-class tasks.
pub fn f1_score(truth: &[usize], pred: &[usize], class: usize) -> f64 {
    let p = precision(truth, pred, class);
    let r = recall(truth, pred, class);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// The class whose F1 the paper reports: the rarest label in the
/// reference labels (for binary data this is the minority/positive
/// label; for multi-class, the rare label that is "more difficult to
/// predict than others").
pub fn target_class(reference_labels: &[usize], n_classes: usize) -> usize {
    assert!(n_classes > 0, "need at least one class");
    let mut counts = vec![0usize; n_classes];
    for &y in reference_labels {
        counts[y] += 1;
    }
    // Rarest non-empty class; ties resolve to the smallest code.
    (0..n_classes)
        .filter(|&c| counts[c] > 0)
        .min_by_key(|&c| counts[c])
        .unwrap_or(0)
}

/// Binary AUC (area under the ROC curve) from positive-class scores,
/// computed via the Mann–Whitney U statistic with tie correction.
pub fn auc_binary(truth: &[usize], scores: &[f64], positive: usize) -> f64 {
    assert_eq!(truth.len(), scores.len(), "length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    // Average ranks with tie handling.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let n_pos = truth.iter().filter(|&&t| t == positive).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let rank_sum: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(t, _)| **t == positive)
        .map(|(_, r)| r)
        .sum();
    (rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = vec![0, 1, 1, 0];
        assert_eq!(accuracy(&y, &y), 1.0);
        assert_eq!(f1_score(&y, &y, 1), 1.0);
        assert_eq!(precision(&y, &y, 0), 1.0);
        assert_eq!(recall(&y, &y, 0), 1.0);
    }

    #[test]
    fn known_f1() {
        // TP=1 (idx 1), FP=1 (idx 3), FN=1 (idx 2).
        let truth = vec![0, 1, 1, 0];
        let pred = vec![0, 1, 0, 1];
        assert_eq!(precision(&truth, &pred, 1), 0.5);
        assert_eq!(recall(&truth, &pred, 1), 0.5);
        assert_eq!(f1_score(&truth, &pred, 1), 0.5);
    }

    #[test]
    fn degenerate_f1_is_zero() {
        let truth = vec![1, 1, 1];
        let pred = vec![0, 0, 0];
        assert_eq!(f1_score(&truth, &pred, 1), 0.0);
    }

    #[test]
    fn target_class_is_minority() {
        assert_eq!(target_class(&[0, 0, 0, 1], 2), 1);
        assert_eq!(target_class(&[2, 2, 1, 1, 1, 0, 0, 0, 0], 3), 2);
        // Absent classes are skipped.
        assert_eq!(target_class(&[0, 0, 1], 5), 1);
    }

    #[test]
    fn auc_perfect_and_random() {
        let truth = vec![0, 0, 1, 1];
        assert_eq!(auc_binary(&truth, &[0.1, 0.2, 0.8, 0.9], 1), 1.0);
        assert_eq!(auc_binary(&truth, &[0.9, 0.8, 0.2, 0.1], 1), 0.0);
        // All-equal scores → 0.5 via tie correction.
        assert_eq!(auc_binary(&truth, &[0.5, 0.5, 0.5, 0.5], 1), 0.5);
    }

    #[test]
    fn auc_known_value() {
        // One inversion among 2x2 pairs: AUC = 3/4.
        let truth = vec![0, 1, 0, 1];
        let scores = vec![0.1, 0.3, 0.35, 0.8];
        assert!((auc_binary(&truth, &scores, 1) - 0.75).abs() < 1e-9);
    }
}
