//! The paper's machine-learning utility protocol (§2.1, §6.2): train a
//! classifier `f` on the real table and `f'` on the synthetic table,
//! evaluate both on the same test set, and report
//! `Diff = |Eval(f | T_test) − Eval(f' | T_test)|`.

use crate::classifiers::Classifier;
use crate::features::FeatureSpace;
use crate::metrics::{auc_binary, f1_score, target_class};
use daisy_data::Table;
use daisy_tensor::Rng;

/// Result of one utility comparison.
#[derive(Debug, Clone, Copy)]
pub struct UtilityReport {
    /// F1 (of the target class) for the classifier trained on real data.
    pub f1_real: f64,
    /// F1 for the classifier trained on synthetic data.
    pub f1_synthetic: f64,
    /// `|f1_real − f1_synthetic|` — the paper's `Diff`.
    pub f1_diff: f64,
    /// AUC for the real-trained classifier (binary tasks; 0.5 baseline
    /// reported for multi-class).
    pub auc_real: f64,
    /// AUC for the synthetic-trained classifier.
    pub auc_synthetic: f64,
}

/// Trains `make()` classifiers on real and synthetic tables and
/// evaluates both on `test`. The feature space and the target (rare)
/// class are fitted on the real training table only, so synthetic data
/// cannot move the goalposts.
pub fn classification_utility(
    real_train: &Table,
    synthetic: &Table,
    test: &Table,
    make: fn() -> Box<dyn Classifier>,
    rng: &mut Rng,
) -> UtilityReport {
    assert_eq!(
        real_train.schema(),
        synthetic.schema(),
        "real and synthetic schemas differ"
    );
    assert_eq!(real_train.schema(), test.schema(), "test schema differs");
    let n_classes = real_train.n_classes();
    let space = FeatureSpace::fit(real_train);
    let x_real = space.transform(real_train);
    let y_real = FeatureSpace::labels(real_train);
    let x_syn = space.transform(synthetic);
    let y_syn = FeatureSpace::labels(synthetic);
    let x_test = space.transform(test);
    let y_test = FeatureSpace::labels(test);
    let target = target_class(&y_real, n_classes);

    let mut f = make();
    f.fit(&x_real, &y_real, n_classes, rng);
    let pred_real = f.predict(&x_test);
    let f1_real = f1_score(&y_test, &pred_real, target);

    let mut f_syn = make();
    // A synthetic table can collapse onto a single label; the classifier
    // still trains (single-class) and scores 0 on the rare class.
    f_syn.fit(&x_syn, &y_syn, n_classes, rng);
    let pred_syn = f_syn.predict(&x_test);
    let f1_synthetic = f1_score(&y_test, &pred_syn, target);

    let (auc_real, auc_synthetic) = if n_classes == 2 {
        let pr = f.predict_proba(&x_test);
        let ps = f_syn.predict_proba(&x_test);
        let sr: Vec<f64> = (0..x_test.rows()).map(|i| pr.at2(i, target) as f64).collect();
        let ss: Vec<f64> = (0..x_test.rows()).map(|i| ps.at2(i, target) as f64).collect();
        (
            auc_binary(&y_test, &sr, target),
            auc_binary(&y_test, &ss, target),
        )
    } else {
        (0.5, 0.5)
    };

    UtilityReport {
        f1_real,
        f1_synthetic,
        f1_diff: (f1_real - f1_synthetic).abs(),
        auc_real,
        auc_synthetic,
    }
}

/// Absolute F1 of a classifier trained on `train` and evaluated on
/// `test` — used by epoch-robustness plots (Figure 4) and as a
/// validation scorer during model selection.
pub fn f1_on_test(
    train: &Table,
    test: &Table,
    reference: &Table,
    make: fn() -> Box<dyn Classifier>,
    rng: &mut Rng,
) -> f64 {
    if train.n_rows() == 0 {
        return 0.0;
    }
    let n_classes = reference.n_classes();
    let space = FeatureSpace::fit(reference);
    let y_ref = FeatureSpace::labels(reference);
    let target = target_class(&y_ref, n_classes);
    let mut clf = make();
    clf.fit(
        &space.transform(train),
        &FeatureSpace::labels(train),
        n_classes,
        rng,
    );
    let pred = clf.predict(&space.transform(test));
    f1_score(&FeatureSpace::labels(test), &pred, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Column, Schema};

    /// A labeled table where the label is a noisy function of x.
    fn labeled(n: usize, noise: f64, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.bool(0.3) as u32; // minority class 1
            ys.push(y);
            let base = if y == 1 { 2.0 } else { -2.0 };
            xs.push(rng.normal_ms(base, 1.0 + noise));
        }
        Table::new(
            Schema::with_label(
                vec![Attribute::numerical("x"), Attribute::categorical("y")],
                1,
            ),
            vec![Column::Num(xs), Column::cat_with_domain(ys, 2)],
        )
    }

    #[test]
    fn faithful_synthetic_has_small_diff() {
        let real = labeled(500, 0.0, 0);
        let synthetic = labeled(500, 0.0, 1); // same distribution
        let test = labeled(300, 0.0, 2);
        let mut rng = Rng::seed_from_u64(3);
        let report = classification_utility(
            &real,
            &synthetic,
            &test,
            || Box::new(crate::classifiers::DecisionTree::new(10)),
            &mut rng,
        );
        assert!(report.f1_real > 0.8, "f1_real = {}", report.f1_real);
        assert!(report.f1_diff < 0.1, "diff = {}", report.f1_diff);
        assert!(report.auc_real > 0.9);
    }

    #[test]
    fn garbage_synthetic_has_large_diff() {
        let real = labeled(500, 0.0, 4);
        // Garbage: labels independent of features.
        let mut rng = Rng::seed_from_u64(5);
        let n = 500;
        let garbage = Table::new(
            real.schema().clone(),
            vec![
                Column::Num((0..n).map(|_| rng.normal()).collect()),
                Column::cat_with_domain((0..n).map(|_| rng.usize(2) as u32).collect(), 2),
            ],
        );
        let test = labeled(300, 0.0, 6);
        let report = classification_utility(
            &real,
            &garbage,
            &test,
            || Box::new(crate::classifiers::DecisionTree::new(10)),
            &mut rng,
        );
        assert!(
            report.f1_diff > 0.2,
            "garbage should hurt: diff = {}",
            report.f1_diff
        );
    }

    #[test]
    fn f1_on_test_tracks_quality() {
        let real = labeled(400, 0.0, 7);
        let test = labeled(200, 0.0, 8);
        let mut rng = Rng::seed_from_u64(9);
        let good = f1_on_test(
            &real,
            &test,
            &real,
            || Box::new(crate::classifiers::DecisionTree::new(10)),
            &mut rng,
        );
        assert!(good > 0.8);
    }
}
