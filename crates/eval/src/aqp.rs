//! Approximate query processing utility (§2.1, §6.2): a workload of
//! aggregate queries (count/avg/sum with selections and groupings) runs
//! on the synthetic table and on uniform samples of the real table;
//! `DiffAQP = |e − e'|` averaged over the workload, where `e` and `e'`
//! are the relative errors of the sample and of the synthetic table
//! against the real answers.

use daisy_data::{AttrType, Column, Table};
use daisy_tensor::Rng;

/// Aggregate function of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)` over a numerical column.
    Sum(usize),
    /// `AVG(col)` over a numerical column.
    Avg(usize),
}

/// A selection predicate.
#[derive(Debug, Clone, Copy)]
pub enum Predicate {
    /// Categorical equality: `col = code`.
    CatEq(usize, u32),
    /// Numerical range: `lo <= col <= hi`.
    NumRange(usize, f64, f64),
}

/// One aggregate query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Aggregate function.
    pub agg: Agg,
    /// Conjunctive selection predicates.
    pub predicates: Vec<Predicate>,
    /// Optional GROUP BY over a categorical column.
    pub group_by: Option<usize>,
}

impl Predicate {
    fn matches(&self, table: &Table, row: usize) -> bool {
        match *self {
            Predicate::CatEq(col, code) => table.column(col).as_cat()[row] == code,
            Predicate::NumRange(col, lo, hi) => {
                let v = table.column(col).as_num()[row];
                v >= lo && v <= hi
            }
        }
    }
}

/// Executes a query, returning `(group, value)` pairs; ungrouped
/// queries return a single pair with group 0. Empty groups are omitted
/// (AVG of nothing is undefined).
pub fn execute(table: &Table, query: &Query) -> Vec<(u32, f64)> {
    let n_groups = match query.group_by {
        Some(col) => table.column(col).domain_size(),
        None => 1,
    };
    let mut counts = vec![0usize; n_groups];
    let mut sums = vec![0.0f64; n_groups];
    for i in 0..table.n_rows() {
        if !query.predicates.iter().all(|p| p.matches(table, i)) {
            continue;
        }
        let g = match query.group_by {
            Some(col) => table.column(col).as_cat()[i] as usize,
            None => 0,
        };
        counts[g] += 1;
        match query.agg {
            Agg::Count => {}
            Agg::Sum(col) | Agg::Avg(col) => sums[g] += table.column(col).as_num()[i],
        }
    }
    (0..n_groups)
        .filter(|&g| counts[g] > 0)
        .map(|g| {
            let v = match query.agg {
                Agg::Count => counts[g] as f64,
                Agg::Sum(_) => sums[g],
                Agg::Avg(_) => sums[g] / counts[g] as f64,
            };
            (g as u32, v)
        })
        .collect()
}

/// Relative error of an estimated result against the true result,
/// averaged over the true result's groups. Scaling for COUNT/SUM
/// estimates from differently sized tables is the caller's concern —
/// see [`workload_error`].
pub fn relative_error(truth: &[(u32, f64)], estimate: &[(u32, f64)]) -> f64 {
    if truth.is_empty() {
        // Nothing qualified in the real table; a correct estimate also
        // returns nothing.
        return if estimate.is_empty() { 0.0 } else { 1.0 };
    }
    let mut total = 0.0;
    for &(g, t) in truth {
        let e = estimate
            .iter()
            .find(|(ge, _)| *ge == g)
            .map(|&(_, v)| v);
        total += match e {
            // Missing group = 100% error, as in AQP practice.
            None => 1.0,
            Some(v) => {
                if t.abs() < 1e-12 {
                    if v.abs() < 1e-12 {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    ((t - v) / t).abs().min(1.0)
                }
            }
        };
    }
    total / truth.len() as f64
}

/// Generates a workload of `n` random aggregate queries against the
/// table's schema, following the generation recipe of \[36\]: random
/// aggregate (count/avg/sum), 0–2 selection predicates (categorical
/// equality or a numeric range covering ~25–75% of the observed range),
/// and a group-by on a categorical column with probability 1/2 (when
/// one exists).
pub fn generate_workload(table: &Table, n: usize, rng: &mut Rng) -> Vec<Query> {
    let mut num_cols = Vec::new();
    let mut cat_cols = Vec::new();
    for (j, a) in table.schema().attrs().iter().enumerate() {
        match a.ty {
            AttrType::Numerical => num_cols.push(j),
            AttrType::Categorical => cat_cols.push(j),
        }
    }
    assert!(
        !num_cols.is_empty() || !cat_cols.is_empty(),
        "table has no columns"
    );
    let ranges: Vec<Option<(f64, f64)>> = table
        .columns()
        .iter()
        .map(|c| match c {
            Column::Num(v) => {
                let min = v.iter().copied().fold(f64::INFINITY, f64::min);
                let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                Some((min, max))
            }
            _ => None,
        })
        .collect();

    (0..n)
        .map(|_| {
            let agg = if num_cols.is_empty() {
                Agg::Count
            } else {
                match rng.usize(3) {
                    0 => Agg::Count,
                    1 => Agg::Sum(num_cols[rng.usize(num_cols.len())]),
                    _ => Agg::Avg(num_cols[rng.usize(num_cols.len())]),
                }
            };
            let n_preds = rng.usize(3);
            let predicates = (0..n_preds)
                .filter_map(|_| {
                    let pick_cat = !cat_cols.is_empty() && (num_cols.is_empty() || rng.bool(0.5));
                    if pick_cat {
                        let col = cat_cols[rng.usize(cat_cols.len())];
                        let k = table.column(col).domain_size();
                        Some(Predicate::CatEq(col, rng.usize(k) as u32))
                    } else if !num_cols.is_empty() {
                        let col = num_cols[rng.usize(num_cols.len())];
                        let (min, max) = ranges[col].unwrap();
                        if max <= min {
                            return None;
                        }
                        let width = (max - min) * rng.uniform(0.25, 0.75);
                        let lo = rng.uniform(min, max - width);
                        Some(Predicate::NumRange(col, lo, lo + width))
                    } else {
                        None
                    }
                })
                .collect();
            let group_by = if !cat_cols.is_empty() && rng.bool(0.5) {
                Some(cat_cols[rng.usize(cat_cols.len())])
            } else {
                None
            };
            Query {
                agg,
                predicates,
                group_by,
            }
        })
        .collect()
}

/// Mean relative error of `estimate_table` answering the workload
/// against `real`. COUNT and SUM results are scaled by the row-count
/// ratio so differently sized estimators are comparable.
pub fn workload_error(real: &Table, estimate_table: &Table, queries: &[Query]) -> f64 {
    assert!(!queries.is_empty(), "empty workload");
    let scale = real.n_rows() as f64 / estimate_table.n_rows().max(1) as f64;
    let mut total = 0.0;
    for q in queries {
        let truth = execute(real, q);
        let mut est = execute(estimate_table, q);
        if matches!(q.agg, Agg::Count | Agg::Sum(_)) {
            for (_, v) in &mut est {
                *v *= scale;
            }
        }
        total += relative_error(&truth, &est);
    }
    total / queries.len() as f64
}

/// The paper's AQP utility protocol: `e'` = synthetic-table error,
/// `e` = error of uniform samples (fraction `sample_frac`, averaged
/// over `n_sample_sets` draws); returns the mean `|e − e'|`.
pub fn aqp_utility(
    real: &Table,
    synthetic: &Table,
    queries: &[Query],
    sample_frac: f64,
    n_sample_sets: usize,
    rng: &mut Rng,
) -> f64 {
    assert!(!queries.is_empty(), "empty workload");
    let sample_n = ((real.n_rows() as f64 * sample_frac) as usize).max(1);
    let mut per_query_sample_err = vec![0.0f64; queries.len()];
    for _ in 0..n_sample_sets.max(1) {
        let idx: Vec<usize> = (0..sample_n).map(|_| rng.usize(real.n_rows())).collect();
        let sample = real.select_rows(&idx);
        let scale = real.n_rows() as f64 / sample_n as f64;
        for (qi, q) in queries.iter().enumerate() {
            let truth = execute(real, q);
            let mut est = execute(&sample, q);
            if matches!(q.agg, Agg::Count | Agg::Sum(_)) {
                for (_, v) in &mut est {
                    *v *= scale;
                }
            }
            per_query_sample_err[qi] += relative_error(&truth, &est);
        }
    }
    let sets = n_sample_sets.max(1) as f64;
    let syn_scale = real.n_rows() as f64 / synthetic.n_rows().max(1) as f64;
    let mut total = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let e_sample = per_query_sample_err[qi] / sets;
        let truth = execute(real, q);
        let mut est = execute(synthetic, q);
        if matches!(q.agg, Agg::Count | Agg::Sum(_)) {
            for (_, v) in &mut est {
                *v *= syn_scale;
            }
        }
        let e_syn = relative_error(&truth, &est);
        total += (e_sample - e_syn).abs();
    }
    total / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};

    fn demo() -> Table {
        Table::new(
            Schema::new(vec![
                Attribute::numerical("v"),
                Attribute::categorical("g"),
            ]),
            vec![
                Column::Num(vec![1.0, 2.0, 3.0, 4.0]),
                Column::cat_with_domain(vec![0, 0, 1, 1], 2),
            ],
        )
    }

    #[test]
    fn count_sum_avg() {
        let t = demo();
        let q = Query {
            agg: Agg::Count,
            predicates: vec![],
            group_by: None,
        };
        assert_eq!(execute(&t, &q), vec![(0, 4.0)]);
        let q = Query {
            agg: Agg::Sum(0),
            predicates: vec![],
            group_by: Some(1),
        };
        assert_eq!(execute(&t, &q), vec![(0, 3.0), (1, 7.0)]);
        let q = Query {
            agg: Agg::Avg(0),
            predicates: vec![Predicate::NumRange(0, 2.0, 4.0)],
            group_by: None,
        };
        assert_eq!(execute(&t, &q), vec![(0, 3.0)]);
    }

    #[test]
    fn predicates_filter() {
        let t = demo();
        let q = Query {
            agg: Agg::Count,
            predicates: vec![Predicate::CatEq(1, 0), Predicate::NumRange(0, 1.5, 5.0)],
            group_by: None,
        };
        assert_eq!(execute(&t, &q), vec![(0, 1.0)]); // only row with v=2, g=0
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(&[(0, 10.0)], &[(0, 10.0)]), 0.0);
        assert_eq!(relative_error(&[(0, 10.0)], &[(0, 5.0)]), 0.5);
        assert_eq!(relative_error(&[(0, 10.0)], &[]), 1.0);
        assert_eq!(relative_error(&[], &[]), 0.0);
        assert_eq!(relative_error(&[], &[(0, 1.0)]), 1.0);
        // Errors cap at 1 so one bad query cannot dominate a workload.
        assert_eq!(relative_error(&[(0, 1.0)], &[(0, 100.0)]), 1.0);
    }

    #[test]
    fn identical_tables_have_zero_workload_error() {
        let t = demo();
        let mut rng = Rng::seed_from_u64(0);
        let queries = generate_workload(&t, 50, &mut rng);
        assert_eq!(workload_error(&t, &t, &queries), 0.0);
    }

    #[test]
    fn count_scaling_makes_small_faithful_tables_accurate() {
        // A half-size copy with the same distribution should answer
        // COUNT queries almost perfectly after scaling.
        let mut rng = Rng::seed_from_u64(1);
        let n = 2000;
        let mk = |n: usize, rng: &mut Rng| {
            Table::new(
                Schema::new(vec![
                    Attribute::numerical("v"),
                    Attribute::categorical("g"),
                ]),
                vec![
                    Column::Num((0..n).map(|_| rng.uniform(0.0, 1.0)).collect()),
                    Column::cat_with_domain(
                        (0..n).map(|_| rng.usize(3) as u32).collect(),
                        3,
                    ),
                ],
            )
        };
        let real = mk(n, &mut rng);
        let half = mk(n / 2, &mut rng);
        let queries = generate_workload(&real, 100, &mut rng);
        let err = workload_error(&real, &half, &queries);
        assert!(err < 0.1, "scaled workload error {err}");
    }

    #[test]
    fn aqp_utility_prefers_faithful_synthetic() {
        let mut rng = Rng::seed_from_u64(2);
        let n = 1500;
        let mk = |shift: f64, n: usize, rng: &mut Rng| {
            Table::new(
                Schema::new(vec![
                    Attribute::numerical("v"),
                    Attribute::categorical("g"),
                ]),
                vec![
                    Column::Num((0..n).map(|_| rng.uniform(0.0, 1.0) + shift).collect()),
                    Column::cat_with_domain(
                        (0..n).map(|_| rng.usize(3) as u32).collect(),
                        3,
                    ),
                ],
            )
        };
        let real = mk(0.0, n, &mut rng);
        let faithful = mk(0.0, n, &mut rng);
        let shifted = mk(0.5, n, &mut rng);
        let queries = generate_workload(&real, 80, &mut rng);
        let good = aqp_utility(&real, &faithful, &queries, 0.05, 3, &mut rng);
        let bad = aqp_utility(&real, &shifted, &queries, 0.05, 3, &mut rng);
        assert!(good < bad, "faithful {good} vs shifted {bad}");
    }
}
