//! Per-attribute distribution fidelity (Appendix B.5, Figures 13–14):
//! does a synthetic attribute's value distribution match its real
//! counterpart? Numerical attributes are compared by the 1-Wasserstein
//! (earth-mover) distance, categorical attributes by total variation
//! distance; quantile summaries provide the violin-plot data.

use daisy_data::{Column, Table};

/// Quantile summary of a numeric sample (violin-plot skeleton).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileSummary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

/// Computes the five-number summary plus mean.
pub fn quantile_summary(values: &[f64]) -> QuantileSummary {
    assert!(!values.is_empty(), "empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| -> f64 {
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (idx - lo as f64) * (sorted[hi] - sorted[lo])
        }
    };
    QuantileSummary {
        min: sorted[0],
        q25: q(0.25),
        median: q(0.5),
        q75: q(0.75),
        max: *sorted.last().unwrap(),
        mean: values.iter().sum::<f64>() / values.len() as f64,
    }
}

/// 1-Wasserstein distance between two empirical distributions,
/// computed via quantile-function integration on the merged support.
pub fn wasserstein1(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    // Integrate |F_a^{-1}(u) - F_b^{-1}(u)| du on a fine grid.
    let steps = (sa.len() + sb.len()).max(256);
    let mut total = 0.0;
    for s in 0..steps {
        let u = (s as f64 + 0.5) / steps as f64;
        let qa = sa[((u * sa.len() as f64) as usize).min(sa.len() - 1)];
        let qb = sb[((u * sb.len() as f64) as usize).min(sb.len() - 1)];
        total += (qa - qb).abs();
    }
    total / steps as f64
}

/// Total variation distance between the category distributions of two
/// coded samples over a common domain of size `k`.
pub fn total_variation(a: &[u32], b: &[u32], k: usize) -> f64 {
    assert!(k > 0, "empty domain");
    let hist = |codes: &[u32]| -> Vec<f64> {
        let mut h = vec![0.0f64; k];
        for &c in codes {
            h[c as usize] += 1.0;
        }
        let n = codes.len().max(1) as f64;
        h.iter_mut().for_each(|x| *x /= n);
        h
    };
    let (ha, hb) = (hist(a), hist(b));
    0.5 * ha
        .iter()
        .zip(&hb)
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
}

/// Per-attribute fidelity report comparing a synthetic table to the
/// real one.
#[derive(Debug, Clone)]
pub enum AttributeFidelity {
    /// Numerical attribute: Wasserstein distance plus both summaries.
    Numerical {
        /// Attribute name.
        name: String,
        /// Earth-mover distance real↔synthetic.
        wasserstein: f64,
        /// Real-value summary.
        real: QuantileSummary,
        /// Synthetic-value summary.
        synthetic: QuantileSummary,
    },
    /// Categorical attribute: total variation distance.
    Categorical {
        /// Attribute name.
        name: String,
        /// Total variation distance real↔synthetic.
        tv: f64,
    },
}

impl AttributeFidelity {
    /// The scalar divergence regardless of kind.
    pub fn divergence(&self) -> f64 {
        match self {
            AttributeFidelity::Numerical { wasserstein, .. } => *wasserstein,
            AttributeFidelity::Categorical { tv, .. } => *tv,
        }
    }
}

/// Compares every attribute of `synthetic` to `real`.
pub fn attribute_fidelity(real: &Table, synthetic: &Table) -> Vec<AttributeFidelity> {
    assert_eq!(real.schema(), synthetic.schema(), "schema mismatch");
    (0..real.n_attrs())
        .map(|j| {
            let name = real.schema().attr(j).name.clone();
            match (&real.columns()[j], &synthetic.columns()[j]) {
                (Column::Num(rv), Column::Num(sv)) => AttributeFidelity::Numerical {
                    name,
                    wasserstein: wasserstein1(rv, sv),
                    real: quantile_summary(rv),
                    synthetic: quantile_summary(sv),
                },
                (Column::Cat { codes: rc, categories }, Column::Cat { codes: sc, .. }) => {
                    AttributeFidelity::Categorical {
                        name,
                        tv: total_variation(rc, sc, categories.len()),
                    }
                }
                _ => unreachable!("schemas matched"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::Rng;

    #[test]
    fn quantiles_of_known_sample() {
        let s = quantile_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
    }

    #[test]
    fn wasserstein_of_identical_is_zero() {
        let a = vec![1.0, 2.0, 3.0];
        assert!(wasserstein1(&a, &a) < 1e-9);
    }

    #[test]
    fn wasserstein_of_shifted_equals_shift() {
        let mut rng = Rng::seed_from_u64(0);
        let a: Vec<f64> = (0..2000).map(|_| rng.normal()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 2.0).collect();
        let w = wasserstein1(&a, &b);
        assert!((w - 2.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn total_variation_cases() {
        assert_eq!(total_variation(&[0, 0, 1, 1], &[0, 0, 1, 1], 2), 0.0);
        assert_eq!(total_variation(&[0, 0, 0, 0], &[1, 1, 1, 1], 2), 1.0);
        assert_eq!(total_variation(&[0, 0, 1, 1], &[0, 0, 0, 0], 2), 0.5);
    }

    #[test]
    fn multimodal_mismatch_detected() {
        // A unimodal synthetic misses one mode of a bimodal real
        // attribute — the Figure 13 failure signature.
        let mut rng = Rng::seed_from_u64(1);
        let real: Vec<f64> = (0..2000)
            .map(|i| {
                if i % 2 == 0 {
                    rng.normal_ms(-3.0, 0.5)
                } else {
                    rng.normal_ms(3.0, 0.5)
                }
            })
            .collect();
        let unimodal: Vec<f64> = (0..2000).map(|_| rng.normal_ms(0.0, 0.5)).collect();
        let bimodal: Vec<f64> = (0..2000)
            .map(|i| {
                if i % 2 == 0 {
                    rng.normal_ms(-3.0, 0.5)
                } else {
                    rng.normal_ms(3.0, 0.5)
                }
            })
            .collect();
        assert!(wasserstein1(&real, &bimodal) < wasserstein1(&real, &unimodal) / 3.0);
    }
}
