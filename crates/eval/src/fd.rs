//! Functional-dependency preservation.
//!
//! The paper's future-work list (§8, "Capturing attribute correlations")
//! points at the database community's functional dependencies as the
//! explicit form of attribute correlation GANs only capture implicitly
//! (citing the FakeTables attempt \[16\]). This module provides the
//! measurement side: mine approximate single-attribute FDs `A → B` from
//! the real table, then check how well the synthetic table satisfies
//! them.

use daisy_data::{AttrType, Column, Table};
use std::collections::BTreeMap;

/// An approximate functional dependency `lhs → rhs` between two
/// categorical attributes, with its confidence on the mining table.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalDependency {
    /// Determinant attribute index.
    pub lhs: usize,
    /// Dependent attribute index.
    pub rhs: usize,
    /// Fraction of rows whose `rhs` value equals the majority `rhs`
    /// value of their `lhs` group (1.0 = exact FD).
    pub confidence: f64,
    /// The majority mapping `lhs code → rhs code` observed. Sorted by
    /// `lhs` code so iteration (and `Debug` output) is deterministic.
    pub mapping: BTreeMap<u32, u32>,
}

/// Confidence of `lhs → rhs` on a table, together with the majority
/// mapping: for each `lhs` value, the most frequent `rhs` value; the
/// confidence is the fraction of rows following that mapping.
///
/// Deterministic by construction: the counting maps are `BTreeMap`s
/// (fixed iteration order) and majority ties break toward the
/// *smallest* `rhs` code — so the result is a pure function of the
/// table's contents, independent of hash seeds or row insertion order.
pub fn fd_confidence(table: &Table, lhs: usize, rhs: usize) -> (f64, BTreeMap<u32, u32>) {
    let a = table.column(lhs).as_cat();
    let b = table.column(rhs).as_cat();
    let mut counts: BTreeMap<u32, BTreeMap<u32, usize>> = BTreeMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *counts.entry(x).or_default().entry(y).or_insert(0) += 1;
    }
    let mut mapping = BTreeMap::new();
    let mut majority_total = 0usize;
    for (x, ys) in &counts {
        // First strictly-greater count wins: ascending key order makes
        // the smallest rhs code the deterministic tie-break.
        let (mut best_y, mut best_n) = (0u32, 0usize);
        for (&y, &n) in ys {
            if n > best_n {
                best_y = y;
                best_n = n;
            }
        }
        mapping.insert(*x, best_y);
        majority_total += best_n;
    }
    let confidence = majority_total as f64 / a.len().max(1) as f64;
    (confidence, mapping)
}

/// Mines all pairwise categorical FDs with confidence at least
/// `min_confidence` and a non-trivial determinant (the mapping must
/// take at least two distinct values — otherwise "everything maps to
/// the constant" is vacuously confident).
pub fn mine_fds(table: &Table, min_confidence: f64) -> Vec<FunctionalDependency> {
    let cat_cols: Vec<usize> = (0..table.n_attrs())
        .filter(|&j| table.schema().attr(j).ty == AttrType::Categorical)
        .collect();
    let mut fds = Vec::new();
    for &lhs in &cat_cols {
        for &rhs in &cat_cols {
            if lhs == rhs {
                continue;
            }
            let (confidence, mapping) = fd_confidence(table, lhs, rhs);
            let distinct_rhs: std::collections::BTreeSet<u32> =
                mapping.values().copied().collect();
            if confidence >= min_confidence && distinct_rhs.len() >= 2 {
                fds.push(FunctionalDependency {
                    lhs,
                    rhs,
                    confidence,
                    mapping,
                });
            }
        }
    }
    fds
}

/// How well `synthetic` satisfies an FD mined from the real table: the
/// fraction of synthetic rows whose `rhs` follows the real majority
/// mapping (unseen `lhs` codes count as violations).
pub fn fd_satisfaction(synthetic: &Table, fd: &FunctionalDependency) -> f64 {
    let a = synthetic.column(fd.lhs).as_cat();
    let b = synthetic.column(fd.rhs).as_cat();
    if a.is_empty() {
        return 0.0;
    }
    let hits = a
        .iter()
        .zip(b)
        .filter(|(x, y)| fd.mapping.get(x) == Some(y))
        .count();
    hits as f64 / a.len() as f64
}

/// Summary of FD preservation: mean absolute gap between each mined
/// FD's real confidence and its synthetic satisfaction (0 = perfectly
/// preserved). Returns `None` when the real table has no qualifying
/// FDs.
pub fn fd_preservation_gap(
    real: &Table,
    synthetic: &Table,
    min_confidence: f64,
) -> Option<f64> {
    let fds = mine_fds(real, min_confidence);
    if fds.is_empty() {
        return None;
    }
    let total: f64 = fds
        .iter()
        .map(|fd| (fd.confidence - fd_satisfaction(synthetic, fd)).abs())
        .sum();
    Some(total / fds.len() as f64)
}

/// Convenience: does the table have at least two categorical columns
/// (the precondition for FD mining)?
pub fn supports_fd_mining(table: &Table) -> bool {
    table
        .columns()
        .iter()
        .filter(|c| matches!(c, Column::Cat { .. }))
        .count()
        >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};
    use daisy_tensor::Rng;

    /// city → state is an exact FD; state → city is not.
    fn geo_table(n: usize, noise: f64, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let mut city = Vec::with_capacity(n);
        let mut state = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.usize(6) as u32; // 6 cities
            city.push(c);
            // Cities 0-2 in state 0, cities 3-5 in state 1, with noise.
            let s = if rng.f64() < noise {
                rng.usize(2) as u32
            } else {
                u32::from(c >= 3)
            };
            state.push(s);
        }
        Table::new(
            Schema::new(vec![
                Attribute::categorical("city"),
                Attribute::categorical("state"),
            ]),
            vec![
                Column::cat_with_domain(city, 6),
                Column::cat_with_domain(state, 2),
            ],
        )
    }

    #[test]
    fn exact_fd_has_confidence_one() {
        let t = geo_table(1000, 0.0, 0);
        let (conf, mapping) = fd_confidence(&t, 0, 1);
        assert_eq!(conf, 1.0);
        assert_eq!(mapping[&0], 0);
        assert_eq!(mapping[&5], 1);
    }

    #[test]
    fn noisy_fd_confidence_drops() {
        let t = geo_table(5000, 0.2, 1);
        let (conf, _) = fd_confidence(&t, 0, 1);
        // 20% noise, half of which lands on the right state anyway.
        assert!((conf - 0.9).abs() < 0.03, "conf = {conf}");
    }

    #[test]
    fn mining_finds_city_to_state_only() {
        let t = geo_table(2000, 0.02, 2);
        let fds = mine_fds(&t, 0.9);
        assert_eq!(fds.len(), 1);
        assert_eq!((fds[0].lhs, fds[0].rhs), (0, 1));
        // state → city cannot be confident: each state hosts 3 cities.
        let (conf_rev, _) = fd_confidence(&t, 1, 0);
        assert!(conf_rev < 0.6);
    }

    #[test]
    fn satisfaction_of_faithful_and_broken_synthetic() {
        let real = geo_table(2000, 0.0, 3);
        let fds = mine_fds(&real, 0.95);
        let fd = &fds[0];
        let faithful = geo_table(2000, 0.0, 4);
        assert!(fd_satisfaction(&faithful, fd) > 0.99);
        // Shuffle the state column to break the FD.
        let mut rng = Rng::seed_from_u64(5);
        let mut broken_state: Vec<u32> =
            (0..2000).map(|_| rng.usize(2) as u32).collect();
        rng.shuffle(&mut broken_state);
        let broken = Table::new(
            real.schema().clone(),
            vec![
                real.columns()[0].clone(),
                Column::cat_with_domain(broken_state, 2),
            ],
        );
        assert!(fd_satisfaction(&broken, fd) < 0.65);
        // The preservation gap ranks them accordingly.
        let g_faithful = fd_preservation_gap(&real, &faithful, 0.95).unwrap();
        let g_broken = fd_preservation_gap(&real, &broken, 0.95).unwrap();
        assert!(g_faithful < 0.02);
        assert!(g_broken > 0.3);
    }

    #[test]
    fn vacuous_constant_fds_excluded() {
        // b is constant: a → b has confidence 1 but is vacuous.
        let t = Table::new(
            Schema::new(vec![
                Attribute::categorical("a"),
                Attribute::categorical("b"),
            ]),
            vec![
                Column::cat_with_domain(vec![0, 1, 2, 0, 1, 2], 3),
                Column::cat_with_domain(vec![0, 0, 0, 0, 0, 0], 2),
            ],
        );
        assert!(mine_fds(&t, 0.9).is_empty());
    }

    /// Regression for the hash-ordered bug this module shipped with:
    /// `fd_confidence` used nested `HashMap`s, so majority *ties* broke
    /// in hash-seed order and the mined mapping could differ between
    /// processes. Feeding the same rows in different orders stands in
    /// for different hash states (it permutes every map's insertion
    /// order); the output must be identical — and ties must
    /// deterministically pick the smallest rhs code.
    #[test]
    fn confidence_and_mapping_are_insertion_order_independent() {
        // city 0 maps to states 1 and 2 with EQUAL counts (a tie);
        // city 1 is unambiguous.
        let city = [0, 0, 0, 0, 1, 1];
        let state = [2, 1, 2, 1, 0, 0];
        let build = |order: &[usize]| {
            let c: Vec<u32> = order.iter().map(|&i| city[i]).collect();
            let s: Vec<u32> = order.iter().map(|&i| state[i]).collect();
            Table::new(
                Schema::new(vec![
                    Attribute::categorical("city"),
                    Attribute::categorical("state"),
                ]),
                vec![Column::cat_with_domain(c, 2), Column::cat_with_domain(s, 3)],
            )
        };
        let forward = build(&[0, 1, 2, 3, 4, 5]);
        let reversed = build(&[5, 4, 3, 2, 1, 0]);
        let shuffled = build(&[3, 0, 5, 2, 4, 1]);
        let (conf_f, map_f) = fd_confidence(&forward, 0, 1);
        let (conf_r, map_r) = fd_confidence(&reversed, 0, 1);
        let (conf_s, map_s) = fd_confidence(&shuffled, 0, 1);
        assert_eq!(conf_f.to_bits(), conf_r.to_bits());
        assert_eq!(conf_f.to_bits(), conf_s.to_bits());
        assert_eq!(map_f, map_r);
        assert_eq!(map_f, map_s);
        // The tie on city 0 resolves to the smallest rhs code.
        assert_eq!(map_f[&0], 1);
        assert_eq!(map_f[&1], 0);
        // Byte-identical Debug rendering (what goes into reports).
        assert_eq!(format!("{map_f:?}"), format!("{map_r:?}"));
    }

    #[test]
    fn supports_check() {
        let t = geo_table(10, 0.0, 6);
        assert!(supports_fd_mining(&t));
        let numeric_only = Table::new(
            Schema::new(vec![Attribute::numerical("x")]),
            vec![Column::Num(vec![1.0])],
        );
        assert!(!supports_fd_mining(&numeric_only));
    }
}
