//! Typed errors for table ingestion, export, and the on-disk chunk store.
//!
//! CSV parsing and the chunk store are the places the library consumes
//! untrusted input, so every malformed-input condition surfaces as a
//! [`DataError`] instead of a panic: the CLI reports "row 3 has 2
//! cells, expected 4" or "chunk 5 failed its checksum" rather than
//! aborting with a backtrace or silently training on corrupt data.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// An error raised while reading or writing tabular data.
#[derive(Debug)]
pub enum DataError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The input had no header row (or no bytes at all).
    EmptyCsv,
    /// A header cell was blank, so the column cannot be addressed.
    BlankColumnName {
        /// Zero-based index of the blank header cell.
        column: usize,
    },
    /// Two columns share a name; `--label` and schema lookups would be
    /// ambiguous.
    DuplicateColumn {
        /// The repeated column name.
        name: String,
    },
    /// A data row's cell count disagrees with the header.
    RaggedRow {
        /// One-based line number in the input (the header is line 1).
        line: usize,
        /// Cells found on the offending row.
        got: usize,
        /// Cells implied by the header.
        expected: usize,
    },
    /// A cell in a numeric column parsed as `f64` but is NaN or
    /// infinite; such values would silently poison normalizer fits.
    NonFiniteNumber {
        /// One-based line number in the input (the header is line 1).
        line: usize,
        /// Name of the offending column.
        column: String,
        /// The cell text as read.
        value: String,
    },
    /// A quoted field was opened but never closed before end of line.
    UnterminatedQuote {
        /// One-based line number in the input (the header is line 1).
        line: usize,
    },
    /// The requested label column does not exist in the header.
    UnknownLabel {
        /// The label name that was requested.
        name: String,
    },
    /// A category name cannot be serialized even with quoting (it
    /// contains a line break, which the line-oriented reader cannot
    /// round-trip).
    UnwritableCategory {
        /// The offending category name.
        name: String,
    },
    /// A chunk file failed framing or checksum validation. The reader
    /// quarantines the file (renamed `*.corrupt-N`) before returning.
    CorruptChunk {
        /// Path the chunk lived at before quarantine.
        path: PathBuf,
        /// What failed: bad magic, short frame, checksum mismatch.
        detail: String,
    },
    /// The store manifest failed framing or checksum validation.
    CorruptManifest {
        /// Path of the manifest file.
        path: PathBuf,
        /// What failed: bad magic, short frame, checksum mismatch.
        detail: String,
    },
    /// Resumed ingestion found an input or journal that disagrees with
    /// what the journal recorded (schema drift, shorter input, edited
    /// rows).
    SchemaMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// Row-skip error policy ran out of budget: more rows were rejected
    /// than the caller allowed.
    RowBudgetExhausted {
        /// Rows rejected so far (including the one that broke the
        /// budget).
        rejected: usize,
        /// Maximum rejections the caller allowed.
        budget: usize,
    },
    /// Ingestion stopped at a planned kill point (deterministic fault
    /// injection standing in for SIGKILL). The journal and any sealed
    /// chunks are on disk; rerunning resumes.
    Interrupted {
        /// Rows fully ingested before the kill fired.
        rows_ingested: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::EmptyCsv => write!(f, "empty CSV: missing header row"),
            DataError::BlankColumnName { column } => {
                write!(f, "header column {} has a blank name", column + 1)
            }
            DataError::DuplicateColumn { name } => {
                write!(f, "duplicate column name {name:?} in header")
            }
            DataError::RaggedRow {
                line,
                got,
                expected,
            } => write!(f, "line {line}: row has {got} cells, expected {expected}"),
            DataError::NonFiniteNumber {
                line,
                column,
                value,
            } => write!(
                f,
                "line {line}: column {column:?} has non-finite numeric value {value:?}"
            ),
            DataError::UnterminatedQuote { line } => {
                write!(f, "line {line}: quoted field is never closed")
            }
            DataError::UnknownLabel { name } => {
                write!(f, "label column {name:?} not found in header")
            }
            DataError::UnwritableCategory { name } => {
                write!(
                    f,
                    "category name {name:?} contains a line break and cannot be written to CSV"
                )
            }
            DataError::CorruptChunk { path, detail } => {
                write!(f, "corrupt chunk {}: {detail} (quarantined)", path.display())
            }
            DataError::CorruptManifest { path, detail } => {
                write!(f, "corrupt manifest {}: {detail}", path.display())
            }
            DataError::SchemaMismatch { detail } => {
                write!(f, "resume mismatch: {detail}")
            }
            DataError::RowBudgetExhausted { rejected, budget } => {
                write!(
                    f,
                    "rejected {rejected} rows, exceeding the skip budget of {budget}"
                )
            }
            DataError::Interrupted { rows_ingested } => {
                write!(f, "ingestion interrupted after {rows_ingested} rows")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_user_facing() {
        let msgs = [
            DataError::EmptyCsv.to_string(),
            DataError::BlankColumnName { column: 0 }.to_string(),
            DataError::DuplicateColumn { name: "age".into() }.to_string(),
            DataError::RaggedRow {
                line: 3,
                got: 2,
                expected: 4,
            }
            .to_string(),
            DataError::UnknownLabel {
                name: "income".into(),
            }
            .to_string(),
            DataError::UnwritableCategory { name: "a\nb".into() }.to_string(),
            DataError::NonFiniteNumber {
                line: 7,
                column: "age".into(),
                value: "NaN".into(),
            }
            .to_string(),
            DataError::UnterminatedQuote { line: 4 }.to_string(),
            DataError::CorruptChunk {
                path: "chunk-000003.dch".into(),
                detail: "checksum mismatch".into(),
            }
            .to_string(),
            DataError::CorruptManifest {
                path: "manifest.dmf".into(),
                detail: "bad magic".into(),
            }
            .to_string(),
            DataError::SchemaMismatch {
                detail: "input shrank".into(),
            }
            .to_string(),
            DataError::RowBudgetExhausted {
                rejected: 6,
                budget: 5,
            }
            .to_string(),
            DataError::Interrupted { rows_ingested: 42 }.to_string(),
        ];
        assert!(msgs[0].contains("header"));
        assert!(msgs[1].contains("column 1"));
        assert!(msgs[2].contains("age"));
        assert!(msgs[3].contains("line 3") && msgs[3].contains("expected 4"));
        assert!(msgs[4].contains("income"));
        assert!(msgs[5].contains("line break"));
        assert!(msgs[6].contains("line 7") && msgs[6].contains("NaN"));
        assert!(msgs[7].contains("line 4"));
        assert!(msgs[8].contains("quarantined"));
        assert!(msgs[9].contains("manifest"));
        assert!(msgs[10].contains("input shrank"));
        assert!(msgs[11].contains("budget of 5"));
        assert!(msgs[12].contains("42 rows"));
    }

    #[test]
    fn io_errors_wrap_with_source() {
        let e = DataError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
