//! Typed errors for table ingestion and export.
//!
//! CSV parsing is the one place the library consumes untrusted input,
//! so every malformed-input condition surfaces as a [`DataError`]
//! instead of a panic: the CLI reports "row 3 has 2 cells, expected 4"
//! rather than aborting with a backtrace.

use std::fmt;
use std::io;

/// An error raised while reading or writing tabular data.
#[derive(Debug)]
pub enum DataError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The input had no header row (or no bytes at all).
    EmptyCsv,
    /// A header cell was blank, so the column cannot be addressed.
    BlankColumnName {
        /// Zero-based index of the blank header cell.
        column: usize,
    },
    /// Two columns share a name; `--label` and schema lookups would be
    /// ambiguous.
    DuplicateColumn {
        /// The repeated column name.
        name: String,
    },
    /// A data row's cell count disagrees with the header.
    RaggedRow {
        /// One-based line number in the input (the header is line 1).
        line: usize,
        /// Cells found on the offending row.
        got: usize,
        /// Cells implied by the header.
        expected: usize,
    },
    /// The requested label column does not exist in the header.
    UnknownLabel {
        /// The label name that was requested.
        name: String,
    },
    /// A category name cannot be serialized unambiguously (the writer
    /// does not quote, so embedded commas are rejected).
    UnwritableCategory {
        /// The offending category name.
        name: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::EmptyCsv => write!(f, "empty CSV: missing header row"),
            DataError::BlankColumnName { column } => {
                write!(f, "header column {} has a blank name", column + 1)
            }
            DataError::DuplicateColumn { name } => {
                write!(f, "duplicate column name {name:?} in header")
            }
            DataError::RaggedRow {
                line,
                got,
                expected,
            } => write!(f, "line {line}: row has {got} cells, expected {expected}"),
            DataError::UnknownLabel { name } => {
                write!(f, "label column {name:?} not found in header")
            }
            DataError::UnwritableCategory { name } => {
                write!(f, "category name {name:?} contains a comma and cannot be written unquoted")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_user_facing() {
        let msgs = [
            DataError::EmptyCsv.to_string(),
            DataError::BlankColumnName { column: 0 }.to_string(),
            DataError::DuplicateColumn { name: "age".into() }.to_string(),
            DataError::RaggedRow {
                line: 3,
                got: 2,
                expected: 4,
            }
            .to_string(),
            DataError::UnknownLabel {
                name: "income".into(),
            }
            .to_string(),
            DataError::UnwritableCategory { name: "a,b".into() }.to_string(),
        ];
        assert!(msgs[0].contains("header"));
        assert!(msgs[1].contains("column 1"));
        assert!(msgs[2].contains("age"));
        assert!(msgs[3].contains("line 3") && msgs[3].contains("expected 4"));
        assert!(msgs[4].contains("income"));
        assert!(msgs[5].contains("comma"));
    }

    #[test]
    fn io_errors_wrap_with_source() {
        let e = DataError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
