//! Chunk-granular access to a table, uniform over in-memory and
//! on-disk backends.
//!
//! [`ChunkSource`] is the seam that makes out-of-core training
//! bit-identical to in-memory training: the streaming codec fits
//! ([`crate::RecordCodec::fit_chunks`]) and the chunk-granular batcher
//! in `daisy-core` consume chunks in a fixed visitation order through
//! this trait, so the arithmetic (and therefore every downstream batch
//! and gradient) is the same whether the chunks come from a resident
//! [`Table`] or a sealed [`ChunkStore`]
//! directory.

use crate::error::DataError;
use crate::schema::Schema;
use crate::store::ChunkStore;
use crate::table::Table;
use std::sync::Arc;

/// A table exposed as a sequence of row-range chunks.
///
/// Contract: chunks partition the rows in order — chunk `k` holds rows
/// `[k * chunk_rows, min(n_rows, (k+1) * chunk_rows))` of the logical
/// table — and repeated reads of the same chunk return identical
/// content. Reads may fail (a disk-backed source can hit corruption),
/// so consumers must propagate [`DataError`] rather than assume
/// infallibility.
pub trait ChunkSource {
    /// The table schema.
    fn schema(&self) -> &Schema;
    /// Total logical rows.
    fn n_rows(&self) -> usize;
    /// Number of chunks.
    fn n_chunks(&self) -> usize;
    /// Target rows per chunk (the final chunk may hold fewer).
    fn chunk_rows(&self) -> usize;
    /// Chunk `k` as a table holding only its rows.
    fn chunk(&self, k: usize) -> Result<Arc<Table>, DataError>;
}

/// An in-memory [`Table`] viewed as chunks — the reference backend the
/// store-backed path must match bit-for-bit.
pub struct TableChunks {
    table: Table,
    chunk_rows: usize,
}

impl TableChunks {
    /// Wraps `table`, splitting it into chunks of `chunk_rows` rows.
    pub fn new(table: Table, chunk_rows: usize) -> TableChunks {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        TableChunks { table, chunk_rows }
    }

    /// The wrapped table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

impl ChunkSource for TableChunks {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn n_rows(&self) -> usize {
        self.table.n_rows()
    }

    fn n_chunks(&self) -> usize {
        self.table.n_rows().div_ceil(self.chunk_rows).max(1)
    }

    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn chunk(&self, k: usize) -> Result<Arc<Table>, DataError> {
        assert!(k < self.n_chunks(), "chunk index out of bounds");
        let lo = k * self.chunk_rows;
        let hi = (lo + self.chunk_rows).min(self.table.n_rows());
        let rows: Vec<usize> = (lo..hi).collect();
        Ok(Arc::new(self.table.select_rows(&rows)))
    }
}

impl ChunkSource for ChunkStore {
    fn schema(&self) -> &Schema {
        ChunkStore::schema(self)
    }

    fn n_rows(&self) -> usize {
        ChunkStore::n_rows(self)
    }

    fn n_chunks(&self) -> usize {
        ChunkStore::n_chunks(self)
    }

    fn chunk_rows(&self) -> usize {
        ChunkStore::chunk_rows(self)
    }

    fn chunk(&self, k: usize) -> Result<Arc<Table>, DataError> {
        ChunkStore::chunk(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::value::Attribute;

    fn demo() -> Table {
        Table::new(
            Schema::new(vec![
                Attribute::numerical("x"),
                Attribute::categorical("c"),
            ]),
            vec![
                Column::Num((0..7).map(|i| i as f64).collect()),
                Column::cat_with_domain(vec![0, 1, 2, 0, 1, 2, 0], 3),
            ],
        )
    }

    #[test]
    fn chunks_partition_rows_in_order() {
        let src = TableChunks::new(demo(), 3);
        assert_eq!(src.n_chunks(), 3);
        assert_eq!(src.chunk_rows(), 3);
        let sizes: Vec<usize> = (0..src.n_chunks())
            .map(|k| src.chunk(k).unwrap().n_rows())
            .collect();
        assert_eq!(sizes, vec![3, 3, 1]);
        assert_eq!(src.chunk(1).unwrap().column(0).as_num(), &[3.0, 4.0, 5.0]);
        assert_eq!(src.chunk(2).unwrap().column(0).as_num(), &[6.0]);
    }

    #[test]
    fn empty_table_is_one_empty_chunk() {
        let t = Table::new(
            Schema::new(vec![Attribute::numerical("x")]),
            vec![Column::Num(vec![])],
        );
        let src = TableChunks::new(t, 4);
        assert_eq!(src.n_chunks(), 1);
        assert_eq!(src.chunk(0).unwrap().n_rows(), 0);
    }
}
