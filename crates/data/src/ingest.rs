//! Resumable streaming CSV ingestion into a chunk store.
//!
//! The pipeline never holds more than one chunk of rows in memory:
//!
//! 1. **Schema inference** streams the input once to type each column
//!    (numerical iff every structurally-valid cell parses as `f64`)
//!    and, when categorical columns exist, a second time to build their
//!    category dictionaries in first-appearance order.
//! 2. **Chunk writing** streams the input again, validating each row
//!    under the configured [`RowErrorPolicy`] and sealing every
//!    `chunk_rows` accepted rows as a `DAISYCH1` chunk file
//!    (write-tmp → fsync → atomic rename).
//!
//! Durability is anchored in an **append-only journal**
//! (`journal.dij`): after the schema is inferred a header record is
//! written, and after each chunk seals a record binds the chunk's
//! content CRC to the input line range it consumed and to the byte
//! length of the quarantine file. A process killed at *any* point
//! leaves either a journaled prefix of sealed chunks or a torn tail
//! the next run detects by checksum and discards — rerunning the same
//! ingest resumes after the last sealed chunk and produces a store
//! byte-identical to an uninterrupted run. Rejected rows land in
//! `rejected.txt` with their input line numbers; the journal's
//! recorded byte offsets let a resume truncate both the journal and
//! the quarantine file back to the sealed prefix, so their final
//! content is deterministic too.

use crate::csv::parse_record;
use crate::error::DataError;
use crate::schema::Schema;
use crate::store::chunk::{self, chunk_file_name};
use crate::store::fault::ArmedDataFaults;
use crate::store::{encode_manifest, ChunkMeta, DataFault, DataFaultPlan, MANIFEST_FILE};
use crate::table::Column;
use crate::value::{AttrType, Attribute};
use daisy_telemetry::{emit, field, schema as tschema};
use daisy_wire::{atomic_write, crc64, quarantine, sync_parent_dir, Reader, Writer};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};

/// Journal file magic, version 1 (defined once in [`daisy_wire::magic`]).
pub use daisy_wire::magic::INGEST_JOURNAL as JOURNAL_MAGIC;

/// Journal file name inside a store directory.
pub const JOURNAL_FILE: &str = "journal.dij";

/// Quarantine file of rejected input rows inside a store directory.
pub const REJECTED_FILE: &str = "rejected.txt";

/// What to do with a malformed input row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowErrorPolicy {
    /// The first malformed row aborts ingestion with a typed error.
    Strict,
    /// Malformed rows are skipped and appended to `rejected.txt` with
    /// their line number and reason, up to `budget` rows; one more is
    /// [`DataError::RowBudgetExhausted`].
    SkipWithBudget {
        /// Maximum rows that may be rejected.
        budget: usize,
    },
}

impl RowErrorPolicy {
    fn tag(&self) -> (u8, usize) {
        match *self {
            RowErrorPolicy::Strict => (0, 0),
            RowErrorPolicy::SkipWithBudget { budget } => (1, budget),
        }
    }

    fn from_tag(tag: u8, budget: usize) -> Option<RowErrorPolicy> {
        match tag {
            0 => Some(RowErrorPolicy::Strict),
            1 => Some(RowErrorPolicy::SkipWithBudget { budget }),
            _ => None,
        }
    }
}

/// Streaming-ingestion configuration.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Accepted rows per sealed chunk.
    pub chunk_rows: usize,
    /// Optional label column name (forced categorical, like
    /// [`crate::csv::read_csv`]).
    pub label: Option<String>,
    /// Row-level error policy.
    pub policy: RowErrorPolicy,
    /// Injected data-plane faults (tests only; empty in production).
    pub faults: DataFaultPlan,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            chunk_rows: 4096,
            label: None,
            policy: RowErrorPolicy::Strict,
            faults: DataFaultPlan::none(),
        }
    }
}

/// What an ingest run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Rows accepted into the store.
    pub rows: usize,
    /// Rows rejected into `rejected.txt`.
    pub rejected: usize,
    /// Sealed chunks.
    pub chunks: usize,
    /// First chunk this run ingested when it resumed from a journal
    /// (`None` for a fresh run).
    pub resumed_from_chunk: Option<usize>,
    /// True when the journal showed a completed ingest and nothing had
    /// to be done (the manifest is rebuilt if missing).
    pub already_complete: bool,
}

// ---------------------------------------------------------------------
// journal records
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct HeaderRec {
    schema: Schema,
    dicts: Vec<Vec<String>>,
    chunk_rows: usize,
    policy: RowErrorPolicy,
    label: Option<String>,
    input_len: u64,
    header_crc: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkRec {
    index: usize,
    rows: usize,
    /// Last input line (1-based) consumed before the seal — accepted,
    /// rejected, or blank. Resume restarts at the next line.
    end_line: usize,
    /// CRC-64 of the sealed chunk file bytes.
    file_crc: u64,
    /// Total rejected rows up to this seal.
    rejected_total: usize,
    /// Durable byte length of `rejected.txt` at this seal.
    quarantine_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DoneRec {
    rows: usize,
    rejected: usize,
    chunks: usize,
}

/// Wraps a record body in a `[len][crc64][bytes]` frame.
fn frame(body: &Writer) -> Vec<u8> {
    let mut w = Writer::default();
    w.section(body);
    w.buf
}

fn encode_header_rec(h: &HeaderRec) -> Vec<u8> {
    let mut b = Writer::default();
    b.u8(0);
    chunk::encode_schema(&mut b, &h.schema, &h.dicts);
    b.usize(h.chunk_rows);
    let (tag, budget) = h.policy.tag();
    b.u8(tag);
    b.usize(budget);
    match &h.label {
        Some(l) => {
            b.bool(true);
            b.str(l);
        }
        None => b.bool(false),
    }
    b.u64(h.input_len);
    b.u64(h.header_crc);
    frame(&b)
}

fn encode_chunk_rec(c: &ChunkRec) -> Vec<u8> {
    let mut b = Writer::default();
    b.u8(1);
    b.usize(c.index);
    b.usize(c.rows);
    b.usize(c.end_line);
    b.u64(c.file_crc);
    b.usize(c.rejected_total);
    b.u64(c.quarantine_bytes);
    frame(&b)
}

fn encode_done_rec(d: &DoneRec) -> Vec<u8> {
    let mut b = Writer::default();
    b.u8(2);
    b.usize(d.rows);
    b.usize(d.rejected);
    b.usize(d.chunks);
    frame(&b)
}

/// A parsed journal: the valid record prefix plus the byte offset at
/// which each record ends (for truncating a stale suffix).
struct ParsedJournal {
    header: HeaderRec,
    chunks: Vec<ChunkRec>,
    done: Option<DoneRec>,
    /// Journal byte length covering the magic and header record alone.
    header_end: usize,
    /// `chunk_end[k]` = journal byte length covering everything up to
    /// and including chunk record `k`.
    chunk_end: Vec<usize>,
}

/// Parses a journal file, tolerating a torn tail: records are read
/// until the first frame that truncates or fails its checksum, and
/// everything after is ignored. Returns `None` when no usable prefix
/// exists (bad magic, no header record, structural nonsense).
fn parse_journal(bytes: &[u8]) -> Option<ParsedJournal> {
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return None;
    }
    let mut pos = JOURNAL_MAGIC.len();
    let mut header: Option<HeaderRec> = None;
    let mut header_end = 0usize;
    let mut chunks: Vec<ChunkRec> = Vec::new();
    let mut chunk_end: Vec<usize> = Vec::new();
    let mut done: Option<DoneRec> = None;
    while pos < bytes.len() {
        // One `[len u64][crc u64][body]` frame at `pos`.
        let mut head = Reader::new(&bytes[pos..]);
        let Ok(len) = head.len() else { break };
        let Ok(stored) = head.u64() else { break };
        if pos + 16 + len > bytes.len() {
            break; // torn tail
        }
        let body = &bytes[pos + 16..pos + 16 + len];
        if crc64(body) != stored {
            break; // torn or corrupt tail
        }
        let end = pos + 16 + len;
        let mut r = Reader::new(body);
        match r.u8().ok()? {
            0 => {
                if header.is_some() {
                    return None; // two headers: not a journal we wrote
                }
                let (schema, dicts) = chunk::decode_schema(&mut r).ok()?;
                let chunk_rows = r.usize().ok()?;
                let policy = RowErrorPolicy::from_tag(r.u8().ok()?, r.usize().ok()?)?;
                let label = if r.bool().ok()? {
                    Some(r.str().ok()?)
                } else {
                    None
                };
                header = Some(HeaderRec {
                    schema,
                    dicts,
                    chunk_rows,
                    policy,
                    label,
                    input_len: r.u64().ok()?,
                    header_crc: r.u64().ok()?,
                });
                header_end = end;
            }
            1 => {
                header.as_ref()?;
                if done.is_some() {
                    return None;
                }
                let rec = ChunkRec {
                    index: r.usize().ok()?,
                    rows: r.usize().ok()?,
                    end_line: r.usize().ok()?,
                    file_crc: r.u64().ok()?,
                    rejected_total: r.usize().ok()?,
                    quarantine_bytes: r.u64().ok()?,
                };
                if rec.index != chunks.len() {
                    return None;
                }
                chunks.push(rec);
                chunk_end.push(end);
            }
            2 => {
                header.as_ref()?;
                if done.is_some() {
                    return None;
                }
                done = Some(DoneRec {
                    rows: r.usize().ok()?,
                    rejected: r.usize().ok()?,
                    chunks: r.usize().ok()?,
                });
            }
            _ => return None,
        }
        pos = end;
    }
    Some(ParsedJournal {
        header: header?,
        chunks,
        done,
        header_end,
        chunk_end,
    })
}

fn append_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

// ---------------------------------------------------------------------
// pass 1: schema inference
// ---------------------------------------------------------------------

/// Deterministic first-appearance interner with `O(log k)` lookups
/// (no hash iteration anywhere, per workspace determinism rules).
struct Dict {
    order: Vec<String>,
    sorted: Vec<(String, u32)>,
}

impl Dict {
    fn from_order(order: Vec<String>) -> Dict {
        let mut sorted: Vec<(String, u32)> = order
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        Dict { order, sorted }
    }

    fn get(&self, s: &str) -> Option<u32> {
        self.sorted
            .binary_search_by(|(k, _)| k.as_str().cmp(s))
            .ok()
            .map(|i| self.sorted[i].1)
    }

    fn intern(&mut self, s: &str) {
        if let Err(at) = self.sorted.binary_search_by(|(k, _)| k.as_str().cmp(s)) {
            let code = self.order.len() as u32;
            self.order.push(s.to_string());
            self.sorted.insert(at, (s.to_string(), code));
        }
    }
}

fn open_input(path: &Path) -> Result<BufReader<std::fs::File>, DataError> {
    Ok(BufReader::new(std::fs::File::open(path)?))
}

/// Parses and validates the header line, returning the column names
/// and the CRC of the raw header bytes (the journal's input
/// fingerprint).
fn read_header(
    lines: &mut std::io::Lines<BufReader<std::fs::File>>,
) -> Result<(Vec<String>, u64), DataError> {
    let header = lines.next().ok_or(DataError::EmptyCsv)??;
    let header_crc = crc64(header.as_bytes());
    let names = parse_record(&header, 1)?;
    for (j, name) in names.iter().enumerate() {
        if name.is_empty() {
            return Err(DataError::BlankColumnName { column: j });
        }
        if names[..j].contains(name) {
            return Err(DataError::DuplicateColumn { name: name.clone() });
        }
    }
    Ok((names, header_crc))
}

struct Inferred {
    schema: Schema,
    dicts: Vec<Vec<String>>,
    input_len: u64,
    header_crc: u64,
}

/// Streams the input once (twice when categorical columns exist) to
/// infer the schema and build the category dictionaries.
fn infer_schema(input: &Path, cfg: &IngestConfig) -> Result<Inferred, DataError> {
    let input_len = std::fs::metadata(input)?.len();
    let mut lines = open_input(input)?.lines();
    let (names, header_crc) = read_header(&mut lines)?;
    let n = names.len();
    if let Some(l) = &cfg.label {
        if !names.iter().any(|name| name == l) {
            return Err(DataError::UnknownLabel { name: l.clone() });
        }
    }
    let strict = matches!(cfg.policy, RowErrorPolicy::Strict);

    // Pass 1a: column types. A column is numerical iff at least one
    // valid row exists and every structurally-valid cell parses as
    // `f64` (non-finite values still *type* as numeric; they are
    // rejected per-row during chunk writing, mirroring `read_csv`).
    let mut numeric = vec![true; n];
    let mut saw_rows = false;
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 2;
        let row = match parse_record(&line, line_no) {
            Ok(row) => row,
            Err(e) if strict => return Err(e),
            Err(_) => continue,
        };
        if row.len() != n {
            if strict {
                return Err(DataError::RaggedRow {
                    line: line_no,
                    got: row.len(),
                    expected: n,
                });
            }
            continue;
        }
        saw_rows = true;
        for (j, cell) in row.iter().enumerate() {
            if numeric[j] && cell.parse::<f64>().is_err() {
                numeric[j] = false;
            }
        }
    }
    let attrs: Vec<Attribute> = names
        .iter()
        .enumerate()
        .map(|(j, name)| {
            let forced_cat = cfg.label.as_deref() == Some(name.as_str());
            if numeric[j] && saw_rows && !forced_cat {
                Attribute::numerical(name.clone())
            } else {
                Attribute::categorical(name.clone())
            }
        })
        .collect();

    // Pass 1b: category dictionaries in first-appearance order, built
    // only for columns that ended up categorical (a numeric column
    // never pays dictionary memory).
    let mut dicts: Vec<Vec<String>> = vec![Vec::new(); n];
    if saw_rows && attrs.iter().any(|a| a.ty == AttrType::Categorical) {
        let mut interners: Vec<Dict> = (0..n).map(|_| Dict::from_order(Vec::new())).collect();
        let mut lines = open_input(input)?.lines();
        lines.next().transpose()?; // header
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            // Structurally bad rows were already handled in pass 1a
            // (strict aborted; skip ignores them here too).
            let Ok(row) = parse_record(&line, i + 2) else {
                continue;
            };
            if row.len() != n {
                continue;
            }
            for (j, cell) in row.iter().enumerate() {
                if attrs[j].ty == AttrType::Categorical {
                    interners[j].intern(cell);
                }
            }
        }
        dicts = interners.into_iter().map(|d| d.order).collect();
    }

    let label_idx = cfg
        .label
        .as_deref()
        .and_then(|l| names.iter().position(|n| n == l));
    let schema = match label_idx {
        Some(idx) => Schema::with_label(attrs, idx),
        None => Schema::new(attrs),
    };
    Ok(Inferred {
        schema,
        dicts,
        input_len,
        header_crc,
    })
}

// ---------------------------------------------------------------------
// pass 2: chunk writing
// ---------------------------------------------------------------------

enum ParsedCell {
    Num(f64),
    Cat(u32),
}

struct IngestState<'a> {
    cfg: &'a IngestConfig,
    store_dir: &'a Path,
    schema: Schema,
    dicts: Vec<Dict>,
    journal_path: PathBuf,
    rejected_path: PathBuf,
    builders: Vec<Column>,
    rows_in_chunk: usize,
    chunk_index: usize,
    last_line: usize,
    rows_total: usize,
    rejected_total: usize,
    quarantine_buf: Vec<u8>,
    quarantine_bytes: u64,
    metas: Vec<ChunkMeta>,
    faults: ArmedDataFaults,
}

fn fresh_builders(schema: &Schema, dicts: &[Dict]) -> Vec<Column> {
    schema
        .attrs()
        .iter()
        .zip(dicts)
        .map(|(a, d)| match a.ty {
            AttrType::Numerical => Column::Num(Vec::new()),
            AttrType::Categorical => Column::Cat {
                codes: Vec::new(),
                categories: d.order.clone(),
            },
        })
        .collect()
}

impl IngestState<'_> {
    /// Records one rejected row; errors when the skip budget runs out.
    /// Strict-policy callers surface their typed error directly and
    /// never reach this.
    fn reject(&mut self, line_no: usize, reason: &str, raw: &str) -> Result<(), DataError> {
        self.rejected_total += 1;
        let entry = format!("line {line_no}: {reason}: {raw}\n");
        self.quarantine_buf.extend_from_slice(entry.as_bytes());
        emit(
            tschema::INGEST_ROW_REJECTED,
            vec![field("line", line_no), field("reason", reason)],
        );
        if let RowErrorPolicy::SkipWithBudget { budget } = self.cfg.policy {
            if self.rejected_total > budget {
                // Flush the pending rejections so the operator can see
                // what broke the budget; the journal does not record
                // the new length, so a later resume truncates it back.
                self.flush_quarantine()?;
                return Err(DataError::RowBudgetExhausted {
                    rejected: self.rejected_total,
                    budget,
                });
            }
        }
        Ok(())
    }

    fn flush_quarantine(&mut self) -> Result<(), DataError> {
        if self.quarantine_buf.is_empty() {
            return Ok(());
        }
        append_durable(&self.rejected_path, &self.quarantine_buf)?;
        self.quarantine_bytes += self.quarantine_buf.len() as u64;
        self.quarantine_buf.clear();
        Ok(())
    }

    /// Seals the in-memory chunk: durable chunk file, durable
    /// quarantine flush, then the journal record that commits both.
    fn seal(&mut self) -> Result<(), DataError> {
        let index = self.chunk_index;
        let bytes = chunk::encode_chunk(index, &self.builders);
        if let Some(f) = self
            .faults
            .take(|f| matches!(f, DataFault::DiskFull { chunk } if *chunk == index))
        {
            emit(
                tschema::FAULT_FIRED,
                vec![field("kind", f.kind()), field("chunk", index)],
            );
            return Err(DataError::Io(std::io::Error::other(
                "injected fault: disk full while sealing chunk",
            )));
        }
        let path = self.store_dir.join(chunk_file_name(index));
        if let Some(f) = self
            .faults
            .take(|f| matches!(f, DataFault::TornChunkWrite { chunk } if *chunk == index))
        {
            emit(
                tschema::FAULT_FIRED,
                vec![field("kind", f.kind()), field("chunk", index)],
            );
            // Half the bytes land at the final path and the journal
            // never hears about the seal — the on-disk state a crash
            // mid-write leaves behind.
            std::fs::write(&path, &bytes[..bytes.len() / 2])?;
            return Err(DataError::Interrupted {
                rows_ingested: self.rows_total,
            });
        }
        atomic_write(&path, &bytes)?;
        self.flush_quarantine()?;
        let rec = ChunkRec {
            index,
            rows: self.rows_in_chunk,
            end_line: self.last_line,
            file_crc: crc64(&bytes),
            rejected_total: self.rejected_total,
            quarantine_bytes: self.quarantine_bytes,
        };
        append_durable(&self.journal_path, &encode_chunk_rec(&rec))?;
        emit(
            tschema::CHUNK_SEALED,
            vec![
                field("chunk", index),
                field("rows", self.rows_in_chunk),
                field("bytes", bytes.len()),
            ],
        );
        self.metas.push(ChunkMeta {
            rows: self.rows_in_chunk,
            crc: rec.file_crc,
        });
        self.builders = fresh_builders(&self.schema, &self.dicts);
        self.rows_in_chunk = 0;
        self.chunk_index += 1;
        Ok(())
    }
}

/// The chunk-writing pass shared by fresh and resumed runs: consumes
/// input lines after `skip_to`, validates rows, seals chunks, and
/// finalizes the manifest and the journal's done record.
fn run_pass2(
    input: &Path,
    state: &mut IngestState<'_>,
    skip_to: usize,
    resumed_from: Option<usize>,
) -> Result<IngestReport, DataError> {
    emit(
        tschema::INGEST_START,
        vec![
            field("resumed", resumed_from.is_some()),
            field("chunk_rows", state.cfg.chunk_rows),
        ],
    );
    let strict = matches!(state.cfg.policy, RowErrorPolicy::Strict);
    let n = state.schema.n_attrs();
    let mut lines = open_input(input)?.lines();
    lines.next().transpose()?; // header, validated in pass 1 / resume
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line_no = i + 2;
        if line_no <= skip_to {
            continue;
        }
        state.last_line = line_no;
        if line.trim().is_empty() {
            continue;
        }
        let row = match parse_record(&line, line_no) {
            Ok(row) => row,
            Err(e) => {
                if strict {
                    return Err(e);
                }
                state.reject(line_no, "unterminated quoted field", &line)?;
                continue;
            }
        };
        if row.len() != n {
            if strict {
                return Err(DataError::RaggedRow {
                    line: line_no,
                    got: row.len(),
                    expected: n,
                });
            }
            let reason = format!("ragged row ({} cells, expected {n})", row.len());
            state.reject(line_no, &reason, &line)?;
            continue;
        }
        // Validate every cell before touching any builder, so a
        // rejected row leaves the pending chunk untouched.
        let mut cells: Vec<ParsedCell> = Vec::with_capacity(n);
        let mut bad: Option<(String, DataError)> = None;
        for (j, cell) in row.iter().enumerate() {
            let attr = state.schema.attr(j);
            match attr.ty {
                AttrType::Numerical => match cell.parse::<f64>() {
                    Ok(x) if x.is_finite() => cells.push(ParsedCell::Num(x)),
                    Ok(_) => {
                        bad = Some((
                            format!("non-finite value {cell:?} in column {:?}", attr.name),
                            DataError::NonFiniteNumber {
                                line: line_no,
                                column: attr.name.clone(),
                                value: cell.clone(),
                            },
                        ));
                        break;
                    }
                    Err(_) => {
                        bad = Some((
                            format!("unparseable numeric {cell:?} in column {:?}", attr.name),
                            DataError::SchemaMismatch {
                                detail: format!(
                                    "line {line_no}: column {:?} was inferred numerical but \
                                     cell {cell:?} does not parse (input changed since the \
                                     schema pass?)",
                                    attr.name
                                ),
                            },
                        ));
                        break;
                    }
                },
                AttrType::Categorical => match state.dicts[j].get(cell) {
                    Some(code) => cells.push(ParsedCell::Cat(code)),
                    None => {
                        bad = Some((
                            format!("unknown category {cell:?} in column {:?}", attr.name),
                            DataError::SchemaMismatch {
                                detail: format!(
                                    "line {line_no}: category {cell:?} is not in the \
                                     journaled dictionary of column {:?} (input changed \
                                     since the schema pass?)",
                                    attr.name
                                ),
                            },
                        ));
                        break;
                    }
                },
            }
        }
        if let Some((reason, err)) = bad {
            if strict {
                return Err(err);
            }
            state.reject(line_no, &reason, &line)?;
            continue;
        }
        for (builder, cell) in state.builders.iter_mut().zip(&cells) {
            match (builder, cell) {
                (Column::Num(v), ParsedCell::Num(x)) => v.push(*x),
                (Column::Cat { codes, .. }, ParsedCell::Cat(c)) => codes.push(*c),
                _ => unreachable!("cell validated against schema"),
            }
        }
        state.rows_in_chunk += 1;
        state.rows_total += 1;
        if state.rows_in_chunk == state.cfg.chunk_rows {
            state.seal()?;
        }
        let accepted_index = state.rows_total - 1;
        if let Some(f) = state
            .faults
            .take(|f| matches!(f, DataFault::KillAtRow { row } if *row == accepted_index))
        {
            emit(
                tschema::FAULT_FIRED,
                vec![field("kind", f.kind()), field("row", accepted_index)],
            );
            return Err(DataError::Interrupted {
                rows_ingested: state.rows_total,
            });
        }
    }
    if state.rows_in_chunk > 0 {
        state.seal()?;
    }
    // Rejections after the last seal still need to reach the ledger.
    state.flush_quarantine()?;

    let dict_orders: Vec<Vec<String>> = state.dicts.iter().map(|d| d.order.clone()).collect();
    let manifest = encode_manifest(
        &state.schema,
        &dict_orders,
        state.cfg.chunk_rows,
        &state.metas,
    );
    atomic_write(&state.store_dir.join(MANIFEST_FILE), &manifest)?;
    let done = DoneRec {
        rows: state.rows_total,
        rejected: state.rejected_total,
        chunks: state.metas.len(),
    };
    append_durable(&state.journal_path, &encode_done_rec(&done))?;
    emit(
        tschema::INGEST_END,
        vec![
            field("rows", done.rows),
            field("rejected", done.rejected),
            field("chunks", done.chunks),
        ],
    );
    Ok(IngestReport {
        rows: done.rows,
        rejected: done.rejected,
        chunks: done.chunks,
        resumed_from_chunk: resumed_from,
        already_complete: false,
    })
}

/// Ingests `input` (a headered CSV) into the chunk store at
/// `store_dir`, resuming from the journal when a previous run was
/// interrupted. See the module docs for the crash-safety contract.
pub fn ingest_csv(
    input: &Path,
    store_dir: &Path,
    cfg: &IngestConfig,
) -> Result<IngestReport, DataError> {
    daisy_telemetry::phase_scope!("ingest");
    assert!(cfg.chunk_rows > 0, "chunk_rows must be positive");
    std::fs::create_dir_all(store_dir)?;
    let journal_path = store_dir.join(JOURNAL_FILE);
    let rejected_path = store_dir.join(REJECTED_FILE);

    if journal_path.exists() {
        let journal_bytes = std::fs::read(&journal_path)?;
        match parse_journal(&journal_bytes) {
            Some(parsed) => {
                return resume_ingest(input, store_dir, cfg, parsed, &journal_path, &rejected_path)
            }
            None => {
                // Unusable journal (foreign bytes, lost header): move
                // it aside and start over; stale chunks are rewritten.
                quarantine(&journal_path);
            }
        }
    }

    let inferred = infer_schema(input, cfg)?;
    let header = HeaderRec {
        schema: inferred.schema.clone(),
        dicts: inferred.dicts.clone(),
        chunk_rows: cfg.chunk_rows,
        policy: cfg.policy,
        label: cfg.label.clone(),
        input_len: inferred.input_len,
        header_crc: inferred.header_crc,
    };
    let mut journal = JOURNAL_MAGIC.to_vec();
    journal.extend_from_slice(&encode_header_rec(&header));
    atomic_write(&journal_path, &journal)?;
    // A stale quarantine file from an abandoned run must not leak old
    // rows into the new store's ledger.
    std::fs::write(&rejected_path, b"")?;
    sync_parent_dir(&rejected_path);

    let dicts: Vec<Dict> = inferred.dicts.into_iter().map(Dict::from_order).collect();
    let mut state = IngestState {
        cfg,
        store_dir,
        builders: fresh_builders(&inferred.schema, &dicts),
        schema: inferred.schema,
        dicts,
        journal_path,
        rejected_path,
        rows_in_chunk: 0,
        chunk_index: 0,
        last_line: 1,
        rows_total: 0,
        rejected_total: 0,
        quarantine_buf: Vec::new(),
        quarantine_bytes: 0,
        metas: Vec::new(),
        faults: ArmedDataFaults::new(&cfg.faults),
    };
    run_pass2(input, &mut state, 1, None)
}

/// Resumes an interrupted ingest from its parsed journal.
fn resume_ingest(
    input: &Path,
    store_dir: &Path,
    cfg: &IngestConfig,
    parsed: ParsedJournal,
    journal_path: &Path,
    rejected_path: &Path,
) -> Result<IngestReport, DataError> {
    // The journal only speaks for the exact input and configuration it
    // was written under.
    let input_len = std::fs::metadata(input)?.len();
    let mut lines = open_input(input)?.lines();
    let header_line = lines.next().ok_or(DataError::EmptyCsv)??;
    drop(lines);
    let h = &parsed.header;
    if h.input_len != input_len || h.header_crc != crc64(header_line.as_bytes()) {
        return Err(DataError::SchemaMismatch {
            detail: format!(
                "journal was written for a different input (recorded {} bytes, found {input_len})",
                h.input_len
            ),
        });
    }
    if h.chunk_rows != cfg.chunk_rows || h.policy != cfg.policy || h.label != cfg.label {
        return Err(DataError::SchemaMismatch {
            detail: "journal was written under a different ingest configuration \
                     (chunk_rows / policy / label)"
                .to_string(),
        });
    }

    // A completed ingest is idempotent: rebuild the manifest if it
    // went missing and report without touching anything else.
    if let Some(done) = parsed.done {
        let manifest_path = store_dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            let metas: Vec<ChunkMeta> = parsed
                .chunks
                .iter()
                .map(|c| ChunkMeta {
                    rows: c.rows,
                    crc: c.file_crc,
                })
                .collect();
            let bytes = encode_manifest(&h.schema, &h.dicts, h.chunk_rows, &metas);
            atomic_write(&manifest_path, &bytes)?;
        }
        return Ok(IngestReport {
            rows: done.rows,
            rejected: done.rejected,
            chunks: done.chunks,
            resumed_from_chunk: None,
            already_complete: true,
        });
    }

    // Validate the sealed prefix: every journaled chunk must still
    // match its recorded CRC. The first damaged chunk (torn write, bit
    // rot, deletion) is quarantined and the journal truncated back to
    // the intact prefix, which re-ingests from there.
    let mut valid = parsed.chunks.len();
    for (k, rec) in parsed.chunks.iter().enumerate() {
        let path = store_dir.join(chunk_file_name(k));
        let intact = match std::fs::read(&path) {
            Ok(bytes) => crc64(&bytes) == rec.file_crc,
            Err(_) => false,
        };
        if !intact {
            if path.exists() {
                quarantine(&path);
                emit(
                    tschema::CHUNK_QUARANTINED,
                    vec![
                        field("chunk", k),
                        field("error", "sealed chunk no longer matches its journal CRC"),
                    ],
                );
            }
            valid = k;
            break;
        }
    }
    if valid < parsed.chunks.len() {
        let bytes = std::fs::read(journal_path)?;
        let keep = if valid == 0 {
            parsed.header_end
        } else {
            parsed.chunk_end[valid - 1]
        };
        atomic_write(journal_path, &bytes[..keep])?;
    }
    // An unjournaled torn chunk file past the prefix (crash mid-write)
    // is simply overwritten when its index seals again.
    let prefix = &parsed.chunks[..valid];
    let (skip_to, rejected_total, quarantine_bytes) = match prefix.last() {
        Some(last) => (last.end_line, last.rejected_total, last.quarantine_bytes),
        None => (1, 0, 0),
    };
    // Truncate the quarantine file to the sealed prefix so re-ingested
    // rejections are not duplicated.
    if rejected_path.exists() {
        let f = std::fs::OpenOptions::new().write(true).open(rejected_path)?;
        f.set_len(quarantine_bytes)?;
        f.sync_all()?;
    } else if quarantine_bytes > 0 {
        return Err(DataError::SchemaMismatch {
            detail: "journal records quarantined rows but rejected.txt is missing".to_string(),
        });
    } else {
        std::fs::write(rejected_path, b"")?;
        sync_parent_dir(rejected_path);
    }
    emit(
        tschema::INGEST_RESUME,
        vec![field("from_chunk", valid), field("skip_lines", skip_to)],
    );

    let dicts: Vec<Dict> = h.dicts.iter().cloned().map(Dict::from_order).collect();
    let metas: Vec<ChunkMeta> = prefix
        .iter()
        .map(|c| ChunkMeta {
            rows: c.rows,
            crc: c.file_crc,
        })
        .collect();
    let rows_total: usize = prefix.iter().map(|c| c.rows).sum();
    let mut state = IngestState {
        cfg,
        store_dir,
        builders: fresh_builders(&h.schema, &dicts),
        schema: h.schema.clone(),
        dicts,
        journal_path: journal_path.to_path_buf(),
        rejected_path: rejected_path.to_path_buf(),
        rows_in_chunk: 0,
        chunk_index: valid,
        last_line: skip_to,
        rows_total,
        rejected_total,
        quarantine_buf: Vec::new(),
        quarantine_bytes,
        metas,
        faults: ArmedDataFaults::new(&cfg.faults),
    };
    run_pass2(input, &mut state, skip_to, Some(valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ChunkStore;

    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("daisy-ingest-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_input(dir: &Path, body: &str) -> PathBuf {
        let path = dir.join("input.csv");
        std::fs::write(&path, body).unwrap();
        path
    }

    /// 10 data rows: numeric `age`, categorical `job`, label `income`.
    const DEMO: &str = "age,job,income\n\
        38,tech,hi\n\
        51,sales,lo\n\
        27,tech,lo\n\
        44,\"sales, retail\",hi\n\
        61,tech,hi\n\
        33,sales,lo\n\
        29,tech,lo\n\
        55,sales,hi\n\
        40,tech,hi\n\
        36,sales,lo\n";

    fn demo_cfg(chunk_rows: usize) -> IngestConfig {
        IngestConfig {
            chunk_rows,
            label: Some("income".to_string()),
            policy: RowErrorPolicy::Strict,
            faults: DataFaultPlan::none(),
        }
    }

    /// All store files as sorted (name, bytes) pairs for byte-identity
    /// comparisons.
    fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn fresh_ingest_matches_read_csv() {
        let dir = scratch_dir("fresh");
        let input = write_input(&dir, DEMO);
        let store_dir = dir.join("store");
        let report = ingest_csv(&input, &store_dir, &demo_cfg(4)).unwrap();
        assert_eq!(report.rows, 10);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.chunks, 3);
        assert_eq!(report.resumed_from_chunk, None);
        assert!(!report.already_complete);
        let store = ChunkStore::open(&store_dir).unwrap();
        let table = store.to_table().unwrap();
        let reference =
            crate::csv::read_csv(open_input(&input).unwrap(), Some("income")).unwrap();
        assert_eq!(table, reference);
        // The quoted category with a comma survived intact.
        assert!(store.dicts()[1].iter().any(|c| c == "sales, retail"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_at_every_row_then_resume_is_byte_identical() {
        let base = scratch_dir("kill-base");
        let input = write_input(&base, DEMO);
        let clean_dir = base.join("clean");
        ingest_csv(&input, &clean_dir, &demo_cfg(3)).unwrap();
        let want = dir_bytes(&clean_dir);
        for row in 0..10 {
            let dir = base.join(format!("killed-{row}"));
            let mut cfg = demo_cfg(3);
            cfg.faults = DataFaultPlan::kill_at_row(row);
            let err = ingest_csv(&input, &dir, &cfg).unwrap_err();
            assert!(matches!(err, DataError::Interrupted { .. }), "{err}");
            // Rerun without the fault: must resume and converge.
            let report = ingest_csv(&input, &dir, &demo_cfg(3)).unwrap();
            assert_eq!(report.rows, 10, "kill at row {row}");
            assert!(report.resumed_from_chunk.is_some());
            assert_eq!(dir_bytes(&dir), want, "kill at row {row}");
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn torn_chunk_write_resumes_byte_identical() {
        let base = scratch_dir("torn");
        let input = write_input(&base, DEMO);
        let clean_dir = base.join("clean");
        ingest_csv(&input, &clean_dir, &demo_cfg(4)).unwrap();
        let want = dir_bytes(&clean_dir);
        let dir = base.join("torn");
        let mut cfg = demo_cfg(4);
        cfg.faults = DataFaultPlan::torn_chunk_write_at(1);
        let err = ingest_csv(&input, &dir, &cfg).unwrap_err();
        assert!(matches!(err, DataError::Interrupted { .. }), "{err}");
        // The torn file is sitting at the final path, unjournaled.
        let torn = std::fs::read(dir.join(chunk_file_name(1))).unwrap();
        assert!(!torn.is_empty());
        let report = ingest_csv(&input, &dir, &demo_cfg(4)).unwrap();
        assert_eq!(report.resumed_from_chunk, Some(1));
        assert_eq!(dir_bytes(&dir), want);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn disk_full_is_typed_and_resumable() {
        let base = scratch_dir("full");
        let input = write_input(&base, DEMO);
        let dir = base.join("store");
        let mut cfg = demo_cfg(5);
        cfg.faults = DataFaultPlan::disk_full_at(0);
        let err = ingest_csv(&input, &dir, &cfg).unwrap_err();
        assert!(matches!(err, DataError::Io(_)), "{err}");
        let report = ingest_csv(&input, &dir, &demo_cfg(5)).unwrap();
        assert_eq!(report.rows, 10);
        assert_eq!(report.resumed_from_chunk, Some(0));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn damaged_sealed_chunk_is_quarantined_on_resume() {
        let base = scratch_dir("rot");
        let input = write_input(&base, DEMO);
        let clean_dir = base.join("clean");
        ingest_csv(&input, &clean_dir, &demo_cfg(3)).unwrap();
        let want = dir_bytes(&clean_dir);
        let dir = base.join("store");
        let mut cfg = demo_cfg(3);
        cfg.faults = DataFaultPlan::kill_at_row(7);
        ingest_csv(&input, &dir, &cfg).unwrap_err();
        // Rot the *first* sealed chunk behind the journal's back.
        let path = dir.join(chunk_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let report = ingest_csv(&input, &dir, &demo_cfg(3)).unwrap();
        assert_eq!(report.rows, 10);
        assert_eq!(report.resumed_from_chunk, Some(0));
        // The rotted bytes were preserved for post-mortem...
        let q = daisy_wire::sibling(&path, "corrupt-0");
        assert_eq!(std::fs::read(&q).unwrap(), bytes);
        std::fs::remove_file(&q).unwrap();
        // ...and the rebuilt store is byte-identical to a clean run.
        assert_eq!(dir_bytes(&dir), want);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn completed_ingest_is_idempotent() {
        let dir = scratch_dir("idem");
        let input = write_input(&dir, DEMO);
        let store_dir = dir.join("store");
        ingest_csv(&input, &store_dir, &demo_cfg(4)).unwrap();
        let before = dir_bytes(&store_dir);
        let report = ingest_csv(&input, &store_dir, &demo_cfg(4)).unwrap();
        assert!(report.already_complete);
        assert_eq!(report.rows, 10);
        assert_eq!(dir_bytes(&store_dir), before, "no bytes may change");
        // A deleted manifest is rebuilt from the journal.
        std::fs::remove_file(store_dir.join(MANIFEST_FILE)).unwrap();
        let report = ingest_csv(&input, &store_dir, &demo_cfg(4)).unwrap();
        assert!(report.already_complete);
        assert_eq!(dir_bytes(&store_dir), before, "manifest rebuilt exactly");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skip_policy_quarantines_rows_with_line_numbers() {
        let dir = scratch_dir("skip");
        let input = write_input(&dir, "age,income\n38,hi\nbroken,row,extra\nNaN,lo\n27,lo\n");
        let store_dir = dir.join("store");
        let cfg = IngestConfig {
            chunk_rows: 8,
            label: Some("income".to_string()),
            policy: RowErrorPolicy::SkipWithBudget { budget: 5 },
            faults: DataFaultPlan::none(),
        };
        let report = ingest_csv(&input, &store_dir, &cfg).unwrap();
        assert_eq!(report.rows, 2);
        assert_eq!(report.rejected, 2);
        let rejected = std::fs::read_to_string(store_dir.join(REJECTED_FILE)).unwrap();
        assert!(rejected.contains("line 3"), "{rejected}");
        assert!(rejected.contains("ragged row"), "{rejected}");
        assert!(rejected.contains("line 4"), "{rejected}");
        assert!(rejected.contains("non-finite"), "{rejected}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skip_budget_exhaustion_is_typed() {
        let dir = scratch_dir("budget");
        let input = write_input(&dir, "age,income\nx,y,z\na,b,c\n1,hi\n");
        let store_dir = dir.join("store");
        let cfg = IngestConfig {
            chunk_rows: 8,
            label: None,
            policy: RowErrorPolicy::SkipWithBudget { budget: 1 },
            faults: DataFaultPlan::none(),
        };
        let err = ingest_csv(&input, &store_dir, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                DataError::RowBudgetExhausted {
                    rejected: 2,
                    budget: 1
                }
            ),
            "{err}"
        );
        // Both offending rows were flushed for the post-mortem.
        let rejected = std::fs::read_to_string(store_dir.join(REJECTED_FILE)).unwrap();
        assert!(rejected.contains("line 2") && rejected.contains("line 3"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_policy_fails_fast_with_typed_errors() {
        let dir = scratch_dir("strict");
        let store_dir = dir.join("store");
        let ragged = write_input(&dir, "a,b\n1,2,3\n");
        let err = ingest_csv(&ragged, &store_dir, &IngestConfig::default()).unwrap_err();
        assert!(matches!(err, DataError::RaggedRow { line: 2, .. }), "{err}");
        let nonfinite = dir.join("nf.csv");
        std::fs::write(&nonfinite, "a,b\n1,inf\n").unwrap();
        std::fs::remove_dir_all(&store_dir).ok();
        let err = ingest_csv(&nonfinite, &store_dir, &IngestConfig::default()).unwrap_err();
        assert!(
            matches!(err, DataError::NonFiniteNumber { line: 2, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_input_is_rejected_on_resume() {
        let dir = scratch_dir("changed");
        let input = write_input(&dir, DEMO);
        let store_dir = dir.join("store");
        let mut cfg = demo_cfg(3);
        cfg.faults = DataFaultPlan::kill_at_row(5);
        ingest_csv(&input, &store_dir, &cfg).unwrap_err();
        // The input grows a row behind the journal's back.
        let mut body = DEMO.to_string();
        body.push_str("99,tech,hi\n");
        std::fs::write(&input, &body).unwrap();
        let err = ingest_csv(&input, &store_dir, &demo_cfg(3)).unwrap_err();
        assert!(matches!(err, DataError::SchemaMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_config_is_rejected_on_resume() {
        let dir = scratch_dir("cfgchange");
        let input = write_input(&dir, DEMO);
        let store_dir = dir.join("store");
        let mut cfg = demo_cfg(3);
        cfg.faults = DataFaultPlan::kill_at_row(5);
        ingest_csv(&input, &store_dir, &cfg).unwrap_err();
        let err = ingest_csv(&input, &store_dir, &demo_cfg(4)).unwrap_err();
        assert!(matches!(err, DataError::SchemaMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_journal_is_quarantined_and_ingest_restarts() {
        let dir = scratch_dir("foreign");
        let input = write_input(&dir, DEMO);
        let store_dir = dir.join("store");
        std::fs::create_dir_all(&store_dir).unwrap();
        std::fs::write(store_dir.join(JOURNAL_FILE), b"not a journal at all").unwrap();
        let report = ingest_csv(&input, &store_dir, &demo_cfg(4)).unwrap();
        assert_eq!(report.rows, 10);
        assert_eq!(report.resumed_from_chunk, None);
        assert!(daisy_wire::sibling(&store_dir.join(JOURNAL_FILE), "corrupt-0").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_journal_tail_is_discarded() {
        let dir = scratch_dir("torntail");
        let input = write_input(&dir, DEMO);
        let store_dir = dir.join("store");
        let mut cfg = demo_cfg(3);
        cfg.faults = DataFaultPlan::kill_at_row(7);
        ingest_csv(&input, &store_dir, &cfg).unwrap_err();
        // Append a garbage half-record: a real torn append.
        let journal = store_dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes.extend_from_slice(&[0x55; 11]);
        std::fs::write(&journal, &bytes).unwrap();
        let report = ingest_csv(&input, &store_dir, &demo_cfg(3)).unwrap();
        assert_eq!(report.rows, 10);
        assert_eq!(report.resumed_from_chunk, Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_only_input_yields_empty_store() {
        let dir = scratch_dir("headeronly");
        let input = write_input(&dir, "a,b\n");
        let store_dir = dir.join("store");
        let report = ingest_csv(&input, &store_dir, &IngestConfig::default()).unwrap();
        assert_eq!((report.rows, report.chunks), (0, 0));
        let store = ChunkStore::open(&store_dir).unwrap();
        assert_eq!(store.n_rows(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_roundtrip_records() {
        let h = HeaderRec {
            schema: Schema::new(vec![Attribute::numerical("x")]),
            dicts: vec![vec![]],
            chunk_rows: 64,
            policy: RowErrorPolicy::SkipWithBudget { budget: 9 },
            label: None,
            input_len: 123,
            header_crc: 456,
        };
        let c = ChunkRec {
            index: 0,
            rows: 64,
            end_line: 65,
            file_crc: 0xDEAD,
            rejected_total: 1,
            quarantine_bytes: 37,
        };
        let d = DoneRec {
            rows: 64,
            rejected: 1,
            chunks: 1,
        };
        let mut bytes = JOURNAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_header_rec(&h));
        bytes.extend_from_slice(&encode_chunk_rec(&c));
        bytes.extend_from_slice(&encode_done_rec(&d));
        let parsed = parse_journal(&bytes).unwrap();
        assert_eq!(parsed.header.chunk_rows, 64);
        assert_eq!(
            parsed.header.policy,
            RowErrorPolicy::SkipWithBudget { budget: 9 }
        );
        assert_eq!(parsed.chunks, vec![c]);
        assert_eq!(parsed.done, Some(d));
        // Torn tails cut back to the last whole record.
        let parsed = parse_journal(&bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(parsed.done, None);
        assert_eq!(parsed.chunks.len(), 1);
        assert!(parse_journal(b"BOGUS").is_none());
    }
}
