//! Per-attribute encode/decode logic.

use crate::gmm::Gmm1d;
use crate::table::Column;
use crate::transform::{CategoricalEncoding, NumericalNormalization, TransformConfig};
use crate::value::Value;

/// How the generator's output layer must treat one encoded block —
/// the attribute-aware output head of §5.1 / Appendix A.1.2 (cases C1
/// through C4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputBlockKind {
    /// `tanh` over one column (simple normalization, case C1).
    Tanh,
    /// `sigmoid` over one column (ordinal encoding, case C4).
    Sigmoid,
    /// `softmax` over the block (one-hot encoding, case C3).
    Softmax,
    /// `tanh` on the first column and `softmax` over the remaining
    /// component indicator (GMM normalization, case C2).
    GmmValueAndComponent,
}

/// An encoded block's position and activation requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputBlock {
    /// Activation kind.
    pub kind: OutputBlockKind,
    /// First encoded column (inclusive).
    pub lo: usize,
    /// One past the last encoded column.
    pub hi: usize,
}

impl OutputBlock {
    /// Block width.
    pub fn width(&self) -> usize {
        self.hi - self.lo
    }
}

/// The fitted, reversible transformation of a single attribute.
#[derive(Debug, Clone)]
pub enum AttributeCodec {
    /// Ordinal categorical encoding scaled into `[0, 1]`.
    Ordinal {
        /// Domain size.
        k: usize,
    },
    /// One-hot categorical encoding.
    OneHot {
        /// Domain size.
        k: usize,
    },
    /// Min–max numerical normalization into `[-1, 1]`.
    SimpleNorm {
        /// Column minimum at fit time.
        min: f64,
        /// Column maximum at fit time.
        max: f64,
    },
    /// Mode-specific normalization via a fitted univariate GMM.
    Gmm {
        /// The fitted mixture.
        gmm: Gmm1d,
    },
}

impl AttributeCodec {
    /// Fits the codec dictated by `config` for one column.
    pub fn fit(column: &Column, config: &TransformConfig) -> AttributeCodec {
        match column {
            Column::Cat { categories, .. } => match config.categorical {
                CategoricalEncoding::Ordinal => AttributeCodec::Ordinal {
                    k: categories.len(),
                },
                CategoricalEncoding::OneHot => AttributeCodec::OneHot {
                    k: categories.len(),
                },
            },
            Column::Num(values) => match config.numerical {
                NumericalNormalization::Simple => {
                    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    AttributeCodec::SimpleNorm { min, max }
                }
                NumericalNormalization::Gmm => AttributeCodec::Gmm {
                    gmm: Gmm1d::fit(values, config.gmm_components, config.gmm_iterations),
                },
            },
        }
    }

    /// Width of the encoded block.
    pub fn width(&self) -> usize {
        match self {
            AttributeCodec::Ordinal { .. } => 1,
            AttributeCodec::OneHot { k } => *k,
            AttributeCodec::SimpleNorm { .. } => 1,
            AttributeCodec::Gmm { gmm } => 1 + gmm.n_components(),
        }
    }

    /// Activation kind the generator must apply to this block.
    pub fn block_kind(&self) -> OutputBlockKind {
        match self {
            AttributeCodec::Ordinal { .. } => OutputBlockKind::Sigmoid,
            AttributeCodec::OneHot { .. } => OutputBlockKind::Softmax,
            AttributeCodec::SimpleNorm { .. } => OutputBlockKind::Tanh,
            AttributeCodec::Gmm { .. } => OutputBlockKind::GmmValueAndComponent,
        }
    }

    /// Encodes one value into `out` (length = [`AttributeCodec::width`]).
    pub fn encode(&self, value: &Value, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.width());
        match self {
            AttributeCodec::Ordinal { k } => {
                let c = value.as_cat() as usize;
                debug_assert!(c < *k);
                out[0] = if *k <= 1 {
                    0.0
                } else {
                    c as f32 / (*k as f32 - 1.0)
                };
            }
            AttributeCodec::OneHot { k } => {
                let c = value.as_cat() as usize;
                debug_assert!(c < *k);
                out.fill(0.0);
                out[c] = 1.0;
            }
            AttributeCodec::SimpleNorm { min, max } => {
                let v = value.as_num();
                out[0] = if max > min {
                    (-1.0 + 2.0 * (v - min) / (max - min)) as f32
                } else {
                    0.0
                };
            }
            AttributeCodec::Gmm { gmm } => {
                let (v, k) = gmm.normalize(value.as_num());
                out.fill(0.0);
                out[0] = v as f32;
                out[1 + k] = 1.0;
            }
        }
    }

    /// Decodes one encoded block back into a value. Inputs are treated
    /// as raw network outputs: soft one-hot blocks are resolved by
    /// argmax, scalars are clamped into their valid range.
    pub fn decode(&self, block: &[f32]) -> Value {
        debug_assert_eq!(block.len(), self.width());
        match self {
            AttributeCodec::Ordinal { k } => {
                if *k <= 1 {
                    return Value::Cat(0);
                }
                let v = block[0].clamp(0.0, 1.0);
                let code = (v * (*k as f32 - 1.0)).round() as u32;
                Value::Cat(code.min(*k as u32 - 1))
            }
            AttributeCodec::OneHot { .. } => {
                let mut best = 0;
                for i in 1..block.len() {
                    if block[i] > block[best] {
                        best = i;
                    }
                }
                Value::Cat(best as u32)
            }
            AttributeCodec::SimpleNorm { min, max } => {
                let v = block[0].clamp(-1.0, 1.0) as f64;
                Value::Num(min + (v + 1.0) / 2.0 * (max - min))
            }
            AttributeCodec::Gmm { gmm } => {
                let mut best = 0;
                for i in 1..gmm.n_components() {
                    if block[1 + i] > block[1 + best] {
                        best = i;
                    }
                }
                let v = block[0].clamp(-1.0, 1.0) as f64;
                Value::Num(gmm.denormalize(v, best))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_roundtrip() {
        let codec = AttributeCodec::Ordinal { k: 5 };
        let mut buf = [0.0f32; 1];
        for c in 0..5u32 {
            codec.encode(&Value::Cat(c), &mut buf);
            assert_eq!(codec.decode(&buf), Value::Cat(c));
        }
    }

    #[test]
    fn ordinal_decodes_noisy_outputs() {
        let codec = AttributeCodec::Ordinal { k: 3 };
        assert_eq!(codec.decode(&[0.45]), Value::Cat(1));
        assert_eq!(codec.decode(&[-0.2]), Value::Cat(0));
        assert_eq!(codec.decode(&[1.7]), Value::Cat(2));
    }

    #[test]
    fn singleton_domain() {
        let codec = AttributeCodec::Ordinal { k: 1 };
        let mut buf = [9.0f32; 1];
        codec.encode(&Value::Cat(0), &mut buf);
        assert_eq!(buf[0], 0.0);
        assert_eq!(codec.decode(&[0.7]), Value::Cat(0));
    }

    #[test]
    fn onehot_roundtrip_and_argmax() {
        let codec = AttributeCodec::OneHot { k: 4 };
        let mut buf = [0.0f32; 4];
        codec.encode(&Value::Cat(2), &mut buf);
        assert_eq!(buf, [0.0, 0.0, 1.0, 0.0]);
        assert_eq!(codec.decode(&[0.1, 0.2, 0.6, 0.1]), Value::Cat(2));
    }

    #[test]
    fn simple_norm_roundtrip() {
        let codec = AttributeCodec::SimpleNorm {
            min: 10.0,
            max: 30.0,
        };
        let mut buf = [0.0f32; 1];
        codec.encode(&Value::Num(10.0), &mut buf);
        assert_eq!(buf[0], -1.0);
        codec.encode(&Value::Num(30.0), &mut buf);
        assert_eq!(buf[0], 1.0);
        codec.encode(&Value::Num(20.0), &mut buf);
        assert_eq!(buf[0], 0.0);
        assert_eq!(codec.decode(&[0.0]).as_num(), 20.0);
        // Out-of-range outputs clamp to the fitted range.
        assert_eq!(codec.decode(&[5.0]).as_num(), 30.0);
    }

    #[test]
    fn constant_numeric_column() {
        let codec = AttributeCodec::SimpleNorm { min: 4.0, max: 4.0 };
        let mut buf = [0.0f32; 1];
        codec.encode(&Value::Num(4.0), &mut buf);
        assert_eq!(buf[0], 0.0);
        assert_eq!(codec.decode(&buf).as_num(), 4.0);
    }

    #[test]
    fn gmm_roundtrip_close() {
        let mut values = Vec::new();
        let mut rng = daisy_tensor::Rng::seed_from_u64(0);
        for i in 0..2000 {
            values.push(if i % 2 == 0 {
                rng.normal_ms(20.0, 10.0)
            } else {
                rng.normal_ms(50.0, 5.0)
            });
        }
        let codec = AttributeCodec::fit(
            &Column::Num(values),
            &TransformConfig::gn_ht(),
        );
        assert_eq!(codec.block_kind(), OutputBlockKind::GmmValueAndComponent);
        let mut buf = vec![0.0f32; codec.width()];
        for &x in &[18.0, 25.0, 47.0, 52.0] {
            codec.encode(&Value::Num(x), &mut buf);
            let back = codec.decode(&buf).as_num();
            assert!((back - x).abs() < 0.5, "{x} -> {back}");
        }
    }

    #[test]
    fn fit_respects_config() {
        let cat = Column::cat_with_domain(vec![0, 1, 2], 3);
        let num = Column::Num(vec![1.0, 2.0, 3.0]);
        let sn_od = TransformConfig::sn_od();
        assert!(matches!(
            AttributeCodec::fit(&cat, &sn_od),
            AttributeCodec::Ordinal { k: 3 }
        ));
        assert!(matches!(
            AttributeCodec::fit(&num, &sn_od),
            AttributeCodec::SimpleNorm { .. }
        ));
        let gn_ht = TransformConfig::gn_ht();
        assert!(matches!(
            AttributeCodec::fit(&cat, &gn_ht),
            AttributeCodec::OneHot { k: 3 }
        ));
        assert!(matches!(
            AttributeCodec::fit(&num, &gn_ht),
            AttributeCodec::Gmm { .. }
        ));
    }
}
