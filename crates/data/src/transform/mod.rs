//! Phase I of the paper's framework: reversible data transformation
//! (§4). Records with mixed attribute types become numeric samples a
//! GAN can train on; synthetic samples convert back into records.
//!
//! Two sample forms exist:
//! - **vector-formed** ([`RecordCodec`]) for MLP/LSTM networks — any
//!   combination of ordinal/one-hot encoding with simple/GMM
//!   normalization;
//! - **matrix-formed** ([`MatrixCodec`]) for CNN networks — restricted
//!   to ordinal encoding + simple normalization, because each attribute
//!   must occupy exactly one matrix cell.

mod codec;
mod matrix;
mod record;

pub use codec::{AttributeCodec, OutputBlock, OutputBlockKind};
pub use matrix::{MatrixCellParam, MatrixCodec};
pub use record::RecordCodec;

use daisy_tensor::Tensor;

/// Encoding scheme for categorical attributes (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoricalEncoding {
    /// One ordinal integer per category, scaled into `[0, 1]`.
    Ordinal,
    /// A `|T[j]|`-wide one-hot indicator block.
    OneHot,
}

/// Normalization scheme for numerical attributes (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericalNormalization {
    /// Min–max scaling into `[-1, 1]`.
    Simple,
    /// Mode-specific normalization via a univariate GMM: a scaled value
    /// plus a one-hot component indicator.
    Gmm,
}

/// A point in the data-transformation design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformConfig {
    /// Categorical scheme.
    pub categorical: CategoricalEncoding,
    /// Numerical scheme.
    pub numerical: NumericalNormalization,
    /// GMM component count `s` (ignored for [`NumericalNormalization::Simple`]).
    pub gmm_components: usize,
    /// EM iterations for GMM fitting.
    pub gmm_iterations: usize,
}

impl TransformConfig {
    /// `sn/od`: simple normalization + ordinal encoding.
    pub fn sn_od() -> Self {
        TransformConfig {
            categorical: CategoricalEncoding::Ordinal,
            numerical: NumericalNormalization::Simple,
            gmm_components: 5,
            gmm_iterations: 30,
        }
    }

    /// `sn/ht`: simple normalization + one-hot encoding.
    pub fn sn_ht() -> Self {
        TransformConfig {
            categorical: CategoricalEncoding::OneHot,
            ..Self::sn_od()
        }
    }

    /// `gn/od`: GMM normalization + ordinal encoding.
    pub fn gn_od() -> Self {
        TransformConfig {
            numerical: NumericalNormalization::Gmm,
            ..Self::sn_od()
        }
    }

    /// `gn/ht`: GMM normalization + one-hot encoding — the paper's
    /// recommended default (Finding in §B.5.1).
    pub fn gn_ht() -> Self {
        TransformConfig {
            categorical: CategoricalEncoding::OneHot,
            numerical: NumericalNormalization::Gmm,
            ..Self::sn_od()
        }
    }

    /// Short display name matching the paper's table headers.
    pub fn short_name(&self) -> &'static str {
        match (self.numerical, self.categorical) {
            (NumericalNormalization::Simple, CategoricalEncoding::Ordinal) => "sn/od",
            (NumericalNormalization::Simple, CategoricalEncoding::OneHot) => "sn/ht",
            (NumericalNormalization::Gmm, CategoricalEncoding::Ordinal) => "gn/od",
            (NumericalNormalization::Gmm, CategoricalEncoding::OneHot) => "gn/ht",
        }
    }

    /// All four corners of the transformation design space.
    pub fn all() -> [TransformConfig; 4] {
        [Self::sn_od(), Self::sn_ht(), Self::gn_od(), Self::gn_ht()]
    }
}

/// One-hot encodes label codes into a `[n, k]` condition matrix (the
/// condition vector `c` of conditional GAN, §5.3).
pub fn one_hot_labels(labels: &[u32], k: usize) -> Tensor {
    let mut out = Tensor::zeros(&[labels.len(), k]);
    for (i, &y) in labels.iter().enumerate() {
        assert!((y as usize) < k, "label {y} out of domain {k}");
        *out.at2_mut(i, y as usize) = 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_names() {
        assert_eq!(TransformConfig::sn_od().short_name(), "sn/od");
        assert_eq!(TransformConfig::gn_ht().short_name(), "gn/ht");
        let names: Vec<_> = TransformConfig::all()
            .iter()
            .map(|c| c.short_name())
            .collect();
        assert_eq!(names, vec!["sn/od", "sn/ht", "gn/od", "gn/ht"]);
    }

    #[test]
    fn one_hot_labels_basic() {
        let t = one_hot_labels(&[0, 2, 1], 3);
        assert_eq!(t.shape(), &[3, 3]);
        assert_eq!(t.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(t.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(t.row(2), &[0.0, 1.0, 0.0]);
    }
}
