//! Matrix-formed record transformation for CNN networks (paper §4,
//! "Matrix-formed samples"; Appendix A.1.1).
//!
//! Each attribute must occupy exactly one matrix cell, so only ordinal
//! encoding and simple normalization are applicable; the m values are
//! packed row-major into the smallest square and zero-padded (e.g. 8
//! attributes → 3×3 with one pad cell).

use crate::schema::Schema;
use crate::table::{Column, Table};
use crate::value::{AttrType, Value};
use daisy_tensor::Tensor;

/// One matrix cell's transformation parameters (public mirror of the
/// internal codec, for model persistence).
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixCellParam {
    /// Ordinal category over a domain of size `k`.
    Ordinal {
        /// Domain size.
        k: usize,
    },
    /// Min–max normalization range.
    Norm {
        /// Fitted minimum.
        min: f64,
        /// Fitted maximum.
        max: f64,
    },
}

#[derive(Debug, Clone)]
enum CellCodec {
    /// Ordinal category scaled into `[-1, 1]` (tanh range of the CNN
    /// generator output).
    Ordinal { k: usize },
    /// Min–max scaling into `[-1, 1]`.
    Norm { min: f64, max: f64 },
}

impl CellCodec {
    fn encode(&self, v: &Value) -> f32 {
        match self {
            CellCodec::Ordinal { k } => {
                let c = v.as_cat() as f64;
                if *k <= 1 {
                    0.0
                } else {
                    (-1.0 + 2.0 * c / (*k as f64 - 1.0)) as f32
                }
            }
            CellCodec::Norm { min, max } => {
                if max > min {
                    (-1.0 + 2.0 * (v.as_num() - min) / (max - min)) as f32
                } else {
                    0.0
                }
            }
        }
    }

    fn decode(&self, x: f32) -> Value {
        let x = x.clamp(-1.0, 1.0) as f64;
        match self {
            CellCodec::Ordinal { k } => {
                if *k <= 1 {
                    return Value::Cat(0);
                }
                let code = ((x + 1.0) / 2.0 * (*k as f64 - 1.0)).round() as i64;
                Value::Cat(code.clamp(0, *k as i64 - 1) as u32)
            }
            CellCodec::Norm { min, max } => Value::Num(min + (x + 1.0) / 2.0 * (max - min)),
        }
    }
}

/// Reversible transformation between records and `[n, 1, side, side]`
/// square matrices.
pub struct MatrixCodec {
    schema: Schema,
    categories: Vec<Vec<String>>,
    cells: Vec<CellCodec>,
    side: usize,
}

impl MatrixCodec {
    /// Fits per-attribute cell codecs and computes the square side
    /// `⌈√m⌉`.
    pub fn fit(table: &Table) -> MatrixCodec {
        assert!(table.n_rows() > 0, "cannot fit a codec on an empty table");
        let mut cells = Vec::with_capacity(table.n_attrs());
        let mut categories = Vec::with_capacity(table.n_attrs());
        for j in 0..table.n_attrs() {
            match table.column(j) {
                Column::Cat { categories: c, .. } => {
                    cells.push(CellCodec::Ordinal { k: c.len() });
                    categories.push(c.clone());
                }
                Column::Num(values) => {
                    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    cells.push(CellCodec::Norm { min, max });
                    categories.push(Vec::new());
                }
            }
        }
        let m = cells.len();
        let side = (m as f64).sqrt().ceil() as usize;
        MatrixCodec {
            schema: table.schema().clone(),
            categories,
            cells,
            side,
        }
    }

    /// Side length of the square sample.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The schema this codec round-trips.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Per-cell transformation parameters (for model persistence).
    pub fn cell_params(&self) -> Vec<MatrixCellParam> {
        self.cells
            .iter()
            .map(|c| match c {
                CellCodec::Ordinal { k } => MatrixCellParam::Ordinal { k: *k },
                CellCodec::Norm { min, max } => MatrixCellParam::Norm {
                    min: *min,
                    max: *max,
                },
            })
            .collect()
    }

    /// Category-name lists per column (for model persistence).
    pub fn categories(&self) -> &[Vec<String>] {
        &self.categories
    }

    /// Reassembles a codec from its parts (for model persistence).
    pub fn from_parts(
        schema: Schema,
        categories: Vec<Vec<String>>,
        cells: Vec<MatrixCellParam>,
    ) -> MatrixCodec {
        assert_eq!(schema.n_attrs(), cells.len(), "cell arity mismatch");
        assert_eq!(schema.n_attrs(), categories.len(), "category arity mismatch");
        let side = (cells.len() as f64).sqrt().ceil() as usize;
        MatrixCodec {
            schema,
            categories,
            cells: cells
                .into_iter()
                .map(|c| match c {
                    MatrixCellParam::Ordinal { k } => CellCodec::Ordinal { k },
                    MatrixCellParam::Norm { min, max } => CellCodec::Norm { min, max },
                })
                .collect(),
            side,
        }
    }

    /// Encodes a table into `[n, 1, side, side]` matrices.
    pub fn encode_table(&self, table: &Table) -> Tensor {
        assert_eq!(
            table.schema(),
            &self.schema,
            "table schema differs from the fitted schema"
        );
        let n = table.n_rows();
        let area = self.side * self.side;
        let mut data = vec![0.0f32; n * area];
        for i in 0..n {
            let row = table.row(i);
            for (j, (cell, v)) in self.cells.iter().zip(&row).enumerate() {
                data[i * area + j] = cell.encode(v);
            }
        }
        Tensor::from_vec(data, &[n, 1, self.side, self.side])
    }

    /// Decodes `[n, 1, side, side]` matrices back into a table; pad
    /// cells are ignored.
    pub fn decode_table(&self, samples: &Tensor) -> Table {
        assert_eq!(samples.ndim(), 4, "expected [n, 1, side, side]");
        assert_eq!(samples.shape()[1], 1, "expected a single channel");
        assert_eq!(samples.shape()[2], self.side, "side mismatch");
        assert_eq!(samples.shape()[3], self.side, "side mismatch");
        let n = samples.shape()[0];
        let area = self.side * self.side;
        let mut columns: Vec<Column> = self
            .schema
            .attrs()
            .iter()
            .zip(&self.categories)
            .map(|(a, cats)| match a.ty {
                AttrType::Numerical => Column::Num(Vec::with_capacity(n)),
                AttrType::Categorical => Column::Cat {
                    codes: Vec::with_capacity(n),
                    categories: cats.clone(),
                },
            })
            .collect();
        for i in 0..n {
            for (j, cell) in self.cells.iter().enumerate() {
                let x = samples.data()[i * area + j];
                match (&mut columns[j], cell.decode(x)) {
                    (Column::Num(data), Value::Num(v)) => data.push(v),
                    (Column::Cat { codes, .. }, Value::Cat(c)) => codes.push(c),
                    _ => unreachable!("codec/type mismatch"),
                }
            }
        }
        Table::new(self.schema.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Attribute;
    use daisy_tensor::Rng;

    fn table_with_attrs(m_num: usize, m_cat: usize, n: usize, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let mut attrs = Vec::new();
        let mut columns = Vec::new();
        for j in 0..m_num {
            attrs.push(Attribute::numerical(format!("n{j}")));
            columns.push(Column::Num((0..n).map(|_| rng.uniform(-3.0, 9.0)).collect()));
        }
        for j in 0..m_cat {
            attrs.push(Attribute::categorical(format!("c{j}")));
            columns.push(Column::cat_with_domain(
                (0..n).map(|_| rng.usize(5) as u32).collect(),
                5,
            ));
        }
        Table::new(Schema::new(attrs), columns)
    }

    #[test]
    fn eight_attrs_pack_into_3x3() {
        // The paper's example: 8 attributes → 3×3 with one zero pad.
        let t = table_with_attrs(5, 3, 20, 0);
        let codec = MatrixCodec::fit(&t);
        assert_eq!(codec.side(), 3);
        let enc = codec.encode_table(&t);
        assert_eq!(enc.shape(), &[20, 1, 3, 3]);
        // Pad cell (index 8) stays zero.
        for i in 0..20 {
            assert_eq!(enc.data()[i * 9 + 8], 0.0);
        }
    }

    #[test]
    fn perfect_square_has_no_padding() {
        let t = table_with_attrs(9, 0, 10, 1);
        assert_eq!(MatrixCodec::fit(&t).side(), 3);
        let t = table_with_attrs(16, 0, 10, 2);
        assert_eq!(MatrixCodec::fit(&t).side(), 4);
    }

    #[test]
    fn roundtrip() {
        let t = table_with_attrs(4, 4, 50, 3);
        let codec = MatrixCodec::fit(&t);
        let back = codec.decode_table(&codec.encode_table(&t));
        for j in 0..4 {
            for (a, b) in t.column(j).as_num().iter().zip(back.column(j).as_num()) {
                assert!((a - b).abs() < 1e-5, "col {j}: {a} vs {b}");
            }
        }
        for j in 4..8 {
            assert_eq!(t.column(j).as_cat(), back.column(j).as_cat());
        }
    }

    #[test]
    fn encoded_range_is_tanh_compatible() {
        let t = table_with_attrs(6, 3, 100, 4);
        let enc = MatrixCodec::fit(&t).encode_table(&t);
        assert!(enc.min() >= -1.0 && enc.max() <= 1.0);
    }
}
