//! Vector-formed record transformation: `t = t_1 ⊕ t_2 ⊕ … ⊕ t_m`
//! (paper §4, "Vector-formed samples"), used by MLP and LSTM networks.

use crate::schema::Schema;
use crate::table::{Column, Table};
use crate::transform::codec::{AttributeCodec, OutputBlock};
use crate::transform::TransformConfig;
use crate::value::Value;
use daisy_tensor::Tensor;

/// A fitted, reversible whole-record transformation to/from
/// vector-formed samples.
pub struct RecordCodec {
    schema: Schema,
    /// Category names per column (empty for numerical columns), kept so
    /// decoded tables carry the original category labels.
    categories: Vec<Vec<String>>,
    codecs: Vec<AttributeCodec>,
    spans: Vec<(usize, usize)>,
    width: usize,
}

impl RecordCodec {
    /// Fits one [`AttributeCodec`] per column of `table`.
    pub fn fit(table: &Table, config: &TransformConfig) -> RecordCodec {
        assert!(table.n_rows() > 0, "cannot fit a codec on an empty table");
        let mut codecs = Vec::with_capacity(table.n_attrs());
        let mut spans = Vec::with_capacity(table.n_attrs());
        let mut categories = Vec::with_capacity(table.n_attrs());
        let mut offset = 0;
        for j in 0..table.n_attrs() {
            let col = table.column(j);
            let codec = AttributeCodec::fit(col, config);
            let w = codec.width();
            spans.push((offset, offset + w));
            offset += w;
            codecs.push(codec);
            categories.push(match col {
                Column::Cat { categories, .. } => categories.clone(),
                Column::Num(_) => Vec::new(),
            });
        }
        RecordCodec {
            schema: table.schema().clone(),
            categories,
            codecs,
            spans,
            width: offset,
        }
    }

    /// Fits one codec per column by streaming over a chunk source —
    /// the out-of-core counterpart of [`RecordCodec::fit`], usable
    /// when the table only exists as a sealed chunk store.
    ///
    /// Categorical codecs come straight from the store dictionaries;
    /// simple normalization takes one pass over each numerical column;
    /// GMM normalization uses [`crate::Gmm1d::fit_streaming`], whose
    /// result is deterministic and chunking-invariant (identical for
    /// an in-memory [`crate::TableChunks`] and an on-disk store over
    /// the same rows) but intentionally differs from the in-memory
    /// sorted-quantile initialization of [`RecordCodec::fit`].
    pub fn fit_chunks(
        source: &dyn crate::source::ChunkSource,
        config: &TransformConfig,
    ) -> Result<RecordCodec, crate::error::DataError> {
        use crate::transform::{CategoricalEncoding, NumericalNormalization};
        use crate::value::AttrType;
        assert!(source.n_rows() > 0, "cannot fit a codec on an empty table");
        let schema = source.schema().clone();
        let first = source.chunk(0)?;
        let categories: Vec<Vec<String>> = first
            .columns()
            .iter()
            .map(|c| match c {
                Column::Cat { categories, .. } => categories.clone(),
                Column::Num(_) => Vec::new(),
            })
            .collect();
        let mut codecs = Vec::with_capacity(schema.n_attrs());
        #[allow(clippy::needless_range_loop)] // j co-indexes schema, categories, and chunk columns
        for j in 0..schema.n_attrs() {
            let codec = match schema.attr(j).ty {
                AttrType::Categorical => {
                    let k = categories[j].len();
                    match config.categorical {
                        CategoricalEncoding::Ordinal => AttributeCodec::Ordinal { k },
                        CategoricalEncoding::OneHot => AttributeCodec::OneHot { k },
                    }
                }
                AttrType::Numerical => match config.numerical {
                    NumericalNormalization::Simple => {
                        let mut min = f64::INFINITY;
                        let mut max = f64::NEG_INFINITY;
                        for k in 0..source.n_chunks() {
                            for &x in source.chunk(k)?.column(j).as_num() {
                                min = min.min(x);
                                max = max.max(x);
                            }
                        }
                        AttributeCodec::SimpleNorm { min, max }
                    }
                    NumericalNormalization::Gmm => {
                        let gmm = crate::Gmm1d::fit_streaming(
                            |f| {
                                for k in 0..source.n_chunks() {
                                    let t = source.chunk(k)?;
                                    for &x in t.column(j).as_num() {
                                        f(x);
                                    }
                                }
                                Ok(())
                            },
                            config.gmm_components,
                            config.gmm_iterations,
                        )?;
                        AttributeCodec::Gmm { gmm }
                    }
                },
            };
            codecs.push(codec);
        }
        Ok(RecordCodec::from_parts(schema, categories, codecs))
    }

    /// Width `d` of the encoded sample vector.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The schema this codec round-trips.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Column span of attribute `j` in the encoded vector.
    pub fn span(&self, j: usize) -> (usize, usize) {
        self.spans[j]
    }

    /// Per-attribute codecs.
    pub fn codecs(&self) -> &[AttributeCodec] {
        &self.codecs
    }

    /// Category-name lists per column (empty entries for numerical
    /// columns) — exposed for model persistence.
    pub fn categories(&self) -> &[Vec<String>] {
        &self.categories
    }

    /// Reassembles a codec from its parts (the inverse of the accessors
    /// above), recomputing spans and width. Used by model persistence.
    pub fn from_parts(
        schema: Schema,
        categories: Vec<Vec<String>>,
        codecs: Vec<AttributeCodec>,
    ) -> RecordCodec {
        assert_eq!(schema.n_attrs(), codecs.len(), "codec arity mismatch");
        assert_eq!(schema.n_attrs(), categories.len(), "category arity mismatch");
        let mut spans = Vec::with_capacity(codecs.len());
        let mut offset = 0;
        for c in &codecs {
            let w = c.width();
            spans.push((offset, offset + w));
            offset += w;
        }
        RecordCodec {
            schema,
            categories,
            codecs,
            spans,
            width: offset,
        }
    }

    /// The attribute-aware output layout for generators: one block per
    /// attribute, in encoding order.
    pub fn output_blocks(&self) -> Vec<OutputBlock> {
        self.codecs
            .iter()
            .zip(&self.spans)
            .map(|(c, &(lo, hi))| OutputBlock {
                kind: c.block_kind(),
                lo,
                hi,
            })
            .collect()
    }

    /// Encodes a whole table into a `[n, d]` sample matrix.
    pub fn encode_table(&self, table: &Table) -> Tensor {
        assert_eq!(
            table.schema(),
            &self.schema,
            "table schema differs from the fitted schema"
        );
        let n = table.n_rows();
        let mut out = Tensor::zeros(&[n, self.width]);
        for i in 0..n {
            let row = table.row(i);
            self.encode_row(&row, out.row_mut(i));
        }
        out
    }

    /// Encodes one record into a preallocated `d`-wide buffer.
    pub fn encode_row(&self, row: &[Value], out: &mut [f32]) {
        assert_eq!(row.len(), self.codecs.len(), "row arity mismatch");
        assert_eq!(out.len(), self.width, "output buffer width mismatch");
        for ((codec, &(lo, hi)), v) in self.codecs.iter().zip(&self.spans).zip(row) {
            codec.encode(v, &mut out[lo..hi]);
        }
    }

    /// Decodes one encoded row back into record values.
    pub fn decode_row(&self, encoded: &[f32]) -> Vec<Value> {
        assert_eq!(encoded.len(), self.width, "encoded width mismatch");
        self.codecs
            .iter()
            .zip(&self.spans)
            .map(|(codec, &(lo, hi))| codec.decode(&encoded[lo..hi]))
            .collect()
    }

    /// Decodes a `[n, d]` sample matrix into a table with the fitted
    /// schema (Phase III of the framework).
    pub fn decode_table(&self, samples: &Tensor) -> Table {
        assert_eq!(samples.ndim(), 2, "expected a [n, d] sample matrix");
        assert_eq!(samples.cols(), self.width, "sample width mismatch");
        let n = samples.rows();
        let mut columns: Vec<Column> = self
            .schema
            .attrs()
            .iter()
            .zip(&self.categories)
            .map(|(a, cats)| match a.ty {
                crate::value::AttrType::Numerical => Column::Num(Vec::with_capacity(n)),
                crate::value::AttrType::Categorical => Column::Cat {
                    codes: Vec::with_capacity(n),
                    categories: cats.clone(),
                },
            })
            .collect();
        for i in 0..n {
            for (j, v) in self.decode_row(samples.row(i)).into_iter().enumerate() {
                match (&mut columns[j], v) {
                    (Column::Num(data), Value::Num(x)) => data.push(x),
                    (Column::Cat { codes, .. }, Value::Cat(c)) => codes.push(c),
                    _ => unreachable!("codec/type mismatch"),
                }
            }
        }
        Table::new(self.schema.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Attribute;
    use daisy_tensor::Rng;

    fn demo_table(n: usize, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("workclass"),
                Attribute::categorical("income"),
            ],
            2,
        );
        Table::new(
            schema,
            vec![
                Column::Num((0..n).map(|_| rng.uniform(18.0, 80.0)).collect()),
                Column::cat_with_domain((0..n).map(|_| rng.usize(4) as u32).collect(), 4),
                Column::cat_with_domain((0..n).map(|_| rng.usize(2) as u32).collect(), 2),
            ],
        )
    }

    #[test]
    fn width_and_spans_sn_ht() {
        let t = demo_table(50, 0);
        let codec = RecordCodec::fit(&t, &TransformConfig::sn_ht());
        // 1 (numeric) + 4 (one-hot) + 2 (one-hot label).
        assert_eq!(codec.width(), 7);
        assert_eq!(codec.span(0), (0, 1));
        assert_eq!(codec.span(1), (1, 5));
        assert_eq!(codec.span(2), (5, 7));
    }

    #[test]
    fn roundtrip_exact_for_categoricals() {
        let t = demo_table(100, 1);
        for config in TransformConfig::all() {
            let codec = RecordCodec::fit(&t, &config);
            let enc = codec.encode_table(&t);
            let back = codec.decode_table(&enc);
            assert_eq!(back.n_rows(), t.n_rows());
            // Categorical columns decode exactly.
            assert_eq!(back.column(1).as_cat(), t.column(1).as_cat());
            assert_eq!(back.column(2).as_cat(), t.column(2).as_cat());
            // Numeric columns decode to within a small tolerance.
            for (a, b) in t.column(0).as_num().iter().zip(back.column(0).as_num()) {
                assert!((a - b).abs() < 1.5, "{config:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn encoded_values_bounded() {
        let t = demo_table(100, 2);
        for config in TransformConfig::all() {
            let codec = RecordCodec::fit(&t, &config);
            let enc = codec.encode_table(&t);
            assert!(enc.min() >= -1.0 - 1e-6, "{config:?}");
            assert!(enc.max() <= 1.0 + 1e-6, "{config:?}");
        }
    }

    #[test]
    fn output_blocks_cover_width_contiguously() {
        let t = demo_table(60, 3);
        for config in TransformConfig::all() {
            let codec = RecordCodec::fit(&t, &config);
            let blocks = codec.output_blocks();
            assert_eq!(blocks.len(), 3);
            let mut expected_lo = 0;
            for b in &blocks {
                assert_eq!(b.lo, expected_lo);
                expected_lo = b.hi;
            }
            assert_eq!(expected_lo, codec.width());
        }
    }

    #[test]
    fn decoded_table_preserves_category_names() {
        let schema = Schema::new(vec![Attribute::categorical("color")]);
        let t = Table::new(
            schema,
            vec![Column::Cat {
                codes: vec![0, 1, 0],
                categories: vec!["red".into(), "blue".into()],
            }],
        );
        let codec = RecordCodec::fit(&t, &TransformConfig::sn_ht());
        let back = codec.decode_table(&codec.encode_table(&t));
        match back.column(0) {
            Column::Cat { categories, .. } => {
                assert_eq!(categories, &["red".to_string(), "blue".to_string()]);
            }
            _ => panic!("expected categorical"),
        }
    }

    #[test]
    fn fit_chunks_is_chunking_invariant() {
        let t = demo_table(120, 5);
        for config in TransformConfig::all() {
            let small = crate::source::TableChunks::new(t.clone(), 13);
            let big = crate::source::TableChunks::new(t.clone(), 1000);
            let a = RecordCodec::fit_chunks(&small, &config).unwrap();
            let b = RecordCodec::fit_chunks(&big, &config).unwrap();
            assert_eq!(a.width(), b.width(), "{config:?}");
            let ea = a.encode_table(&t);
            let eb = b.encode_table(&t);
            assert_eq!(ea.data(), eb.data(), "{config:?}");
        }
    }

    #[test]
    fn fit_chunks_simple_norm_matches_in_memory() {
        // Simple normalization has no initialization freedom: the
        // streaming fit must agree exactly with the in-memory fit.
        let t = demo_table(80, 6);
        let config = TransformConfig::sn_ht();
        let mem = RecordCodec::fit(&t, &config);
        let chunked =
            RecordCodec::fit_chunks(&crate::source::TableChunks::new(t.clone(), 7), &config)
                .unwrap();
        assert_eq!(
            mem.encode_table(&t).data(),
            chunked.encode_table(&t).data()
        );
    }

    #[test]
    #[should_panic(expected = "schema differs")]
    fn wrong_schema_rejected() {
        let t = demo_table(10, 4);
        let codec = RecordCodec::fit(&t, &TransformConfig::sn_od());
        let other = Table::new(
            Schema::new(vec![Attribute::numerical("z")]),
            vec![Column::Num(vec![1.0])],
        );
        let _ = codec.encode_table(&other);
    }
}
