//! Univariate Gaussian mixture models fitted by expectation–
//! maximization, powering the paper's GMM-based (mode-specific)
//! normalization of numerical attributes (§4).

/// A fitted univariate Gaussian mixture.
#[derive(Debug, Clone)]
pub struct Gmm1d {
    weights: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

/// Floor on component standard deviations, preventing collapse onto a
/// single repeated value.
const STD_FLOOR: f64 = 1e-4;

impl Gmm1d {
    /// Fits a mixture with `s` components (the paper uses small `s`,
    /// e.g. 5) by EM. Components are initialized at evenly spaced
    /// quantiles, which is deterministic and robust for 1-D data.
    /// Degenerate inputs (constant columns, fewer distinct values than
    /// components) are handled by dropping empty components.
    pub fn fit(values: &[f64], s: usize, iterations: usize) -> Gmm1d {
        assert!(s > 0, "need at least one component");
        assert!(!values.is_empty(), "cannot fit a GMM on no data");
        let n = values.len();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // Quantile initialization.
        let mut means: Vec<f64> = (0..s)
            .map(|i| sorted[(i * (n - 1)) / s.max(1)])
            .collect();
        let global_std = std_dev(values).max(STD_FLOOR);
        let mut stds = vec![global_std; s];
        let mut weights = vec![1.0 / s as f64; s];

        let mut resp = vec![0.0f64; s];
        for _ in 0..iterations {
            // Accumulators for the M step.
            let mut wsum = vec![0.0f64; s];
            let mut msum = vec![0.0f64; s];
            let mut vsum = vec![0.0f64; s];
            for &x in values {
                // E step for one point.
                let mut total = 0.0;
                for k in 0..s {
                    resp[k] = weights[k] * gauss_pdf(x, means[k], stds[k]);
                    total += resp[k];
                }
                if total <= 0.0 {
                    // All densities underflowed; assign to nearest mean.
                    let k = nearest(&means, x);
                    resp.fill(0.0);
                    resp[k] = 1.0;
                    total = 1.0;
                }
                for k in 0..s {
                    let r = resp[k] / total;
                    wsum[k] += r;
                    msum[k] += r * x;
                    vsum[k] += r * x * x;
                }
            }
            // M step.
            for k in 0..s {
                if wsum[k] < 1e-10 {
                    weights[k] = 0.0;
                    continue;
                }
                weights[k] = wsum[k] / n as f64;
                means[k] = msum[k] / wsum[k];
                let var = (vsum[k] / wsum[k] - means[k] * means[k]).max(STD_FLOOR * STD_FLOOR);
                stds[k] = var.sqrt();
            }
        }

        // Drop dead components.
        let alive: Vec<usize> = (0..s).filter(|&k| weights[k] > 1e-9).collect();
        let gmm = Gmm1d {
            weights: alive.iter().map(|&k| weights[k]).collect(),
            means: alive.iter().map(|&k| means[k]).collect(),
            stds: alive.iter().map(|&k| stds[k]).collect(),
        };
        assert!(!gmm.means.is_empty(), "EM lost all components");
        gmm
    }

    /// Fits a mixture over data that is only reachable pass-by-pass —
    /// the out-of-core analogue of [`Gmm1d::fit`] for chunked stores
    /// that do not fit in memory. `for_each` must stream every value
    /// (in a fixed order) to the callback each time it is called; it
    /// is invoked `2 + iterations` times: one pass for count/range/
    /// variance, one histogram pass for quantile initialization, and
    /// one per EM iteration.
    ///
    /// The EM arithmetic is identical (same accumulation order) to the
    /// in-memory fit, but initialization is intentionally different:
    /// exact sorted quantiles would require materializing the column,
    /// so component means start at approximate quantiles from a
    /// 1024-bin histogram. Both are deterministic; a streaming fit is
    /// bit-identical across chunk backends and thread counts, but not
    /// to [`Gmm1d::fit`] on the same data.
    pub fn fit_streaming<F>(
        mut for_each: F,
        s: usize,
        iterations: usize,
    ) -> Result<Gmm1d, crate::error::DataError>
    where
        F: FnMut(&mut dyn FnMut(f64)) -> Result<(), crate::error::DataError>,
    {
        assert!(s > 0, "need at least one component");

        // Pass 1: count, range, and global variance (Welford).
        let mut n = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for_each(&mut |x| {
            n += 1;
            min = min.min(x);
            max = max.max(x);
            let d = x - mean;
            mean += d / n as f64;
            m2 += d * (x - mean);
        })?;
        assert!(n > 0, "cannot fit a GMM on no data");
        let global_std = (m2 / n as f64).sqrt().max(STD_FLOOR);

        // Pass 2: histogram → approximate quantile initialization.
        const BINS: usize = 1024;
        let width = (max - min) / BINS as f64;
        let mut hist = vec![0u64; BINS];
        for_each(&mut |x| {
            let b = if width > 0.0 {
                (((x - min) / width) as usize).min(BINS - 1)
            } else {
                0
            };
            hist[b] += 1;
        })?;
        let mut means = Vec::with_capacity(s);
        {
            let mut bin = 0usize;
            let mut cum = hist[0];
            for i in 0..s {
                let rank = ((i * (n - 1)) / s) as u64;
                while cum <= rank && bin + 1 < BINS {
                    bin += 1;
                    cum += hist[bin];
                }
                means.push(min + (bin as f64 + 0.5) * width);
            }
        }
        let mut stds = vec![global_std; s];
        let mut weights = vec![1.0 / s as f64; s];

        // EM: one streaming pass per iteration, accumulating in the
        // same order as the in-memory fit.
        let mut resp = vec![0.0f64; s];
        for _ in 0..iterations {
            let mut wsum = vec![0.0f64; s];
            let mut msum = vec![0.0f64; s];
            let mut vsum = vec![0.0f64; s];
            {
                let means = &means;
                let stds = &stds;
                let weights = &weights;
                let resp = &mut resp;
                for_each(&mut |x| {
                    let mut total = 0.0;
                    for k in 0..s {
                        resp[k] = weights[k] * gauss_pdf(x, means[k], stds[k]);
                        total += resp[k];
                    }
                    if total <= 0.0 {
                        let k = nearest(means, x);
                        resp.fill(0.0);
                        resp[k] = 1.0;
                        total = 1.0;
                    }
                    for k in 0..s {
                        let r = resp[k] / total;
                        wsum[k] += r;
                        msum[k] += r * x;
                        vsum[k] += r * x * x;
                    }
                })?;
            }
            for k in 0..s {
                if wsum[k] < 1e-10 {
                    weights[k] = 0.0;
                    continue;
                }
                weights[k] = wsum[k] / n as f64;
                means[k] = msum[k] / wsum[k];
                let var = (vsum[k] / wsum[k] - means[k] * means[k]).max(STD_FLOOR * STD_FLOOR);
                stds[k] = var.sqrt();
            }
        }

        let alive: Vec<usize> = (0..s).filter(|&k| weights[k] > 1e-9).collect();
        let gmm = Gmm1d {
            weights: alive.iter().map(|&k| weights[k]).collect(),
            means: alive.iter().map(|&k| means[k]).collect(),
            stds: alive.iter().map(|&k| stds[k]).collect(),
        };
        assert!(!gmm.means.is_empty(), "EM lost all components");
        Ok(gmm)
    }

    /// Reassembles a fitted mixture from its parameters (for model
    /// persistence). Panics on inconsistent arities or non-positive
    /// standard deviations.
    pub fn from_parts(weights: Vec<f64>, means: Vec<f64>, stds: Vec<f64>) -> Gmm1d {
        assert!(!means.is_empty(), "mixture needs at least one component");
        assert_eq!(weights.len(), means.len(), "weight arity mismatch");
        assert_eq!(stds.len(), means.len(), "std arity mismatch");
        assert!(stds.iter().all(|&s| s > 0.0), "stds must be positive");
        Gmm1d {
            weights,
            means,
            stds,
        }
    }

    /// Number of surviving components.
    pub fn n_components(&self) -> usize {
        self.means.len()
    }

    /// Component means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Component standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Component weights (sum to ~1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Index of the most responsible component for `x`
    /// (`argmax_i π_i(x)` in the paper's notation).
    pub fn most_likely_component(&self, x: f64) -> usize {
        let mut best = 0;
        let mut best_p = f64::NEG_INFINITY;
        for k in 0..self.n_components() {
            let p = self.weights[k] * gauss_pdf(x, self.means[k], self.stds[k]);
            if p > best_p {
                best_p = p;
                best = k;
            }
        }
        if best_p <= 0.0 {
            nearest(&self.means, x)
        } else {
            best
        }
    }

    /// Mode-specific normalization: `v_gmm = (v - µ_k) / (2 σ_k)` with
    /// `k` the most likely component, clamped to `[-1, 1]` so tanh
    /// outputs can reproduce it. Returns `(v_gmm, k)`.
    pub fn normalize(&self, x: f64) -> (f64, usize) {
        let k = self.most_likely_component(x);
        let v = (x - self.means[k]) / (2.0 * self.stds[k]);
        (v.clamp(-1.0, 1.0), k)
    }

    /// Inverse of [`Gmm1d::normalize`].
    pub fn denormalize(&self, v_gmm: f64, k: usize) -> f64 {
        assert!(k < self.n_components(), "component index out of range");
        v_gmm * 2.0 * self.stds[k] + self.means[k]
    }
}

fn gauss_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    (-0.5 * z * z).exp() / (std * (2.0 * std::f64::consts::PI).sqrt())
}

fn std_dev(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
}

fn nearest(means: &[f64], x: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (k, &m) in means.iter().enumerate() {
        let d = (x - m).abs();
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::Rng;

    fn bimodal_sample(n: usize, seed: u64) -> Vec<f64> {
        // The paper's running example: "young generation" N(20, 10) and
        // "old generation" N(50, 5).
        let mut rng = Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    rng.normal_ms(20.0, 10.0)
                } else {
                    rng.normal_ms(50.0, 5.0)
                }
            })
            .collect()
    }

    #[test]
    fn recovers_two_modes() {
        let data = bimodal_sample(4000, 0);
        let gmm = Gmm1d::fit(&data, 2, 50);
        let mut means = gmm.means().to_vec();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 20.0).abs() < 2.0, "means = {means:?}");
        assert!((means[1] - 50.0).abs() < 2.0, "means = {means:?}");
    }

    #[test]
    fn paper_example_age_43_is_old_generation() {
        let data = bimodal_sample(4000, 1);
        let gmm = Gmm1d::fit(&data, 2, 50);
        let old = (0..2)
            .max_by(|&a, &b| gmm.means()[a].partial_cmp(&gmm.means()[b]).unwrap())
            .unwrap();
        let (_v, k) = gmm.normalize(43.0);
        assert_eq!(k, old, "43 should belong to the ~N(50, 5) mode");
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let data = bimodal_sample(2000, 2);
        let gmm = Gmm1d::fit(&data, 2, 40);
        for &x in &[15.0, 25.0, 48.0, 55.0] {
            let (v, k) = gmm.normalize(x);
            let back = gmm.denormalize(v, k);
            assert!((back - x).abs() < 1e-9, "{x} -> {v} -> {back}");
        }
    }

    #[test]
    fn clamps_outliers() {
        let data = bimodal_sample(2000, 3);
        let gmm = Gmm1d::fit(&data, 2, 40);
        let (v, _) = gmm.normalize(1e6);
        assert_eq!(v, 1.0);
        let (v, _) = gmm.normalize(-1e6);
        assert_eq!(v, -1.0);
    }

    #[test]
    fn constant_column_survives() {
        let data = vec![7.0; 100];
        let gmm = Gmm1d::fit(&data, 3, 20);
        assert!(gmm.n_components() >= 1);
        let (v, k) = gmm.normalize(7.0);
        assert!(v.abs() < 1e-6);
        assert!((gmm.denormalize(v, k) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn weights_sum_to_one() {
        let data = bimodal_sample(1000, 4);
        let gmm = Gmm1d::fit(&data, 4, 30);
        let total: f64 = gmm.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    /// Drives `fit_streaming` from an in-memory slice split into
    /// chunks, mimicking how a chunk source feeds it.
    fn stream_fit(values: &[f64], chunk: usize, s: usize, iters: usize) -> Gmm1d {
        Gmm1d::fit_streaming(
            |f| {
                for part in values.chunks(chunk) {
                    for &x in part {
                        f(x);
                    }
                }
                Ok(())
            },
            s,
            iters,
        )
        .unwrap()
    }

    #[test]
    fn streaming_fit_recovers_two_modes() {
        let data = bimodal_sample(4000, 5);
        let gmm = stream_fit(&data, 64, 2, 50);
        let mut means = gmm.means().to_vec();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 20.0).abs() < 2.0, "means = {means:?}");
        assert!((means[1] - 50.0).abs() < 2.0, "means = {means:?}");
    }

    #[test]
    fn streaming_fit_is_chunking_invariant() {
        // The fit must depend only on the value sequence, not on how it
        // is cut into chunks — the guarantee that makes in-memory and
        // store-backed sources interchangeable.
        let data = bimodal_sample(1000, 6);
        let a = stream_fit(&data, 7, 3, 25);
        let b = stream_fit(&data, 1000, 3, 25);
        assert_eq!(a.means(), b.means());
        assert_eq!(a.stds(), b.stds());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn streaming_fit_constant_column() {
        let data = vec![7.0; 64];
        let gmm = stream_fit(&data, 16, 3, 20);
        assert!(gmm.n_components() >= 1);
        let (v, k) = gmm.normalize(7.0);
        assert!(v.abs() < 1e-6);
        assert!((gmm.denormalize(v, k) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn more_components_than_values() {
        let data = vec![1.0, 2.0];
        let gmm = Gmm1d::fit(&data, 5, 20);
        assert!(gmm.n_components() <= 5);
        let (v, k) = gmm.normalize(1.0);
        assert!((gmm.denormalize(v, k) - 1.0).abs() < 0.5);
    }
}
