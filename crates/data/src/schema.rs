//! Table schemas.

use crate::value::{AttrType, Attribute};

/// The schema of a relational table: an ordered attribute list plus an
/// optional designated label column (always categorical — the paper
/// evaluates classification utility on categorical labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    label: Option<usize>,
}

impl Schema {
    /// Creates a schema without a label column.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        assert!(!attrs.is_empty(), "schema needs at least one attribute");
        Schema { attrs, label: None }
    }

    /// Creates a schema with the given column as the label. The label
    /// column must be categorical.
    pub fn with_label(attrs: Vec<Attribute>, label: usize) -> Self {
        assert!(label < attrs.len(), "label index out of bounds");
        assert_eq!(
            attrs[label].ty,
            AttrType::Categorical,
            "label column must be categorical"
        );
        Schema {
            attrs,
            label: Some(label),
        }
    }

    /// All attributes in column order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute at `j`.
    pub fn attr(&self, j: usize) -> &Attribute {
        &self.attrs[j]
    }

    /// Index of the label column, if designated.
    pub fn label(&self) -> Option<usize> {
        self.label
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Indices of all feature (non-label) columns.
    pub fn feature_indices(&self) -> Vec<usize> {
        (0..self.attrs.len())
            .filter(|j| Some(*j) != self.label)
            .collect()
    }

    /// Count of numerical attributes.
    pub fn n_numerical(&self) -> usize {
        self.attrs
            .iter()
            .filter(|a| a.ty == AttrType::Numerical)
            .count()
    }

    /// Count of categorical attributes.
    pub fn n_categorical(&self) -> usize {
        self.attrs
            .iter()
            .filter(|a| a.ty == AttrType::Categorical)
            .count()
    }

    /// Returns a copy of this schema without a label designation.
    pub fn without_label(&self) -> Schema {
        Schema {
            attrs: self.attrs.clone(),
            label: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("workclass"),
                Attribute::categorical("income"),
            ],
            2,
        )
    }

    #[test]
    fn basic_accessors() {
        let s = demo();
        assert_eq!(s.n_attrs(), 3);
        assert_eq!(s.label(), Some(2));
        assert_eq!(s.index_of("workclass"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.feature_indices(), vec![0, 1]);
        assert_eq!(s.n_numerical(), 1);
        assert_eq!(s.n_categorical(), 2);
    }

    #[test]
    #[should_panic(expected = "label column must be categorical")]
    fn numerical_label_rejected() {
        Schema::with_label(vec![Attribute::numerical("x")], 0);
    }

    #[test]
    fn without_label_strips() {
        assert_eq!(demo().without_label().label(), None);
    }
}
