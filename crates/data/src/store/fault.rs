//! Deterministic fault injection for the data plane.
//!
//! The analogue of `daisy-core`'s training/checkpoint fault plans, aimed
//! at the chunk store and the streaming ingestion pipeline: every
//! fault is scheduled at a logical index (chunk seal count, accepted row
//! count), never wall-clock, so an injected failure and its recovery
//! replay bit-for-bit. Each models a real storage failure:
//!
//! - [`DataFault::TornChunkWrite`]: the process dies mid chunk write —
//!   a truncated chunk file lands at the final path and the journal
//!   never records the seal. Resume must overwrite it.
//! - [`DataFault::BitFlipOnRead`]: a sealed chunk rots on disk; the
//!   flip is only discoverable by checksum when the chunk is next read,
//!   at which point the store quarantines the file.
//! - [`DataFault::DiskFull`]: the chunk write is refused outright; the
//!   ingest surfaces a typed I/O error with the journal intact.
//! - [`DataFault::KillAtRow`]: ingestion stops dead after accepting a
//!   given row — the in-memory partial chunk is lost, exactly as
//!   SIGKILL would lose it, and a rerun must resume from the journal.

/// One scheduled data-plane fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFault {
    /// Truncates the write of chunk `chunk` (half its encoded bytes
    /// land at the final path) and stops ingestion as interrupted.
    TornChunkWrite {
        /// Chunk seal index to tear, starting at 0.
        chunk: usize,
    },
    /// Flips one bit of chunk `chunk`'s bytes as they are read from
    /// disk, forcing the checksum mismatch → quarantine path.
    BitFlipOnRead {
        /// Chunk index whose read is corrupted.
        chunk: usize,
        /// Byte offset of the flip (taken modulo the chunk length).
        byte: u64,
    },
    /// Refuses the write of chunk `chunk` before any byte lands.
    DiskFull {
        /// Chunk seal index that is refused.
        chunk: usize,
    },
    /// Stops ingestion immediately after accepting row `row` (0-based
    /// over accepted rows), losing any unsealed chunk.
    KillAtRow {
        /// Accepted-row index after which ingestion dies.
        row: usize,
    },
}

impl DataFault {
    /// Machine-readable tag used in `fault_fired` telemetry events.
    pub fn kind(&self) -> &'static str {
        match self {
            DataFault::TornChunkWrite { .. } => "data_torn_chunk_write",
            DataFault::BitFlipOnRead { .. } => "data_bit_flip_on_read",
            DataFault::DiskFull { .. } => "data_disk_full",
            DataFault::KillAtRow { .. } => "data_kill_at_row",
        }
    }
}

/// A deterministic schedule of data-plane faults for one ingest run or
/// one opened store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataFaultPlan {
    faults: Vec<DataFault>,
}

impl DataFaultPlan {
    /// The empty plan: no injected faults (production setting).
    pub fn none() -> Self {
        DataFaultPlan::default()
    }

    /// A plan firing the given faults.
    pub fn new(faults: Vec<DataFault>) -> Self {
        DataFaultPlan { faults }
    }

    /// Convenience: tear the write of chunk `chunk`.
    pub fn torn_chunk_write_at(chunk: usize) -> Self {
        Self::new(vec![DataFault::TornChunkWrite { chunk }])
    }

    /// Convenience: flip a bit of chunk `chunk` at read time.
    pub fn bit_flip_on_read(chunk: usize, byte: u64) -> Self {
        Self::new(vec![DataFault::BitFlipOnRead { chunk, byte }])
    }

    /// Convenience: refuse the write of chunk `chunk`.
    pub fn disk_full_at(chunk: usize) -> Self {
        Self::new(vec![DataFault::DiskFull { chunk }])
    }

    /// Convenience: kill ingestion after accepted row `row`.
    pub fn kill_at_row(row: usize) -> Self {
        Self::new(vec![DataFault::KillAtRow { row }])
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[DataFault] {
        &self.faults
    }
}

/// Per-run arming state: each scheduled fault fires at most once, so a
/// resumed ingest that replays a chunk index does not re-inject.
#[derive(Debug, Clone)]
pub(crate) struct ArmedDataFaults {
    plan: DataFaultPlan,
    fired: Vec<bool>,
}

impl ArmedDataFaults {
    /// Arms every fault of `plan`.
    pub(crate) fn new(plan: &DataFaultPlan) -> Self {
        ArmedDataFaults {
            fired: vec![false; plan.faults().len()],
            plan: plan.clone(),
        }
    }

    /// Fires and returns the first unfired fault matching `select`.
    pub(crate) fn take<F>(&mut self, select: F) -> Option<DataFault>
    where
        F: Fn(&DataFault) -> bool,
    {
        for (i, f) in self.plan.faults().iter().enumerate() {
            if !self.fired[i] && select(f) {
                self.fired[i] = true;
                return Some(*f);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once() {
        let plan = DataFaultPlan::new(vec![
            DataFault::DiskFull { chunk: 2 },
            DataFault::KillAtRow { row: 9 },
        ]);
        let mut armed = ArmedDataFaults::new(&plan);
        assert!(armed
            .take(|f| matches!(f, DataFault::DiskFull { chunk: 1 }))
            .is_none());
        assert_eq!(
            armed.take(|f| matches!(f, DataFault::DiskFull { chunk: 2 })),
            Some(DataFault::DiskFull { chunk: 2 })
        );
        // Replaying the same index does not re-fire.
        assert!(armed
            .take(|f| matches!(f, DataFault::DiskFull { chunk: 2 }))
            .is_none());
        assert_eq!(
            armed.take(|f| matches!(f, DataFault::KillAtRow { row: 9 })),
            Some(DataFault::KillAtRow { row: 9 })
        );
    }

    #[test]
    fn empty_plan_is_inert() {
        assert!(DataFaultPlan::none().is_empty());
        let mut armed = ArmedDataFaults::new(&DataFaultPlan::none());
        assert!(armed.take(|_| true).is_none());
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            DataFault::TornChunkWrite { chunk: 0 }.kind(),
            "data_torn_chunk_write"
        );
        assert_eq!(
            DataFault::BitFlipOnRead { chunk: 0, byte: 0 }.kind(),
            "data_bit_flip_on_read"
        );
        assert_eq!(DataFault::DiskFull { chunk: 0 }.kind(), "data_disk_full");
        assert_eq!(DataFault::KillAtRow { row: 0 }.kind(), "data_kill_at_row");
    }
}
