//! The sealed `DAISYCH1` chunk file format and the schema codec shared
//! by the store manifest and the ingest journal.
//!
//! A chunk file is:
//!
//! ```text
//! [magic "DAISYCH1"]
//! [section: header  = chunk_index, n_rows, n_cols]
//! [section: column 0]
//! [section: column 1]
//! ...
//! ```
//!
//! Every section is a `[len][crc64][bytes]` frame from [`daisy_wire`],
//! so any single-byte flip anywhere in the file is detected at read
//! time. Categorical columns store codes only; the category
//! dictionaries live once in the store manifest (and journal), keeping
//! chunks compact and guaranteeing one dictionary across the table.

use crate::schema::Schema;
use crate::table::Column;
use crate::value::{AttrType, Attribute};
use daisy_wire::{Reader, WireError, Writer};

/// Chunk file magic, version 1 (defined once in [`daisy_wire::magic`]).
pub use daisy_wire::magic::CHUNK as CHUNK_MAGIC;

/// File name of chunk `k` inside a store directory.
pub fn chunk_file_name(k: usize) -> String {
    format!("chunk-{k:06}.dch")
}

/// Encodes a schema plus per-column category dictionaries (empty for
/// numerical columns) into `w`.
pub(crate) fn encode_schema(w: &mut Writer, schema: &Schema, dicts: &[Vec<String>]) {
    w.usize(schema.n_attrs());
    for (a, dict) in schema.attrs().iter().zip(dicts) {
        w.str(&a.name);
        w.u8(match a.ty {
            AttrType::Numerical => 0,
            AttrType::Categorical => 1,
        });
        w.usize(dict.len());
        for c in dict {
            w.str(c);
        }
    }
    match schema.label() {
        Some(j) => {
            w.bool(true);
            w.usize(j);
        }
        None => w.bool(false),
    }
}

/// Decodes a schema and dictionaries written by [`encode_schema`].
pub(crate) fn decode_schema(r: &mut Reader<'_>) -> Result<(Schema, Vec<Vec<String>>), WireError> {
    let n = r.len()?;
    if n == 0 {
        return Err("schema with zero attributes".to_string());
    }
    let mut attrs = Vec::with_capacity(n);
    let mut dicts = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let ty = r.u8()?;
        let k = r.len()?;
        let mut dict = Vec::with_capacity(k);
        for _ in 0..k {
            dict.push(r.str()?);
        }
        let attr = match ty {
            0 => {
                if !dict.is_empty() {
                    return Err("numerical attribute with a dictionary".to_string());
                }
                Attribute::numerical(name)
            }
            // An empty dictionary is legal: a header-only input infers
            // every column categorical with no categories yet.
            1 => Attribute::categorical(name),
            t => return Err(format!("unknown attribute type tag {t}")),
        };
        attrs.push(attr);
        dicts.push(dict);
    }
    let schema = if r.bool()? {
        let j = r.usize()?;
        if j >= attrs.len() {
            return Err(format!("label index {j} out of bounds"));
        }
        if attrs[j].ty != AttrType::Categorical {
            return Err("label column is not categorical".to_string());
        }
        Schema::with_label(attrs, j)
    } else {
        Schema::new(attrs)
    };
    Ok((schema, dicts))
}

/// Encodes chunk `index` holding `columns` into the sealed file bytes.
/// Categorical columns are stored as codes only.
pub(crate) fn encode_chunk(index: usize, columns: &[Column]) -> Vec<u8> {
    let n_rows = columns.first().map_or(0, Column::len);
    let mut out = Writer::default();
    out.buf.extend_from_slice(CHUNK_MAGIC);
    let mut header = Writer::default();
    header.usize(index);
    header.usize(n_rows);
    header.usize(columns.len());
    out.section(&header);
    for col in columns {
        let mut body = Writer::default();
        match col {
            Column::Num(v) => {
                body.u8(0);
                body.f64s(v);
            }
            Column::Cat { codes, .. } => {
                body.u8(1);
                body.u32s(codes);
            }
        }
        out.section(&body);
    }
    out.buf
}

/// Decodes and fully validates a chunk file: magic, per-section
/// checksums, the expected chunk index, column arity/type agreement
/// with `schema`, and category codes within `dicts` domains. Returns
/// columns whose categorical entries carry the store dictionaries.
pub(crate) fn decode_chunk(
    bytes: &[u8],
    expected_index: usize,
    schema: &Schema,
    dicts: &[Vec<String>],
) -> Result<Vec<Column>, WireError> {
    if bytes.len() < CHUNK_MAGIC.len() || &bytes[..CHUNK_MAGIC.len()] != CHUNK_MAGIC {
        return Err("bad chunk magic".to_string());
    }
    let mut r = Reader::new(&bytes[CHUNK_MAGIC.len()..]);
    let mut header = r.section()?;
    let index = header.usize()?;
    if index != expected_index {
        return Err(format!("chunk claims index {index}, expected {expected_index}"));
    }
    let n_rows = header.usize()?;
    let n_cols = header.usize()?;
    if n_cols != schema.n_attrs() {
        return Err(format!(
            "chunk has {n_cols} columns, schema has {}",
            schema.n_attrs()
        ));
    }
    let mut columns = Vec::with_capacity(n_cols);
    #[allow(clippy::needless_range_loop)] // j co-indexes schema attrs, dicts, and wire sections
    for j in 0..n_cols {
        let mut body = r.section()?;
        let tag = body.u8()?;
        let col = match (tag, schema.attr(j).ty) {
            (0, AttrType::Numerical) => {
                let v = body.f64s()?;
                if v.len() != n_rows {
                    return Err(format!("column {j} has {} rows, expected {n_rows}", v.len()));
                }
                Column::Num(v)
            }
            (1, AttrType::Categorical) => {
                let codes = body.u32s()?;
                if codes.len() != n_rows {
                    return Err(format!(
                        "column {j} has {} rows, expected {n_rows}",
                        codes.len()
                    ));
                }
                let k = dicts[j].len();
                if let Some(&c) = codes.iter().find(|&&c| c as usize >= k) {
                    return Err(format!("column {j} code {c} outside domain {k}"));
                }
                Column::Cat {
                    codes,
                    categories: dicts[j].clone(),
                }
            }
            (t, ty) => return Err(format!("column {j} tag {t} does not match schema {ty:?}")),
        };
        if !body.is_empty() {
            return Err(format!("column {j} section has trailing bytes"));
        }
        columns.push(col);
    }
    if !r.is_empty() {
        return Err("chunk file has trailing bytes".to_string());
    }
    Ok(columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> (Schema, Vec<Vec<String>>) {
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("income"),
            ],
            1,
        );
        let dicts = vec![vec![], vec!["<=50K".into(), ">50K".into()]];
        (schema, dicts)
    }

    fn demo_columns() -> Vec<Column> {
        vec![
            Column::Num(vec![38.0, 51.5, 27.25]),
            Column::Cat {
                codes: vec![0, 1, 0],
                categories: vec!["<=50K".into(), ">50K".into()],
            },
        ]
    }

    #[test]
    fn chunk_roundtrip() {
        let (schema, dicts) = demo_schema();
        let cols = demo_columns();
        let bytes = encode_chunk(7, &cols);
        let back = decode_chunk(&bytes, 7, &schema, &dicts).unwrap();
        assert_eq!(back, cols);
    }

    #[test]
    fn wrong_index_rejected() {
        let (schema, dicts) = demo_schema();
        let bytes = encode_chunk(7, &demo_columns());
        assert!(decode_chunk(&bytes, 8, &schema, &dicts).is_err());
    }

    #[test]
    fn every_single_byte_flip_detected() {
        let (schema, dicts) = demo_schema();
        let bytes = encode_chunk(0, &demo_columns());
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                assert!(
                    decode_chunk(&bad, 0, &schema, &dicts).is_err(),
                    "flip {flip:#04x} at byte {i}/{} undetected",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn truncations_detected() {
        let (schema, dicts) = demo_schema();
        let bytes = encode_chunk(0, &demo_columns());
        for cut in 0..bytes.len() {
            assert!(
                decode_chunk(&bytes[..cut], 0, &schema, &dicts).is_err(),
                "truncation to {cut} bytes undetected"
            );
        }
    }

    #[test]
    fn schema_roundtrip() {
        let (schema, dicts) = demo_schema();
        let mut w = Writer::default();
        encode_schema(&mut w, &schema, &dicts);
        let mut r = Reader::new(&w.buf);
        let (s2, d2) = decode_schema(&mut r).unwrap();
        assert_eq!(s2, schema);
        assert_eq!(d2, dicts);
        assert!(r.is_empty());
    }

    #[test]
    fn chunk_file_names_sort_lexicographically() {
        assert_eq!(chunk_file_name(3), "chunk-000003.dch");
        assert!(chunk_file_name(9) < chunk_file_name(10));
        assert!(chunk_file_name(99) < chunk_file_name(100));
    }
}
