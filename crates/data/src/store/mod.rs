//! The out-of-core chunked columnar table store.
//!
//! A store is a directory:
//!
//! ```text
//! store/
//!   manifest.dmf      # DAISYMF1: schema, dictionaries, per-chunk rows + CRC
//!   chunk-000000.dch  # DAISYCH1: sealed columnar chunks
//!   chunk-000001.dch
//!   journal.dij       # DAISYIJ1: append-only ingest journal (see crate::ingest)
//!   rejected.txt      # quarantined input rows with line numbers
//! ```
//!
//! Reads are hardened end to end: the manifest and every chunk carry
//! CRC-64 section frames plus a manifest-recorded whole-file CRC, so
//! any single-byte flip surfaces as a typed [`DataError`] — never a
//! panic, never silently wrong data. A chunk that fails validation is
//! renamed to `chunk-NNNNNN.dch.corrupt-K` (bytes preserved for
//! post-mortem) before the error returns, so a rebuilt chunk can take
//! its place.
//!
//! Resident memory is bounded by the `DAISY_MEM_BUDGET` environment
//! variable (bytes; default 256 MiB): decoded chunks live in a
//! least-recently-used cache sized to the budget, degrading gracefully
//! to a single resident chunk when the budget is smaller than one
//! chunk. Cache behavior depends only on the access sequence, keeping
//! chunk-backed runs bit-deterministic at any thread count.

pub mod chunk;
pub mod fault;

pub use fault::{DataFault, DataFaultPlan};

use crate::error::DataError;
use crate::schema::Schema;
use crate::table::{Column, Table};
use crate::value::AttrType;
use chunk::{chunk_file_name, decode_chunk};
use daisy_telemetry::{emit, field, schema as tschema};
use daisy_wire::{crc64, quarantine, Reader, Writer};
use fault::ArmedDataFaults;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Manifest file magic, version 1 (defined once in [`daisy_wire::magic`]).
pub use daisy_wire::magic::MANIFEST as MANIFEST_MAGIC;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.dmf";

/// Default resident-chunk memory budget when `DAISY_MEM_BUDGET` is
/// unset: 256 MiB.
pub const DEFAULT_MEM_BUDGET: usize = 256 * 1024 * 1024;

/// Resident-chunk memory budget in bytes: `DAISY_MEM_BUDGET` when set
/// to a positive integer, [`DEFAULT_MEM_BUDGET`] otherwise.
pub fn mem_budget() -> usize {
    match daisy_telemetry::knobs::raw("DAISY_MEM_BUDGET") {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => DEFAULT_MEM_BUDGET,
        },
        None => DEFAULT_MEM_BUDGET,
    }
}

/// Manifest record of one sealed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Rows in the chunk.
    pub rows: usize,
    /// CRC-64 of the complete chunk file bytes.
    pub crc: u64,
}

/// Encodes a store manifest.
pub(crate) fn encode_manifest(
    schema: &Schema,
    dicts: &[Vec<String>],
    chunk_rows: usize,
    chunks: &[ChunkMeta],
) -> Vec<u8> {
    let mut body = Writer::default();
    chunk::encode_schema(&mut body, schema, dicts);
    body.usize(chunk_rows);
    body.usize(chunks.len());
    for m in chunks {
        body.usize(m.rows);
        body.u64(m.crc);
    }
    let mut out = Writer::default();
    out.buf.extend_from_slice(MANIFEST_MAGIC);
    out.section(&body);
    out.buf
}

/// The decoded manifest fields: schema, category dictionaries,
/// `chunk_rows`, and per-chunk metadata.
pub(crate) type DecodedManifest = (Schema, Vec<Vec<String>>, usize, Vec<ChunkMeta>);

/// Decodes a store manifest.
pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<DecodedManifest, String> {
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err("bad manifest magic".to_string());
    }
    let mut r = Reader::new(&bytes[MANIFEST_MAGIC.len()..]);
    let mut body = r.section()?;
    let (schema, dicts) = chunk::decode_schema(&mut body)?;
    let chunk_rows = body.usize()?;
    if chunk_rows == 0 {
        return Err("manifest chunk_rows is zero".to_string());
    }
    let n = body.len()?;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let rows = body.usize()?;
        let crc = body.u64()?;
        chunks.push(ChunkMeta { rows, crc });
    }
    if !body.is_empty() {
        return Err("manifest has trailing bytes".to_string());
    }
    if !r.is_empty() {
        return Err("manifest file has trailing bytes".to_string());
    }
    Ok((schema, dicts, chunk_rows, chunks))
}

/// Decoded-chunk cache: least-recently-used, bounded by a byte budget,
/// never below one resident chunk.
struct Cache {
    budget: usize,
    bytes_per_row: usize,
    /// `(chunk index, decoded table)`, oldest first.
    entries: Vec<(usize, Arc<Table>)>,
}

impl Cache {
    fn get(&mut self, k: usize) -> Option<Arc<Table>> {
        let pos = self.entries.iter().position(|(i, _)| *i == k)?;
        let entry = self.entries.remove(pos);
        let t = entry.1.clone();
        self.entries.push(entry);
        Some(t)
    }

    fn put(&mut self, k: usize, t: Arc<Table>) {
        self.entries.push((k, t));
        while self.entries.len() > 1 && self.resident_bytes() > self.budget {
            self.entries.remove(0);
        }
    }

    fn resident_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, t)| t.n_rows() * self.bytes_per_row)
            .sum()
    }
}

/// A read handle over a sealed chunk store directory.
pub struct ChunkStore {
    dir: PathBuf,
    schema: Schema,
    dicts: Vec<Vec<String>>,
    chunk_rows: usize,
    chunks: Vec<ChunkMeta>,
    n_rows: usize,
    cache: RefCell<Cache>,
    faults: RefCell<ArmedDataFaults>,
}

impl ChunkStore {
    /// Opens the store at `dir`, validating the manifest. A corrupt
    /// manifest is quarantined (renamed `manifest.dmf.corrupt-N`) and
    /// reported as [`DataError::CorruptManifest`]; rerunning the ingest
    /// rebuilds it from the journal.
    pub fn open(dir: &Path) -> Result<ChunkStore, DataError> {
        Self::open_with_faults(dir, &DataFaultPlan::none())
    }

    /// [`ChunkStore::open`] with a fault plan armed against chunk
    /// reads (test harness for the corruption-quarantine path).
    pub fn open_with_faults(dir: &Path, plan: &DataFaultPlan) -> Result<ChunkStore, DataError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&manifest_path)?;
        let (schema, dicts, chunk_rows, chunks) = match decode_manifest(&bytes) {
            Ok(parts) => parts,
            Err(detail) => {
                quarantine(&manifest_path);
                return Err(DataError::CorruptManifest {
                    path: manifest_path,
                    detail,
                });
            }
        };
        let n_rows = chunks.iter().map(|m| m.rows).sum();
        let bytes_per_row = schema
            .attrs()
            .iter()
            .map(|a| match a.ty {
                AttrType::Numerical => 8,
                AttrType::Categorical => 4,
            })
            .sum::<usize>()
            .max(1);
        Ok(ChunkStore {
            dir: dir.to_path_buf(),
            schema,
            dicts,
            chunk_rows,
            chunks,
            n_rows,
            cache: RefCell::new(Cache {
                budget: mem_budget(),
                bytes_per_row,
                entries: Vec::new(),
            }),
            faults: RefCell::new(ArmedDataFaults::new(plan)),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Category dictionaries per column (empty for numerical columns).
    pub fn dicts(&self) -> &[Vec<String>] {
        &self.dicts
    }

    /// Total rows across all chunks.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of sealed chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Target rows per chunk (the final chunk may hold fewer).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Manifest record of chunk `k`.
    pub fn chunk_meta(&self, k: usize) -> ChunkMeta {
        self.chunks[k]
    }

    /// Reads, validates, and decodes chunk `k`, serving repeats from
    /// the budget-bounded cache. Corruption anywhere — manifest CRC
    /// mismatch, bad magic, torn section, out-of-domain code — moves
    /// the file to `chunk-NNNNNN.dch.corrupt-K` and returns
    /// [`DataError::CorruptChunk`].
    pub fn chunk(&self, k: usize) -> Result<Arc<Table>, DataError> {
        assert!(k < self.chunks.len(), "chunk index out of bounds");
        if let Some(t) = self.cache.borrow_mut().get(k) {
            return Ok(t);
        }
        let path = self.dir.join(chunk_file_name(k));
        let mut bytes = std::fs::read(&path)?;
        if let Some(DataFault::BitFlipOnRead { byte, .. }) = self.faults.borrow_mut().take(|f| {
            matches!(f, DataFault::BitFlipOnRead { chunk, .. } if *chunk == k)
        }) {
            if !bytes.is_empty() {
                let at = (byte % bytes.len() as u64) as usize;
                bytes[at] ^= 0x01;
                emit(
                    tschema::FAULT_FIRED,
                    vec![
                        field("kind", "data_bit_flip_on_read"),
                        field("chunk", k),
                    ],
                );
            }
        }
        let detail = if crc64(&bytes) != self.chunks[k].crc {
            "file checksum disagrees with manifest".to_string()
        } else {
            match decode_chunk(&bytes, k, &self.schema, &self.dicts) {
                Ok(columns) => {
                    let rows = columns.first().map_or(0, Column::len);
                    if rows != self.chunks[k].rows {
                        format!(
                            "chunk has {rows} rows, manifest records {}",
                            self.chunks[k].rows
                        )
                    } else {
                        let t = Arc::new(Table::new(self.schema.clone(), columns));
                        self.cache.borrow_mut().put(k, t.clone());
                        return Ok(t);
                    }
                }
                Err(e) => e,
            }
        };
        quarantine(&path);
        emit(
            tschema::CHUNK_QUARANTINED,
            vec![field("chunk", k), field("error", detail.as_str())],
        );
        Err(DataError::CorruptChunk { path, detail })
    }

    /// Materializes the full table in memory (all chunks concatenated
    /// in order). Intended for small stores and tests; training reads
    /// chunk-at-a-time instead.
    pub fn to_table(&self) -> Result<Table, DataError> {
        let mut columns: Vec<Column> = self
            .schema
            .attrs()
            .iter()
            .zip(&self.dicts)
            .map(|(a, dict)| match a.ty {
                AttrType::Numerical => Column::Num(Vec::with_capacity(self.n_rows)),
                AttrType::Categorical => Column::Cat {
                    codes: Vec::with_capacity(self.n_rows),
                    categories: dict.clone(),
                },
            })
            .collect();
        for k in 0..self.n_chunks() {
            let t = self.chunk(k)?;
            for (dst, src) in columns.iter_mut().zip(t.columns()) {
                match (dst, src) {
                    (Column::Num(d), Column::Num(s)) => d.extend_from_slice(s),
                    (Column::Cat { codes: d, .. }, Column::Cat { codes: s, .. }) => {
                        d.extend_from_slice(s)
                    }
                    _ => unreachable!("chunk validated against schema"),
                }
            }
        }
        Ok(Table::new(self.schema.clone(), columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Attribute;
    use daisy_wire::atomic_write;

    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("daisy-store-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes a two-chunk store by hand (the ingest pipeline has its
    /// own tests; these exercise the read path in isolation).
    fn write_demo_store(dir: &Path) -> (Schema, Vec<Vec<String>>) {
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("income"),
            ],
            1,
        );
        let dicts = vec![vec![], vec!["<=50K".to_string(), ">50K".to_string()]];
        let chunks = [
            vec![
                Column::Num(vec![38.0, 51.5]),
                Column::Cat {
                    codes: vec![0, 1],
                    categories: dicts[1].clone(),
                },
            ],
            vec![
                Column::Num(vec![27.0]),
                Column::Cat {
                    codes: vec![0],
                    categories: dicts[1].clone(),
                },
            ],
        ];
        let mut metas = Vec::new();
        for (k, cols) in chunks.iter().enumerate() {
            let bytes = chunk::encode_chunk(k, cols);
            metas.push(ChunkMeta {
                rows: cols[0].len(),
                crc: crc64(&bytes),
            });
            atomic_write(&dir.join(chunk_file_name(k)), &bytes).unwrap();
        }
        let manifest = encode_manifest(&schema, &dicts, 2, &metas);
        atomic_write(&dir.join(MANIFEST_FILE), &manifest).unwrap();
        (schema, dicts)
    }

    #[test]
    fn open_and_read_chunks() {
        let dir = scratch_dir("read");
        let (schema, _) = write_demo_store(&dir);
        let store = ChunkStore::open(&dir).unwrap();
        assert_eq!(store.schema(), &schema);
        assert_eq!(store.n_rows(), 3);
        assert_eq!(store.n_chunks(), 2);
        assert_eq!(store.chunk_rows(), 2);
        let c0 = store.chunk(0).unwrap();
        assert_eq!(c0.n_rows(), 2);
        assert_eq!(c0.column(0).as_num(), &[38.0, 51.5]);
        // Cached read returns the same allocation.
        let again = store.chunk(0).unwrap();
        assert!(Arc::ptr_eq(&c0, &again));
        let full = store.to_table().unwrap();
        assert_eq!(full.n_rows(), 3);
        assert_eq!(full.column(0).as_num(), &[38.0, 51.5, 27.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_chunk_quarantined_with_typed_error() {
        let dir = scratch_dir("corrupt");
        write_demo_store(&dir);
        let path = dir.join(chunk_file_name(1));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let store = ChunkStore::open(&dir).unwrap();
        let Err(e) = store.chunk(1) else {
            panic!("corrupt chunk must be rejected");
        };
        assert!(matches!(e, DataError::CorruptChunk { .. }), "{e}");
        assert!(!path.exists(), "corrupt chunk must be moved aside");
        let q = daisy_wire::sibling(&path, "corrupt-0");
        assert_eq!(std::fs::read(&q).unwrap(), bytes, "bytes preserved");
        // The intact chunk still reads.
        assert!(store.chunk(0).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_on_read_fault_trips_quarantine() {
        let dir = scratch_dir("flip");
        write_demo_store(&dir);
        let store =
            ChunkStore::open_with_faults(&dir, &DataFaultPlan::bit_flip_on_read(0, 13)).unwrap();
        let Err(e) = store.chunk(0) else {
            panic!("flipped read must fail");
        };
        assert!(matches!(e, DataError::CorruptChunk { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_quarantined() {
        let dir = scratch_dir("manifest");
        write_demo_store(&dir);
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let Err(e) = ChunkStore::open(&dir) else {
            panic!("corrupt manifest must be rejected");
        };
        assert!(matches!(e, DataError::CorruptManifest { .. }), "{e}");
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_mem_budget_keeps_one_chunk_resident() {
        let dir = scratch_dir("budget");
        write_demo_store(&dir);
        let store = ChunkStore::open(&dir).unwrap();
        // Force a 1-byte budget: every insert evicts down to one entry.
        store.cache.borrow_mut().budget = 1;
        let c0 = store.chunk(0).unwrap();
        let _c1 = store.chunk(1).unwrap();
        assert_eq!(store.cache.borrow().entries.len(), 1);
        // Chunk 0 was evicted; a re-read decodes a fresh allocation
        // with identical content.
        let c0b = store.chunk(0).unwrap();
        assert!(!Arc::ptr_eq(&c0, &c0b));
        assert_eq!(*c0, *c0b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_budget_parses_env_shape() {
        // Not set in the test environment: default applies.
        assert!(mem_budget() >= 1);
    }
}
