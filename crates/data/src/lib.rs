//! # daisy-data
//!
//! Relational tables and the reversible data transformations of the
//! paper's Phase I (§4): ordinal / one-hot encoding for categorical
//! attributes, simple / GMM-based normalization for numerical
//! attributes, and vector- or matrix-formed sample assembly.
//!
//! ```
//! use daisy_data::{
//!     Attribute, Column, RecordCodec, Schema, Table, TransformConfig,
//! };
//!
//! let schema = Schema::new(vec![
//!     Attribute::numerical("age"),
//!     Attribute::categorical("income"),
//! ]);
//! let table = Table::new(schema, vec![
//!     Column::Num(vec![38.0, 51.0, 27.0]),
//!     Column::cat_with_domain(vec![0, 1, 0], 2),
//! ]);
//! let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
//! let samples = codec.encode_table(&table);          // [3, d]
//! let restored = codec.decode_table(&samples);        // fake records
//! assert_eq!(restored.n_rows(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod error;
pub mod gmm;
pub mod ingest;
pub mod schema;
pub mod source;
pub mod store;
pub mod table;
pub mod transform;
pub mod value;

pub use error::DataError;
pub use gmm::Gmm1d;
pub use ingest::{ingest_csv, IngestConfig, IngestReport, RowErrorPolicy};
pub use schema::Schema;
pub use source::{ChunkSource, TableChunks};
pub use store::{ChunkStore, DataFault, DataFaultPlan};
pub use table::{Column, Table, TableBuilder};
pub use transform::{
    one_hot_labels, AttributeCodec, CategoricalEncoding, MatrixCellParam, MatrixCodec,
    NumericalNormalization,
    OutputBlock, OutputBlockKind, RecordCodec, TransformConfig,
};
pub use value::{AttrType, Attribute, Value};
