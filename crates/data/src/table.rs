//! Column-oriented relational tables.
//!
//! Columnar storage is the natural layout here: every operation the
//! paper's pipeline performs — encoding, normalization, statistics,
//! marginals — is per-attribute, so each step touches one contiguous
//! column.

use crate::schema::Schema;
use crate::value::{AttrType, Value};
use daisy_tensor::Rng;

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Numerical column.
    Num(Vec<f64>),
    /// Categorical column: codes into a category-name list.
    Cat {
        /// Per-row category codes, each `< categories.len()`.
        codes: Vec<u32>,
        /// Category display names; the domain size is `categories.len()`.
        categories: Vec<String>,
    },
}

impl Column {
    /// A categorical column over a synthetic domain `c0..c{k-1}`.
    pub fn cat_with_domain(codes: Vec<u32>, k: usize) -> Column {
        assert!(k > 0, "categorical domain must be non-empty");
        debug_assert!(codes.iter().all(|&c| (c as usize) < k));
        Column::Cat {
            codes,
            categories: (0..k).map(|i| format!("c{i}")).collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Num(v) => v.len(),
            Column::Cat { codes, .. } => codes.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Num(v) => Value::Num(v[i]),
            Column::Cat { codes, .. } => Value::Cat(codes[i]),
        }
    }

    /// The attribute type this column stores.
    pub fn ty(&self) -> AttrType {
        match self {
            Column::Num(_) => AttrType::Numerical,
            Column::Cat { .. } => AttrType::Categorical,
        }
    }

    /// Numerical payload; panics on a categorical column.
    pub fn as_num(&self) -> &[f64] {
        match self {
            Column::Num(v) => v,
            Column::Cat { .. } => panic!("expected numerical column"),
        }
    }

    /// Categorical codes; panics on a numerical column.
    pub fn as_cat(&self) -> &[u32] {
        match self {
            Column::Cat { codes, .. } => codes,
            Column::Num(_) => panic!("expected categorical column"),
        }
    }

    /// Domain size of a categorical column.
    pub fn domain_size(&self) -> usize {
        match self {
            Column::Cat { categories, .. } => categories.len(),
            Column::Num(_) => panic!("numerical columns have no domain size"),
        }
    }

    /// Gathers the given rows into a new column.
    pub fn gather(&self, rows: &[usize]) -> Column {
        match self {
            Column::Num(v) => Column::Num(rows.iter().map(|&i| v[i]).collect()),
            Column::Cat { codes, categories } => Column::Cat {
                codes: rows.iter().map(|&i| codes[i]).collect(),
                categories: categories.clone(),
            },
        }
    }
}

/// A relational table `T = {t_1, …, t_n}` (paper §2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Assembles a table, validating column/schema agreement.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(
            schema.n_attrs(),
            columns.len(),
            "schema declares {} attributes but {} columns given",
            schema.n_attrs(),
            columns.len()
        );
        let n_rows = columns.first().map_or(0, Column::len);
        for (j, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), n_rows, "column {j} length mismatch");
            assert_eq!(
                col.ty(),
                schema.attr(j).ty,
                "column {j} type does not match schema"
            );
        }
        Table {
            schema,
            columns,
            n_rows,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// The `j`-th column.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Record `i` as a value vector.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Label codes (requires a designated categorical label column).
    pub fn labels(&self) -> &[u32] {
        let j = self
            .schema
            .label()
            .expect("table has no designated label column");
        self.columns[j].as_cat()
    }

    /// Domain size of the label column.
    pub fn n_classes(&self) -> usize {
        let j = self
            .schema
            .label()
            .expect("table has no designated label column");
        self.columns[j].domain_size()
    }

    /// A new table with only the given rows (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
            n_rows: rows.len(),
        }
    }

    /// Shuffles and splits into train/validation/test with the paper's
    /// 4:1:1 ratio (§6.2).
    pub fn split_train_valid_test(&self, rng: &mut Rng) -> (Table, Table, Table) {
        let mut idx: Vec<usize> = (0..self.n_rows).collect();
        rng.shuffle(&mut idx);
        let n_train = self.n_rows * 4 / 6;
        let n_valid = self.n_rows / 6;
        let train = self.select_rows(&idx[..n_train]);
        let valid = self.select_rows(&idx[n_train..n_train + n_valid]);
        let test = self.select_rows(&idx[n_train + n_valid..]);
        (train, valid, test)
    }

    /// A new table without column `j`. Any label designation is
    /// dropped (indices shift).
    pub fn drop_column(&self, j: usize) -> Table {
        assert!(j < self.n_attrs(), "column index out of bounds");
        assert!(self.n_attrs() > 1, "cannot drop the only column");
        let attrs: Vec<crate::value::Attribute> = self
            .schema
            .attrs()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != j)
            .map(|(_, a)| a.clone())
            .collect();
        let columns: Vec<Column> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != j)
            .map(|(_, c)| c.clone())
            .collect();
        Table::new(Schema::new(attrs), columns)
    }

    /// A new table with `column` inserted at position `j` under the
    /// given schema (which must already account for the insertion).
    pub fn insert_column(&self, j: usize, column: Column, schema: Schema) -> Table {
        assert!(j <= self.n_attrs(), "insert position out of bounds");
        assert_eq!(column.len(), self.n_rows, "inserted column length mismatch");
        let mut columns = self.columns.clone();
        columns.insert(j, column);
        Table::new(schema, columns)
    }

    /// Row indices grouped by label code.
    pub fn rows_by_label(&self) -> Vec<Vec<usize>> {
        let labels = self.labels();
        let mut groups = vec![Vec::new(); self.n_classes()];
        for (i, &y) in labels.iter().enumerate() {
            groups[y as usize].push(i);
        }
        groups
    }

    /// Label skewness: ratio between the most and least populous label
    /// counts (the paper calls a dataset skew when this exceeds 9).
    pub fn label_skewness(&self) -> f64 {
        let groups = self.rows_by_label();
        let max = groups.iter().map(Vec::len).max().unwrap_or(0);
        let min = groups.iter().map(Vec::len).filter(|&n| n > 0).min().unwrap_or(1);
        max as f64 / min as f64
    }
}

/// Row-wise table construction.
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Starts a builder. Categorical domains must be declared up front
    /// via `domains` (domain size per attribute; numerical attributes
    /// use 0).
    pub fn new(schema: Schema, domains: &[usize]) -> Self {
        assert_eq!(schema.n_attrs(), domains.len(), "domain arity mismatch");
        let columns = schema
            .attrs()
            .iter()
            .zip(domains)
            .map(|(a, &k)| match a.ty {
                AttrType::Numerical => Column::Num(Vec::new()),
                AttrType::Categorical => Column::cat_with_domain(Vec::new(), k),
            })
            .collect();
        TableBuilder { schema, columns }
    }

    /// Appends one record.
    pub fn push(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(row) {
            match (col, v) {
                (Column::Num(data), Value::Num(x)) => data.push(*x),
                (Column::Cat { codes, categories }, Value::Cat(c)) => {
                    assert!(
                        (*c as usize) < categories.len(),
                        "category code {c} out of domain"
                    );
                    codes.push(*c);
                }
                _ => panic!("row value type does not match column"),
            }
        }
    }

    /// Finishes the table.
    pub fn build(self) -> Table {
        Table::new(self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Attribute;

    fn demo_table() -> Table {
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("workclass"),
                Attribute::categorical("income"),
            ],
            2,
        );
        Table::new(
            schema,
            vec![
                Column::Num(vec![38.0, 51.0, 27.0, 43.0, 35.0, 61.0]),
                Column::cat_with_domain(vec![0, 1, 2, 1, 0, 2], 3),
                Column::cat_with_domain(vec![0, 0, 0, 0, 1, 1], 2),
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let t = demo_table();
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.n_attrs(), 3);
        assert_eq!(t.row(1), vec![Value::Num(51.0), Value::Cat(1), Value::Cat(0)]);
        assert_eq!(t.labels(), &[0, 0, 0, 0, 1, 1]);
        assert_eq!(t.n_classes(), 2);
    }

    #[test]
    fn select_rows_reorders() {
        let t = demo_table();
        let s = t.select_rows(&[5, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0)[0], Value::Num(61.0));
        assert_eq!(s.row(1)[0], Value::Num(38.0));
    }

    #[test]
    fn split_ratios_and_disjointness() {
        let schema = Schema::new(vec![Attribute::numerical("x")]);
        let t = Table::new(
            schema,
            vec![Column::Num((0..600).map(|i| i as f64).collect())],
        );
        let mut rng = Rng::seed_from_u64(0);
        let (train, valid, test) = t.split_train_valid_test(&mut rng);
        assert_eq!(train.n_rows(), 400);
        assert_eq!(valid.n_rows(), 100);
        assert_eq!(test.n_rows(), 100);
        let mut all: Vec<i64> = Vec::new();
        for part in [&train, &valid, &test] {
            all.extend(part.column(0).as_num().iter().map(|&v| v as i64));
        }
        all.sort_unstable();
        assert_eq!(all, (0..600).collect::<Vec<i64>>());
    }

    #[test]
    fn rows_by_label_groups() {
        let t = demo_table();
        let groups = t.rows_by_label();
        assert_eq!(groups[0], vec![0, 1, 2, 3]);
        assert_eq!(groups[1], vec![4, 5]);
        assert_eq!(t.label_skewness(), 2.0);
    }

    #[test]
    fn builder_roundtrip() {
        let schema = Schema::new(vec![
            Attribute::numerical("x"),
            Attribute::categorical("c"),
        ]);
        let mut b = TableBuilder::new(schema, &[0, 4]);
        b.push(&[Value::Num(1.5), Value::Cat(3)]);
        b.push(&[Value::Num(-2.0), Value::Cat(0)]);
        let t = b.build();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column(1).domain_size(), 4);
        assert_eq!(t.row(0), vec![Value::Num(1.5), Value::Cat(3)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_columns_rejected() {
        let schema = Schema::new(vec![
            Attribute::numerical("x"),
            Attribute::numerical("y"),
        ]);
        Table::new(
            schema,
            vec![Column::Num(vec![1.0]), Column::Num(vec![1.0, 2.0])],
        );
    }
}
