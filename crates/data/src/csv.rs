//! Minimal CSV import/export for tables.
//!
//! Intended for moving synthetic tables in and out of the library (the
//! datasets themselves are generated in-process). Quoting is not
//! supported; category names containing commas are rejected on write.
//! All malformed-input conditions surface as typed [`DataError`]s so
//! callers (notably the CLI) can report them instead of panicking.

use crate::error::DataError;
use crate::schema::Schema;
use crate::table::{Column, Table};
use crate::value::Attribute;
use std::io::{BufRead, Write};

/// Serializes a table as CSV with a header row.
///
/// Fails with [`DataError::UnwritableCategory`] if a category name
/// contains a comma (the writer does not quote).
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> Result<(), DataError> {
    let names: Vec<&str> = table
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    writeln!(out, "{}", names.join(","))?;
    for i in 0..table.n_rows() {
        let mut cells = Vec::with_capacity(table.n_attrs());
        for j in 0..table.n_attrs() {
            match table.column(j) {
                Column::Num(v) => cells.push(format!("{}", v[i])),
                Column::Cat { codes, categories } => {
                    let name = &categories[codes[i] as usize];
                    if name.contains(',') {
                        return Err(DataError::UnwritableCategory { name: name.clone() });
                    }
                    cells.push(name.clone());
                }
            }
        }
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Parses CSV produced by [`write_csv`] (or any unquoted CSV with a
/// header). Column types are inferred: a column is numerical when every
/// cell parses as `f64`, categorical otherwise. `label` optionally
/// names the label column; naming a column that is not in the header is
/// a [`DataError::UnknownLabel`].
pub fn read_csv<R: BufRead>(input: R, label: Option<&str>) -> Result<Table, DataError> {
    let mut lines = input.lines();
    let header = lines.next().ok_or(DataError::EmptyCsv)??;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let n = names.len();
    for (j, name) in names.iter().enumerate() {
        if name.is_empty() {
            return Err(DataError::BlankColumnName { column: j });
        }
        if names[..j].contains(name) {
            return Err(DataError::DuplicateColumn { name: name.clone() });
        }
    }
    if let Some(l) = label {
        if !names.iter().any(|name| name == l) {
            return Err(DataError::UnknownLabel { name: l.to_string() });
        }
    }

    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n];
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Vec<&str> = line.split(',').collect();
        if row.len() != n {
            return Err(DataError::RaggedRow {
                line: i + 2, // one-based; the header is line 1
                got: row.len(),
                expected: n,
            });
        }
        for (c, v) in cells.iter_mut().zip(row) {
            c.push(v.trim().to_string());
        }
    }

    let mut attrs = Vec::with_capacity(n);
    let mut columns = Vec::with_capacity(n);
    for (name, col) in names.iter().zip(&cells) {
        // Parse each cell at most once: the column is numerical only if
        // every cell parses, in which case `parsed` holds all values.
        let mut parsed = Vec::with_capacity(col.len());
        for v in col {
            match v.parse::<f64>() {
                Ok(x) => parsed.push(x),
                Err(_) => break,
            }
        }
        let all_numeric = !col.is_empty() && parsed.len() == col.len();
        let force_categorical = label == Some(name.as_str());
        if all_numeric && !force_categorical {
            attrs.push(Attribute::numerical(name.clone()));
            columns.push(Column::Num(parsed));
        } else {
            attrs.push(Attribute::categorical(name.clone()));
            let mut categories: Vec<String> = Vec::new();
            let mut codes = Vec::with_capacity(col.len());
            for v in col {
                let code = match categories.iter().position(|c| c == v) {
                    Some(p) => p,
                    None => {
                        categories.push(v.clone());
                        categories.len() - 1
                    }
                };
                codes.push(code as u32);
            }
            columns.push(Column::Cat { codes, categories });
        }
    }
    let schema = match label.and_then(|l| names.iter().position(|n| n == l)) {
        Some(idx) => Schema::with_label(attrs, idx),
        None => Schema::new(attrs),
    };
    Ok(Table::new(schema, columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{AttrType, Value};

    fn demo() -> Table {
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("income"),
            ],
            1,
        );
        Table::new(
            schema,
            vec![
                Column::Num(vec![38.0, 51.5]),
                Column::Cat {
                    codes: vec![0, 1],
                    categories: vec!["<=50K".into(), ">50K".into()],
                },
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let t = demo();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&buf[..], Some("income")).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.schema().label(), Some(1));
        assert_eq!(back.row(1), vec![Value::Num(51.5), Value::Cat(1)]);
    }

    #[test]
    fn header_only_is_empty_table() {
        let t = read_csv("a,b\n".as_bytes(), None).unwrap();
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn numeric_label_forced_categorical() {
        let csv = "x,y\n1.0,0\n2.0,1\n3.0,0\n";
        let t = read_csv(csv.as_bytes(), Some("y")).unwrap();
        assert_eq!(t.schema().attr(1).ty, AttrType::Categorical);
        assert_eq!(t.labels(), &[0, 1, 0]);
    }

    #[test]
    fn ragged_row_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let Err(e) = read_csv(csv.as_bytes(), None) else {
            panic!("ragged row must be rejected");
        };
        assert!(matches!(
            e,
            DataError::RaggedRow {
                line: 3,
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn empty_input_rejected() {
        let Err(e) = read_csv("".as_bytes(), None) else {
            panic!("empty input must be rejected");
        };
        assert!(matches!(e, DataError::EmptyCsv));
    }

    #[test]
    fn blank_and_duplicate_headers_rejected() {
        let Err(e) = read_csv("a,,c\n1,2,3\n".as_bytes(), None) else {
            panic!("blank header must be rejected");
        };
        assert!(matches!(e, DataError::BlankColumnName { column: 1 }));

        let Err(e) = read_csv("a,b,a\n1,2,3\n".as_bytes(), None) else {
            panic!("duplicate header must be rejected");
        };
        assert!(matches!(e, DataError::DuplicateColumn { name } if name == "a"));
    }

    #[test]
    fn missing_label_column_rejected() {
        let Err(e) = read_csv("a,b\n1,2\n".as_bytes(), Some("income")) else {
            panic!("unknown label must be rejected");
        };
        assert!(matches!(e, DataError::UnknownLabel { name } if name == "income"));
    }

    #[test]
    fn comma_category_rejected_on_write() {
        let schema = Schema::new(vec![Attribute::categorical("c")]);
        let t = Table::new(
            schema,
            vec![Column::Cat {
                codes: vec![0],
                categories: vec!["a,b".into()],
            }],
        );
        let Err(e) = write_csv(&t, Vec::new()) else {
            panic!("comma category must be rejected");
        };
        assert!(matches!(e, DataError::UnwritableCategory { name } if name == "a,b"));
    }
}
