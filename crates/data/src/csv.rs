//! Minimal CSV import/export for tables.
//!
//! Intended for moving synthetic tables in and out of the library (the
//! datasets themselves are generated in-process). A minimal RFC-4180
//! subset is supported: fields containing commas or double quotes are
//! quoted on write (with `"` escaped as `""`) and unquoted on read, so
//! category names like `"Craft-repair, other"` round-trip. Embedded
//! line breaks are *not* supported — the reader is line-oriented — and
//! are rejected on write. All malformed-input conditions surface as
//! typed [`DataError`]s so callers (notably the CLI) can report them
//! instead of panicking.

use crate::error::DataError;
use crate::schema::Schema;
use crate::table::{Column, Table};
use crate::value::Attribute;
use std::io::{BufRead, Write};

/// Escapes one cell for CSV output. Returns `None` if the cell cannot
/// be written at all (embedded line break); otherwise the cell, quoted
/// if it contains a comma or a double quote.
pub(crate) fn escape_cell(cell: &str) -> Option<String> {
    if cell.contains('\n') || cell.contains('\r') {
        return None;
    }
    if cell.contains(',') || cell.contains('"') {
        Some(format!("\"{}\"", cell.replace('"', "\"\"")))
    } else {
        Some(cell.to_string())
    }
}

/// Splits one CSV line into cells, honoring double-quoted fields with
/// `""` escapes. Unquoted cells are trimmed; quoted cells are preserved
/// verbatim. `line_no` is the one-based input line number used in
/// errors.
pub(crate) fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>, DataError> {
    let mut cells = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut was_quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                // An opening quote only starts a quoted field at the
                // beginning of the cell (ignoring leading whitespace);
                // a quote in the middle of a bare cell is literal.
                '"' if !was_quoted && field.trim().is_empty() => {
                    in_quotes = true;
                    was_quoted = true;
                    field.clear();
                }
                ',' => {
                    let cell = if was_quoted {
                        std::mem::take(&mut field)
                    } else {
                        field.trim().to_string()
                    };
                    cells.push(cell);
                    field.clear();
                    was_quoted = false;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::UnterminatedQuote { line: line_no });
    }
    let cell = if was_quoted {
        field
    } else {
        field.trim().to_string()
    };
    cells.push(cell);
    Ok(cells)
}

/// Serializes a table as CSV with a header row.
///
/// Fields containing commas or quotes are quoted per RFC-4180. Fails
/// with [`DataError::UnwritableCategory`] if a category name contains a
/// line break (the line-oriented reader could not round-trip it).
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> Result<(), DataError> {
    let mut names = Vec::with_capacity(table.n_attrs());
    for a in table.schema().attrs() {
        let cell = escape_cell(&a.name).ok_or_else(|| DataError::UnwritableCategory {
            name: a.name.clone(),
        })?;
        names.push(cell);
    }
    writeln!(out, "{}", names.join(","))?;
    for i in 0..table.n_rows() {
        let mut cells = Vec::with_capacity(table.n_attrs());
        for j in 0..table.n_attrs() {
            match table.column(j) {
                Column::Num(v) => cells.push(format!("{}", v[i])),
                Column::Cat { codes, categories } => {
                    let name = &categories[codes[i] as usize];
                    let cell = escape_cell(name)
                        .ok_or_else(|| DataError::UnwritableCategory { name: name.clone() })?;
                    cells.push(cell);
                }
            }
        }
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Parses CSV produced by [`write_csv`] (or any CSV with a header and
/// at most RFC-4180 quoting, no embedded newlines). Column types are
/// inferred: a column is numerical when every cell parses as a *finite*
/// `f64`, categorical otherwise — except that a fully-parseable column
/// containing NaN or an infinity is a [`DataError::NonFiniteNumber`]
/// rather than a silently poisoned numeric column. `label` optionally
/// names the label column; naming a column that is not in the header is
/// a [`DataError::UnknownLabel`].
pub fn read_csv<R: BufRead>(input: R, label: Option<&str>) -> Result<Table, DataError> {
    let mut lines = input.lines();
    let header = lines.next().ok_or(DataError::EmptyCsv)??;
    let names = parse_record(&header, 1)?;
    let n = names.len();
    for (j, name) in names.iter().enumerate() {
        if name.is_empty() {
            return Err(DataError::BlankColumnName { column: j });
        }
        if names[..j].contains(name) {
            return Err(DataError::DuplicateColumn { name: name.clone() });
        }
    }
    if let Some(l) = label {
        if !names.iter().any(|name| name == l) {
            return Err(DataError::UnknownLabel { name: l.to_string() });
        }
    }

    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut line_nos: Vec<usize> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 2; // one-based; the header is line 1
        let row = parse_record(&line, line_no)?;
        if row.len() != n {
            return Err(DataError::RaggedRow {
                line: line_no,
                got: row.len(),
                expected: n,
            });
        }
        line_nos.push(line_no);
        for (c, v) in cells.iter_mut().zip(row) {
            c.push(v);
        }
    }

    let mut attrs = Vec::with_capacity(n);
    let mut columns = Vec::with_capacity(n);
    for (name, col) in names.iter().zip(&cells) {
        // Parse each cell at most once: the column is numerical only if
        // every cell parses, in which case `parsed` holds all values.
        let mut parsed = Vec::with_capacity(col.len());
        for v in col {
            match v.parse::<f64>() {
                Ok(x) => parsed.push(x),
                Err(_) => break,
            }
        }
        let all_numeric = !col.is_empty() && parsed.len() == col.len();
        let force_categorical = label == Some(name.as_str());
        if all_numeric && !force_categorical {
            if let Some(bad) = parsed.iter().position(|x| !x.is_finite()) {
                return Err(DataError::NonFiniteNumber {
                    line: line_nos[bad],
                    column: name.clone(),
                    value: col[bad].clone(),
                });
            }
            attrs.push(Attribute::numerical(name.clone()));
            columns.push(Column::Num(parsed));
        } else {
            attrs.push(Attribute::categorical(name.clone()));
            let mut categories: Vec<String> = Vec::new();
            let mut codes = Vec::with_capacity(col.len());
            for v in col {
                let code = match categories.iter().position(|c| c == v) {
                    Some(p) => p,
                    None => {
                        categories.push(v.clone());
                        categories.len() - 1
                    }
                };
                codes.push(code as u32);
            }
            columns.push(Column::Cat { codes, categories });
        }
    }
    let schema = match label.and_then(|l| names.iter().position(|n| n == l)) {
        Some(idx) => Schema::with_label(attrs, idx),
        None => Schema::new(attrs),
    };
    Ok(Table::new(schema, columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{AttrType, Value};

    fn demo() -> Table {
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("income"),
            ],
            1,
        );
        Table::new(
            schema,
            vec![
                Column::Num(vec![38.0, 51.5]),
                Column::Cat {
                    codes: vec![0, 1],
                    categories: vec!["<=50K".into(), ">50K".into()],
                },
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let t = demo();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&buf[..], Some("income")).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.schema().label(), Some(1));
        assert_eq!(back.row(1), vec![Value::Num(51.5), Value::Cat(1)]);
    }

    #[test]
    fn header_only_is_empty_table() {
        let t = read_csv("a,b\n".as_bytes(), None).unwrap();
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn numeric_label_forced_categorical() {
        let csv = "x,y\n1.0,0\n2.0,1\n3.0,0\n";
        let t = read_csv(csv.as_bytes(), Some("y")).unwrap();
        assert_eq!(t.schema().attr(1).ty, AttrType::Categorical);
        assert_eq!(t.labels(), &[0, 1, 0]);
    }

    #[test]
    fn ragged_row_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let Err(e) = read_csv(csv.as_bytes(), None) else {
            panic!("ragged row must be rejected");
        };
        assert!(matches!(
            e,
            DataError::RaggedRow {
                line: 3,
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn empty_input_rejected() {
        let Err(e) = read_csv("".as_bytes(), None) else {
            panic!("empty input must be rejected");
        };
        assert!(matches!(e, DataError::EmptyCsv));
    }

    #[test]
    fn blank_and_duplicate_headers_rejected() {
        let Err(e) = read_csv("a,,c\n1,2,3\n".as_bytes(), None) else {
            panic!("blank header must be rejected");
        };
        assert!(matches!(e, DataError::BlankColumnName { column: 1 }));

        let Err(e) = read_csv("a,b,a\n1,2,3\n".as_bytes(), None) else {
            panic!("duplicate header must be rejected");
        };
        assert!(matches!(e, DataError::DuplicateColumn { name } if name == "a"));
    }

    #[test]
    fn missing_label_column_rejected() {
        let Err(e) = read_csv("a,b\n1,2\n".as_bytes(), Some("income")) else {
            panic!("unknown label must be rejected");
        };
        assert!(matches!(e, DataError::UnknownLabel { name } if name == "income"));
    }

    #[test]
    fn comma_category_roundtrips_quoted() {
        let schema = Schema::new(vec![Attribute::categorical("c")]);
        let t = Table::new(
            schema,
            vec![Column::Cat {
                codes: vec![0, 1],
                categories: vec!["Craft-repair, other".into(), "say \"hi\"".into()],
            }],
        );
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("\"Craft-repair, other\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
        let back = read_csv(&buf[..], None).unwrap();
        let Column::Cat { categories, .. } = back.column(0) else {
            panic!("expected categorical column");
        };
        assert_eq!(
            categories,
            &["Craft-repair, other".to_string(), "say \"hi\"".to_string()]
        );
    }

    #[test]
    fn quoted_header_roundtrips() {
        let csv = "\"a,b\",c\n1,2\n";
        let t = read_csv(csv.as_bytes(), None).unwrap();
        assert_eq!(t.schema().attr(0).name, "a,b");
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&buf[..], None).unwrap();
        assert_eq!(back.schema().attr(0).name, "a,b");
    }

    #[test]
    fn newline_category_rejected_on_write() {
        let schema = Schema::new(vec![Attribute::categorical("c")]);
        let t = Table::new(
            schema,
            vec![Column::Cat {
                codes: vec![0],
                categories: vec!["a\nb".into()],
            }],
        );
        let Err(e) = write_csv(&t, Vec::new()) else {
            panic!("newline category must be rejected");
        };
        assert!(matches!(e, DataError::UnwritableCategory { name } if name == "a\nb"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "a,b\n\"oops,2\n";
        let Err(e) = read_csv(csv.as_bytes(), None) else {
            panic!("unterminated quote must be rejected");
        };
        assert!(matches!(e, DataError::UnterminatedQuote { line: 2 }));
    }

    #[test]
    fn non_finite_numeric_cell_rejected() {
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            let csv = format!("x\n1.0\n{bad}\n3.0\n");
            let Err(e) = read_csv(csv.as_bytes(), None) else {
                panic!("non-finite cell {bad} must be rejected");
            };
            assert!(
                matches!(e, DataError::NonFiniteNumber { line: 3, ref column, .. } if column == "x"),
                "unexpected error for {bad}: {e}"
            );
        }
        // A categorical column may legitimately contain the *string*
        // "NaN" among non-numeric values; that stays a category.
        let t = read_csv("x\napple\nNaN\n".as_bytes(), None).unwrap();
        assert_eq!(t.schema().attr(0).ty, AttrType::Categorical);
    }
}
