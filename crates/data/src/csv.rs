//! Minimal CSV import/export for tables.
//!
//! Intended for moving synthetic tables in and out of the library (the
//! datasets themselves are generated in-process). Quoting is not
//! supported; category names containing commas are rejected on write.

use crate::schema::Schema;
use crate::table::{Column, Table};
use crate::value::Attribute;
use std::io::{self, BufRead, Write};

/// Serializes a table as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> io::Result<()> {
    let names: Vec<&str> = table
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    writeln!(out, "{}", names.join(","))?;
    for i in 0..table.n_rows() {
        let mut cells = Vec::with_capacity(table.n_attrs());
        for j in 0..table.n_attrs() {
            match table.column(j) {
                Column::Num(v) => cells.push(format!("{}", v[i])),
                Column::Cat { codes, categories } => {
                    let name = &categories[codes[i] as usize];
                    assert!(
                        !name.contains(','),
                        "category name {name:?} contains a comma"
                    );
                    cells.push(name.clone());
                }
            }
        }
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Parses CSV produced by [`write_csv`] (or any unquoted CSV with a
/// header). Column types are inferred: a column is numerical when every
/// cell parses as `f64`, categorical otherwise. `label` optionally
/// names the label column.
pub fn read_csv<R: BufRead>(input: R, label: Option<&str>) -> io::Result<Table> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let names: Vec<String> = header.split(',').map(str::to_string).collect();
    let n = names.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n];
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Vec<&str> = line.split(',').collect();
        if row.len() != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("row has {} cells, expected {n}", row.len()),
            ));
        }
        for (c, v) in cells.iter_mut().zip(row) {
            c.push(v.trim().to_string());
        }
    }

    let mut attrs = Vec::with_capacity(n);
    let mut columns = Vec::with_capacity(n);
    for (name, col) in names.iter().zip(&cells) {
        let all_numeric = !col.is_empty() && col.iter().all(|v| v.parse::<f64>().is_ok());
        let force_categorical = label == Some(name.as_str());
        if all_numeric && !force_categorical {
            attrs.push(Attribute::numerical(name.clone()));
            columns.push(Column::Num(
                col.iter().map(|v| v.parse::<f64>().unwrap()).collect(),
            ));
        } else {
            attrs.push(Attribute::categorical(name.clone()));
            let mut categories: Vec<String> = Vec::new();
            let mut codes = Vec::with_capacity(col.len());
            for v in col {
                let code = match categories.iter().position(|c| c == v) {
                    Some(p) => p,
                    None => {
                        categories.push(v.clone());
                        categories.len() - 1
                    }
                };
                codes.push(code as u32);
            }
            columns.push(Column::Cat { codes, categories });
        }
    }
    let schema = match label.and_then(|l| names.iter().position(|n| n == l)) {
        Some(idx) => Schema::with_label(attrs, idx),
        None => Schema::new(attrs),
    };
    Ok(Table::new(schema, columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{AttrType, Value};

    fn demo() -> Table {
        let schema = Schema::with_label(
            vec![
                Attribute::numerical("age"),
                Attribute::categorical("income"),
            ],
            1,
        );
        Table::new(
            schema,
            vec![
                Column::Num(vec![38.0, 51.5]),
                Column::Cat {
                    codes: vec![0, 1],
                    categories: vec!["<=50K".into(), ">50K".into()],
                },
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let t = demo();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&buf[..], Some("income")).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.schema().label(), Some(1));
        assert_eq!(back.row(1), vec![Value::Num(51.5), Value::Cat(1)]);
    }

    #[test]
    fn header_only_is_empty_table() {
        let t = read_csv("a,b\n".as_bytes(), None).unwrap();
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn numeric_label_forced_categorical() {
        let csv = "x,y\n1.0,0\n2.0,1\n3.0,0\n";
        let t = read_csv(csv.as_bytes(), Some("y")).unwrap();
        assert_eq!(t.schema().attr(1).ty, AttrType::Categorical);
        assert_eq!(t.labels(), &[0, 1, 0]);
    }

    #[test]
    fn ragged_row_rejected() {
        let csv = "a,b\n1,2\n3\n";
        assert!(read_csv(csv.as_bytes(), None).is_err());
    }
}
