//! Scalar values and attribute metadata.

use std::fmt;

/// The two attribute kinds the paper considers (§2.1): categorical
/// (nominal) and numerical (discrete or continuous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Nominal attribute with a finite category domain.
    Categorical,
    /// Real-valued attribute.
    Numerical,
}

/// Declaration of one column: a name plus its kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Column name.
    pub name: String,
    /// Column kind.
    pub ty: AttrType,
}

impl Attribute {
    /// A categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            ty: AttrType::Categorical,
        }
    }

    /// A numerical attribute.
    pub fn numerical(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            ty: AttrType::Numerical,
        }
    }
}

/// One cell of a record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Numerical cell.
    Num(f64),
    /// Categorical cell, as a code into the column's category list.
    Cat(u32),
}

impl Value {
    /// The numerical payload; panics on a categorical value.
    pub fn as_num(&self) -> f64 {
        match self {
            Value::Num(v) => *v,
            Value::Cat(_) => panic!("expected numerical value"),
        }
    }

    /// The categorical code; panics on a numerical value.
    pub fn as_cat(&self) -> u32 {
        match self {
            Value::Cat(c) => *c,
            Value::Num(_) => panic!("expected categorical value"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(v) => write!(f, "{v}"),
            Value::Cat(c) => write!(f, "#{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Num(2.5).as_num(), 2.5);
        assert_eq!(Value::Cat(3).as_cat(), 3);
    }

    #[test]
    #[should_panic(expected = "expected numerical")]
    fn wrong_accessor_panics() {
        Value::Cat(1).as_num();
    }

    #[test]
    fn attribute_constructors() {
        let a = Attribute::categorical("workclass");
        assert_eq!(a.ty, AttrType::Categorical);
        let b = Attribute::numerical("age");
        assert_eq!(b.ty, AttrType::Numerical);
        assert_eq!(b.name, "age");
    }
}
