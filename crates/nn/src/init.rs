//! Weight initialization schemes.

use daisy_tensor::{Rng, Tensor};

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The default for fully-connected layers with tanh/sigmoid outputs.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, shape: &[usize], rng: &mut Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// Kaiming/He normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU stacks.
pub fn kaiming_normal(fan_in: usize, shape: &[usize], rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in as f64).sqrt() as f32;
    Tensor::randn(shape, rng).mul_scalar(std)
}

/// DCGAN-style `N(0, 0.02)` initialization used for convolutional
/// generators/discriminators (Radford et al., as adopted by tableGAN).
pub fn dcgan_normal(shape: &[usize], rng: &mut Rng) -> Tensor {
    Tensor::randn(shape, rng).mul_scalar(0.02)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::seed_from_u64(0);
        let t = xavier_uniform(100, 100, &[100, 100], &mut rng);
        let a = (6.0f64 / 200.0).sqrt() as f32;
        assert!(t.max() <= a && t.min() >= -a);
        assert!(t.data().iter().any(|&x| x.abs() > a * 0.5));
    }

    #[test]
    fn kaiming_std() {
        let mut rng = Rng::seed_from_u64(1);
        let t = kaiming_normal(128, &[128, 128], &mut rng);
        let mean = t.mean();
        let var = t.sqr().mean() - mean * mean;
        let expected = 2.0 / 128.0;
        assert!((var - expected).abs() < expected * 0.1);
    }

    #[test]
    fn dcgan_std() {
        let mut rng = Rng::seed_from_u64(2);
        let t = dcgan_normal(&[64, 64], &mut rng);
        let var = t.sqr().mean();
        assert!((var.sqrt() - 0.02).abs() < 0.002);
    }
}
