//! The [`Module`] abstraction shared by all layers and networks.

use daisy_tensor::{Param, RngState, Tensor, Var};

/// A differentiable transformation with trainable parameters.
///
/// `forward` builds a fresh computation graph each call; gradients land
/// in the [`Param`]s returned by `params`.
pub trait Module {
    /// Applies the module to a batch.
    fn forward(&self, input: &Var) -> Var;

    /// All trainable parameters, in a stable order.
    fn params(&self) -> Vec<Param>;

    /// Switches layers with train/eval behaviour (batch norm) between
    /// modes. Default: no-op.
    fn set_training(&self, _training: bool) {}

    /// Appends the state of any internal RNG streams (dropout mask
    /// generators) to `out`, in a stable order. Layers without internal
    /// randomness append nothing. Checkpointing captures these so a
    /// resumed run draws the identical mask sequence.
    fn collect_rng_states(&self, _out: &mut Vec<RngState>) {}

    /// Restores RNG streams captured by [`Module::collect_rng_states`],
    /// consuming from the front of `states` in the same stable order.
    fn restore_rng_states(&self, _states: &mut std::slice::Iter<'_, RngState>) {}
}

/// Zeroes the gradient of every parameter.
pub fn zero_grads(params: &[Param]) {
    for p in params {
        p.zero_grad();
    }
}

/// Total number of scalar weights.
pub fn num_params(params: &[Param]) -> usize {
    params.iter().map(Param::numel).sum()
}

/// Resident bytes of the parameter values (`f32` scalars). The serving
/// plane decodes one model replica per connection — this is the number
/// its per-replica memory accounting multiplies by, and what
/// `serve_start` reports so operators can size `DAISY_SERVE_MAX_CONN`.
pub fn params_bytes(params: &[Param]) -> usize {
    num_params(params) * std::mem::size_of::<f32>()
}


/// Snapshot of all parameter values (for epoch-based model selection).
pub fn snapshot(params: &[Param]) -> Vec<Tensor> {
    params.iter().map(Param::value).collect()
}

/// Restores a snapshot taken by [`snapshot`].
pub fn restore(params: &[Param], state: &[Tensor]) {
    assert_eq!(params.len(), state.len(), "snapshot arity mismatch");
    for (p, t) in params.iter().zip(state) {
        p.set_value(t.clone());
    }
}

/// True when any parameter value contains a NaN or infinity — the
/// weight-health check of the training resilience layer.
pub fn params_non_finite(params: &[Param]) -> bool {
    params.iter().any(|p| p.value().has_non_finite())
}

/// True when any accumulated gradient contains a NaN or infinity.
pub fn grads_non_finite(params: &[Param]) -> bool {
    params.iter().any(|p| p.grad().has_non_finite())
}

/// Global L2 norm of all gradients: `sqrt(sum_p ||grad_p||^2)`. The
/// same quantity [`crate::clip_grad_norm`] computes before scaling,
/// without the clip; used for telemetry gauges.
pub fn grad_norm(params: &[Param]) -> f32 {
    params
        .iter()
        .map(|p| p.grad().norm_sq())
        .sum::<f32>()
        .sqrt()
}

/// A chain of modules applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// An empty chain (identity).
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Sequential {
    fn forward(&self, input: &Var) -> Var {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn set_training(&self, training: bool) {
        for layer in &self.layers {
            layer.set_training(training);
        }
    }

    fn collect_rng_states(&self, out: &mut Vec<RngState>) {
        for layer in &self.layers {
            layer.collect_rng_states(out);
        }
    }

    fn restore_rng_states(&self, states: &mut std::slice::Iter<'_, RngState>) {
        for layer in &self.layers {
            layer.restore_rng_states(states);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::linear::Linear;
    use daisy_tensor::Rng;

    #[test]
    fn sequential_composes() {
        let mut rng = Rng::seed_from_u64(0);
        let net = Sequential::new()
            .push(Linear::new(4, 8, &mut rng))
            .push(Activation::Relu)
            .push(Linear::new(8, 2, &mut rng));
        let x = Var::constant(Tensor::randn(&[3, 4], &mut rng));
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(net.params().len(), 4); // two weight/bias pairs
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = Rng::seed_from_u64(1);
        let net = Linear::new(3, 3, &mut rng);
        let params = net.params();
        let saved = snapshot(&params);
        // Perturb.
        for p in &params {
            p.set_value(p.value().add_scalar(1.0));
        }
        let x = Var::constant(Tensor::ones(&[1, 3]));
        let perturbed = net.forward(&x).value().clone();
        restore(&params, &saved);
        let restored = net.forward(&x).value().clone();
        assert_ne!(perturbed, restored);
        // Restored output must equal the pre-perturbation output.
        let net2_out = net.forward(&x);
        assert_eq!(net2_out.value(), &restored);
    }

    #[test]
    fn zero_grads_clears() {
        let mut rng = Rng::seed_from_u64(2);
        let net = Linear::new(2, 2, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 2]));
        net.forward(&x).sum().backward();
        let params = net.params();
        assert!(params[0].grad().norm() > 0.0);
        zero_grads(&params);
        assert_eq!(params[0].grad().norm(), 0.0);
    }

    #[test]
    fn num_params_counts() {
        let mut rng = Rng::seed_from_u64(3);
        let net = Linear::new(4, 5, &mut rng);
        assert_eq!(num_params(&net.params()), 4 * 5 + 5);
    }
}
