//! Batch normalization (Ioffe & Szegedy), used by every generator in
//! the paper's design space (`BN` in Equations 5–7 of Appendix A.1).
//!
//! The batch statistics reduce over rows via `Tensor::mean_axis0`,
//! which is a *canonically blocked* parallel reduction (fixed 64-row
//! partials combined in order — see `daisy_tensor::pool`), so training
//! statistics are bit-identical for any thread count.

use crate::module::Module;
use daisy_tensor::{Param, Tensor, Var};
use std::cell::{Cell, RefCell};

/// Batch normalization over the feature axis of `[B, D]` inputs.
///
/// In training mode the layer normalizes with batch statistics and
/// maintains exponential running averages; in eval mode it uses the
/// running averages, so single-record generation behaves sensibly.
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: RefCell<Tensor>,
    running_var: RefCell<Tensor>,
    momentum: f32,
    eps: f32,
    training: Cell<bool>,
    features: usize,
}

impl BatchNorm1d {
    /// Creates a layer normalizing `features` columns.
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            gamma: Param::new(Tensor::ones(&[features])),
            beta: Param::new(Tensor::zeros(&[features])),
            running_mean: RefCell::new(Tensor::zeros(&[features])),
            running_var: RefCell::new(Tensor::ones(&[features])),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
            features,
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Current running mean (eval-mode statistics).
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.borrow().clone()
    }

    /// Current running variance.
    pub fn running_var(&self) -> Tensor {
        self.running_var.borrow().clone()
    }

    /// Overwrites the running statistics (model persistence / transfer).
    pub fn set_running_stats(&self, mean: Tensor, var: Tensor) {
        assert_eq!(mean.shape(), &[self.features], "running mean shape");
        assert_eq!(var.shape(), &[self.features], "running var shape");
        *self.running_mean.borrow_mut() = mean;
        *self.running_var.borrow_mut() = var;
    }
}

impl Module for BatchNorm1d {
    fn forward(&self, input: &Var) -> Var {
        assert_eq!(
            input.shape(),
            &[input.shape()[0], self.features],
            "BatchNorm1d expected [B, {}]",
            self.features
        );
        let (mean, var_stat) = if self.training.get() && input.shape()[0] > 1 {
            // Differentiable batch statistics.
            let mean = input.mean_axis0();
            let centered = input.sub_row(&mean);
            let var_stat = centered.sqr().mean_axis0();
            // Update running averages from detached values.
            let m = self.momentum;
            {
                let mut rm = self.running_mean.borrow_mut();
                *rm = rm.mul_scalar(1.0 - m).add(&mean.value().mul_scalar(m));
                let mut rv = self.running_var.borrow_mut();
                *rv = rv
                    .mul_scalar(1.0 - m)
                    .add(&var_stat.value().mul_scalar(m));
            }
            (mean, var_stat)
        } else {
            (
                Var::constant(self.running_mean.borrow().clone()),
                Var::constant(self.running_var.borrow().clone()),
            )
        };
        let std = var_stat.add_scalar(self.eps).sqrt();
        input
            .sub_row(&mean)
            .div_row(&std)
            .mul_row(&self.gamma.var())
            .add_row(&self.beta.var())
    }

    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

/// Batch normalization over the channel axis of `[B, C, H, W]` inputs.
///
/// Implemented by permuting channels to columns and delegating to
/// [`BatchNorm1d`]; per-channel statistics are then per-column
/// statistics.
pub struct BatchNorm2d {
    inner: BatchNorm1d,
}

impl BatchNorm2d {
    /// Creates a layer normalizing `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            inner: BatchNorm1d::new(channels),
        }
    }

    /// The underlying per-channel normalizer (running-stats access).
    pub fn inner(&self) -> &BatchNorm1d {
        &self.inner
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, input: &Var) -> Var {
        let s = input.shape().to_vec();
        assert_eq!(s.len(), 4, "BatchNorm2d expects [B, C, H, W]");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        self.inner
            .forward(&input.bchw_to_nc())
            .nc_to_bchw(b, c, h, w)
    }

    fn params(&self) -> Vec<Param> {
        self.inner.params()
    }

    fn set_training(&self, training: bool) {
        self.inner.set_training(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::Rng;

    #[test]
    fn normalizes_batch_statistics() {
        let mut rng = Rng::seed_from_u64(0);
        let bn = BatchNorm1d::new(3);
        let x = Tensor::randn(&[64, 3], &mut rng).mul_scalar(5.0).add_scalar(10.0);
        let y = bn.forward(&Var::constant(x));
        let mean = y.value().mean_axis0();
        let var = y.value().sub_row(&mean).sqr().mean_axis0();
        for j in 0..3 {
            assert!(mean.data()[j].abs() < 1e-4, "mean[{j}] = {}", mean.data()[j]);
            assert!((var.data()[j] - 1.0).abs() < 1e-3, "var[{j}] = {}", var.data()[j]);
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut rng = Rng::seed_from_u64(1);
        let bn = BatchNorm1d::new(2);
        // Feed several training batches with mean 4.
        for _ in 0..200 {
            let x = Tensor::randn(&[32, 2], &mut rng).add_scalar(4.0);
            let _ = bn.forward(&Var::constant(x));
        }
        assert!((bn.running_mean().mean() - 4.0).abs() < 0.3);
        bn.set_training(false);
        // In eval mode a constant input is shifted by roughly -4.
        let y = bn.forward(&Var::constant(Tensor::full(&[1, 2], 4.0)));
        assert!(y.value().data().iter().all(|v| v.abs() < 0.5));
    }

    #[test]
    fn gradient_flows_through_bn() {
        let mut rng = Rng::seed_from_u64(2);
        let bn = BatchNorm1d::new(4);
        let p = Param::new(Tensor::randn(&[8, 4], &mut rng));
        bn.forward(&p.var()).sqr().mean().backward();
        assert!(p.grad().norm() > 0.0);
        assert!(!p.grad().has_non_finite());
        // gamma and beta receive gradients too.
        assert!(bn.params()[0].grad().norm() > 0.0);
        assert!(bn.params()[1].grad().norm() >= 0.0);
    }

    #[test]
    fn bn2d_normalizes_per_channel() {
        let mut rng = Rng::seed_from_u64(3);
        let bn = BatchNorm2d::new(2);
        // Channel 0 centered at 10, channel 1 at -5.
        let mut x = Tensor::randn(&[8, 2, 3, 3], &mut rng);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            let c = (i / 9) % 2;
            *v += if c == 0 { 10.0 } else { -5.0 };
        }
        let y = bn.forward(&Var::constant(x));
        let nc = y.value().bchw_to_nc();
        let mean = nc.mean_axis0();
        for j in 0..2 {
            assert!(mean.data()[j].abs() < 1e-3);
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn set_running_stats_transfers_eval_behaviour() {
        let a = BatchNorm1d::new(2);
        // Drive a's running stats away from the defaults.
        for _ in 0..50 {
            let x = Tensor::full(&[8, 2], 3.0);
            let _ = a.forward(&Var::constant(x));
        }
        let b = BatchNorm1d::new(2);
        b.set_running_stats(a.running_mean(), a.running_var());
        a.set_training(false);
        b.set_training(false);
        let probe = Var::constant(Tensor::full(&[1, 2], 3.0));
        assert_eq!(a.forward(&probe).value(), b.forward(&probe).value());
    }

    #[test]
    #[should_panic(expected = "running mean shape")]
    fn set_running_stats_checks_shape() {
        let bn = BatchNorm1d::new(2);
        bn.set_running_stats(Tensor::zeros(&[3]), Tensor::ones(&[3]));
    }

    #[test]
    fn bn2d_inner_exposes_stats() {
        let bn = BatchNorm2d::new(3);
        assert_eq!(bn.inner().running_mean().shape(), &[3]);
    }
}
