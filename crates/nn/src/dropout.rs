//! Inverted dropout — optional regularization for discriminators
//! (keeps D from memorizing small real tables, a practical knob beyond
//! the paper's simplified-D remedy).

use crate::module::Module;
use daisy_tensor::{Param, Rng, RngState, Tensor, Var};
use std::cell::{Cell, RefCell};

/// Inverted dropout: in training mode each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so eval mode
/// is the identity. The mask RNG is owned by the layer (seeded at
/// construction), keeping the `Module::forward` signature pure.
pub struct Dropout {
    p: f32,
    training: Cell<bool>,
    rng: RefCell<Rng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout {
            p,
            training: Cell::new(true),
            rng: RefCell::new(Rng::seed_from_u64(seed)),
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&self, input: &Var) -> Var {
        if !self.training.get() || self.p == 0.0 {
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut rng = self.rng.borrow_mut();
        let mask_data: Vec<f32> = (0..input.value().numel())
            .map(|_| if rng.bool(keep as f64) { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask_data, input.shape());
        input.mul(&Var::constant(mask))
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    fn collect_rng_states(&self, out: &mut Vec<RngState>) {
        out.push(self.rng.borrow().state());
    }

    fn restore_rng_states(&self, states: &mut std::slice::Iter<'_, RngState>) {
        let state = states
            .next()
            .expect("rng-state arity mismatch: dropout layer has no saved state");
        *self.rng.borrow_mut() = Rng::from_state(*state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = d.forward(&Var::constant(x.clone()));
        assert_eq!(y.value(), &x);
    }

    #[test]
    fn training_mode_zeroes_and_rescales() {
        let d = Dropout::new(0.5, 1);
        let n = 10_000;
        let x = Tensor::ones(&[1, n]);
        let y = d.forward(&Var::constant(x));
        let zeros = y.value().data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "dropped fraction {frac}");
        // Survivors are scaled to preserve the expectation.
        let mean = y.value().mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        for &v in y.value().data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_flows_through_kept_units_only() {
        let d = Dropout::new(0.5, 2);
        let p = Param::new(Tensor::ones(&[1, 100]));
        let y = d.forward(&p.var());
        y.sum().backward();
        let g = p.grad();
        // Gradient is the mask itself: 0 or 1/keep.
        for (&gv, &yv) in g.data().iter().zip(y.value().data()) {
            assert_eq!(gv, yv);
        }
    }

    #[test]
    fn rng_state_roundtrip_replays_masks() {
        let d = Dropout::new(0.5, 9);
        let x = Var::constant(Tensor::ones(&[1, 64]));
        d.forward(&x); // advance the mask stream
        let mut states = Vec::new();
        d.collect_rng_states(&mut states);
        assert_eq!(states.len(), 1);
        let ahead = d.forward(&x).value().clone();
        d.restore_rng_states(&mut states.iter());
        let replay = d.forward(&x).value().clone();
        assert_eq!(ahead, replay, "restored mask stream diverged");
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 3);
        let x = Tensor::from_slice(&[4.0, 5.0]);
        assert_eq!(d.forward(&Var::constant(x.clone())).value(), &x);
    }
}
