//! Loss helpers beyond the primitives on `Var`.
//!
//! The interesting one is the KL-divergence warm-up term of VTrain
//! (paper Equation 2): the generator loss adds, per attribute, the KL
//! divergence between the real minibatch's attribute distribution and
//! the synthetic minibatch's attribute distribution, computed on the
//! (softmax) probability columns so it stays differentiable.

use daisy_tensor::{Tensor, Var};

/// KL divergence `KL(p ‖ q)` where `p` is a constant empirical
/// distribution and `q` is a differentiable `[K]` distribution var
/// (e.g. the batch mean of softmax outputs). Returns a `[1]` var.
///
/// Zero-probability real categories contribute nothing (0·ln 0 = 0);
/// `q` is floored at `eps` for stability.
pub fn kl_divergence(p_real: &Tensor, q_syn: &Var, eps: f32) -> Var {
    assert_eq!(
        p_real.shape(),
        q_syn.shape(),
        "kl_divergence operand shape mismatch"
    );
    // KL(p||q) = Σ p (ln p - ln q) = Σ p ln p - Σ p ln q.
    let entropy_term: f32 = p_real
        .data()
        .iter()
        .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
        .sum();
    let cross = q_syn.ln_eps(eps).mul(&Var::constant(p_real.clone())).sum();
    cross.neg().add_scalar(entropy_term)
}

/// Empirical distribution of a one-hot (or probability) column block:
/// the column means of `[B, K]`, renormalized to sum to one.
pub fn empirical_distribution(block: &Tensor) -> Tensor {
    let mut mean = block.mean_axis0();
    let total = mean.sum();
    if total > 0.0 {
        mean = mean.mul_scalar(1.0 / total);
    } else {
        // Degenerate batch: fall back to uniform.
        let k = mean.numel();
        mean = Tensor::full(&[k], 1.0 / k as f32);
    }
    mean
}

/// Differentiable batch distribution of a synthetic probability block:
/// column means renormalized via their (scalar) sum.
pub fn batch_distribution(block: &Var) -> Var {
    let mean = block.mean_axis0();
    let total = mean.value().sum().max(1e-8);
    mean.mul_scalar(1.0 / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = Tensor::from_slice(&[0.25, 0.25, 0.5]);
        let q = Var::constant(p.clone());
        let kl = kl_divergence(&p, &q, 1e-12);
        assert!(kl.value().data()[0].abs() < 1e-5);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = Tensor::from_slice(&[0.9, 0.1]);
        let q = Var::constant(Tensor::from_slice(&[0.5, 0.5]));
        let kl = kl_divergence(&p, &q, 1e-12).value().data()[0];
        let expected = 0.9 * (0.9f32 / 0.5).ln() + 0.1 * (0.1f32 / 0.5).ln();
        assert!((kl - expected).abs() < 1e-4, "kl = {kl}");
    }

    #[test]
    fn kl_handles_zero_real_mass() {
        let p = Tensor::from_slice(&[1.0, 0.0]);
        let q = Var::constant(Tensor::from_slice(&[0.5, 0.5]));
        let kl = kl_divergence(&p, &q, 1e-12).value().data()[0];
        assert!((kl - (2.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn kl_gradient_pulls_q_toward_p() {
        let p = Tensor::from_slice(&[0.8, 0.2]);
        let param = daisy_tensor::Param::new(Tensor::from_slice(&[0.5, 0.5]));
        kl_divergence(&p, &param.var(), 1e-12).backward();
        let g = param.grad();
        // d/dq_i of -Σ p ln q = -p_i / q_i: steeper for the
        // under-represented category, so gradient descent raises q_0
        // faster than q_1.
        assert!(g.data()[0] < g.data()[1]);
    }

    #[test]
    fn empirical_distribution_normalizes() {
        let block = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        let d = empirical_distribution(&block);
        assert!((d.data()[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((d.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn batch_distribution_is_differentiable() {
        let param = daisy_tensor::Param::new(Tensor::from_vec(
            vec![0.7, 0.3, 0.4, 0.6],
            &[2, 2],
        ));
        let d = batch_distribution(&param.var());
        assert!((d.value().sum() - 1.0).abs() < 1e-5);
        d.sqr().sum().backward();
        assert!(param.grad().norm() > 0.0);
    }
}
