//! LSTM cell (Hochreiter & Schmidhuber), used by the sequence-generation
//! networks of the paper (§5.1, Figure 12).
//!
//! The cell is not a [`crate::module::Module`] — its forward pass takes
//! `(input, hidden, cell)` and returns the new pair, so the generator
//! and discriminator drive it explicitly across timesteps. Gradients
//! flow through time automatically because the whole unrolled sequence
//! lives in one autodiff graph.
//!
//! The two gate matmuls per step (`x · W_ih` and `h · W_hh`, each
//! `[B, ·] x [·, 4H]`) are the cell's hot path; they run on
//! daisy-tensor's row-partitioned parallel matmul, as do their
//! transposed counterparts in the backward pass.

use crate::init::xavier_uniform;
use daisy_tensor::{Param, Rng, Tensor, Var};

/// A single LSTM cell with combined gate weights.
///
/// Gate layout along the `4H` axis: input `i`, forget `f`, candidate
/// `g`, output `o`.
pub struct LstmCell {
    w_ih: Param, // [I, 4H]
    w_hh: Param, // [H, 4H]
    bias: Param, // [4H]
    input_size: usize,
    hidden_size: usize,
}

/// The recurrent state `(h, c)` carried between timesteps.
#[derive(Clone)]
pub struct LstmState {
    /// Hidden state `[B, H]`.
    pub h: Var,
    /// Cell state `[B, H]`.
    pub c: Var,
}

impl LstmCell {
    /// Creates a cell; the forget-gate bias starts at 1 (standard trick
    /// to preserve long-range memory early in training).
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut Rng) -> Self {
        let mut bias = Tensor::zeros(&[4 * hidden_size]);
        for j in hidden_size..2 * hidden_size {
            bias.data_mut()[j] = 1.0;
        }
        LstmCell {
            w_ih: Param::new(xavier_uniform(
                input_size,
                4 * hidden_size,
                &[input_size, 4 * hidden_size],
                rng,
            )),
            w_hh: Param::new(xavier_uniform(
                hidden_size,
                4 * hidden_size,
                &[hidden_size, 4 * hidden_size],
                rng,
            )),
            bias: Param::new(bias),
            input_size,
            hidden_size,
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Zero-initialized state for a batch.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        LstmState {
            h: Var::constant(Tensor::zeros(&[batch, self.hidden_size])),
            c: Var::constant(Tensor::zeros(&[batch, self.hidden_size])),
        }
    }

    /// Randomly initialized state (the paper initializes `h0`/`f0` with
    /// random values for the LSTM generator).
    pub fn random_state(&self, batch: usize, rng: &mut Rng) -> LstmState {
        LstmState {
            h: Var::constant(Tensor::randn(&[batch, self.hidden_size], rng)),
            c: Var::constant(Tensor::randn(&[batch, self.hidden_size], rng)),
        }
    }

    /// One timestep: `x [B, I]`, state `[B, H]` → new state.
    pub fn step(&self, x: &Var, state: &LstmState) -> LstmState {
        assert_eq!(
            x.shape().last().copied(),
            Some(self.input_size),
            "LstmCell expected input width {}, got {:?}",
            self.input_size,
            x.shape()
        );
        let hs = self.hidden_size;
        let gates = x
            .matmul(&self.w_ih.var())
            .add(&state.h.matmul(&self.w_hh.var()))
            .add_row(&self.bias.var());
        let i = gates.slice_cols(0, hs).sigmoid();
        let f = gates.slice_cols(hs, 2 * hs).sigmoid();
        let g = gates.slice_cols(2 * hs, 3 * hs).tanh();
        let o = gates.slice_cols(3 * hs, 4 * hs).sigmoid();
        let c = f.mul(&state.c).add(&i.mul(&g));
        let h = o.mul(&c.tanh());
        LstmState { h, c }
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Param> {
        vec![self.w_ih.clone(), self.w_hh.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{zero_grads, Module};

    #[test]
    fn step_shapes() {
        let mut rng = Rng::seed_from_u64(0);
        let cell = LstmCell::new(5, 7, &mut rng);
        let state = cell.zero_state(3);
        let x = Var::constant(Tensor::randn(&[3, 5], &mut rng));
        let next = cell.step(&x, &state);
        assert_eq!(next.h.shape(), &[3, 7]);
        assert_eq!(next.c.shape(), &[3, 7]);
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = Rng::seed_from_u64(1);
        let cell = LstmCell::new(2, 4, &mut rng);
        let mut state = cell.zero_state(2);
        for t in 0..5 {
            let x = Var::constant(Tensor::full(&[2, 2], t as f32 * 0.1));
            state = cell.step(&x, &state);
        }
        state.h.sqr().mean().backward();
        for p in cell.params() {
            assert!(p.grad().norm() > 0.0, "no gradient reached {p:?}");
        }
    }

    #[test]
    fn learns_to_memorize_first_input() {
        // Task: after 3 steps, h must encode the sign of the first input.
        let mut rng = Rng::seed_from_u64(2);
        let cell = LstmCell::new(1, 8, &mut rng);
        let readout = crate::linear::Linear::new(8, 1, &mut rng);
        let mut params = cell.params();
        params.extend(readout.params());

        let run = |first: f32| {
            let mut state = cell.zero_state(1);
            for t in 0..3 {
                let v = if t == 0 { first } else { 0.0 };
                state = cell.step(&Var::constant(Tensor::from_vec(vec![v], &[1, 1])), &state);
            }
            crate::module::Module::forward(&readout, &state.h)
        };

        for _ in 0..300 {
            zero_grads(&params);
            let mut total = 0.0;
            for &(first, target) in &[(1.0f32, 1.0f32), (-1.0, 0.0)] {
                let logit = run(first);
                let loss = logit.bce_with_logits(&Tensor::from_vec(vec![target], &[1, 1]));
                total += loss.value().data()[0];
                loss.backward();
            }
            for p in &params {
                p.update(|v, g| v.axpy(-0.5, g));
            }
            if total < 0.02 {
                break;
            }
        }
        let pos = run(1.0).value().data()[0];
        let neg = run(-1.0).value().data()[0];
        assert!(pos > 0.0 && neg < 0.0, "pos={pos} neg={neg}");
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = Rng::seed_from_u64(3);
        let cell = LstmCell::new(2, 3, &mut rng);
        let b = cell.params()[2].value();
        assert_eq!(&b.data()[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&b.data()[0..3], &[0.0, 0.0, 0.0]);
    }
}
