//! Parameter-free activation layers.

use crate::module::Module;
use daisy_tensor::{Param, Var};

/// Activation functions as pluggable modules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `x` for positive inputs, `alpha * x` otherwise.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (useful as a configurable no-op).
    Identity,
}

impl Module for Activation {
    fn forward(&self, input: &Var) -> Var {
        match self {
            Activation::Relu => input.relu(),
            Activation::LeakyRelu(alpha) => input.leaky_relu(*alpha),
            Activation::Tanh => input.tanh(),
            Activation::Sigmoid => input.sigmoid(),
            Activation::Identity => input.clone(),
        }
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::Tensor;

    fn apply(act: Activation, xs: &[f32]) -> Vec<f32> {
        act.forward(&Var::constant(Tensor::from_slice(xs)))
            .value()
            .data()
            .to_vec()
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(apply(Activation::Relu, &[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let out = apply(Activation::LeakyRelu(0.2), &[-1.0, 2.0]);
        assert!((out[0] + 0.2).abs() < 1e-6);
        assert_eq!(out[1], 2.0);
    }

    #[test]
    fn tanh_and_sigmoid_ranges() {
        let out = apply(Activation::Tanh, &[-10.0, 10.0]);
        assert!(out[0] > -1.0 - 1e-6 && out[0] < -0.99);
        assert!(out[1] < 1.0 + 1e-6 && out[1] > 0.99);
        let out = apply(Activation::Sigmoid, &[-10.0, 0.0, 10.0]);
        assert!(out[0] < 0.01 && (out[1] - 0.5).abs() < 1e-6 && out[2] > 0.99);
    }

    #[test]
    fn identity_passthrough() {
        assert_eq!(apply(Activation::Identity, &[1.5, -2.5]), vec![1.5, -2.5]);
    }
}
