//! Fully-connected layer.
//!
//! The forward pass is one `x · W` matmul plus a row-broadcast bias;
//! both run on daisy-tensor's worker pool (`daisy_tensor::pool`) above
//! the size threshold, as do the `matmul_nt`/`matmul_tn` kernels of the
//! backward pass. Results are bit-identical for any thread count.

use crate::init::xavier_uniform;
use crate::module::Module;
use daisy_tensor::{Param, Rng, Tensor, Var};

/// `y = x W + b` with `W: [in, out]`, `b: [out]`.
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: Param::new(xavier_uniform(
                in_features,
                out_features,
                &[in_features, out_features],
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }
}

impl Module for Linear {
    fn forward(&self, input: &Var) -> Var {
        assert_eq!(
            input.shape().last().copied(),
            Some(self.in_features),
            "Linear expected {} input features, got {:?}",
            self.in_features,
            input.shape()
        );
        input.matmul(&self.weight.var()).add_row(&self.bias.var())
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng::seed_from_u64(0);
        let layer = Linear::new(3, 2, &mut rng);
        layer.bias.set_value(Tensor::from_slice(&[1.0, -1.0]));
        let x = Var::constant(Tensor::zeros(&[4, 3]));
        let y = layer.forward(&x);
        assert_eq!(y.shape(), &[4, 2]);
        // Zero input -> bias only.
        for r in 0..4 {
            assert_eq!(y.value().row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn gradient_descends_on_regression() {
        // One linear layer must be able to fit y = 2x + 1.
        let mut rng = Rng::seed_from_u64(1);
        let layer = Linear::new(1, 1, &mut rng);
        let xs = Tensor::from_vec((0..16).map(|i| i as f32 / 8.0).collect(), &[16, 1]);
        let ys = xs.map(|x| 2.0 * x + 1.0);
        let params = layer.params();
        for _ in 0..500 {
            crate::module::zero_grads(&params);
            let pred = layer.forward(&Var::constant(xs.clone()));
            let loss = pred.mse(&ys);
            loss.backward();
            for p in &params {
                p.update(|v, g| v.axpy(-0.1, g));
            }
        }
        let final_loss = layer
            .forward(&Var::constant(xs))
            .mse(&ys)
            .value()
            .data()[0];
        assert!(final_loss < 1e-3, "loss = {final_loss}");
    }
}
