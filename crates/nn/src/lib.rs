//! # daisy-nn
//!
//! Neural-network building blocks on top of `daisy-tensor`: the layers,
//! losses and optimizers that the paper's design space draws from —
//! fully-connected stacks with batch normalization (MLP networks),
//! DCGAN-style convolution/deconvolution (CNN networks), LSTM cells
//! (sequence-generation networks), Adam and RMSProp, weight clipping
//! for WGAN and gradient noise for DPGAN.
//!
//! ```
//! use daisy_nn::{Activation, Linear, Module, Sequential};
//! use daisy_tensor::{Rng, Tensor, Var};
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let net = Sequential::new()
//!     .push(Linear::new(8, 16, &mut rng))
//!     .push(Activation::Relu)
//!     .push(Linear::new(16, 1, &mut rng));
//! let y = net.forward(&Var::constant(Tensor::randn(&[4, 8], &mut rng)));
//! assert_eq!(y.shape(), &[4, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod dropout;
pub mod init;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod module;
pub mod optim;

pub use activation::Activation;
pub use batchnorm::{BatchNorm1d, BatchNorm2d};
pub use conv::{Conv2d, ConvTranspose2d};
pub use dropout::Dropout;
pub use linear::Linear;
pub use lstm::{LstmCell, LstmState};
pub use module::{
    grad_norm, grads_non_finite, num_params, params_bytes, params_non_finite, restore, snapshot,
    zero_grads, Module, Sequential,
};
pub use optim::{add_grad_noise, clip_grad_norm, clip_weights, Adam, Optimizer, RmsProp, Sgd};
