//! Convolutional layers for the DCGAN-style networks (paper §A.1.1).
//!
//! Both layers lower to the primitives in `daisy_tensor::conv`: above a
//! size threshold the forward convolution becomes im2col + parallel
//! matmul, and the input/weight gradients parallelize over the batch,
//! all bit-identical for any thread count.

use crate::init::dcgan_normal;
use crate::module::Module;
use daisy_tensor::{conv::conv_out_dim, conv::conv_transpose_out_dim, Param, Rng, Tensor, Var};

/// Standard 2-D convolution: weight `[OC, C, KH, KW]`, per-channel
/// bias.
pub struct Conv2d {
    weight: Param,
    bias: Param,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a conv layer with DCGAN `N(0, 0.02)` weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        Conv2d {
            weight: Param::new(dcgan_normal(
                &[out_channels, in_channels, kernel, kernel],
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            stride,
            pad,
        }
    }

    /// Output spatial size for a given input size.
    pub fn out_dim(&self, input: usize) -> usize {
        conv_out_dim(input, self.weight.shape()[2], self.stride, self.pad)
    }
}

impl Module for Conv2d {
    fn forward(&self, input: &Var) -> Var {
        input
            .conv2d(&self.weight.var(), self.stride, self.pad)
            .add_channel_bias(&self.bias.var())
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Transposed (fractionally strided) 2-D convolution — the `DeConv` of
/// the paper's generator: weight `[IC, OC, KH, KW]`, per-channel bias.
pub struct ConvTranspose2d {
    weight: Param,
    bias: Param,
    stride: usize,
    pad: usize,
}

impl ConvTranspose2d {
    /// Creates a transposed conv layer with DCGAN `N(0, 0.02)` weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        ConvTranspose2d {
            weight: Param::new(dcgan_normal(
                &[in_channels, out_channels, kernel, kernel],
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            stride,
            pad,
        }
    }

    /// Output spatial size for a given input size.
    pub fn out_dim(&self, input: usize) -> usize {
        conv_transpose_out_dim(input, self.weight.shape()[2], self.stride, self.pad)
    }
}

impl Module for ConvTranspose2d {
    fn forward(&self, input: &Var) -> Var {
        input
            .conv_transpose2d(&self.weight.var(), self.stride, self.pad)
            .add_channel_bias(&self.bias.var())
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes() {
        let mut rng = Rng::seed_from_u64(0);
        let conv = Conv2d::new(1, 8, 4, 2, 1, &mut rng);
        let x = Var::constant(Tensor::randn(&[2, 1, 16, 16], &mut rng));
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
        assert_eq!(conv.out_dim(16), 8);
    }

    #[test]
    fn transpose_conv_shapes() {
        let mut rng = Rng::seed_from_u64(1);
        let deconv = ConvTranspose2d::new(8, 1, 4, 2, 1, &mut rng);
        let x = Var::constant(Tensor::randn(&[2, 8, 8, 8], &mut rng));
        let y = deconv.forward(&x);
        assert_eq!(y.shape(), &[2, 1, 16, 16]);
        assert_eq!(deconv.out_dim(8), 16);
    }

    #[test]
    fn dcgan_roundtrip_geometry() {
        // Generator path 1x1 -> 4x4 -> 8x8 matches the discriminator path
        // 8x8 -> 4x4 -> 1x1 in reverse.
        let mut rng = Rng::seed_from_u64(2);
        let up1 = ConvTranspose2d::new(16, 8, 4, 2, 0, &mut rng);
        let up2 = ConvTranspose2d::new(8, 1, 4, 2, 1, &mut rng);
        let z = Var::constant(Tensor::randn(&[1, 16, 1, 1], &mut rng));
        let img = up2.forward(&up1.forward(&z));
        assert_eq!(img.shape(), &[1, 1, 8, 8]);

        let down1 = Conv2d::new(1, 8, 4, 2, 1, &mut rng);
        let down2 = Conv2d::new(8, 16, 4, 2, 0, &mut rng);
        let code = down2.forward(&down1.forward(&img));
        assert_eq!(code.shape(), &[1, 16, 1, 1]);
    }

    #[test]
    fn gradients_reach_conv_params() {
        let mut rng = Rng::seed_from_u64(3);
        let conv = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
        let x = Var::constant(Tensor::randn(&[2, 1, 5, 5], &mut rng));
        conv.forward(&x).sqr().mean().backward();
        for p in conv.params() {
            assert!(p.grad().norm() > 0.0);
        }
    }
}
